"""Shared fixtures and reference oracles for the test suite."""

from __future__ import annotations

import os
from itertools import combinations

import numpy as np
import pytest
from hypothesis import Verbosity, settings

from repro.data import PagedDatabase, TransactionDatabase, generate_quest

# Explicit hypothesis profiles so CI behavior is pinned, not inherited
# from whatever the runner's defaults happen to be. ``deadline=None``
# everywhere: the suite spawns worker pools and injects latency faults,
# so per-example wall-clock is noise, not signal. ``print_blob`` makes
# a CI failure reproducible locally via ``@reproduce_failure``.
settings.register_profile(
    "default", deadline=None, print_blob=True
)
settings.register_profile(
    "ci", deadline=None, print_blob=True, derandomize=True
)
settings.register_profile(
    "debug", deadline=None, print_blob=True, verbosity=Verbosity.verbose,
    max_examples=10,
)
settings.load_profile(os.environ.get("HYPOTHESIS_PROFILE", "default"))


def brute_force_frequent(
    database: TransactionDatabase,
    min_count: int,
    max_level: int | None = None,
) -> dict[tuple[int, ...], int]:
    """Exhaustive frequent-itemset oracle (tiny databases only).

    Counts every subset of every transaction (up to *max_level*) and
    keeps those meeting the absolute threshold. Quadratic and proud of
    it — the point is independence from all production code paths.
    """
    counts: dict[tuple[int, ...], int] = {}
    for txn in database:
        top = len(txn) if max_level is None else min(max_level, len(txn))
        for size in range(1, top + 1):
            for subset in combinations(txn, size):
                counts[subset] = counts.get(subset, 0) + 1
    return {
        itemset: count
        for itemset, count in counts.items()
        if count >= min_count
    }


@pytest.fixture
def example1_matrix() -> np.ndarray:
    """Paper Example 1: items a,b,c (columns) over 4 segments (rows)."""
    return np.array(
        [
            [20, 40, 40],
            [10, 40, 20],
            [40, 40, 20],
            [40, 10, 20],
        ],
        dtype=np.int64,
    )


@pytest.fixture
def example2_db() -> TransactionDatabase:
    """Paper Example 2: six transactions over items a=0, b=1."""
    return TransactionDatabase(
        [(0,), (0, 1), (0,), (0,), (1,), (1,)], n_items=2
    )


@pytest.fixture
def tiny_db() -> TransactionDatabase:
    """A small hand-written database used across modules."""
    return TransactionDatabase(
        [
            (0, 1, 2),
            (0, 1),
            (0, 2),
            (1, 2),
            (0, 1, 2, 3),
            (3,),
            (0, 3),
            (1, 2, 3),
        ],
        n_items=4,
    )


@pytest.fixture
def quest_db() -> TransactionDatabase:
    """A modest Quest workload shared by the slower tests."""
    return generate_quest(
        n_transactions=600,
        n_items=60,
        avg_transaction_len=6,
        n_patterns=120,
        seed=11,
    )


@pytest.fixture
def quest_paged(quest_db) -> PagedDatabase:
    return PagedDatabase(quest_db, page_size=30)


def random_database(
    rng: np.random.Generator,
    n_transactions: int,
    n_items: int,
    density: float = 0.3,
) -> TransactionDatabase:
    """Uniform random database for property tests."""
    txns = []
    for _ in range(n_transactions):
        mask = rng.random(n_items) < density
        txns.append(tuple(int(i) for i in np.flatnonzero(mask)))
    return TransactionDatabase(txns, n_items=n_items)
