"""Kill−9 chaos scenarios against the real CLI gateway.

Each test boots ``python -m repro serve --listen --state-dir`` as a
subprocess, wedges it at a named fault point with ``REPRO_FAULTS``,
SIGKILLs it inside the injected sleep, restarts it, and asserts the
§16 recovery invariants — every pre-crash tenant answers ≥50 seeded
queries bit-identically to ``OSSM.upper_bound`` on the map its
reported epoch names, and a kill mid-publish leaves exactly the old
or the new epoch. SIGHUP quota reload rides the same harness.

These are the slowest tests in the suite (several real process boots
each); they are also the only ones that prove the durability story
against genuine ``SIGKILL``, not a simulated one.
"""

import json
import signal
import time

import pytest

from repro.resilience.chaos import (
    KILL_POINTS,
    GatewayProcess,
    build_map,
    run_kill_scenario,
)


@pytest.mark.parametrize("point", sorted(KILL_POINTS))
def test_kill_scenario_recovers_bit_exact(point, tmp_path):
    result = run_kill_scenario(point, tmp_path, queries_per_tenant=50)
    # 3 provisioned tenants + the CLI's bootstrap tenant, ≥50 queries
    # each, every one checked against the local Equation (1) oracle.
    assert result.queries_verified >= 50 * 4
    assert set(result.epochs) == {"default", "t0", "t1", "t2"}
    assert all(epoch in (0, 1) for epoch in result.epochs.values())
    assert result.drain_exit_code == 0


def test_sighup_reloads_quotas_without_restart(tmp_path):
    state = tmp_path / "state"
    boot = tmp_path / "boot.npz"
    build_map(seed=55).save(boot)
    with GatewayProcess(boot, state) as gateway:
        gateway.wait_ready()
        stats = gateway.get_json("/v1/tenants/default/stats")
        assert stats["quota"]["rate"] is None
        (state / "quotas.json").write_text(
            json.dumps({"default": {"rate": 123.0, "burst": 9.0}})
        )
        gateway.proc.send_signal(signal.SIGHUP)
        deadline = time.monotonic() + 10.0
        rate = None
        while time.monotonic() < deadline:
            rate = gateway.get_json(
                "/v1/tenants/default/stats"
            )["quota"]["rate"]
            if rate == 123.0:
                break
            time.sleep(0.05)
        assert rate == 123.0
        # The reload dropped nothing: the same gateway still serves.
        status, payload = gateway.request(
            "POST", "/v1/tenants/default/bounds",
            json.dumps({"itemset": [1, 2]}).encode(),
        )
        assert status == 200, payload
        gateway.terminate()
        assert gateway.wait() == 0


def test_sighup_without_state_dir_is_a_warning_noop(tmp_path):
    boot = tmp_path / "boot.npz"
    build_map(seed=55).save(boot)
    with GatewayProcess(boot, None) as gateway:
        gateway.wait_ready()
        gateway.proc.send_signal(signal.SIGHUP)
        # Still alive and serving after the no-op reload.
        time.sleep(0.2)
        status, payload = gateway.request(
            "POST", "/v1/tenants/default/bounds",
            json.dumps({"itemset": [3]}).encode(),
        )
        assert status == 200, payload
        gateway.terminate()
        assert gateway.wait() == 0
