"""Checkpoint store semantics and bit-identical miner resume."""

import pytest

from repro.data import generate_quest
from repro.mining import DHP, Apriori, Partition
from repro.obs.metrics import MetricsRegistry, use_registry
from repro.resilience import (
    CheckpointMismatch,
    CheckpointStore,
    CorruptArtifact,
    FaultPlan,
    InjectedFault,
    get_injector,
    mining_fingerprint,
    use_faults,
)


@pytest.fixture
def db():
    return generate_quest(
        n_transactions=250, n_items=50, avg_transaction_len=8,
        n_patterns=40, seed=3,
    )


class TestFingerprint:
    def test_binds_db_algorithm_threshold_and_config(self, db):
        base = mining_fingerprint("apriori", 5, db)
        other_db = generate_quest(
            n_transactions=250, n_items=50, avg_transaction_len=8,
            n_patterns=40, seed=4,
        )
        assert mining_fingerprint("apriori", 5, db) == base
        assert mining_fingerprint("apriori", 6, db) != base
        assert mining_fingerprint("dhp", 5, db) != base
        assert mining_fingerprint("apriori", 5, other_db) != base
        assert mining_fingerprint("apriori", 5, db, max_level=3) != base


class TestCheckpointStore:
    def test_save_load_round_trip(self, tmp_path, db):
        store = CheckpointStore(tmp_path, "fp")
        state = {"frequent": {(0,): 7}, "k": 2}
        store.save(2, state)
        level, loaded = store.load(store.path_for(2))
        assert (level, loaded) == (2, state)

    def test_latest_prefers_newest_valid(self, tmp_path):
        store = CheckpointStore(tmp_path, "fp")
        store.save(1, {"x": 1})
        store.save(2, {"x": 2})
        assert store.latest() == (2, {"x": 2})

    def test_latest_skips_corrupt_snapshot(self, tmp_path):
        store = CheckpointStore(tmp_path, "fp")
        store.save(1, {"x": 1})
        store.save(2, {"x": 2})
        path = store.path_for(2)
        path.write_bytes(path.read_bytes()[:-4])
        registry = MetricsRegistry()
        with use_registry(registry):
            assert store.latest() == (1, {"x": 1})
        assert (
            registry.counter("resilience.checkpoint.corrupt").snapshot() == 1
        )

    def test_latest_none_when_empty(self, tmp_path):
        assert CheckpointStore(tmp_path, "fp").latest() is None

    def test_fingerprint_mismatch_raises(self, tmp_path):
        CheckpointStore(tmp_path, "fp-a").save(1, {"x": 1})
        other = CheckpointStore(tmp_path, "fp-b")
        with pytest.raises(CheckpointMismatch, match="fp-b"):
            other.latest()

    def test_not_a_checkpoint_file(self, tmp_path):
        store = CheckpointStore(tmp_path, "fp")
        path = store.path_for(1)
        path.write_bytes(b"definitely not RPCK data")
        with pytest.raises(CorruptArtifact, match="not a checkpoint"):
            store.load(path)

    def test_clear_removes_snapshots(self, tmp_path):
        store = CheckpointStore(tmp_path, "fp")
        store.save(1, {})
        store.save(2, {})
        store.clear()
        assert store.latest() is None


def _assert_bit_identical(resumed, base):
    assert list(resumed.frequent.items()) == list(base.frequent.items())
    assert resumed.levels == base.levels
    assert resumed.algorithm == base.algorithm
    assert resumed.min_support == base.min_support


class TestMinerResume:
    """Crash a miner mid-run, resume, and demand the exact result."""

    @pytest.mark.parametrize(
        "factory",
        [
            lambda **kw: Apriori(**kw),
            lambda **kw: DHP(n_buckets=512, **kw),
        ],
        ids=["apriori", "dhp"],
    )
    def test_crash_then_resume_is_bit_identical(self, tmp_path, db, factory):
        base = factory().mine(db, 0.02)
        plan = FaultPlan.from_spec("mining.level_crash:after=2", seed=7)
        with use_faults(plan):
            with pytest.raises(InjectedFault):
                factory(checkpoint_dir=tmp_path).mine(db, 0.02)
        saved = sorted(p.name for p in tmp_path.glob("*.ckpt"))
        assert saved == ["level_0001.ckpt", "level_0002.ckpt"]
        resumed = factory(checkpoint_dir=tmp_path, resume=True).mine(db, 0.02)
        _assert_bit_identical(resumed, base)

    def test_partition_resume_after_phase2_crash(self, tmp_path, db):
        def make(**kw):
            return Partition(n_partitions=3, auto_ossm=4, **kw)
        base = make().mine(db, 0.02)
        # Partition's phase-1 local Apriori runs also hit the
        # mining.level_crash point, so measure the total units first
        # and kill the very last one (the final phase-2 level).
        probe = FaultPlan.from_spec("mining.level_crash:after=10000", seed=7)
        with use_faults(probe):
            make().mine(db, 0.02)
            units = get_injector().hits("mining.level_crash")
        plan = FaultPlan.from_spec(
            f"mining.level_crash:after={units - 1}", seed=7
        )
        with use_faults(plan):
            with pytest.raises(InjectedFault):
                make(checkpoint_dir=tmp_path).mine(db, 0.02)
        assert (tmp_path / "level_0000.ckpt").exists(), (
            "the phase-1 candidate union must be checkpointed as unit 0"
        )
        resumed = make(checkpoint_dir=tmp_path, resume=True).mine(db, 0.02)
        _assert_bit_identical(resumed, base)

    def test_partition_resume_skips_phase_one(self, tmp_path, db):
        def make(**kw):
            return Partition(n_partitions=3, **kw)
        base = make().mine(db, 0.02)
        make(checkpoint_dir=tmp_path).mine(db, 0.02)
        # All units are on disk; a resume recomputes nothing but the
        # final state splice and still reports the full result.
        resumed = make(checkpoint_dir=tmp_path, resume=True).mine(db, 0.02)
        _assert_bit_identical(resumed, base)

    def test_resume_with_empty_dir_runs_fresh(self, tmp_path, db):
        base = Apriori().mine(db, 0.02)
        resumed = Apriori(checkpoint_dir=tmp_path, resume=True).mine(db, 0.02)
        _assert_bit_identical(resumed, base)

    def test_resume_requires_checkpoint_dir(self, db):
        with pytest.raises(ValueError, match="checkpoint_dir"):
            Apriori(resume=True).mine(db, 0.02)

    def test_resume_against_other_threshold_mismatches(self, tmp_path, db):
        Apriori(checkpoint_dir=tmp_path).mine(db, 0.05)
        with pytest.raises(CheckpointMismatch):
            Apriori(checkpoint_dir=tmp_path, resume=True).mine(db, 0.1)

    def test_corrupt_newest_snapshot_falls_back(self, tmp_path, db):
        base = Apriori().mine(db, 0.02)
        Apriori(checkpoint_dir=tmp_path).mine(db, 0.02)
        snapshots = sorted(tmp_path.glob("*.ckpt"))
        newest = snapshots[-1]
        newest.write_bytes(newest.read_bytes()[:-8])
        resumed = Apriori(checkpoint_dir=tmp_path, resume=True).mine(db, 0.02)
        _assert_bit_identical(resumed, base)

    def test_checkpoint_write_crash_leaves_resumable_state(
        self, tmp_path, db
    ):
        # The checkpoint writer itself dies before the rename: the run
        # fails, but the directory holds only complete snapshots.
        base = Apriori().mine(db, 0.02)
        plan = FaultPlan.from_spec("io.checkpoint.crash:after=1", seed=0)
        with use_faults(plan):
            with pytest.raises(InjectedFault):
                Apriori(checkpoint_dir=tmp_path).mine(db, 0.02)
        assert not [p for p in tmp_path.iterdir() if ".tmp" in p.name]
        resumed = Apriori(checkpoint_dir=tmp_path, resume=True).mine(db, 0.02)
        _assert_bit_identical(resumed, base)
