"""Injected serve-layer faults: evaluation retry and latency.

Plus the bitmap engine's degradation path: a poisoned thread shard
abandons the fan-out and falls back to the serial bitmap reduce —
exactly once per failing call, exactly, and without poisoning later
calls.
"""

import asyncio
import time
from itertools import combinations

import pytest

from repro.core import GreedySegmenter
from repro.data import PagedDatabase, generate_quest
from repro.mining import BitmapCounter
from repro.obs.metrics import MetricsRegistry, use_registry
from repro.parallel import ThreadedBitmapCounter, ThreadShardPlanner
from repro.resilience import FaultPlan, InjectedFault, use_faults
from repro.serve import BoundQueryService, QueryTimeout, canonical_itemset


@pytest.fixture(scope="module")
def ossm():
    db = generate_quest(
        n_transactions=400, n_items=40,
        avg_transaction_len=8.0, n_patterns=50, seed=13,
    )
    paged = PagedDatabase(db, page_size=50)
    return GreedySegmenter().segment(paged, n_segments=4).ossm


def run(coroutine):
    return asyncio.run(coroutine)


def _expected(ossm, itemsets):
    return [ossm.upper_bound(canonical_itemset(s)) for s in itemsets]


class TestServeFaults:
    def test_eval_error_is_retried_once(self, ossm):
        itemsets = [(i, i + 1) for i in range(8)]
        plan = FaultPlan.from_spec("serve.eval_error:times=1", seed=0)
        registry = MetricsRegistry()

        async def main():
            async with BoundQueryService(ossm) as service:
                return await service.query_batch(itemsets)

        with use_faults(plan), use_registry(registry):
            bounds = run(main())
        assert bounds == _expected(ossm, itemsets)
        assert (
            registry.counter("resilience.serve.eval_retries").snapshot() == 1
        )

    def test_persistent_eval_error_surfaces(self, ossm):
        # Both the first try and the single retry fail: the error must
        # reach the caller rather than be swallowed into a wrong bound.
        plan = FaultPlan.from_spec("serve.eval_error:times=2", seed=0)

        async def main():
            async with BoundQueryService(ossm) as service:
                return await service.query((0, 1))

        with use_faults(plan):
            with pytest.raises(InjectedFault):
                run(main())

    def test_injected_latency_still_exact(self, ossm):
        itemsets = [(i, i + 2) for i in range(6)]
        plan = FaultPlan.from_spec("serve.latency:times=1,delay=0.2", seed=0)

        async def main():
            async with BoundQueryService(ossm) as service:
                return await service.query_batch(itemsets)

        with use_faults(plan):
            start = time.perf_counter()
            bounds = run(main())
            elapsed = time.perf_counter() - start
        assert bounds == _expected(ossm, itemsets)
        assert elapsed >= 0.2

    def test_latency_slower_than_timeout_raises(self, ossm):
        plan = FaultPlan.from_spec("serve.latency:times=1,delay=5", seed=0)

        async def main():
            async with BoundQueryService(ossm, timeout=0.2) as service:
                return await service.query((2, 3))

        with use_faults(plan):
            with pytest.raises(QueryTimeout):
                run(main())


class TestBitmapShardFaults:
    @pytest.fixture
    def workload(self):
        return generate_quest(
            n_transactions=1200, n_items=12,
            avg_transaction_len=5.0, n_patterns=30, seed=21,
        )

    def _counter(self):
        return ThreadedBitmapCounter(
            workers=2, planner=ThreadShardPlanner(min_words=1)
        )

    def test_poisoned_shard_falls_back_to_serial_once(self, workload):
        candidates = list(combinations(range(12), 2))
        reference = BitmapCounter().count(workload, candidates)
        plan = FaultPlan.from_spec("bitmap.shard_error:times=1", seed=0)
        registry = MetricsRegistry()
        with use_faults(plan), use_registry(registry), self._counter() as c:
            first = c.count(workload, candidates)
            second = c.count(workload, candidates)
        # Both calls exact: the fallback recounted serially.
        assert first == reference
        assert second == reference
        fallbacks = registry.counter("resilience.engine.fallbacks")
        assert fallbacks.snapshot() == 1
        # The second call fanned out over threads again — degradation
        # is per-call, not sticky.
        assert registry.counter("bitmap.count.fanouts").snapshot() == 1

    def test_every_shard_poisoned_still_exact(self, workload):
        candidates = list(combinations(range(12), 3))
        reference = BitmapCounter().count(workload, candidates)
        plan = FaultPlan.from_spec("bitmap.shard_error:times=100", seed=0)
        registry = MetricsRegistry()
        with use_faults(plan), use_registry(registry), self._counter() as c:
            for _ in range(3):
                assert c.count(workload, candidates) == reference
        assert (
            registry.counter("resilience.engine.fallbacks").snapshot() == 3
        )
        assert registry.counter("bitmap.count.fanouts").snapshot() == 0
