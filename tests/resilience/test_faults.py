"""Deterministic fault injection: spec parsing, hit windows, seeding."""

import pytest

from repro.obs.metrics import MetricsRegistry, use_registry
from repro.resilience import (
    FaultInjector,
    FaultPlan,
    FaultRule,
    InjectedFault,
    get_injector,
    use_faults,
)


class TestFaultRule:
    def test_fires_in_window_only(self):
        rule = FaultRule("p", times=2, after=3)
        assert [rule.fires_on(h) for h in range(7)] == [
            False, False, False, True, True, False, False,
        ]

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"point": ""},
            {"point": "p", "times": 0},
            {"point": "p", "after": -1},
            {"point": "p", "delay": -0.1},
        ],
    )
    def test_rejects_bad_fields(self, kwargs):
        with pytest.raises(ValueError):
            FaultRule(**kwargs)


class TestFaultPlan:
    def test_spec_round_trip(self):
        plan = FaultPlan.from_spec(
            "pool.worker_crash:times=2,after=1;"
            "serve.latency:delay=0.5", seed=42,
        )
        crash = plan.rule_for("pool.worker_crash")
        assert (crash.times, crash.after) == (2, 1)
        assert plan.rule_for("serve.latency").delay == 0.5
        assert plan.rule_for("unknown") is None
        assert plan.seed == 42

    def test_spec_rejects_unknown_option(self):
        with pytest.raises(ValueError, match="unknown fault option"):
            FaultPlan.from_spec("p:volume=11")

    def test_rejects_duplicate_points(self):
        with pytest.raises(ValueError, match="duplicate"):
            FaultPlan([FaultRule("p"), FaultRule("p", times=2)])

    def test_from_env(self):
        plan = FaultPlan.from_env(
            {"REPRO_FAULTS": "mining.level_crash:after=1",
             "REPRO_FAULTS_SEED": "7"}
        )
        assert plan.rule_for("mining.level_crash").after == 1
        assert plan.seed == 7
        assert not FaultPlan.from_env({})

    def test_empty_plan_is_falsy(self):
        assert not FaultPlan()
        assert FaultPlan([FaultRule("p")])


class TestFaultInjector:
    def test_disabled_without_plan(self):
        injector = FaultInjector()
        assert not injector.enabled
        injector.maybe_raise("anything")  # no-op
        assert injector.maybe_sleep("anything") == 0.0

    def test_maybe_raise_fires_on_selected_hit(self):
        injector = FaultInjector(
            FaultPlan([FaultRule("p", times=1, after=2)])
        )
        injector.maybe_raise("p")
        injector.maybe_raise("p")
        with pytest.raises(InjectedFault, match="'p'"):
            injector.maybe_raise("p")
        injector.maybe_raise("p")  # window passed; clean again
        assert injector.hits("p") == 4

    def test_fire_counts_metric(self):
        registry = MetricsRegistry()
        injector = FaultInjector(FaultPlan([FaultRule("p")]))
        with use_registry(registry):
            injector.fire("p")
        assert registry.counter("resilience.faults.injected").snapshot() == 1

    def test_corrupt_file_is_deterministic(self, tmp_path):
        payload = bytes(range(256)) * 8

        def damage(seed):
            path = tmp_path / f"f{seed}.bin"
            path.write_bytes(payload)
            injector = FaultInjector(
                FaultPlan([FaultRule("io.x.bitflip")], seed=seed)
            )
            assert injector.corrupt_file("io.x", path)
            return path.read_bytes()

        first, again = damage(3), damage(3)
        assert first == again, "same seed must flip the same bit"
        assert first != payload
        assert damage(4) != first, "different seed, different damage"

    def test_truncate_keeps_a_prefix(self, tmp_path):
        path = tmp_path / "f.bin"
        path.write_bytes(b"x" * 1000)
        injector = FaultInjector(
            FaultPlan([FaultRule("io.x.truncate")], seed=0)
        )
        assert injector.corrupt_file("io.x", path)
        damaged = path.read_bytes()
        assert len(damaged) < 500
        assert damaged == b"x" * len(damaged)


class TestProcessWideInjector:
    def test_use_faults_restores_previous(self):
        before = get_injector()
        plan = FaultPlan([FaultRule("p")])
        with use_faults(plan) as injector:
            assert get_injector() is injector
            assert injector.enabled
        assert get_injector() is before
