"""Pool supervision: crash rebuilds, hang detection, circuit breaking."""

import pytest

from repro.data import generate_quest
from repro.mining.counting import make_counter, parallel_breaker
from repro.obs.metrics import MetricsRegistry, use_registry
from repro.parallel import ParallelCounter
from repro.parallel.pool import SupervisedPool
from repro.resilience import Backoff, FaultPlan, PoolFailure, use_faults

WORKERS = 2


def _double(x):
    return x * 2


def _fast_backoff():
    return Backoff(base=0.01, factor=1.0, max_delay=0.01, jitter=0.0)


@pytest.fixture
def db():
    return generate_quest(
        n_transactions=400, n_items=40, avg_transaction_len=8,
        n_patterns=30, seed=11,
    )


class TestSupervisedPool:
    def test_plain_run_preserves_payload_order(self):
        with SupervisedPool(WORKERS) as pool:
            assert pool.run(_double, list(range(8))) == [
                0, 2, 4, 6, 8, 10, 12, 14,
            ]

    def test_worker_crash_rebuilds_and_completes(self):
        plan = FaultPlan.from_spec("pool.worker_crash:times=1", seed=0)
        registry = MetricsRegistry()
        with use_faults(plan), use_registry(registry):
            with SupervisedPool(WORKERS, backoff=_fast_backoff()) as pool:
                assert pool.run(_double, [1, 2, 3]) == [2, 4, 6]
        assert registry.counter("resilience.pool.crashes").snapshot() == 1
        assert registry.counter("resilience.pool.rebuilds").snapshot() == 1

    def test_worker_hang_detected_and_rebuilt(self):
        # The injected hang sleeps 30s; the supervisor's 0.5s deadline
        # must declare the batch hung and rebuild long before that.
        plan = FaultPlan.from_spec(
            "pool.worker_hang:times=1,delay=30", seed=0
        )
        registry = MetricsRegistry()
        with use_faults(plan), use_registry(registry):
            with SupervisedPool(
                WORKERS, deadline=0.5, backoff=_fast_backoff()
            ) as pool:
                assert pool.run(_double, [5, 6]) == [10, 12]
        assert registry.counter("resilience.pool.hangs").snapshot() == 1
        assert registry.counter("resilience.pool.rebuilds").snapshot() == 1

    def test_exhausted_rebuild_budget_raises_pool_failure(self):
        plan = FaultPlan.from_spec("pool.worker_crash:times=99", seed=0)
        with use_faults(plan):
            with SupervisedPool(
                WORKERS, max_rebuilds=1, backoff=_fast_backoff()
            ) as pool:
                with pytest.raises(PoolFailure, match="2 consecutive attempts"):
                    pool.run(_double, [1, 2])

    def test_slow_start_delays_but_succeeds(self):
        plan = FaultPlan.from_spec(
            "pool.slow_start:times=1,delay=0.2", seed=0
        )
        with use_faults(plan):
            with SupervisedPool(WORKERS) as pool:
                assert pool.run(_double, [4]) == [8]

    def test_run_after_close_raises(self):
        pool = SupervisedPool(WORKERS)
        pool.close()
        with pytest.raises(RuntimeError, match="closed"):
            pool.run(_double, [1])


class TestParallelCounterDegradation:
    def test_pool_failure_falls_back_to_exact_serial(self, db):
        candidates = [(i,) for i in range(db.n_items)]
        serial = make_counter("tidset").count(db, candidates)
        plan = FaultPlan.from_spec("pool.worker_crash:times=999", seed=0)
        registry = MetricsRegistry()
        breaker = parallel_breaker()
        breaker.reset()
        try:
            with use_faults(plan), use_registry(registry):
                with ParallelCounter(workers=WORKERS) as counter:
                    counts = counter.count(db, candidates)
            assert counts == serial
            assert (
                registry.counter("resilience.engine.fallbacks").snapshot()
                == 1
            )
            assert breaker.consecutive_failures == 1
        finally:
            breaker.reset()

    def test_open_breaker_degrades_counter_selection(self, db):
        candidates = [(i,) for i in range(db.n_items)]
        serial = make_counter("tidset").count(db, candidates)
        registry = MetricsRegistry()
        breaker = parallel_breaker()
        try:
            while not breaker.is_open:
                breaker.record_failure()
            with use_registry(registry):
                counter = make_counter("parallel", workers=WORKERS)
                assert not isinstance(counter, ParallelCounter)
                assert counter.count(db, candidates) == serial
            assert (
                registry.counter("resilience.engine.degraded").snapshot() == 1
            )
        finally:
            breaker.reset()

    def test_counter_skips_pool_while_breaker_open(self, db):
        # An already-constructed ParallelCounter also honours the open
        # breaker: counts stay exact without touching worker processes.
        candidates = [(i,) for i in range(db.n_items)]
        serial = make_counter("tidset").count(db, candidates)
        breaker = parallel_breaker()
        try:
            counter = ParallelCounter(workers=WORKERS)
            while not breaker.is_open:
                breaker.record_failure()
            assert counter.count(db, candidates) == serial
            assert counter._pool is None, (
                "no pool should be built while the breaker is open"
            )
            counter.close()
        finally:
            breaker.reset()
