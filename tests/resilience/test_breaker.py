"""Backoff schedule and circuit-breaker state machine."""

import pytest

from repro.obs.metrics import MetricsRegistry, use_registry
from repro.resilience import (
    CLOSED,
    HALF_OPEN,
    OPEN,
    Backoff,
    CircuitBreaker,
)


class FakeClock:
    def __init__(self):
        self.now = 100.0

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


class TestBackoff:
    def test_exponential_and_capped(self):
        backoff = Backoff(base=0.1, factor=2.0, max_delay=0.4, jitter=0.0)
        assert [round(backoff.next_delay(), 3) for _ in range(5)] == [
            0.1, 0.2, 0.4, 0.4, 0.4,
        ]
        assert backoff.failures == 5
        backoff.reset()
        assert backoff.next_delay() == pytest.approx(0.1)

    def test_seeded_jitter_is_reproducible(self):
        a = Backoff(jitter=0.25, seed=9)
        b = Backoff(jitter=0.25, seed=9)
        assert [a.next_delay() for _ in range(4)] == [
            b.next_delay() for _ in range(4)
        ]

    def test_jitter_never_lowers_delay(self):
        backoff = Backoff(base=0.5, factor=1.0, max_delay=0.5, jitter=0.5)
        for _ in range(20):
            delay = backoff.next_delay()
            assert 0.5 <= delay <= 0.75

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            Backoff(base=0.0)
        with pytest.raises(ValueError):
            Backoff(jitter=2.0)


class TestCircuitBreaker:
    def _breaker(self, **kwargs):
        clock = FakeClock()
        breaker = CircuitBreaker(
            failure_threshold=3, recovery_time=10.0, name="test",
            clock=clock, **kwargs,
        )
        return breaker, clock

    def test_closed_until_threshold(self):
        breaker, _clock = self._breaker()
        assert breaker.state == CLOSED
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.allow()
        assert breaker.consecutive_failures == 2
        breaker.record_failure()
        assert breaker.state == OPEN
        assert not breaker.allow()

    def test_success_resets_failure_streak(self):
        breaker, _clock = self._breaker()
        breaker.record_failure()
        breaker.record_failure()
        breaker.record_success()
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.state == CLOSED

    def test_half_open_admits_one_probe(self):
        breaker, clock = self._breaker()
        for _ in range(3):
            breaker.record_failure()
        clock.advance(10.0)
        assert breaker.state == HALF_OPEN
        assert breaker.allow()          # the probe
        assert not breaker.allow()      # held off until the probe reports
        breaker.record_success()
        assert breaker.state == CLOSED
        assert breaker.allow()

    def test_failed_probe_reopens_full_window(self):
        breaker, clock = self._breaker()
        for _ in range(3):
            breaker.record_failure()
        clock.advance(10.0)
        assert breaker.allow()
        breaker.record_failure()
        assert breaker.state == OPEN
        clock.advance(9.9)
        assert not breaker.allow()
        clock.advance(0.1)
        assert breaker.allow()

    def test_reset_force_closes(self):
        breaker, _clock = self._breaker()
        for _ in range(3):
            breaker.record_failure()
        breaker.reset()
        assert breaker.state == CLOSED
        assert breaker.consecutive_failures == 0

    def test_transitions_emit_metrics(self):
        registry = MetricsRegistry()
        with use_registry(registry):
            breaker, clock = self._breaker()
            for _ in range(3):
                breaker.record_failure()
            clock.advance(10.0)
            assert breaker.allow()
            breaker.record_success()
        counters = {
            event: registry.counter(f"resilience.breaker.{event}").snapshot()
            for event in ("opened", "half_open", "probes", "closed")
        }
        assert counters == {
            "opened": 1, "half_open": 1, "probes": 1, "closed": 1,
        }

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            CircuitBreaker(failure_threshold=0)
        with pytest.raises(ValueError):
            CircuitBreaker(recovery_time=0.0)
