"""Tests for the resilience subsystem (DESIGN.md §11)."""
