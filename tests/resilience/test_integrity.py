"""Artifact integrity: atomic publish, checksums, corrupt-load paths."""

import os

import numpy as np
import pytest

from repro.core.ossm import OSSM
from repro.data import TransactionDatabase
from repro.data.io import load_binary, save_binary
from repro.obs.metrics import MetricsRegistry, use_registry
from repro.resilience import (
    CorruptArtifact,
    FaultPlan,
    IntegrityError,
    InjectedFault,
    atomic_savez,
    payload_checksum,
    use_faults,
    verified_load_npz,
)

KIND = "testkind"


@pytest.fixture
def payload():
    return {
        "a": np.arange(12, dtype=np.int64).reshape(3, 4),
        "b": np.linspace(0.0, 1.0, 5),
    }


def _no_temp_files(directory):
    return not [name for name in os.listdir(directory) if ".tmp" in name]


class TestChecksum:
    def test_order_independent(self, payload):
        reordered = dict(reversed(list(payload.items())))
        assert payload_checksum(payload) == payload_checksum(reordered)

    def test_sensitive_to_name_shape_and_bytes(self, payload):
        baseline = payload_checksum(payload)
        renamed = {"z": payload["a"], "b": payload["b"]}
        reshaped = {"a": payload["a"].reshape(4, 3), "b": payload["b"]}
        edited = {"a": payload["a"] + 1, "b": payload["b"]}
        for variant in (renamed, reshaped, edited):
            assert payload_checksum(variant) != baseline


class TestRoundTrip:
    def test_savez_load_round_trip(self, tmp_path, payload):
        path = tmp_path / "artifact.npz"
        atomic_savez(path, payload, kind=KIND)
        loaded = verified_load_npz(path, kind=KIND)
        assert set(loaded) == {"a", "b"}
        for name in payload:
            assert np.array_equal(loaded[name], payload[name])

    def test_appends_npz_extension(self, tmp_path, payload):
        atomic_savez(tmp_path / "artifact", payload, kind=KIND)
        assert (tmp_path / "artifact.npz").exists()

    def test_missing_file_keeps_filenotfound(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            verified_load_npz(tmp_path / "nope.npz", kind=KIND)

    def test_legacy_archive_loads_unverified(self, tmp_path, payload):
        path = tmp_path / "legacy.npz"
        np.savez_compressed(path, **payload)
        loaded = verified_load_npz(path, kind=KIND)
        assert np.array_equal(loaded["a"], payload["a"])


class TestCorruptLoads:
    def test_truncated_archive(self, tmp_path, payload):
        path = tmp_path / "artifact.npz"
        atomic_savez(path, payload, kind=KIND)
        data = path.read_bytes()
        path.write_bytes(data[: len(data) // 2])
        with pytest.raises(CorruptArtifact, match="unreadable archive"):
            verified_load_npz(path, kind=KIND)

    def test_garbage_bytes(self, tmp_path):
        path = tmp_path / "junk.npz"
        path.write_bytes(b"PK\x03\x04 nonsense")
        with pytest.raises(CorruptArtifact):
            verified_load_npz(path, kind=KIND)

    def test_checksum_mismatch(self, tmp_path, payload):
        path = tmp_path / "artifact.npz"
        np.savez_compressed(
            path,
            **payload,
            __repro_version__=np.asarray(1, dtype=np.int64),
            __repro_kind__=np.frombuffer(KIND.encode(), dtype=np.uint8),
            __repro_crc32__=np.asarray(
                payload_checksum(payload) ^ 1, dtype=np.int64
            ),
        )
        registry = MetricsRegistry()
        with use_registry(registry):
            with pytest.raises(CorruptArtifact, match="checksum mismatch"):
                verified_load_npz(path, kind=KIND)
        assert (
            registry.counter("resilience.artifacts.corrupt").snapshot() == 1
        )

    def test_kind_mismatch(self, tmp_path, payload):
        path = tmp_path / "artifact.npz"
        atomic_savez(path, payload, kind="ossm")
        with pytest.raises(IntegrityError, match="expected"):
            verified_load_npz(path, kind="transactions")

    def test_newer_version_refused(self, tmp_path, payload):
        path = tmp_path / "artifact.npz"
        np.savez_compressed(
            path,
            **payload,
            __repro_version__=np.asarray(99, dtype=np.int64),
        )
        with pytest.raises(IntegrityError, match="version 99"):
            verified_load_npz(path, kind=KIND)


class TestInjectedDamage:
    """The seeded injector damages the temp file; loaders must notice."""

    def test_injected_truncation_is_caught(self, tmp_path, payload):
        path = tmp_path / "artifact.npz"
        plan = FaultPlan.from_spec("io.test.truncate:times=1", seed=1)
        with use_faults(plan):
            atomic_savez(path, payload, kind=KIND, fault_base="io.test")
        with pytest.raises(CorruptArtifact):
            verified_load_npz(path, kind=KIND)

    def test_injected_bitflip_is_caught(self, tmp_path, payload):
        # Seed chosen so the flip lands in verified bytes; some seeds
        # hit don't-care zip padding, which loads are free to tolerate.
        path = tmp_path / "artifact.npz"
        plan = FaultPlan.from_spec("io.test.bitflip:times=1", seed=4)
        with use_faults(plan):
            atomic_savez(path, payload, kind=KIND, fault_base="io.test")
        with pytest.raises((CorruptArtifact, IntegrityError)):
            verified_load_npz(path, kind=KIND)


class TestAtomicity:
    def test_crash_before_rename_leaves_no_partial(self, tmp_path, payload):
        path = tmp_path / "artifact.npz"
        plan = FaultPlan.from_spec("io.test.crash:times=1", seed=0)
        with use_faults(plan):
            with pytest.raises(InjectedFault):
                atomic_savez(path, payload, kind=KIND, fault_base="io.test")
            assert not path.exists()
            assert _no_temp_files(tmp_path)
            # The rule is exhausted: the retry publishes normally.
            atomic_savez(path, payload, kind=KIND, fault_base="io.test")
        loaded = verified_load_npz(path, kind=KIND)
        assert np.array_equal(loaded["a"], payload["a"])

    def test_crash_preserves_previous_artifact(self, tmp_path, payload):
        path = tmp_path / "artifact.npz"
        atomic_savez(path, payload, kind=KIND)
        before = path.read_bytes()
        newer = {"a": payload["a"] * 2, "b": payload["b"]}
        plan = FaultPlan.from_spec("io.test.crash:times=1", seed=0)
        with use_faults(plan):
            with pytest.raises(InjectedFault):
                atomic_savez(path, newer, kind=KIND, fault_base="io.test")
        assert path.read_bytes() == before, (
            "a failed publish must leave the previous artifact intact"
        )
        assert _no_temp_files(tmp_path)


class TestProductionArtifacts:
    """The OSSM and database writers ride on the same primitives."""

    def test_ossm_corrupt_artifact(self, tmp_path, example1_matrix):
        path = tmp_path / "map.npz"
        OSSM(example1_matrix).save(path)
        data = path.read_bytes()
        path.write_bytes(data[: len(data) - 20])
        with pytest.raises(CorruptArtifact):
            OSSM.load(path)

    def test_database_corrupt_artifact(self, tmp_path):
        db = TransactionDatabase([(0, 1), (1, 2)], n_items=3)
        path = tmp_path / "db.npz"
        save_binary(db, path)
        data = path.read_bytes()
        path.write_bytes(data[: len(data) // 3])
        with pytest.raises(CorruptArtifact):
            load_binary(path)

    def test_database_wrong_kind(self, tmp_path, example1_matrix):
        path = tmp_path / "map.npz"
        OSSM(example1_matrix).save(path)
        with pytest.raises(IntegrityError, match="'ossm'"):
            load_binary(path)
