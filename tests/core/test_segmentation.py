"""Unit tests for the shared segmentation machinery (MergeState etc.)."""

import numpy as np
import pytest

from repro.core import MergeState, RandomSegmenter, merge_loss
from repro.core.segmentation import as_page_matrix
from repro.data import PagedDatabase, TransactionDatabase


@pytest.fixture
def matrix():
    rng = np.random.default_rng(0)
    return rng.integers(0, 10, (6, 5)).astype(np.int64)


class TestAsPageMatrix:
    def test_accepts_paged_database(self, tiny_db):
        paged = PagedDatabase(tiny_db, page_size=3)
        matrix, sizes = as_page_matrix(paged)
        assert matrix.shape == (3, 4)
        assert sizes.tolist() == [3, 3, 2]

    def test_accepts_raw_matrix(self, matrix):
        out, sizes = as_page_matrix(matrix)
        assert (out == matrix).all()
        assert sizes is None

    def test_rejects_vector(self):
        with pytest.raises(ValueError, match="2-D"):
            as_page_matrix(np.zeros(4))


class TestMergeState:
    def test_initial_state(self, matrix):
        state = MergeState(matrix)
        assert state.n_segments == 6
        assert state.segment_ids() == list(range(6))
        assert state.final_groups() == [[i] for i in range(6)]

    def test_loss_matches_module_function(self, matrix):
        state = MergeState(matrix)
        assert state.loss(0, 1) == merge_loss(matrix[0], matrix[1])

    def test_loss_counts_evaluations(self, matrix):
        state = MergeState(matrix)
        state.loss(0, 1)
        state.loss(2, 3)
        assert state.loss_evaluations == 2

    def test_merge_sums_rows_and_groups(self, matrix):
        state = MergeState(matrix)
        new = state.merge(1, 4)
        assert (state.rows[new] == matrix[1] + matrix[4]).all()
        assert sorted(state.groups[new]) == [1, 4]
        assert not state.alive(1)
        assert not state.alive(4)
        assert state.n_segments == 5

    def test_merge_self_rejected(self, matrix):
        state = MergeState(matrix)
        with pytest.raises(ValueError):
            state.merge(2, 2)

    def test_fresh_handles_never_reused(self, matrix):
        state = MergeState(matrix)
        first = state.merge(0, 1)
        second = state.merge(first, 2)
        assert first != second
        assert first not in state.rows

    def test_item_restriction_applies_to_loss(self, matrix):
        full = MergeState(matrix)
        restricted = MergeState(matrix, items=[0, 1])
        assert restricted.loss(0, 1) == merge_loss(
            matrix[0], matrix[1], items=[0, 1]
        )
        # Restriction can only remove pairs from the summation.
        assert restricted.loss(2, 3) <= full.loss(2, 3)

    def test_final_matrix_orders_by_handle(self, matrix):
        state = MergeState(matrix)
        state.merge(0, 5)
        final = state.final_matrix()
        assert final.shape == (5, 5)
        assert (final[-1] == matrix[0] + matrix[5]).all()


class TestSegmenterContract:
    """Contract tests through the simplest concrete segmenter."""

    def test_n_user_at_least_pages_is_identity(self, matrix):
        result = RandomSegmenter(seed=0).segment(matrix, 6)
        assert result.n_segments == 6
        assert result.groups == [[i] for i in range(6)]

    def test_n_user_above_pages_is_identity(self, matrix):
        result = RandomSegmenter(seed=0).segment(matrix, 10)
        assert result.n_segments == 6

    def test_invalid_n_user(self, matrix):
        with pytest.raises(ValueError):
            RandomSegmenter().segment(matrix, 0)

    def test_empty_matrix_rejected(self):
        with pytest.raises(ValueError, match="empty"):
            RandomSegmenter().segment(np.zeros((0, 3), dtype=np.int64), 1)

    def test_result_ossm_matches_groups(self, tiny_db):
        paged = PagedDatabase(tiny_db, page_size=2)
        result = RandomSegmenter(seed=1).segment(paged, 2)
        rebuilt = paged.segment_supports(result.groups)
        assert (result.ossm.matrix == rebuilt).all()

    def test_result_sizes_from_paged_source(self, tiny_db):
        paged = PagedDatabase(tiny_db, page_size=3)
        result = RandomSegmenter(seed=1).segment(paged, 2)
        assert sum(result.ossm.segment_sizes) == len(tiny_db)

    def test_groups_partition_pages(self, matrix):
        result = RandomSegmenter(seed=2).segment(matrix, 3)
        seen = sorted(p for g in result.groups for p in g)
        assert seen == list(range(6))

    def test_elapsed_time_recorded(self, matrix):
        result = RandomSegmenter(seed=0).segment(matrix, 2)
        assert result.elapsed_seconds >= 0.0
