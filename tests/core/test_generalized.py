"""Tests for the generalized (footnote-3) OSSM."""

import numpy as np
import pytest

from repro.core import OSSM, GeneralizedOSSM
from repro.data import TransactionDatabase


@pytest.fixture
def segments(tiny_db):
    return [tiny_db[:4], tiny_db[4:]]


class TestConstruction:
    def test_counts_per_segment(self, segments, tiny_db):
        gossm = GeneralizedOSSM.from_segments(segments, max_cardinality=2)
        vec = gossm.segment_supports([0, 1])
        assert vec.tolist() == [
            segments[0].support([0, 1]),
            segments[1].support([0, 1]),
        ]

    def test_unseen_itemsets_are_zero(self, segments):
        gossm = GeneralizedOSSM.from_segments(segments, max_cardinality=2)
        # items 3 appears, but pair (0, 0) is not a thing; use a pair
        # that never co-occurs in the data.
        db = segments[0].concatenated(segments[1])
        never = None
        from itertools import combinations

        for pair in combinations(range(db.n_items), 2):
            if db.support(pair) == 0:
                never = pair
                break
        if never is not None:
            assert gossm.segment_supports(never).tolist() == [0, 0]

    def test_invalid_cardinality(self):
        with pytest.raises(ValueError):
            GeneralizedOSSM({}, n_segments=1, n_items=2, max_cardinality=0)

    def test_oversized_stored_itemset_rejected(self):
        with pytest.raises(ValueError, match="max_cardinality"):
            GeneralizedOSSM(
                {(0, 1): np.array([1])},
                n_segments=1,
                n_items=2,
                max_cardinality=1,
            )

    def test_vector_length_checked(self):
        with pytest.raises(ValueError, match="n_segments"):
            GeneralizedOSSM(
                {(0,): np.array([1, 2])},
                n_segments=1,
                n_items=1,
                max_cardinality=1,
            )

    def test_empty_segments_rejected(self):
        with pytest.raises(ValueError):
            GeneralizedOSSM.from_segments([])


class TestBound:
    def test_cardinality_1_equals_classic_ossm(self, segments, tiny_db):
        gossm = GeneralizedOSSM.from_segments(segments, max_cardinality=1)
        classic = OSSM.from_segments(segments)
        from itertools import combinations

        for size in (1, 2, 3):
            for itemset in combinations(range(tiny_db.n_items), size):
                assert gossm.upper_bound(itemset) == classic.upper_bound(
                    itemset
                )

    def test_exact_up_to_stored_cardinality(self, segments, tiny_db):
        gossm = GeneralizedOSSM.from_segments(segments, max_cardinality=2)
        from itertools import combinations

        for itemset in combinations(range(tiny_db.n_items), 2):
            assert gossm.upper_bound(itemset) == tiny_db.support(itemset)

    def test_sound_above_stored_cardinality(self, segments, tiny_db):
        gossm = GeneralizedOSSM.from_segments(segments, max_cardinality=2)
        from itertools import combinations

        for itemset in combinations(range(tiny_db.n_items), 3):
            assert gossm.upper_bound(itemset) >= tiny_db.support(itemset)

    def test_higher_cardinality_tightens(self, segments, tiny_db):
        g1 = GeneralizedOSSM.from_segments(segments, max_cardinality=1)
        g2 = GeneralizedOSSM.from_segments(segments, max_cardinality=2)
        from itertools import combinations

        for size in (2, 3, 4):
            for itemset in combinations(range(tiny_db.n_items), size):
                assert g2.upper_bound(itemset) <= g1.upper_bound(itemset)

    def test_empty_itemset(self, segments, tiny_db):
        gossm = GeneralizedOSSM.from_segments(segments)
        assert gossm.upper_bound([]) == len(tiny_db)

    def test_batch(self, segments):
        gossm = GeneralizedOSSM.from_segments(segments)
        itemsets = [(0,), (0, 1), (0, 1, 2)]
        assert gossm.upper_bounds(itemsets).tolist() == [
            gossm.upper_bound(i) for i in itemsets
        ]


class TestAccounting:
    def test_stored_itemsets_grow_with_cardinality(self, segments):
        g1 = GeneralizedOSSM.from_segments(segments, max_cardinality=1)
        g2 = GeneralizedOSSM.from_segments(segments, max_cardinality=2)
        assert g2.n_stored_itemsets() > g1.n_stored_itemsets()

    def test_nominal_size(self, segments):
        gossm = GeneralizedOSSM.from_segments(segments, max_cardinality=1)
        assert (
            gossm.nominal_size_bytes()
            == gossm.n_stored_itemsets() * gossm.n_segments * 2
        )

    def test_repr(self, segments):
        gossm = GeneralizedOSSM.from_segments(segments, max_cardinality=2)
        assert "k<=2" in repr(gossm)
