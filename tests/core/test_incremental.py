"""Tests for online/incremental OSSM maintenance."""

from itertools import combinations

import numpy as np
import pytest

from repro.core import OSSM
from repro.core.incremental import StreamingOSSMBuilder, extend_ossm
from repro.data import PagedDatabase, TransactionDatabase, generate_quest


class TestStreamingBuilder:
    def test_validation(self):
        with pytest.raises(ValueError):
            StreamingOSSMBuilder(0, 4)
        with pytest.raises(ValueError):
            StreamingOSSMBuilder(4, 0)
        builder = StreamingOSSMBuilder(3, 2)
        with pytest.raises(ValueError, match="shape"):
            builder.add_page_row(np.zeros(5, dtype=np.int64))
        with pytest.raises(ValueError, match="non-negative"):
            builder.add_page_row(np.array([-1, 0, 0]))

    def test_snapshot_requires_data(self):
        with pytest.raises(ValueError, match="no pages"):
            StreamingOSSMBuilder(3, 2).ossm()

    def test_under_budget_pages_become_segments(self):
        builder = StreamingOSSMBuilder(2, 4)
        builder.add_page_row(np.array([1, 0]), size=5)
        builder.add_page_row(np.array([0, 1]), size=5)
        ossm = builder.ossm()
        assert ossm.n_segments == 2
        assert (ossm.matrix == np.array([[1, 0], [0, 1]])).all()
        assert ossm.segment_sizes == (5, 5)
        assert builder.loss_evaluations == 0

    def test_over_budget_merges_closest(self):
        builder = StreamingOSSMBuilder(2, 2)
        builder.add_page_row(np.array([9, 1]))   # config (0,1)
        builder.add_page_row(np.array([1, 9]))   # config (1,0)
        joined = builder.add_page_row(np.array([8, 2]))  # closest to seg 0
        assert joined == 0
        assert (builder.ossm().matrix[0] == np.array([17, 3])).all()

    def test_streaming_bound_is_sound(self, quest_db):
        builder = StreamingOSSMBuilder(quest_db.n_items, 8)
        builder.absorb(quest_db, page_size=25)
        ossm = builder.ossm()
        for itemset in combinations(range(12), 2):
            assert ossm.upper_bound(itemset) >= quest_db.support(itemset)

    def test_streaming_totals_match(self, quest_db):
        builder = StreamingOSSMBuilder(quest_db.n_items, 8)
        builder.absorb(quest_db, page_size=25)
        assert (
            builder.ossm().item_supports() == quest_db.item_supports()
        ).all()
        assert sum(builder.ossm().segment_sizes) == len(quest_db)

    def test_large_budget_matches_batch_paging(self, quest_db):
        builder = StreamingOSSMBuilder(quest_db.n_items, 1000)
        builder.absorb(quest_db, page_size=30)
        paged = PagedDatabase(quest_db, page_size=30)
        assert (
            builder.ossm().matrix == paged.page_supports()
        ).all()

    def test_bubble_restriction_used_in_assignment(self):
        builder = StreamingOSSMBuilder(4, 2, items=[0, 1])
        builder.add_page_row(np.array([9, 1, 0, 0]))
        builder.add_page_row(np.array([1, 9, 0, 0]))
        # Differs wildly in items 2-3, but the bubble only sees 0-1,
        # where it matches segment 0's configuration exactly.
        joined = builder.add_page_row(np.array([90, 10, 99, 99]))
        assert joined == 0

    def test_pages_consumed_counter(self, quest_db):
        builder = StreamingOSSMBuilder(quest_db.n_items, 4)
        builder.absorb(quest_db[:100], page_size=10)
        assert builder.pages_consumed == 10


class TestExtendOssm:
    def test_appends_fresh_segments(self, quest_db):
        old, new = quest_db[:400], quest_db[400:]
        ossm = OSSM.from_segments([old[:200], old[200:]])
        grown = extend_ossm(ossm, new, page_size=50)
        assert grown.n_segments == 2 + (len(new) + 49) // 50
        assert (
            grown.item_supports()
            == old.item_supports() + new.item_supports()
        ).all()

    def test_grown_bound_sound_for_union(self, quest_db):
        old, new = quest_db[:400], quest_db[400:]
        ossm = OSSM.from_segments([old[:200], old[200:]])
        grown = extend_ossm(ossm, new, page_size=50)
        union = old.concatenated(new)
        for itemset in combinations(range(10), 2):
            assert grown.upper_bound(itemset) >= union.support(itemset)

    def test_recoarsen_to_budget(self, quest_db):
        old, new = quest_db[:400], quest_db[400:]
        ossm = OSSM.from_segments([old[:200], old[200:]])
        grown = extend_ossm(ossm, new, page_size=30, recoarsen_to=4)
        assert grown.n_segments == 4
        assert (
            grown.item_supports() == quest_db.item_supports()
        ).all()

    def test_new_items_rejected(self):
        ossm = OSSM(np.array([[1, 2]]))
        wide = TransactionDatabase([(0, 4)], n_items=5)
        with pytest.raises(ValueError, match="beyond"):
            extend_ossm(ossm, wide)
