"""Unit tests for segment configurations (Section 4 / Lemma 1)."""

import numpy as np
import pytest

from repro.core import (
    OSSM,
    configuration,
    configurations,
    distinct_configurations,
    group_by_configuration,
    merge_loss,
    same_configuration,
)


class TestConfiguration:
    def test_orders_by_descending_support(self):
        assert configuration([5, 20, 10]) == (1, 2, 0)

    def test_canonical_tie_break(self):
        """Footnote 4: ties broken by the canonical item enumeration."""
        assert configuration([7, 7, 7]) == (0, 1, 2)
        assert configuration([3, 9, 9]) == (1, 2, 0)

    def test_rejects_matrix_input(self):
        with pytest.raises(ValueError, match="1-D"):
            configuration(np.zeros((2, 2)))

    def test_single_transaction_config_determined_by_itemset(self):
        """At transaction granularity, config == membership pattern."""
        txn_a = np.array([1, 0, 1, 0])  # items {0, 2}
        txn_b = np.array([1, 0, 1, 0])
        txn_c = np.array([1, 1, 0, 0])  # items {0, 1}
        assert configuration(txn_a) == configuration(txn_b) == (0, 2, 1, 3)
        assert configuration(txn_c) == (0, 1, 2, 3)

    def test_prefix_itemsets_share_identity_configuration(self):
        """Theorem 1's counting: {x1}, {x1,x2}, ... collide."""
        identity = tuple(range(4))
        for size in range(1, 5):
            row = np.array([1] * size + [0] * (4 - size))
            assert configuration(row) == identity


class TestMatrixHelpers:
    def test_configurations_per_row(self, example1_matrix):
        configs = configurations(example1_matrix)
        assert configs[0] == (1, 2, 0)  # 20,40,40 -> b,c tie, then a
        assert configs[3] == (0, 2, 1)  # 40,10,20 -> a,c,b

    def test_configurations_requires_matrix(self):
        with pytest.raises(ValueError, match="2-D"):
            configurations(np.zeros(3))

    def test_distinct_configurations(self):
        matrix = np.array([[1, 2], [2, 4], [5, 1]])
        assert distinct_configurations(matrix) == {(1, 0), (0, 1)}

    def test_group_by_configuration_first_seen_order(self):
        matrix = np.array([[1, 2], [5, 1], [2, 4], [9, 0]])
        groups = group_by_configuration(matrix)
        assert groups == [[0, 2], [1, 3]]

    def test_same_configuration(self):
        assert same_configuration([1, 2, 3], [10, 20, 30])
        assert not same_configuration([1, 2], [2, 1])


class TestLemma1:
    """Merging same-configuration segments is loss-free."""

    def test_merge_preserves_configuration(self):
        a = np.array([4, 1, 0])
        b = np.array([8, 3, 1])
        assert same_configuration(a, b)
        assert configuration(a + b) == configuration(a)

    def test_merge_preserves_pair_bound(self):
        """The Example 2 phenomenon, stated for general rows."""
        a = np.array([4, 1])
        b = np.array([2, 0])  # both config (0, 1)
        separated = OSSM(np.vstack([a, b]))
        merged = OSSM((a + b)[np.newaxis, :])
        assert separated.upper_bound([0, 1]) == merged.upper_bound([0, 1])

    def test_merge_loss_zero_iff_same_configuration(self):
        same_a, same_b = np.array([5, 3, 1]), np.array([10, 4, 2])
        diff_a, diff_b = np.array([5, 3, 1]), np.array([1, 3, 5])
        assert merge_loss(same_a, same_b) == 0
        assert merge_loss(diff_a, diff_b) > 0

    def test_example2_wrong_split_loses_accuracy(self, example2_db):
        """Moving t1 from segment A to B makes the bound inexact."""
        good = OSSM.from_segments([example2_db[:4], example2_db[4:]])
        assert good.upper_bound([0, 1]) == example2_db.support([0, 1]) == 1
        # The paper's perturbed split: t1 moved to the second segment.
        txns = list(example2_db)
        bad = OSSM.from_segments(
            [
                type(example2_db)(txns[1:4], n_items=2),
                type(example2_db)([txns[0]] + txns[4:], n_items=2),
            ]
        )
        assert bad.upper_bound([0, 1]) == 2  # the paper's value
