"""Tests for the bubble-list heuristic (Section 5.3)."""

import numpy as np
import pytest

from repro.core import GreedySegmenter, bubble_list, bubble_list_for
from repro.data import PagedDatabase, TransactionDatabase


class TestSelection:
    def test_barely_satisfying_items_first(self):
        supports = np.array([50, 11, 10, 30, 9])
        # threshold 0.10 of 100 -> min count 10; satisfying: 0,1,2,3
        chosen = bubble_list(supports, 100, 0.10, size=2)
        assert chosen.tolist() == [1, 2]  # supports 11 and 10: closest above

    def test_padding_with_closest_below(self):
        supports = np.array([50, 9, 3, 7])
        chosen = bubble_list(supports, 100, 0.10, size=3)
        # Only item 0 satisfies; pad with the closest below (9 then 7).
        assert set(chosen.tolist()) == {0, 1, 3}

    def test_size_clamped_to_domain(self):
        supports = np.array([5, 6])
        assert len(bubble_list(supports, 10, 0.1, size=10)) == 2

    def test_output_sorted(self):
        supports = np.array([10, 90, 11, 12, 80])
        chosen = bubble_list(supports, 100, 0.10, size=4)
        assert chosen.tolist() == sorted(chosen.tolist())

    def test_invalid_threshold(self):
        with pytest.raises(ValueError):
            bubble_list(np.array([1]), 10, 0.0, 1)
        with pytest.raises(ValueError):
            bubble_list(np.array([1]), 10, 1.5, 1)

    def test_invalid_size(self):
        with pytest.raises(ValueError):
            bubble_list(np.array([1]), 10, 0.5, 0)

    def test_ties_break_canonically(self):
        supports = np.array([10, 10, 10])
        chosen = bubble_list(supports, 100, 0.10, size=2)
        assert chosen.tolist() == [0, 1]


class TestConvenienceWrapper:
    def test_from_database(self, tiny_db):
        chosen = bubble_list_for(tiny_db, threshold=0.5, size=2)
        # supports [5,5,5,4] of 8; min count 4: all satisfy; item 3 is
        # the closest above the bubble, then the 5s canonically.
        assert chosen.tolist() == [0, 3]

    def test_from_paged_database(self, tiny_db):
        paged = PagedDatabase(tiny_db, page_size=3)
        direct = bubble_list_for(tiny_db, 0.5, 3)
        via_pages = bubble_list_for(paged, 0.5, 3)
        assert direct.tolist() == via_pages.tolist()


class TestEffectOnSegmentation:
    def test_bubble_reduces_work_not_validity(self, quest_db):
        paged = PagedDatabase(quest_db, page_size=30)
        bubble = bubble_list_for(quest_db, threshold=0.02, size=10)
        full = GreedySegmenter().segment(paged, 5)
        restricted = GreedySegmenter(items=bubble).segment(paged, 5)
        assert restricted.n_segments == 5
        # Same number of evaluations — each is just cheaper — and the
        # result is still a valid partition realizing a sound OSSM.
        assert restricted.loss_evaluations == full.loss_evaluations
        seen = sorted(p for g in restricted.groups for p in g)
        assert seen == list(range(paged.n_pages))

    def test_segmentation_usable_at_other_thresholds(self, quest_db):
        """Built at 0.25%-style threshold, queried at another (Sec 6.3)."""
        from repro.mining import OSSMPruner, apriori

        paged = PagedDatabase(quest_db, page_size=30)
        bubble = bubble_list_for(quest_db, threshold=0.01, size=12)
        ossm = GreedySegmenter(items=bubble).segment(paged, 6).ossm
        for minsup in (0.02, 0.05, 0.1):
            plain = apriori(quest_db, minsup, max_level=2)
            fast = apriori(
                quest_db, minsup, pruner=OSSMPruner(ossm), max_level=2
            )
            assert plain.same_itemsets(fast)
