"""Tests of the OSSM epoch counter (DESIGN.md §10).

The epoch is the serving layer's invalidation signal: it advances
whenever the underlying collection grows, is inherited by reshapes of
the same collection, never participates in equality, and survives
persistence.
"""

import numpy as np
import pytest

from repro.core import OSSM, StreamingOSSMBuilder, extend_ossm
from repro.data import TransactionDatabase

MATRIX = np.array([[3, 1, 0], [2, 2, 1]], dtype=np.int64)


def small_db(seed_rows):
    return TransactionDatabase(seed_rows, n_items=3)


class TestEpochBasics:
    def test_defaults_to_zero(self):
        assert OSSM(MATRIX).epoch == 0

    def test_explicit_epoch(self):
        assert OSSM(MATRIX, epoch=5).epoch == 5

    def test_negative_epoch_rejected(self):
        with pytest.raises(ValueError):
            OSSM(MATRIX, epoch=-1)

    def test_equality_ignores_epoch(self):
        assert OSSM(MATRIX, epoch=0) == OSSM(MATRIX, epoch=7)

    def test_reshapes_inherit_epoch(self):
        ossm = OSSM(MATRIX, segment_sizes=[4, 5], epoch=3)
        assert ossm.merge_segments([[0, 1]]).epoch == 3
        assert ossm.restrict_items([0, 2]).epoch == 3


class TestEpochGrowth:
    def test_extend_ossm_bumps_epoch(self):
        ossm = OSSM(MATRIX, segment_sizes=[4, 5])
        extra = small_db([{0, 1}, {2}])
        grown = extend_ossm(ossm, extra, page_size=2)
        assert grown.epoch == 1
        again = extend_ossm(grown, extra, page_size=2)
        assert again.epoch == 2

    def test_extend_with_recoarsen_keeps_bumped_epoch(self):
        ossm = OSSM(MATRIX, segment_sizes=[4, 5])
        extra = small_db([{0, 1}, {2}, {0}, {1, 2}])
        grown = extend_ossm(ossm, extra, page_size=1, recoarsen_to=2)
        assert grown.n_segments == 2
        assert grown.epoch == 1

    def test_streaming_builder_counts_rows(self):
        builder = StreamingOSSMBuilder(n_items=3, max_segments=2)
        assert builder.epoch == 0
        builder.add_page_row(np.array([1, 0, 1]), size=2)
        builder.add_page_row(np.array([0, 1, 1]), size=2)
        assert builder.epoch == 2
        assert builder.ossm().epoch == 2


class TestEpochPersistence:
    def test_save_load_round_trip(self, tmp_path):
        path = tmp_path / "map.npz"
        OSSM(MATRIX, segment_sizes=[4, 5], epoch=6).save(str(path))
        assert OSSM.load(str(path)).epoch == 6

    def test_zero_epoch_omitted_from_archive(self, tmp_path):
        path = tmp_path / "map.npz"
        OSSM(MATRIX, segment_sizes=[4, 5]).save(str(path))
        with np.load(str(path)) as archive:
            assert "epoch" not in archive
        assert OSSM.load(str(path)).epoch == 0
