"""Tests for the Figure 7 recipe."""

import pytest

from repro.core import (
    GreedySegmenter,
    RandomGreedySegmenter,
    RandomRCSegmenter,
    RandomSegmenter,
    RecipeInputs,
    recommend,
    recommended_segmenter,
)


def inputs(**overrides) -> RecipeInputs:
    base = dict(
        n_user=40,
        n_pages=500,
        data_is_skewed=False,
        segmentation_cost_matters=True,
    )
    base.update(overrides)
    return RecipeInputs(**base)


class TestDecisionTree:
    def test_large_budget_and_skewed_gives_random(self):
        assert recommend(inputs(n_user=150, data_is_skewed=True)) == "random"

    def test_large_budget_alone_is_not_enough(self):
        assert recommend(inputs(n_user=150)) != "random"

    def test_skew_alone_is_not_enough(self):
        assert recommend(inputs(data_is_skewed=True)) != "random"

    def test_cost_no_object_gives_greedy(self):
        assert (
            recommend(inputs(segmentation_cost_matters=False)) == "greedy"
        )

    def test_very_large_p_gives_random_rc(self):
        assert recommend(inputs(n_pages=50_000)) == "random-rc"

    def test_moderate_p_gives_random_greedy(self):
        assert recommend(inputs(n_pages=500)) == "random-greedy"

    def test_custom_boundaries(self):
        assert (
            recommend(inputs(n_pages=500), very_large_p=100) == "random-rc"
        )
        assert (
            recommend(
                inputs(n_user=40, data_is_skewed=True), large_n_user=30
            )
            == "random"
        )

    def test_input_validation(self):
        with pytest.raises(ValueError):
            inputs(n_user=0)
        with pytest.raises(ValueError):
            inputs(n_pages=0)


class TestSegmenterFactory:
    def test_instantiates_each_strategy(self):
        assert isinstance(
            recommended_segmenter(inputs(n_user=150, data_is_skewed=True)),
            RandomSegmenter,
        )
        assert isinstance(
            recommended_segmenter(inputs(segmentation_cost_matters=False)),
            GreedySegmenter,
        )
        assert isinstance(
            recommended_segmenter(inputs(n_pages=50_000)),
            RandomRCSegmenter,
        )
        assert isinstance(
            recommended_segmenter(inputs()), RandomGreedySegmenter
        )

    def test_bubble_list_forwarded(self):
        segmenter = recommended_segmenter(
            inputs(segmentation_cost_matters=False), items=[1, 2, 3]
        )
        assert segmenter.items == [1, 2, 3]

    def test_n_mid_forwarded_to_hybrids(self):
        segmenter = recommended_segmenter(inputs(n_pages=50_000), n_mid=333)
        assert segmenter.n_mid == 333
