"""Unit tests for the OSSM structure and the Equation (1) bound."""

import numpy as np
import pytest

from repro.core import OSSM, build_from_database, build_from_pages
from repro.data import PagedDatabase, TransactionDatabase


class TestConstruction:
    def test_requires_2d_matrix(self):
        with pytest.raises(ValueError, match="2-D"):
            OSSM(np.zeros(3))

    def test_rejects_negative_supports(self):
        with pytest.raises(ValueError, match="non-negative"):
            OSSM(np.array([[1, -1]]))

    def test_rejects_fractional_supports(self):
        with pytest.raises(ValueError, match="integral"):
            OSSM(np.array([[1.5, 2.0]]))

    def test_accepts_integral_floats(self):
        ossm = OSSM(np.array([[1.0, 2.0]]))
        assert ossm.matrix.dtype == np.int64

    def test_matrix_is_immutable(self, example1_matrix):
        ossm = OSSM(example1_matrix)
        with pytest.raises(ValueError):
            ossm.matrix[0, 0] = 99

    def test_segment_sizes_length_checked(self, example1_matrix):
        with pytest.raises(ValueError, match="segment_sizes"):
            OSSM(example1_matrix, segment_sizes=[1, 2])

    def test_from_segments(self, tiny_db):
        halves = [tiny_db[:4], tiny_db[4:]]
        ossm = OSSM.from_segments(halves)
        assert ossm.n_segments == 2
        assert (ossm.item_supports() == tiny_db.item_supports()).all()
        assert ossm.segment_sizes == (4, 4)

    def test_from_segments_empty_rejected(self):
        with pytest.raises(ValueError):
            OSSM.from_segments([])

    def test_single_segment(self, tiny_db):
        ossm = OSSM.single_segment(tiny_db)
        assert ossm.n_segments == 1
        assert (ossm.matrix[0] == tiny_db.item_supports()).all()

    def test_equality(self, example1_matrix):
        assert OSSM(example1_matrix) == OSSM(example1_matrix.copy())
        assert OSSM(example1_matrix) != OSSM(example1_matrix + 1)


class TestPaperExample1:
    """Example 1: the OSSM bound vs the global min bound."""

    def test_pair_bound_is_80(self, example1_matrix):
        ossm = OSSM(example1_matrix)
        assert ossm.upper_bound([0, 1]) == 80

    def test_triple_bound_is_60(self, example1_matrix):
        ossm = OSSM(example1_matrix)
        assert ossm.upper_bound([0, 1, 2]) == 60

    def test_without_ossm_bounds_are_110_and_100(self, example1_matrix):
        single = OSSM(example1_matrix.sum(axis=0, keepdims=True))
        assert single.upper_bound([0, 1]) == 110
        assert single.upper_bound([0, 1, 2]) == 100

    def test_column_totals_match_paper(self, example1_matrix):
        ossm = OSSM(example1_matrix)
        assert ossm.item_supports().tolist() == [110, 130, 100]


class TestBound:
    def test_singleton_bound_is_exact(self, example1_matrix):
        ossm = OSSM(example1_matrix)
        for item in range(3):
            assert ossm.upper_bound([item]) == ossm.item_supports()[item]

    def test_empty_itemset_bound_with_sizes(self, tiny_db):
        ossm = OSSM.single_segment(tiny_db)
        assert ossm.upper_bound([]) == len(tiny_db)

    def test_bound_sound_against_true_support(self, tiny_db):
        ossm = OSSM.from_segments([tiny_db[:3], tiny_db[3:6], tiny_db[6:]])
        from itertools import combinations

        for size in (1, 2, 3):
            for itemset in combinations(range(tiny_db.n_items), size):
                assert ossm.upper_bound(itemset) >= tiny_db.support(itemset)

    def test_batch_bounds_match_scalar(self, example1_matrix):
        ossm = OSSM(example1_matrix)
        itemsets = [(0, 1), (0, 2), (1, 2)]
        batch = ossm.upper_bounds(itemsets)
        assert batch.tolist() == [
            ossm.upper_bound(itemset) for itemset in itemsets
        ]

    def test_batch_bounds_empty(self, example1_matrix):
        assert OSSM(example1_matrix).upper_bounds([]).shape == (0,)

    def test_batch_requires_uniform_cardinality(self, example1_matrix):
        with pytest.raises(ValueError):
            OSSM(example1_matrix).upper_bounds([(0,), (0, 1)])

    def test_pair_fast_path_matches_scalar(self):
        """The scipy cityblock fast path must equal the direct min-sum."""
        rng = np.random.default_rng(3)
        matrix = rng.integers(0, 40, (7, 30)).astype(np.int64)
        ossm = OSSM(matrix)
        pairs = [(i, j) for i in range(30) for j in range(i + 1, 30)]
        batch = ossm.upper_bounds(pairs)
        assert batch.tolist() == [ossm.upper_bound(p) for p in pairs]

    def test_pair_wide_domain_fallback(self):
        """Beyond the 4096-unique-item guard, the generic path runs."""
        rng = np.random.default_rng(4)
        matrix = rng.integers(0, 5, (3, 5000)).astype(np.int64)
        ossm = OSSM(matrix)
        pairs = [(i, i + 2500) for i in range(2500)]  # 5000 unique items
        batch = ossm.upper_bounds(pairs)
        sampled = [0, 1234, 2499]
        for index in sampled:
            assert batch[index] == ossm.upper_bound(pairs[index])

    def test_prune_splits_by_threshold(self, example1_matrix):
        ossm = OSSM(example1_matrix)
        candidates = [(0, 1), (0, 2), (1, 2)]
        survivors, mask = ossm.prune(candidates, 70)
        # bounds: ab=80, ac=min-wise..., bc computed directly
        bounds = ossm.upper_bounds(candidates)
        assert mask.tolist() == (bounds >= 70).tolist()
        assert survivors == [
            c for c, keep in zip(candidates, mask) if keep
        ]

    def test_more_segments_never_loosen_bound(self, tiny_db):
        """Refinement monotonicity: splitting a segment tightens."""
        coarse = OSSM.from_segments([tiny_db[:4], tiny_db[4:]])
        fine = OSSM.from_segments(
            [tiny_db[:2], tiny_db[2:4], tiny_db[4:6], tiny_db[6:]]
        )
        from itertools import combinations

        for size in (2, 3):
            for itemset in combinations(range(tiny_db.n_items), size):
                assert fine.upper_bound(itemset) <= coarse.upper_bound(itemset)

    def test_one_transaction_per_segment_is_exact(self, tiny_db):
        ossm = OSSM.from_segments(
            [tiny_db[i:i + 1] for i in range(len(tiny_db))]
        )
        from itertools import combinations

        for size in (1, 2, 3, 4):
            for itemset in combinations(range(tiny_db.n_items), size):
                assert ossm.upper_bound(itemset) == tiny_db.support(itemset)


class TestStorageAccounting:
    def test_paper_sizes(self):
        """Section 6.2: 100 segments x 1000 items ~ 0.2 MB; 150 ~ 0.3 MB."""
        hundred = OSSM(np.zeros((100, 1000), dtype=np.int64))
        one_fifty = OSSM(np.zeros((150, 1000), dtype=np.int64))
        assert hundred.nominal_size_bytes() == 200_000
        assert one_fifty.nominal_size_bytes() == 300_000

    def test_nbytes_reflects_actual_storage(self):
        ossm = OSSM(np.zeros((10, 20), dtype=np.int64))
        assert ossm.nbytes() == 10 * 20 * 8


class TestReshaping:
    def test_merge_segments(self, example1_matrix):
        ossm = OSSM(example1_matrix)
        merged = ossm.merge_segments([[0, 1], [2, 3]])
        assert merged.n_segments == 2
        assert (
            merged.matrix[0] == example1_matrix[0] + example1_matrix[1]
        ).all()

    def test_merge_requires_partition(self, example1_matrix):
        ossm = OSSM(example1_matrix)
        with pytest.raises(ValueError, match="partition"):
            ossm.merge_segments([[0, 1], [1, 2, 3]])

    def test_merge_preserves_sizes(self, tiny_db):
        ossm = OSSM.from_segments([tiny_db[:2], tiny_db[2:5], tiny_db[5:]])
        merged = ossm.merge_segments([[0, 2], [1]])
        assert merged.segment_sizes == (2 + 3, 3)

    def test_restrict_items(self, example1_matrix):
        ossm = OSSM(example1_matrix)
        small = ossm.restrict_items([0, 2])
        assert small.n_items == 2
        assert (small.matrix == example1_matrix[:, [0, 2]]).all()


class TestPersistence:
    def test_roundtrip(self, example1_matrix, tmp_path):
        ossm = OSSM(example1_matrix, segment_sizes=[1, 2, 3, 4])
        path = tmp_path / "map.npz"
        ossm.save(path)
        loaded = OSSM.load(path)
        assert loaded == ossm
        assert loaded.segment_sizes == (1, 2, 3, 4)

    def test_roundtrip_without_sizes(self, example1_matrix, tmp_path):
        ossm = OSSM(example1_matrix)
        path = tmp_path / "map.npz"
        ossm.save(path)
        assert OSSM.load(path).segment_sizes is None


class TestBuilders:
    def test_build_from_pages(self, tiny_db):
        paged = PagedDatabase(tiny_db, page_size=2)
        ossm = build_from_pages(paged, [[0, 1], [2, 3]])
        assert ossm.n_segments == 2
        assert ossm.segment_sizes == (4, 4)
        assert (ossm.item_supports() == tiny_db.item_supports()).all()

    def test_build_from_database_boundaries(self, tiny_db):
        ossm = build_from_database(tiny_db, [0, 3, 8])
        assert ossm.n_segments == 2
        assert ossm.segment_sizes == (3, 5)

    def test_build_from_database_validates_boundaries(self, tiny_db):
        with pytest.raises(ValueError):
            build_from_database(tiny_db, [0, 9])
        with pytest.raises(ValueError):
            build_from_database(tiny_db, [1, 8])
        with pytest.raises(ValueError):
            build_from_database(tiny_db, [0, 5, 3, 8])
