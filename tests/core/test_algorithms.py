"""Tests for the Greedy, RC, Random, and hybrid segmentation algorithms."""

import numpy as np
import pytest

from repro.core import (
    GreedySegmenter,
    HybridSegmenter,
    RandomGreedySegmenter,
    RandomRCSegmenter,
    RandomSegmenter,
    RCSegmenter,
    cumulative_loss,
    merge_loss,
)
from repro.data import PagedDatabase


def segmentation_loss(page_matrix: np.ndarray, groups) -> int:
    """Total Equation (2) loss of a grouping, against the page matrix."""
    return sum(
        cumulative_loss(page_matrix[list(group)])
        for group in groups
        if len(group) > 1
    )


@pytest.fixture
def pages():
    rng = np.random.default_rng(7)
    return rng.integers(0, 12, (12, 6)).astype(np.int64)


class TestGreedy:
    def test_reaches_requested_size(self, pages):
        result = GreedySegmenter().segment(pages, 4)
        assert result.n_segments == 4

    def test_merges_zero_loss_pairs_first(self):
        """Same-configuration pages merge for free before any lossy merge."""
        pages = np.array(
            [
                [4, 2, 1],
                [8, 4, 2],   # same config as page 0
                [1, 2, 4],
                [2, 4, 8],   # same config as page 2
            ]
        )
        result = GreedySegmenter().segment(pages, 2)
        groups = {frozenset(g) for g in result.groups}
        assert groups == {frozenset({0, 1}), frozenset({2, 3})}
        assert segmentation_loss(pages, result.groups) == 0

    def test_deterministic(self, pages):
        a = GreedySegmenter().segment(pages, 3)
        b = GreedySegmenter().segment(pages, 3)
        assert a.groups == b.groups

    def test_loss_evaluations_counted(self, pages):
        result = GreedySegmenter().segment(pages, 11)
        # Single merge: seeding the queue costs C(12,2) evaluations,
        # then the merged segment is scored against the 10 survivors.
        assert result.loss_evaluations == 66 + 10

    def test_finds_optimal_pair_merge(self, pages):
        """One merge: Greedy must pick the global-minimum loss pair."""
        result = GreedySegmenter().segment(pages, 11)
        merged = next(g for g in result.groups if len(g) == 2)
        best = min(
            merge_loss(pages[i], pages[j])
            for i in range(12)
            for j in range(i + 1, 12)
        )
        assert merge_loss(pages[merged[0]], pages[merged[1]]) == best


class TestRC:
    def test_reaches_requested_size(self, pages):
        result = RCSegmenter(seed=0).segment(pages, 5)
        assert result.n_segments == 5

    def test_deterministic_given_seed(self, pages):
        a = RCSegmenter(seed=3).segment(pages, 4)
        b = RCSegmenter(seed=3).segment(pages, 4)
        assert a.groups == b.groups

    def test_seed_changes_outcome(self, pages):
        groupings = {
            tuple(map(tuple, RCSegmenter(seed=s).segment(pages, 4).groups))
            for s in range(10)
        }
        assert len(groupings) > 1  # the random anchor matters

    def test_merges_closest_to_anchor(self):
        """With 3 pages, RC must merge the drawn anchor with its closest."""
        pages = np.array([[9, 1, 0], [8, 2, 0], [0, 5, 9]])
        result = RCSegmenter(seed=0).segment(pages, 2)
        groups = {frozenset(g) for g in result.groups}
        # Replay the algorithm's RNG to learn which anchor it drew.
        anchor = int(np.random.default_rng(0).integers(3))
        closest = min(
            (other for other in range(3) if other != anchor),
            key=lambda other: (merge_loss(pages[anchor], pages[other]), other),
        )
        assert frozenset({anchor, closest}) in groups

    def test_fewer_loss_evaluations_than_greedy(self, pages):
        greedy = GreedySegmenter().segment(pages, 3)
        rc = RCSegmenter(seed=0).segment(pages, 3)
        assert rc.loss_evaluations < greedy.loss_evaluations


class TestRandom:
    def test_reaches_requested_size(self, pages):
        result = RandomSegmenter(seed=0).segment(pages, 5)
        assert result.n_segments == 5

    def test_no_loss_evaluations(self, pages):
        result = RandomSegmenter(seed=0).segment(pages, 3)
        assert result.loss_evaluations == 0

    def test_balanced_buckets(self, pages):
        result = RandomSegmenter(seed=1).segment(pages, 4)
        sizes = sorted(len(g) for g in result.groups)
        assert sizes == [3, 3, 3, 3]

    def test_deterministic_given_seed(self, pages):
        a = RandomSegmenter(seed=5).segment(pages, 4)
        b = RandomSegmenter(seed=5).segment(pages, 4)
        assert a.groups == b.groups


class TestHybrids:
    def test_names(self):
        assert RandomRCSegmenter().name == "random-rc"
        assert RandomGreedySegmenter().name == "random-greedy"

    def test_reaches_requested_size(self, pages):
        result = RandomGreedySegmenter(n_mid=8, seed=0).segment(pages, 3)
        assert result.n_segments == 3

    def test_first_phase_skipped_when_pages_below_n_mid(self, pages):
        # 12 pages < n_mid=50: the Random phase is a no-op and the
        # elaborate phase does all the work, same as pure Greedy.
        hybrid = RandomGreedySegmenter(n_mid=50, seed=0).segment(pages, 4)
        pure = GreedySegmenter().segment(pages, 4)
        assert hybrid.groups == pure.groups

    def test_n_user_above_n_mid_runs_cheap_phase_only(self, pages):
        # Budget exceeds n_mid: Random carries the whole reduction and
        # the elaborate phase never evaluates a loss.
        result = RandomGreedySegmenter(n_mid=4, seed=0).segment(pages, 6)
        assert result.n_segments == 6
        assert result.loss_evaluations == 0

    def test_invalid_n_mid(self):
        with pytest.raises(ValueError):
            RandomRCSegmenter(n_mid=0)

    def test_custom_composition(self, pages):
        hybrid = HybridSegmenter(
            RandomSegmenter(seed=0), RCSegmenter(seed=1), n_mid=6
        )
        assert hybrid.name == "random-rc"
        result = hybrid.segment(pages, 3)
        assert result.n_segments == 3

    def test_item_restriction_propagates_to_phases(self, pages):
        hybrid = HybridSegmenter(
            RandomSegmenter(seed=0),
            GreedySegmenter(),
            n_mid=6,
            items=[0, 1],
        )
        assert hybrid.first.items == [0, 1]
        assert hybrid.second.items == [0, 1]


class TestQualityOrdering:
    """The paper's headline comparison: Greedy <= RC <= Random in loss."""

    def test_loss_ordering_on_structured_pages(self):
        rng = np.random.default_rng(11)
        # Structured pages: two latent "seasons" with noise, so there
        # is real signal for the loss-guided algorithms to find.
        season_a = rng.integers(20, 40, (10, 8))
        season_a[:, 4:] //= 8
        season_b = rng.integers(20, 40, (10, 8))
        season_b[:, :4] //= 8
        pages = np.vstack([season_a, season_b]).astype(np.int64)
        order = rng.permutation(20)
        pages = pages[order]

        greedy = GreedySegmenter().segment(pages, 4)
        rc = RCSegmenter(seed=0).segment(pages, 4)
        random = RandomSegmenter(seed=0).segment(pages, 4)

        loss_greedy = segmentation_loss(pages, greedy.groups)
        loss_rc = segmentation_loss(pages, rc.groups)
        loss_random = segmentation_loss(pages, random.groups)
        assert loss_greedy <= loss_rc <= loss_random

    def test_loss_guided_beats_random_on_seasonal_data(self, quest_db):
        paged = PagedDatabase(quest_db, page_size=20)
        matrix = paged.page_supports()
        greedy = GreedySegmenter().segment(paged, 5)
        random = RandomSegmenter(seed=0).segment(paged, 5)
        assert segmentation_loss(matrix, greedy.groups) <= segmentation_loss(
            matrix, random.groups
        )
