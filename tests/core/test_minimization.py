"""Unit tests for the segment minimization problem (Theorem 1 etc.)."""

import numpy as np
import pytest

from repro.core import (
    count_segmentations,
    is_exact,
    max_bound_error,
    minimize_pages,
    minimize_transactions,
    n_min_bound,
)
from repro.data import PagedDatabase, TransactionDatabase


class TestTheorem1Bound:
    def test_formula(self):
        # 2^m - m for small m
        assert n_min_bound(10**6, 2) == 2
        assert n_min_bound(10**6, 3) == 5
        assert n_min_bound(10**6, 4) == 12
        assert n_min_bound(10**6, 10) == 1014

    def test_capped_by_transactions(self):
        assert n_min_bound(3, 10) == 3

    def test_zero_items(self):
        assert n_min_bound(5, 0) == 1
        assert n_min_bound(0, 0) == 0

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            n_min_bound(-1, 2)


class TestPaperExample2:
    def test_two_segments_suffice(self, example2_db):
        result = minimize_transactions(example2_db)
        assert result.n_min == 2
        assert is_exact(result.ossm, example2_db)

    def test_segment_composition_matches_paper(self, example2_db):
        """Segment 1 = transactions containing a; segment 2 = b-only."""
        result = minimize_transactions(example2_db)
        groups = {frozenset(g) for g in result.groups}
        assert groups == {frozenset({0, 1, 2, 3}), frozenset({4, 5})}

    def test_upper_bound_values(self, example2_db):
        result = minimize_transactions(example2_db)
        assert result.ossm.upper_bound([0, 1]) == 1  # min(4,1)+min(0,2)


class TestMinimizeTransactions:
    def test_exactness_on_random_database(self):
        rng = np.random.default_rng(0)
        txns = [
            tuple(np.flatnonzero(rng.random(5) < 0.4)) for _ in range(40)
        ]
        db = TransactionDatabase([t for t in txns if t], n_items=5)
        result = minimize_transactions(db)
        assert is_exact(result.ossm, db)

    def test_n_min_respects_theorem_bound(self):
        rng = np.random.default_rng(1)
        txns = [
            tuple(np.flatnonzero(rng.random(4) < 0.5)) for _ in range(60)
        ]
        db = TransactionDatabase([t for t in txns if t], n_items=4)
        result = minimize_transactions(db)
        assert result.n_min <= n_min_bound(len(db), db.n_items)

    def test_duplicates_collapse_to_one_segment(self):
        db = TransactionDatabase([(0, 1)] * 5, n_items=2)
        result = minimize_transactions(db)
        assert result.n_min == 1
        assert result.ossm.segment_sizes == (5,)

    def test_groups_partition_transactions(self, tiny_db):
        result = minimize_transactions(tiny_db)
        seen = sorted(t for g in result.groups for t in g)
        assert seen == list(range(len(tiny_db)))

    def test_empty_database(self):
        db = TransactionDatabase([], n_items=3)
        result = minimize_transactions(db)
        assert result.n_min == 0

    def test_all_distinct_configurations_need_all_segments(self):
        """2 items: {a}, {b}, {a,b} -> 2^2-2 = 2 distinct configs."""
        db = TransactionDatabase([(0,), (1,), (0, 1)], n_items=2)
        result = minimize_transactions(db)
        # {a} and {a,b} share the identity configuration (the paper's
        # prefix collision); {b} differs.
        assert result.n_min == 2 == n_min_bound(3, 2)


class TestMinimizePages:
    def test_exact_relative_to_page_map(self, tiny_db):
        paged = PagedDatabase(tiny_db, page_size=2)
        result = minimize_pages(paged)
        # Corollary 1: the minimized map matches the page-level map's
        # bound (not necessarily the true support).
        from repro.core import OSSM

        page_map = OSSM(paged.page_supports())
        from itertools import combinations

        for size in (1, 2, 3):
            for itemset in combinations(range(tiny_db.n_items), size):
                assert result.ossm.upper_bound(itemset) == page_map.upper_bound(
                    itemset
                )

    def test_identical_pages_merge(self):
        db = TransactionDatabase([(0, 1), (2,)] * 6, n_items=3)
        paged = PagedDatabase(db, page_size=2)
        result = minimize_pages(paged)
        assert result.n_min == 1

    def test_respects_corollary_bound(self, quest_db):
        paged = PagedDatabase(quest_db, page_size=50)
        result = minimize_pages(paged)
        assert result.n_min <= paged.n_pages


class TestExactnessVerifier:
    def test_max_bound_error_zero_when_exact(self, example2_db):
        result = minimize_transactions(example2_db)
        assert max_bound_error(result.ossm, example2_db) == 0

    def test_max_bound_error_positive_when_lossy(self, example2_db):
        from repro.core import OSSM

        single = OSSM.single_segment(example2_db)
        assert max_bound_error(single, example2_db) > 0

    def test_wrong_ossm_raises(self, example2_db, tiny_db):
        from repro.core import OSSM

        foreign = OSSM(np.zeros((1, 2), dtype=np.int64))
        with pytest.raises(AssertionError, match="does not describe"):
            max_bound_error(foreign, example2_db)

    def test_explicit_itemsets_only(self, example2_db):
        from repro.core import OSSM

        single = OSSM.single_segment(example2_db)
        assert max_bound_error(single, example2_db, itemsets=[(0,)]) == 0

    def test_max_size_restriction(self, tiny_db):
        result = minimize_transactions(tiny_db)
        assert is_exact(result.ossm, tiny_db, max_size=2)


class TestExample4Counting:
    def test_paper_values(self):
        assert count_segmentations(5, 3) == 25
        assert count_segmentations(6, 3) == 90
        assert count_segmentations(7, 3) == 301

    def test_degenerate_cases(self):
        assert count_segmentations(4, 4) == 1
        assert count_segmentations(4, 1) == 1
        assert count_segmentations(3, 5) == 0
        assert count_segmentations(0, 0) == 1

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            count_segmentations(-1, 2)
