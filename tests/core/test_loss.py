"""Unit tests for Equation (2) and its two evaluators."""

import numpy as np
import pytest

from repro.core import (
    cumulative_loss,
    cumulative_loss_naive,
    merge_loss,
    merge_loss_naive,
    pair_bound_sum,
    pair_bound_sum_naive,
    pairwise_merge_losses,
)


class TestPairBoundSum:
    def test_hand_computed(self):
        # pairs of (3,1,2): min(3,1)+min(3,2)+min(1,2) = 1+2+1 = 4
        assert pair_bound_sum(np.array([3, 1, 2])) == 4
        assert pair_bound_sum_naive(np.array([3, 1, 2])) == 4

    def test_short_vectors(self):
        assert pair_bound_sum(np.array([], dtype=np.int64)) == 0
        assert pair_bound_sum(np.array([7])) == 0

    def test_fast_equals_naive(self):
        rng = np.random.default_rng(0)
        for _ in range(25):
            u = rng.integers(0, 100, size=rng.integers(2, 30))
            assert pair_bound_sum(u) == pair_bound_sum_naive(u)

    def test_item_restriction(self):
        u = np.array([5, 100, 3, 100])
        assert pair_bound_sum(u, items=[0, 2]) == 3
        assert pair_bound_sum_naive(u, items=[0, 2]) == 3

    def test_rejects_matrix(self):
        with pytest.raises(ValueError, match="1-D"):
            pair_bound_sum(np.zeros((2, 2)))


class TestMergeLoss:
    def test_equation_2_hand_example(self):
        """The Section 4.2 swap argument: adjacent ranks swapped."""
        a = np.array([3, 1])  # config (0, 1)
        b = np.array([1, 3])  # config (1, 0)
        # merged bound min(4,4)=4; separated min(3,1)+min(1,3)=2
        assert merge_loss(a, b) == 2
        assert merge_loss_naive(a, b) == 2

    def test_zero_for_same_configuration(self):
        a = np.array([9, 4, 2])
        b = np.array([5, 3, 0])
        assert merge_loss(a, b) == 0

    def test_non_negative(self):
        rng = np.random.default_rng(1)
        for _ in range(30):
            m = int(rng.integers(2, 15))
            a = rng.integers(0, 50, m)
            b = rng.integers(0, 50, m)
            assert merge_loss(a, b) >= 0

    def test_fast_equals_naive(self):
        rng = np.random.default_rng(2)
        for _ in range(25):
            m = int(rng.integers(2, 20))
            a = rng.integers(0, 50, m)
            b = rng.integers(0, 50, m)
            assert merge_loss(a, b) == merge_loss_naive(a, b)

    def test_symmetry(self):
        a = np.array([4, 0, 7])
        b = np.array([2, 5, 1])
        assert merge_loss(a, b) == merge_loss(b, a)

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError, match="equal length"):
            merge_loss(np.array([1, 2]), np.array([1, 2, 3]))
        with pytest.raises(ValueError, match="equal length"):
            merge_loss_naive(np.array([1, 2]), np.array([1, 2, 3]))

    def test_bubble_restriction_can_hide_loss(self):
        """Loss outside the bubble list is invisible by design."""
        a = np.array([3, 1, 0, 0])
        b = np.array([1, 3, 0, 0])
        assert merge_loss(a, b) > 0
        assert merge_loss(a, b, items=[2, 3]) == 0


class TestCumulativeLoss:
    def test_factorization_matches_literal_equation(self):
        rng = np.random.default_rng(3)
        for _ in range(15):
            k = int(rng.integers(2, 6))
            m = int(rng.integers(2, 10))
            rows = rng.integers(0, 30, (k, m))
            assert cumulative_loss(rows) == cumulative_loss_naive(rows)

    def test_lemma2a_zero_for_uniform_configs(self):
        rows = np.array([[6, 4, 2], [3, 2, 1], [12, 8, 4]])
        assert cumulative_loss(rows) == 0

    def test_lemma2b_positive_with_differing_configs(self):
        rows = np.array([[6, 4, 2], [2, 4, 6]])
        assert cumulative_loss(rows) > 0

    def test_lemma2c_monotone_under_superset(self):
        rng = np.random.default_rng(4)
        rows = rng.integers(0, 30, (5, 8))
        for k in range(2, 5):
            assert cumulative_loss(rows[:k]) <= cumulative_loss(rows[: k + 1])

    def test_two_segment_case_equals_merge_loss(self):
        a = np.array([5, 1, 3])
        b = np.array([2, 6, 0])
        assert cumulative_loss(np.vstack([a, b])) == merge_loss(a, b)

    def test_rejects_vector(self):
        with pytest.raises(ValueError, match="2-D"):
            cumulative_loss(np.array([1, 2, 3]))
        with pytest.raises(ValueError, match="2-D"):
            cumulative_loss_naive(np.array([1, 2, 3]))

    def test_item_restriction(self):
        rows = np.array([[3, 1, 9], [1, 3, 9]])
        assert cumulative_loss(rows, items=[0, 1]) == merge_loss(
            rows[0, :2], rows[1, :2]
        )


class TestPairwiseMatrix:
    def test_matches_individual_losses(self):
        rng = np.random.default_rng(5)
        rows = rng.integers(0, 20, (4, 6))
        losses = pairwise_merge_losses(rows)
        for i in range(4):
            assert losses[i, i] == 0
            for j in range(i + 1, 4):
                assert losses[i, j] == merge_loss(rows[i], rows[j])
                assert losses[i, j] == losses[j, i]

    def test_item_restriction(self):
        rows = np.array([[3, 1, 5], [1, 3, 5]])
        restricted = pairwise_merge_losses(rows, items=[2])
        assert restricted[0, 1] == 0
