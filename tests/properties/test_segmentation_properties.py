"""Property-based tests for the segmentation algorithms (hypothesis)."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.core import (
    GreedySegmenter,
    RandomGreedySegmenter,
    RandomRCSegmenter,
    RandomSegmenter,
    RCSegmenter,
    cumulative_loss,
)

page_matrices = arrays(
    dtype=np.int64,
    shape=st.tuples(
        st.integers(min_value=2, max_value=10),
        st.integers(min_value=1, max_value=6),
    ),
    elements=st.integers(min_value=0, max_value=30),
)

ALL_SEGMENTERS = [
    lambda: GreedySegmenter(),
    lambda: RCSegmenter(seed=0),
    lambda: RandomSegmenter(seed=0),
    lambda: RandomRCSegmenter(n_mid=4, seed=0),
    lambda: RandomGreedySegmenter(n_mid=4, seed=0),
]


@settings(max_examples=40, deadline=None)
@given(page_matrices, st.integers(min_value=1, max_value=10))
def test_every_segmenter_returns_valid_partition(pages, n_user):
    n_user = min(n_user, pages.shape[0])
    for factory in ALL_SEGMENTERS:
        result = factory().segment(pages, n_user)
        assert result.n_segments == n_user
        seen = sorted(p for g in result.groups for p in g)
        assert seen == list(range(pages.shape[0]))
        # OSSM rows are the page-row sums of the groups.
        for row, group in zip(result.ossm.matrix, result.groups):
            assert (row == pages[list(group)].sum(axis=0)).all()


@settings(max_examples=40, deadline=None)
@given(page_matrices)
def test_segment_column_sums_invariant(pages):
    """Total item supports survive any segmentation."""
    for factory in ALL_SEGMENTERS:
        result = factory().segment(pages, max(1, pages.shape[0] // 2))
        assert (
            result.ossm.item_supports() == pages.sum(axis=0)
        ).all()


@settings(max_examples=30, deadline=None)
@given(page_matrices)
def test_greedy_single_merge_is_optimal(pages):
    """Greedy's first merge must realize the minimum pairwise loss."""
    n = pages.shape[0]
    if n < 2:
        return
    result = GreedySegmenter().segment(pages, n - 1)
    merged = next(g for g in result.groups if len(g) == 2)
    achieved = cumulative_loss(pages[list(merged)])
    best = min(
        cumulative_loss(pages[[i, j]])
        for i in range(n)
        for j in range(i + 1, n)
    )
    assert achieved == best


@settings(max_examples=30, deadline=None)
@given(page_matrices, st.integers(min_value=1, max_value=5))
def test_zero_loss_inputs_stay_zero_loss(pages, n_user):
    """If all pages share one configuration, any grouping is loss-free
    and Greedy must find a zero-loss segmentation."""
    uniform = np.vstack([pages[0] * (i + 1) for i in range(pages.shape[0])])
    n_user = min(n_user, uniform.shape[0])
    result = GreedySegmenter().segment(uniform, n_user)
    total = sum(
        cumulative_loss(uniform[list(g)])
        for g in result.groups
        if len(g) > 1
    )
    assert total == 0
