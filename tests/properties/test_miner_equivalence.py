"""Property: every miner finds exactly the same frequent itemsets.

The strongest integration invariant available — seven independently
implemented algorithms (plus the brute-force oracle) must agree on
arbitrary databases at arbitrary thresholds.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import OSSM
from repro.data import TransactionDatabase, generate_quest
from repro.mining import (
    DHP,
    Apriori,
    OSSMPruner,
    Partition,
    apriori,
    depth_project,
    dhp,
    eclat,
    fpgrowth,
    partition_mine,
)
from tests.conftest import brute_force_frequent

transactions = st.lists(
    st.sets(st.integers(min_value=0, max_value=6), min_size=1, max_size=7),
    min_size=1,
    max_size=25,
)
thresholds = st.integers(min_value=1, max_value=6)


def make_db(txns) -> TransactionDatabase:
    return TransactionDatabase([tuple(t) for t in txns], n_items=7)


@settings(max_examples=40, deadline=None)
@given(transactions, thresholds)
def test_all_miners_agree_with_brute_force(txns, threshold):
    db = make_db(txns)
    expected = brute_force_frequent(db, threshold)
    assert apriori(db, threshold).frequent == expected
    assert dhp(db, threshold, n_buckets=32).frequent == expected
    assert fpgrowth(db, threshold).frequent == expected
    assert eclat(db, threshold).frequent == expected
    assert depth_project(db, threshold).frequent == expected
    assert partition_mine(db, threshold, n_partitions=3).frequent == expected


@settings(max_examples=30, deadline=None)
@given(transactions, thresholds, st.integers(min_value=1, max_value=5))
def test_ossm_pruning_never_changes_output(txns, threshold, n_segments):
    db = make_db(txns)
    n = min(n_segments, len(db))
    bounds = np.linspace(0, len(db), n + 1).astype(int)
    ossm = OSSM.from_segments(
        [db[int(lo):int(hi)] for lo, hi in zip(bounds, bounds[1:])]
    )
    pruner = OSSMPruner(ossm)
    expected = brute_force_frequent(db, threshold)
    assert apriori(db, threshold, pruner=pruner).frequent == expected
    assert (
        dhp(db, threshold, n_buckets=32, pruner=pruner).frequent == expected
    )
    assert depth_project(db, threshold, pruner=pruner).frequent == expected


@settings(max_examples=25, deadline=None)
@given(transactions, thresholds)
def test_dhp_options_never_change_output(txns, threshold):
    db = make_db(txns)
    expected = brute_force_frequent(db, threshold)
    for n_buckets in (1, 7, 64):
        for trim in (False, True):
            miner = DHP(n_buckets=n_buckets, trim=trim)
            assert miner.mine(db, threshold).frequent == expected


# -- engine axis: serial vs bitmap, per level ----------------------------


@pytest.fixture(scope="module")
def engine_workload():
    return generate_quest(
        n_transactions=250,
        n_items=12,
        avg_transaction_len=5,
        n_patterns=30,
        seed=13,
    )


@pytest.fixture(scope="module")
def engine_serial_results(engine_workload):
    return {
        "apriori": Apriori(max_level=4).mine(engine_workload, 5),
        "partition": Partition(n_partitions=3, max_level=4).mine(
            engine_workload, 5
        ),
    }


@pytest.mark.parametrize("workers", (None, 1, 2, 4))
@pytest.mark.parametrize("engine", ("subset", "bitmap"))
@pytest.mark.parametrize("kind", ("apriori", "partition"))
def test_miners_identical_across_engines_and_workers(
    kind, engine, workers, engine_workload, engine_serial_results
):
    """Per-level MiningResult identity: miner × engine × workers.

    ``MiningResult`` equality covers the frequent sets with supports;
    ``levels`` pins the per-level candidate accounting too, so an
    engine that merely reached the same fixpoint differently would
    still fail.
    """
    if kind == "apriori":
        miner = Apriori(max_level=4, engine=engine, workers=workers)
    else:
        miner = Partition(
            n_partitions=3, max_level=4, engine=engine, workers=workers
        )
    serial = engine_serial_results[kind]
    result = miner.mine(engine_workload, 5)
    assert result.frequent == serial.frequent
    assert result.levels == serial.levels
