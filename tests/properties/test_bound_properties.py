"""Property-based tests for the Equation (1) bound (hypothesis)."""

from itertools import combinations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import OSSM, minimize_transactions
from repro.data import TransactionDatabase

# A small random database: list of transactions over up to 6 items.
transactions = st.lists(
    st.sets(st.integers(min_value=0, max_value=5), min_size=0, max_size=6),
    min_size=1,
    max_size=30,
)

cut_counts = st.integers(min_value=1, max_value=6)


def make_db(txns) -> TransactionDatabase:
    return TransactionDatabase([tuple(t) for t in txns], n_items=6)


def make_segments(db: TransactionDatabase, n: int) -> OSSM:
    n = min(n, max(len(db), 1))
    bounds = np.linspace(0, len(db), n + 1).astype(int)
    return OSSM.from_segments(
        [db[int(lo):int(hi)] for lo, hi in zip(bounds, bounds[1:])]
    )


@settings(max_examples=60, deadline=None)
@given(transactions, cut_counts)
def test_bound_is_sound(txns, n_segments):
    """bound(X) >= support(X) for every itemset X."""
    db = make_db(txns)
    ossm = make_segments(db, n_segments)
    for size in (1, 2, 3):
        for itemset in combinations(range(6), size):
            assert ossm.upper_bound(itemset) >= db.support(itemset)


@settings(max_examples=60, deadline=None)
@given(transactions, cut_counts)
def test_bound_never_exceeds_global_min(txns, n_segments):
    """The OSSM bound dominates the classic min-of-supports bound."""
    db = make_db(txns)
    ossm = make_segments(db, n_segments)
    supports = db.item_supports()
    for itemset in combinations(range(6), 2):
        global_min = min(int(supports[i]) for i in itemset)
        assert ossm.upper_bound(itemset) <= global_min


@settings(max_examples=40, deadline=None)
@given(transactions, cut_counts)
def test_refinement_tightens(txns, n_segments):
    """Splitting segments (2n vs n cuts) never loosens the bound."""
    db = make_db(txns)
    coarse = make_segments(db, n_segments)
    fine = make_segments(db, 2 * n_segments)
    for itemset in combinations(range(6), 2):
        assert fine.upper_bound(itemset) <= coarse.upper_bound(itemset)


@settings(max_examples=40, deadline=None)
@given(transactions)
def test_singleton_segments_are_exact(txns):
    """n = N: the hypothetical extreme of Section 3."""
    db = make_db(txns)
    ossm = OSSM.from_segments([db[i:i + 1] for i in range(len(db))])
    for size in (1, 2, 3):
        for itemset in combinations(range(6), size):
            assert ossm.upper_bound(itemset) == db.support(itemset)


@settings(max_examples=40, deadline=None)
@given(transactions)
def test_minimizer_is_exact_and_within_theorem_bound(txns):
    """Theorem 1 on arbitrary inputs: exact, and n_min <= min(N, 2^m-m)."""
    db = make_db(txns)
    result = minimize_transactions(db)
    assert result.n_min <= min(len(db), 2**6 - 6)
    for size in (1, 2, 3):
        for itemset in combinations(range(6), size):
            assert result.ossm.upper_bound(itemset) == db.support(itemset)


@settings(max_examples=40, deadline=None)
@given(transactions, cut_counts)
def test_batch_bounds_match_scalar(txns, n_segments):
    db = make_db(txns)
    ossm = make_segments(db, n_segments)
    itemsets = list(combinations(range(6), 2))
    batch = ossm.upper_bounds(itemsets)
    assert batch.tolist() == [ossm.upper_bound(i) for i in itemsets]


@settings(max_examples=40, deadline=None)
@given(transactions, cut_counts, st.integers(min_value=1, max_value=10))
def test_pruning_is_sound(txns, n_segments, threshold):
    """No frequent itemset is ever pruned."""
    db = make_db(txns)
    ossm = make_segments(db, n_segments)
    candidates = list(combinations(range(6), 2))
    survivors, _ = ossm.prune(candidates, threshold)
    survivors = set(survivors)
    for candidate in candidates:
        if db.support(candidate) >= threshold:
            assert candidate in survivors
