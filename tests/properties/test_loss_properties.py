"""Property-based tests for Equation (2) (hypothesis)."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.core import (
    configuration,
    cumulative_loss,
    cumulative_loss_naive,
    merge_loss,
    merge_loss_naive,
    pair_bound_sum,
    pair_bound_sum_naive,
)

vectors = arrays(
    dtype=np.int64,
    shape=st.integers(min_value=1, max_value=12),
    elements=st.integers(min_value=0, max_value=200),
)

matrices = arrays(
    dtype=np.int64,
    shape=st.tuples(
        st.integers(min_value=2, max_value=5),
        st.integers(min_value=1, max_value=8),
    ),
    elements=st.integers(min_value=0, max_value=100),
)


@settings(max_examples=100, deadline=None)
@given(vectors)
def test_pair_bound_sum_fast_equals_naive(u):
    assert pair_bound_sum(u) == pair_bound_sum_naive(u)


@settings(max_examples=100, deadline=None)
@given(vectors, vectors)
def test_superadditivity(a, b):
    """f(a+b) >= f(a) + f(b): the heart of Lemma 2's non-negativity."""
    m = min(len(a), len(b))
    a, b = a[:m], b[:m]
    assert pair_bound_sum(a + b) >= pair_bound_sum(a) + pair_bound_sum(b)


@settings(max_examples=100, deadline=None)
@given(vectors, vectors)
def test_merge_loss_fast_equals_naive(a, b):
    m = min(len(a), len(b))
    a, b = a[:m], b[:m]
    assert merge_loss(a, b) == merge_loss_naive(a, b)


@settings(max_examples=100, deadline=None)
@given(vectors, vectors)
def test_merge_loss_non_negative_and_symmetric(a, b):
    m = min(len(a), len(b))
    a, b = a[:m], b[:m]
    loss = merge_loss(a, b)
    assert loss >= 0
    assert loss == merge_loss(b, a)


@settings(max_examples=100, deadline=None)
@given(vectors, vectors)
def test_lemma2_zero_iff_same_configuration(a, b):
    m = min(len(a), len(b))
    a, b = a[:m], b[:m]
    loss = merge_loss(a, b)
    if configuration(a) == configuration(b):
        assert loss == 0
    # (The converse — zero loss with different syntactic configs — can
    # happen only through ties, which the canonical tie-break folds
    # into the same configuration; spot-check it.)
    if loss == 0 and m <= 6:
        merged = a + b
        assert pair_bound_sum(merged) == pair_bound_sum(a) + pair_bound_sum(b)


@settings(max_examples=60, deadline=None)
@given(matrices)
def test_cumulative_loss_fast_equals_naive(rows):
    assert cumulative_loss(rows) == cumulative_loss_naive(rows)


@settings(max_examples=60, deadline=None)
@given(matrices)
def test_lemma2c_monotone(rows):
    """cumuLoss(S) <= cumuLoss(S') for S ⊆ S'."""
    for k in range(2, rows.shape[0]):
        assert cumulative_loss(rows[:k]) <= cumulative_loss(rows[: k + 1])


@settings(max_examples=60, deadline=None)
@given(vectors, st.integers(min_value=1, max_value=8))
def test_scaling_invariance_of_configuration(u, factor):
    """Configurations are scale-free; scaled rows merge for free."""
    assert merge_loss(u, factor * u) == 0
