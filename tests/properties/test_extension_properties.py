"""Property-based tests for the extension modules (hypothesis):
constraints, closed/maximal sets, episodes, and the streaming builder.
"""

from itertools import combinations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import OSSM
from repro.core.incremental import StreamingOSSMBuilder
from repro.data import EventSequence, TransactionDatabase, WindowView
from repro.mining import (
    ExcludesAll,
    MaxSize,
    MinSize,
    SubsetOf,
    SupersetOf,
    apriori,
    closed_itemsets,
    constrained_apriori,
    maximal_itemsets,
    mine_closed,
    mine_parallel_episodes,
)
from tests.conftest import brute_force_frequent

transactions = st.lists(
    st.sets(st.integers(min_value=0, max_value=5), min_size=1, max_size=6),
    min_size=1,
    max_size=25,
)
thresholds = st.integers(min_value=1, max_value=5)


def make_db(txns) -> TransactionDatabase:
    return TransactionDatabase([tuple(t) for t in txns], n_items=6)


# -- constraints -----------------------------------------------------------


@settings(max_examples=40, deadline=None)
@given(
    transactions,
    thresholds,
    st.integers(min_value=1, max_value=4),
    st.sets(st.integers(min_value=0, max_value=5), max_size=3),
)
def test_constrained_mining_equals_filtered_mining(
    txns, threshold, size_cap, banned
):
    db = make_db(txns)
    constraints = [MaxSize(size_cap), ExcludesAll(banned)]
    result = constrained_apriori(db, threshold, constraints)
    expected = {
        itemset: support
        for itemset, support in brute_force_frequent(db, threshold).items()
        if len(itemset) <= size_cap and banned.isdisjoint(itemset)
    }
    assert result.frequent == expected


@settings(max_examples=40, deadline=None)
@given(transactions, thresholds, st.sets(st.integers(0, 5), min_size=1, max_size=2))
def test_monotone_constraints_filter_only(txns, threshold, required):
    db = make_db(txns)
    result = constrained_apriori(
        db, threshold, [SupersetOf(required), MinSize(len(required))]
    )
    expected = {
        itemset: support
        for itemset, support in brute_force_frequent(db, threshold).items()
        if required.issubset(itemset)
    }
    assert result.frequent == expected


# -- closed / maximal --------------------------------------------------------


@settings(max_examples=40, deadline=None)
@given(transactions, thresholds)
def test_closed_sets_are_support_lossless(txns, threshold):
    """Every frequent itemset's support equals the max support of a
    closed superset — the defining reconstruction property."""
    db = make_db(txns)
    result = apriori(db, threshold)
    closed = closed_itemsets(result)
    for itemset, support in result.frequent.items():
        reconstructed = max(
            (
                closed_support
                for closed_set, closed_support in closed.items()
                if set(itemset).issubset(closed_set)
            ),
            default=None,
        )
        assert reconstructed == support


@settings(max_examples=40, deadline=None)
@given(transactions, thresholds)
def test_charm_equals_post_processing(txns, threshold):
    db = make_db(txns)
    via_post = closed_itemsets(apriori(db, threshold))
    direct = mine_closed(db, threshold)
    assert direct.frequent == via_post


@settings(max_examples=40, deadline=None)
@given(transactions, thresholds)
def test_maximal_are_closed_and_frontier(txns, threshold):
    db = make_db(txns)
    result = apriori(db, threshold)
    closed = closed_itemsets(result)
    maximal = maximal_itemsets(result)
    assert set(maximal) <= set(closed)
    # No frequent proper superset of a maximal set exists.
    for itemset in maximal:
        for other in result.frequent:
            assert not set(itemset) < set(other)


# -- episodes ----------------------------------------------------------------

event_lists = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=15),
        st.integers(min_value=0, max_value=4),
    ),
    min_size=1,
    max_size=30,
)


@settings(max_examples=30, deadline=None)
@given(event_lists, st.integers(min_value=1, max_value=4), thresholds)
def test_parallel_episodes_match_windowed_itemsets(events, width, threshold):
    """Footnote 1's equivalence, verified mechanically."""
    sequence = EventSequence(events, n_types=5)
    episodes = mine_parallel_episodes(sequence, width, threshold)
    windowed = WindowView(sequence, width).to_database()
    itemsets = apriori(windowed, threshold)
    assert episodes.frequent == itemsets.frequent


# -- GSP -----------------------------------------------------------------

customer_sequences = st.lists(
    st.lists(
        st.sets(st.integers(min_value=0, max_value=3), min_size=1, max_size=3),
        min_size=1,
        max_size=4,
    ),
    min_size=1,
    max_size=12,
)


@settings(max_examples=30, deadline=None)
@given(customer_sequences, st.integers(min_value=1, max_value=4))
def test_gsp_matches_containment_oracle(raw_sequences, threshold):
    """Every reported pattern has its exact support; nothing with
    sufficient support and ≤3 items is missed."""
    from repro.data.sequences import SequenceDatabase
    from repro.mining.gsp import gsp
    from tests.mining.test_gsp import all_patterns_up_to_3

    seqdb = SequenceDatabase(
        [[tuple(e) for e in customer] for customer in raw_sequences],
        n_items=4,
    )
    result = gsp(seqdb, threshold, max_size=3)
    expected = {}
    for pattern in all_patterns_up_to_3(4):
        support = seqdb.support(pattern)
        if support >= threshold:
            expected[pattern] = support
    assert result.frequent == expected


@settings(max_examples=30, deadline=None)
@given(customer_sequences, st.integers(min_value=1, max_value=3))
def test_gsp_spmf_roundtrip_preserves_mining(raw_sequences, threshold):
    from repro.data.sequences import SequenceDatabase
    from repro.mining.gsp import gsp

    seqdb = SequenceDatabase(
        [[tuple(e) for e in customer] for customer in raw_sequences],
        n_items=4,
    )
    import os
    import tempfile

    from repro.data import load_spmf, save_spmf

    with tempfile.TemporaryDirectory() as tmp:
        path = os.path.join(tmp, "seq.spmf")
        save_spmf(seqdb, path)
        reloaded = load_spmf(path, n_items=4)
    assert gsp(seqdb, threshold, max_size=2).frequent == gsp(
        reloaded, threshold, max_size=2
    ).frequent


# -- streaming builder ---------------------------------------------------


@settings(max_examples=30, deadline=None)
@given(transactions, st.integers(min_value=1, max_value=6))
def test_streaming_builder_always_sound(txns, budget):
    db = make_db(txns)
    builder = StreamingOSSMBuilder(db.n_items, budget)
    builder.absorb(db, page_size=3)
    ossm = builder.ossm()
    assert (ossm.item_supports() == db.item_supports()).all()
    for itemset in combinations(range(db.n_items), 2):
        assert ossm.upper_bound(itemset) >= db.support(itemset)
