"""Differential and property tests for the parallel counting engine."""
