"""Determinism: worker count and shard order must be invisible.

The frequent-itemset output of a seeded workload must be byte-identical
— same JSON serialization, not merely equal sets — no matter how many
workers count it, how the collection is sharded, or which in-shard
engine runs. Integer per-shard counts are summed (addition commutes)
and results are gathered in payload order, so nothing about scheduling
can leak into the output.
"""

import json

import pytest

from repro.data import generate_skewed
from repro.mining import DHP, Apriori, Partition
from repro.parallel import ParallelCounter, ShardPlanner


def fingerprint(result) -> bytes:
    """Canonical byte serialization of everything a caller can observe."""
    return json.dumps(
        {
            "algorithm": result.algorithm,
            "min_support": result.min_support,
            "itemsets": [
                [list(itemset), support]
                for itemset, support in result.sorted_itemsets()
            ],
            "levels": [
                [
                    stats.level,
                    stats.candidates_generated,
                    stats.candidates_pruned,
                    stats.candidates_counted,
                    stats.frequent,
                ]
                for stats in result.levels
            ],
        },
        sort_keys=True,
    ).encode()


@pytest.fixture(scope="module")
def workload():
    return generate_skewed(
        n_transactions=240,
        n_items=14,
        avg_transaction_len=5,
        skew=0.7,
        seed=3,
    )


@pytest.fixture(scope="module")
def serial_fingerprint(workload):
    return fingerprint(Apriori(max_level=3).mine(workload, 5))


@pytest.mark.parametrize("workers", (1, 2, 4))
@pytest.mark.parametrize("n_shards", (2, 5, 7))
def test_apriori_output_independent_of_workers_and_shards(
    workload, serial_fingerprint, workers, n_shards
):
    counter = ParallelCounter(
        workers=workers, planner=ShardPlanner(n_shards=n_shards)
    )
    with counter:
        result = Apriori(counter=counter, max_level=3).mine(workload, 5)
    assert fingerprint(result) == serial_fingerprint


@pytest.mark.parametrize("engine", ("subset", "tidset", "hashtree"))
def test_apriori_output_independent_of_shard_engine(
    workload, serial_fingerprint, engine
):
    counter = ParallelCounter(workers=2, engine=engine)
    with counter:
        result = Apriori(counter=counter, max_level=3).mine(workload, 5)
    assert fingerprint(result) == serial_fingerprint


def test_repeated_runs_are_byte_identical(workload):
    prints = set()
    for _run in range(2):
        counter = ParallelCounter(
            workers=4, planner=ShardPlanner(n_shards=5)
        )
        with counter:
            result = Apriori(counter=counter, max_level=3).mine(workload, 5)
        prints.add(fingerprint(result))
    assert len(prints) == 1


@pytest.mark.parametrize("workers", (1, 2, 4))
def test_bitmap_output_byte_identical_across_thread_counts(
    workload, serial_fingerprint, workers
):
    """The bitmap engine leaves no thread-count residue either.

    Same invariant as the process path, one level down: per-shard
    popcount vectors are int64 and summed in shard order, so the
    fingerprint must equal the serial Apriori's byte for byte.
    """
    from repro.parallel import ThreadShardPlanner, ThreadedBitmapCounter

    counter = ThreadedBitmapCounter(
        workers=workers, planner=ThreadShardPlanner(min_words=1, n_shards=3)
    )
    with counter:
        result = Apriori(counter=counter, max_level=3).mine(workload, 5)
    assert fingerprint(result) == serial_fingerprint


def test_bitmap_engine_flag_matches_serial(workload, serial_fingerprint):
    for workers in (None, 2):
        result = Apriori(
            max_level=3, engine="bitmap", workers=workers
        ).mine(workload, 5)
        assert fingerprint(result) == serial_fingerprint


def test_dhp_and_partition_match_their_serial_runs(workload):
    for serial, parallel in (
        (
            DHP(n_buckets=32, max_level=3),
            DHP(n_buckets=32, max_level=3, workers=3),
        ),
        (
            Partition(n_partitions=3, max_level=3),
            Partition(n_partitions=3, max_level=3, workers=3),
        ),
    ):
        assert fingerprint(parallel.mine(workload, 5)) == fingerprint(
            serial.mine(workload, 5)
        )
