"""Unit tests for shard planning and worker resolution."""

import os

import pytest

from repro.parallel import ShardPlan, ShardPlanner, resolve_workers
from repro.parallel.plan import WORKERS_ENV


class TestResolveWorkers:
    def test_explicit_value_wins(self, monkeypatch):
        monkeypatch.setenv(WORKERS_ENV, "7")
        assert resolve_workers(3) == 3

    def test_none_consults_environment(self, monkeypatch):
        monkeypatch.setenv(WORKERS_ENV, "5")
        assert resolve_workers(None) == 5

    def test_none_without_env_uses_cpu_count(self, monkeypatch):
        monkeypatch.delenv(WORKERS_ENV, raising=False)
        assert resolve_workers(None) == (os.cpu_count() or 1)

    @pytest.mark.parametrize("bad", [0, -1])
    def test_non_positive_rejected(self, bad):
        with pytest.raises(ValueError, match="workers"):
            resolve_workers(bad)

    def test_non_positive_env_rejected(self, monkeypatch):
        monkeypatch.setenv(WORKERS_ENV, "0")
        with pytest.raises(ValueError, match="workers"):
            resolve_workers(None)


class TestShardPlan:
    def test_sizes_and_ranges(self):
        plan = ShardPlan((0, 3, 3, 10))
        assert plan.n_shards == 3
        assert plan.n_transactions == 10
        assert plan.sizes == (3, 0, 7)
        assert plan.ranges() == [(0, 3), (3, 3), (3, 10)]

    def test_empty_collection_plan(self):
        plan = ShardPlan((0,))
        assert plan.n_shards == 0
        assert plan.n_transactions == 0
        assert plan.ranges() == []

    def test_must_start_at_zero(self):
        with pytest.raises(ValueError, match="start at 0"):
            ShardPlan((1, 5))

    def test_must_be_sorted(self):
        with pytest.raises(ValueError, match="non-decreasing"):
            ShardPlan((0, 5, 3))


class TestShardPlanner:
    def test_even_cuts_partition_the_collection(self):
        plan = ShardPlanner().plan(10, 3)
        assert plan.boundaries[0] == 0
        assert plan.boundaries[-1] == 10
        assert plan.n_shards == 3
        assert sum(plan.sizes) == 10
        assert all(size > 0 for size in plan.sizes)

    def test_uneven_division_never_yields_empty_shards(self):
        # 7 shards over 25 transactions: 25 % 7 != 0 on purpose.
        plan = ShardPlanner(n_shards=7).plan(25, 2)
        assert plan.n_shards == 7
        assert sum(plan.sizes) == 25
        assert all(size > 0 for size in plan.sizes)

    def test_more_workers_than_transactions(self):
        plan = ShardPlanner().plan(3, 8)
        assert plan.n_shards == 3
        assert plan.sizes == (1, 1, 1)

    def test_empty_collection(self):
        assert ShardPlanner().plan(0, 4) == ShardPlan((0,))

    def test_shards_per_worker_multiplies_fanout(self):
        plan = ShardPlanner(shards_per_worker=3).plan(100, 2)
        assert plan.n_shards == 6

    def test_segment_alignment_snaps_to_segment_cuts(self):
        # Segments end at 10, 40, 100; the even 2-way cut (50) must snap
        # to the nearest segment boundary (40).
        plan = ShardPlanner().plan(100, 2, segment_sizes=[10, 30, 60])
        assert plan.boundaries == (0, 40, 100)

    def test_aligned_cuts_are_a_subset_of_segment_cuts(self):
        sizes = [5, 0, 12, 1, 7, 25]
        cuts = [0]
        for size in sizes:
            cuts.append(cuts[-1] + size)
        plan = ShardPlanner().plan(sum(sizes), 4, segment_sizes=sizes)
        assert set(plan.boundaries) <= set(cuts)
        assert sum(plan.sizes) == sum(sizes)
        assert all(size > 0 for size in plan.sizes)

    def test_inconsistent_segment_sizes_ignored(self):
        # A composition from some other collection must not be trusted.
        plan = ShardPlanner().plan(10, 2, segment_sizes=[3, 3])
        assert plan == ShardPlanner().plan(10, 2)

    def test_one_giant_segment_degrades_to_single_shard(self):
        plan = ShardPlanner().plan(50, 4, segment_sizes=[50])
        assert plan.n_shards == 1
        assert plan.boundaries == (0, 50)

    def test_validation(self):
        with pytest.raises(ValueError, match="n_shards"):
            ShardPlanner(n_shards=0)
        with pytest.raises(ValueError, match="shards_per_worker"):
            ShardPlanner(shards_per_worker=0)
        with pytest.raises(ValueError, match="n_transactions"):
            ShardPlanner().plan(-1, 2)
        with pytest.raises(ValueError, match="workers"):
            ShardPlanner().plan(10, 0)
