"""Shared-memory lifecycle regressions found by the resource-lifecycle pass.

Four leak paths existed in the parallel plane, all on *exception*
paths: ``publish_int64`` stranded its fresh segment if the copy into it
failed, ``attach_int64`` stranded the worker-side handle if the view
could not be built, and both ``ParallelCounter._count`` and
``parallel_upper_bounds`` built their payload lists in the gap between
acquiring the segment and entering the ``try`` that unlinks it. These
tests pin the fixed behaviour: every failure mode — including an
injected worker-crash storm — must leave the shared-memory namespace
empty.
"""

from multiprocessing import shared_memory

import numpy as np
import pytest

from repro.data import generate_quest
from repro.mining.counting import make_counter, parallel_breaker
from repro.parallel import ParallelCounter, parallel_upper_bounds
from repro.parallel.pool import attach_int64, publish_int64
from repro.core.ossm import build_from_database
from repro.resilience import FaultPlan, PoolFailure, use_faults

WORKERS = 2


@pytest.fixture
def recording_segments(monkeypatch):
    """Route every ``SharedMemory`` through a recorder subclass.

    Records each instance created *in this process* with ``closed`` /
    ``unlinked`` flags, so tests can assert the lifecycle outcome of
    segments they never see returned.
    """
    real = shared_memory.SharedMemory
    instances: list[shared_memory.SharedMemory] = []

    class Recording(real):
        def __init__(self, *args, **kwargs):
            super().__init__(*args, **kwargs)
            self.test_closed = False
            self.test_unlinked = False
            instances.append(self)

        def close(self):
            self.test_closed = True
            super().close()

        def unlink(self):
            self.test_unlinked = True
            super().unlink()

    monkeypatch.setattr(shared_memory, "SharedMemory", Recording)
    return instances


class TestPublishFailure:
    def test_failed_copy_closes_and_unlinks(self, monkeypatch):
        created: list[shared_memory.SharedMemory] = []
        real = shared_memory.SharedMemory

        class ExplodingBuf(real):
            def __init__(self, *args, **kwargs):
                super().__init__(*args, **kwargs)
                created.append(self)

            @property
            def buf(self):
                raise RuntimeError("mapping failed")

        monkeypatch.setattr(shared_memory, "SharedMemory", ExplodingBuf)
        with pytest.raises(RuntimeError, match="mapping failed"):
            publish_int64(np.arange(6, dtype=np.int64))
        assert len(created) == 1
        name = created[0].name
        # The segment must be gone from the OS namespace, not stranded.
        with pytest.raises(FileNotFoundError):
            real(name=name)


class TestAttachFailure:
    def test_oversized_view_closes_handle(self, recording_segments):
        table = np.arange(6, dtype=np.int64)
        segment = publish_int64(table)
        try:
            # A shape larger than the segment makes the view
            # constructor raise — the half-attached handle must close.
            with pytest.raises((TypeError, ValueError)):
                attach_int64(segment.name, (1000, 1000))
            handles = [
                seg for seg in recording_segments if seg is not segment
            ]
            assert len(handles) == 1
            assert handles[0].test_closed
            # Worker-side close only: the parent still owns the data.
            assert not handles[0].test_unlinked
            view, handle = attach_int64(segment.name, table.shape)
            assert np.array_equal(np.array(view, copy=True), table)
            handle.close()
        finally:
            segment.close()
            segment.unlink()


class TestCounterFallbackCleanup:
    def test_injected_crash_storm_unlinks_segment(self, recording_segments):
        """Serial fallback after PoolFailure must not strand the table.

        ``pool.worker_crash:times=999`` kills every attempt, so the
        supervisor exhausts its rebuild budget and ``_count`` takes the
        PoolFailure branch — the published candidate table has to be
        closed *and* unlinked on that path, and the fallback counts
        must still be exact.
        """
        db = generate_quest(
            n_transactions=300, n_items=30, avg_transaction_len=6,
            n_patterns=20, seed=13,
        )
        candidates = [(i,) for i in range(db.n_items)]
        serial = make_counter("tidset").count(db, candidates)
        plan = FaultPlan.from_spec("pool.worker_crash:times=999", seed=0)
        breaker = parallel_breaker()
        breaker.reset()
        try:
            with use_faults(plan):
                with ParallelCounter(workers=WORKERS) as counter:
                    counts = counter.count(db, candidates)
        finally:
            breaker.reset()
        assert counts == serial
        published = [
            seg for seg in recording_segments if seg.test_unlinked
        ]
        assert published, "candidate table segment was never unlinked"
        assert all(seg.test_closed for seg in published)
        for seg in published:
            with pytest.raises(FileNotFoundError):
                shared_memory.SharedMemory(name=seg.name)


class _FailingPool:
    """A pool double whose run() dies after the segment is published."""

    workers = WORKERS

    def run(self, task, payloads):
        raise PoolFailure(1, "injected: pool dead")


class TestBoundsCleanup:
    def test_pool_failure_propagates_and_unlinks(self, recording_segments):
        db = generate_quest(
            n_transactions=200, n_items=20, avg_transaction_len=5,
            n_patterns=10, seed=29,
        )
        ossm = build_from_database(db, [0, len(db)])
        candidates = [(i,) for i in range(5)]
        with pytest.raises(PoolFailure, match="pool dead"):
            parallel_upper_bounds(ossm, candidates, pool=_FailingPool())
        assert len(recording_segments) == 1
        segment = recording_segments[0]
        assert segment.test_closed and segment.test_unlinked
        with pytest.raises(FileNotFoundError):
            shared_memory.SharedMemory(name=segment.name)
