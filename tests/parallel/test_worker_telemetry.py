"""Cross-process telemetry: worker deltas survive the fan-out.

The export plane's exactness claim: mining with ``workers=N`` and an
active registry yields the same merged counters and histogram totals
as ``workers=1`` — worker-side instrument updates ride back with each
shard result and fold into the parent registry, exactly once, with
engine-*selection* decisions (``resilience.engine.*``) reported only
by the process that made them.
"""

from __future__ import annotations

import pytest

from repro.data import TransactionDatabase, generate_quest
from repro.mining.apriori import Apriori
from repro.mining.counting import parallel_breaker
from repro.obs.metrics import MetricsRegistry, get_registry, use_registry
from repro.parallel.counter import ParallelCounter
from repro.parallel.pool import WorkerPool

#: Counters legitimately dependent on the fan-out width.
FANOUT_DEPENDENT = {"parallel.count.shards"}


@pytest.fixture()
def db():
    return generate_quest(
        n_transactions=300, n_items=40, n_patterns=60, seed=7
    )


def _mine_with_workers(db, workers: int) -> dict:
    registry = MetricsRegistry()
    # Engine pinned: this file proves the *process pool's* delta
    # transport, so it must not be rerouted by a REPRO_ENGINE override
    # (the bitmap CI leg) onto the thread path, which has no worker
    # processes to ship deltas from.
    with use_registry(registry):
        result = Apriori(
            workers=workers, engine="tidset", max_level=3
        ).mine(db, 0.02)
    return {"result": result, "snapshot": registry.snapshot()}


def test_differential_telemetry_across_worker_counts(db):
    """workers=4 and workers=1 agree on every width-independent metric."""
    wide = _mine_with_workers(db, workers=4)
    narrow = _mine_with_workers(db, workers=1)
    assert wide["result"].frequent == narrow["result"].frequent

    wide_counters = {
        name: value
        for name, value in wide["snapshot"]["counters"].items()
        if name not in FANOUT_DEPENDENT
    }
    narrow_counters = {
        name: value
        for name, value in narrow["snapshot"]["counters"].items()
        if name not in FANOUT_DEPENDENT
    }
    assert wide_counters == narrow_counters

    # Histogram totals (counts, sums) are width-independent too.
    wide_hists = {
        name: {k: v for k, v in hist.items() if k != "min" and k != "max"}
        for name, hist in wide["snapshot"]["histograms"].items()
    }
    narrow_hists = {
        name: {k: v for k, v in hist.items() if k != "min" and k != "max"}
        for name, hist in narrow["snapshot"]["histograms"].items()
    }
    assert wide_hists == narrow_hists

    # And the worker-side proof: the per-shard counting timer only
    # exists in the parent snapshot because deltas crossed processes.
    timer = wide["snapshot"]["timers"].get("counting.tidset_seconds")
    assert timer is not None and timer["count"] > 0


def _inc_worker_counters(tag: str) -> str:
    registry = get_registry()
    registry.inc("worker.tasks")
    registry.inc("resilience.engine.degraded")  # parent-only: filtered
    return tag


def test_worker_deltas_merge_and_parent_only_counters_drop():
    registry = MetricsRegistry()
    with use_registry(registry):
        with WorkerPool(2) as pool:
            results = pool.run(_inc_worker_counters, ["a", "b", "c"])
    assert results == ["a", "b", "c"]
    assert registry.counter("worker.tasks").value == 3
    # An inherited open breaker in a forked worker would re-report the
    # parent's engine decision; the harvest filter drops the prefix.
    assert "resilience.engine.degraded" not in registry.snapshot()["counters"]


def _idle(tag: str) -> str:
    return tag


def test_no_forwarding_without_active_registry():
    assert not get_registry().enabled
    with WorkerPool(2) as pool:
        assert pool.forwards_metrics is False
        assert pool.run(_idle, ["x"]) == ["x"]


def test_snapshot_reset_prevents_double_counting():
    """Two batches through the same pool: deltas are per-task, so the
    second batch must not re-ship the first batch's counts."""
    registry = MetricsRegistry()
    with use_registry(registry):
        with WorkerPool(1) as pool:
            pool.run(_inc_worker_counters, ["a"])
            pool.run(_inc_worker_counters, ["b"])
    assert registry.counter("worker.tasks").value == 2


def test_degraded_transition_counted_exactly_once(db):
    """An open breaker degrades every count call of a mining run; the
    engine-selection counter records the *transition*, not each call."""
    candidates = [(i,) for i in range(db.n_items)]
    registry = MetricsRegistry()
    breaker = parallel_breaker()
    breaker.reset()
    try:
        counter = ParallelCounter(workers=2)
        while not breaker.is_open:
            breaker.record_failure()
        with use_registry(registry):
            first = counter.count(db, candidates)
            second = counter.count(db, candidates)
        assert first == second
        assert registry.counter("resilience.engine.degraded").value == 1
    finally:
        breaker.reset()


def test_degraded_recount_after_recovery(db):
    """Recovery closes the transition window: degrade, recover, degrade
    again → two recorded decisions."""
    candidates = [(i,) for i in range(db.n_items)]
    registry = MetricsRegistry()
    breaker = parallel_breaker()
    breaker.reset()
    try:
        with use_registry(registry):
            with ParallelCounter(workers=2) as counter:
                while not breaker.is_open:
                    breaker.record_failure()
                counter.count(db, candidates)       # degraded: 1
                breaker.reset()
                counter.count(db, candidates)       # healthy again
                while not breaker.is_open:
                    breaker.record_failure()
                counter.count(db, candidates)       # degraded: 2
        assert registry.counter("resilience.engine.degraded").value == 2
    finally:
        breaker.reset()
