"""Parallel OSSM construction and chunk-parallel Equation (1) bounds.

Soundness is the paper's core invariant — ``ŝup(X) >= sup(X)`` for
every candidate — and the parallel evaluation must preserve it the
strongest possible way: by returning the *same* bound vector as the
serial code, element for element, on every segment composition we can
throw at it (empty segments, single-transaction segments, all-ties
collections, skewed splits).
"""

from itertools import combinations

import numpy as np
import pytest

from repro.core.ossm import build_from_database
from repro.data import TransactionDatabase
from repro.mining import OSSMPruner
from repro.parallel import (
    ParallelOSSMPruner,
    parallel_build_ossm,
    parallel_upper_bounds,
)

from ._support import N_ITEMS, given_database, pathological_compositions

#: One candidate batch per cardinality — Equation (1) is evaluated per
#: Apriori level, so each batch is uniform like the real call sites.
CANDIDATE_LEVELS = (
    [(i,) for i in range(N_ITEMS)],
    list(combinations(range(N_ITEMS), 2)),
    list(combinations(range(5), 3)),
)

PAIRS = CANDIDATE_LEVELS[1]


# -- properties over arbitrary databases and compositions ---------------


@given_database(max_examples=6)
def test_parallel_build_matches_serial_on_pathological_cuts(db):
    for cuts in pathological_compositions(len(db)):
        serial = build_from_database(db, cuts)
        parallel = parallel_build_ossm(db, cuts, workers=2)
        assert np.array_equal(parallel.matrix, serial.matrix)
        assert parallel.segment_sizes == serial.segment_sizes


@given_database(max_examples=6)
def test_parallel_bounds_equal_serial_and_stay_sound(db):
    for cuts in pathological_compositions(len(db)):
        ossm = build_from_database(db, cuts)
        for candidates in CANDIDATE_LEVELS:
            serial = ossm.upper_bounds(candidates)
            parallel = parallel_upper_bounds(ossm, candidates, workers=2)
            assert np.array_equal(parallel, serial)
            for candidate, bound in zip(candidates, parallel):
                assert int(bound) >= db.support(candidate)


# -- deterministic pathological cases -----------------------------------


@pytest.fixture(scope="module")
def ties_db():
    """Every transaction identical: the all-ties composition."""
    return TransactionDatabase([(0, 2, 5)] * 24, n_items=N_ITEMS)


def test_all_ties_single_transaction_segments(ties_db):
    cuts = list(range(len(ties_db) + 1))  # one transaction per segment
    ossm = build_from_database(ties_db, cuts)
    for workers in (2, 3, 4):
        bounds = parallel_upper_bounds(ossm, PAIRS, workers=workers)
        assert np.array_equal(bounds, ossm.upper_bounds(PAIRS))
    # The bound is tight here: every segment is pure.
    assert parallel_upper_bounds(ossm, [(0, 2, 5)], workers=2)[0] == len(
        ties_db
    )
    assert parallel_upper_bounds(ossm, [(0, 1), (2, 5)], workers=2)[
        0
    ] == 0


def test_skewed_composition_matches_serial(quest_db):
    n = len(quest_db)
    cuts = [0, 1, 2, 3, n // 2, n // 2, n - 1, n]
    ossm = build_from_database(quest_db, cuts)
    for workers in (2, 3, 4):
        built = parallel_build_ossm(quest_db, cuts, workers=workers)
        assert np.array_equal(built.matrix, ossm.matrix)
        for candidates in CANDIDATE_LEVELS:
            assert np.array_equal(
                parallel_upper_bounds(ossm, candidates, workers=workers),
                ossm.upper_bounds(candidates),
            )


def test_degenerate_candidate_sets(quest_db):
    ossm = build_from_database(
        quest_db, [0, len(quest_db) // 2, len(quest_db)]
    )
    # Zero candidates and single candidates delegate to the serial path.
    assert parallel_upper_bounds(ossm, [], workers=4).shape == (0,)
    lone = parallel_upper_bounds(ossm, [(0, 1)], workers=4)
    assert np.array_equal(lone, ossm.upper_bounds([(0, 1)]))


def test_build_validates_boundaries(quest_db):
    with pytest.raises(ValueError, match="non-decreasing"):
        parallel_build_ossm(quest_db, [0, 10, 5, len(quest_db)], workers=2)
    with pytest.raises(ValueError, match="start at 0"):
        parallel_build_ossm(quest_db, [1, len(quest_db)], workers=2)


# -- the drop-in parallel pruner ----------------------------------------


def test_parallel_pruner_is_a_drop_in(quest_db):
    n = len(quest_db)
    ossm = build_from_database(quest_db, [0, n // 3, n // 3, 2 * n // 3, n])
    serial = OSSMPruner(ossm)
    with ParallelOSSMPruner(ossm, workers=3) as parallel:
        assert parallel.label == serial.label == "+ossm"
        for candidates in CANDIDATE_LEVELS:
            for threshold in (1, 5, 40):
                assert parallel.prune(
                    candidates, threshold
                ) == serial.prune(candidates, threshold)
            assert np.array_equal(
                parallel.candidate_bounds(candidates),
                serial.candidate_bounds(candidates),
            )
        assert parallel.prune([], 5) == []
        assert parallel.candidate_bounds([]) is None


def test_parallel_pruner_close_is_idempotent(quest_db):
    ossm = build_from_database(quest_db, [0, len(quest_db)])
    pruner = ParallelOSSMPruner(ossm, workers=2)
    pruner.prune(PAIRS, 5)
    pruner.close()
    pruner.close()
    # Usable again after close: the pool is rebuilt lazily.
    assert pruner.prune(PAIRS, 5) == OSSMPruner(ossm).prune(PAIRS, 5)
