"""Property-test plumbing shared by the parallel suite.

The properties run under hypothesis when it is importable and fall back
to a fixed set of seeded-random cases otherwise, so the differential
harness keeps its coverage on minimal installs (the package itself only
depends on numpy/scipy; hypothesis is a dev extra).
"""

from __future__ import annotations

import numpy as np

from repro.data import TransactionDatabase

try:
    from hypothesis import given, settings
    from hypothesis import strategies as st

    HAVE_HYPOTHESIS = True
except ImportError:  # pragma: no cover - the dev extra ships hypothesis
    HAVE_HYPOTHESIS = False

#: Item universe for generated databases — small enough that pairs and
#: triples collide often, which is where counting bugs hide.
N_ITEMS = 8

#: Cases replayed by the seeded-random fallback path.
FALLBACK_EXAMPLES = 10


def make_db(txns) -> TransactionDatabase:
    """Canonical database over the fixed :data:`N_ITEMS` universe."""
    return TransactionDatabase(
        [tuple(sorted(txn)) for txn in txns], n_items=N_ITEMS
    )


def _random_transactions(rng: np.random.Generator) -> list[set[int]]:
    n_transactions = int(rng.integers(0, 30))
    txns = []
    for _ in range(n_transactions):
        size = int(rng.integers(0, N_ITEMS + 1))
        txns.append(
            {int(i) for i in rng.choice(N_ITEMS, size=size, replace=False)}
        )
    return txns


def given_database(max_examples: int = 10):
    """Decorate ``test(db)`` to run over arbitrary small databases.

    With hypothesis the databases are drawn (and shrunk) from a list-of
    -sets strategy, including the empty database; without it the same
    property replays :data:`FALLBACK_EXAMPLES` seeded-random databases.
    """

    def decorate(test):
        if HAVE_HYPOTHESIS:
            transactions = st.lists(
                st.sets(
                    st.integers(min_value=0, max_value=N_ITEMS - 1),
                    max_size=N_ITEMS,
                ),
                max_size=30,
            )

            def wrapper(txns):
                test(make_db(txns))

            # Copy the identity by hand: functools.wraps would set
            # __wrapped__, and hypothesis would then introspect the
            # original signature (``db``) instead of the wrapper's.
            wrapper.__name__ = test.__name__
            wrapper.__doc__ = test.__doc__
            return settings(max_examples=max_examples, deadline=None)(
                given(transactions)(wrapper)
            )

        def fallback():
            for seed in range(FALLBACK_EXAMPLES):
                rng = np.random.default_rng(seed)
                test(make_db(_random_transactions(rng)))

        fallback.__name__ = test.__name__
        fallback.__doc__ = test.__doc__
        return fallback

    return decorate


def pathological_compositions(n: int) -> list[list[int]]:
    """Segment cut-point lists that stress the shard planner.

    Covers: one giant segment, single-transaction segments, empty
    segments at the start / middle / end, and an uneven three-way split
    — every composition is a valid ``[0, ..., n]`` boundary list.
    """
    compositions = [[0, n]]
    if n > 0:
        compositions.append(list(range(n + 1)))
        compositions.append([0, 0, n // 3, n // 3, n, n])
        compositions.append([0, max(1, n // 5), max(1, n // 5), n])
    else:
        compositions.append([0, 0, 0])
    return compositions
