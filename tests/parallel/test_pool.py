"""Worker-pool plumbing: shared memory, ordering, and fan-out telemetry."""

import os
import pathlib
import subprocess
import sys
import textwrap

import numpy as np
import pytest

from repro.data import TransactionDatabase
from repro.mining import Apriori
from repro.obs.metrics import MetricsRegistry, use_registry
from repro.obs.trace import TraceRecorder, use_recorder
from repro.parallel import ParallelCounter, WorkerPool
from repro.parallel.pool import attach_int64, publish_int64


class TestSharedMemory:
    def test_round_trip(self):
        table = np.arange(12, dtype=np.int64).reshape(4, 3)
        segment = publish_int64(table)
        try:
            view, handle = attach_int64(segment.name, table.shape)
            copied = np.array(view, dtype=np.int64, copy=True)
            handle.close()
            assert np.array_equal(copied, table)
        finally:
            segment.close()
            segment.unlink()

    def test_rejects_non_int64(self):
        with pytest.raises(TypeError, match="int64"):
            publish_int64(np.ones((2, 2), dtype=np.float64))

    def test_rejects_empty(self):
        with pytest.raises(ValueError, match="empty"):
            publish_int64(np.zeros((0, 2), dtype=np.int64))


def _echo(payload):
    return payload * 10


class TestWorkerPool:
    def test_results_follow_payload_order(self):
        with WorkerPool(2) as pool:
            assert pool.run(_echo, list(range(8))) == [
                i * 10 for i in range(8)
            ]

    def test_close_is_idempotent(self):
        pool = WorkerPool(2)
        pool.run(_echo, [1])
        pool.close()
        pool.close()


class TestDefensiveTeardown:
    """close()/__del__ must be safe on half-built or closed instances."""

    def test_half_built_pool_has_safe_del(self):
        # workers is validated before the executor exists; the
        # interpreter still calls __del__ on the dead instance.
        with pytest.raises(ValueError, match="workers"):
            WorkerPool(0)

    def test_half_built_counter_has_safe_del(self):
        with pytest.raises(ValueError, match="unknown engine"):
            ParallelCounter(workers=2, engine="bogus")

    def test_explicit_del_after_close(self):
        pool = WorkerPool(2)
        pool.close()
        pool.__del__()          # must not raise

        counter = ParallelCounter(workers=2)
        counter.close()
        counter.__del__()       # must not raise

    def test_context_manager_exit_then_close(self):
        with ParallelCounter(workers=2) as counter:
            pass
        counter.close()         # idempotent after __exit__

    def test_count_after_close_builds_fresh_pool(self):
        db = TransactionDatabase([{0, 1}, {1, 2}], n_items=3)
        counter = ParallelCounter(workers=2)
        try:
            first = counter.count(db, [(1,)])
            counter.close()
            assert counter.count(db, [(1,)]) == first == {(1,): 2}
        finally:
            counter.close()

    def test_sigkilled_pool_survives_interpreter_shutdown(self, tmp_path):
        # A counter whose workers were SIGKILLed and that is never
        # closed must not raise from __del__ during interpreter
        # shutdown: that surfaces as "Exception ignored in:" noise on
        # stderr and a broken exit under `python -W error`.
        script = textwrap.dedent("""
            import os, signal
            from repro.data import TransactionDatabase
            from repro.parallel import ParallelCounter

            db = TransactionDatabase([{0, 1}, {1, 2}], n_items=3)
            counter = ParallelCounter(workers=2)
            assert counter.count(db, [(1,)]) == {(1,): 2}
            for proc in counter._pool._pool._executor._processes.values():
                os.kill(proc.pid, signal.SIGKILL)
            # No close(): the dangling counter is finalized at exit.
            print("OK")
        """)
        result = subprocess.run(
            [sys.executable, "-c", script],
            capture_output=True, text=True, timeout=60,
            env={**os.environ, "PYTHONPATH": "src"},
            cwd=pathlib.Path(__file__).resolve().parents[2],
        )
        assert result.returncode == 0, result.stderr
        assert "OK" in result.stdout
        assert "Exception ignored" not in result.stderr, result.stderr


class TestFanoutTelemetry:
    def _mine(self, db):
        recorder = TraceRecorder()
        registry = MetricsRegistry()
        counter = ParallelCounter(workers=2)
        with use_recorder(recorder), use_registry(registry), counter:
            Apriori(counter=counter, max_level=2).mine(db, 2)
        return recorder, registry

    @pytest.fixture()
    def run(self, tiny_db):
        db = TransactionDatabase(list(tiny_db) * 4, n_items=tiny_db.n_items)
        return self._mine(db)

    def test_per_shard_spans_recorded(self, run):
        recorder, _registry = run
        spans = []

        def walk(span):
            spans.append(span)
            for child in span.children:
                walk(child)

        for root in recorder.roots:
            walk(root)
        count_spans = [s for s in spans if s.name == "parallel.count"]
        shard_spans = [s for s in spans if s.name == "parallel.count.shard"]
        assert count_spans, "no parallel.count span recorded"
        assert len(shard_spans) >= 2  # one per shard, >= 2 shards
        for span in shard_spans:
            assert {"shard", "transactions"} <= set(span.metadata)

    def test_fanout_metrics_recorded(self, run):
        _recorder, registry = run
        snapshot = registry.snapshot()
        counters = snapshot["counters"]
        assert counters["parallel.count.fanouts"] >= 1
        assert counters["parallel.count.shards"] >= 2
        timers = snapshot["timers"]
        assert timers["parallel.count.shard_seconds"]["count"] >= 2
        assert "parallel.count.fanout_overhead_seconds" in timers
        assert timers["counting.parallel_seconds"]["count"] >= 1
