"""The thread-sharded bitmap path: planner, exactness, thread safety.

Word-column shards partition the transaction bits, so the threaded
reduce must equal the serial bitmap reduce — which
``tests/mining/test_bitmap.py`` proves equal to every other engine.
Here the extra obligations are the planner's boundary arithmetic, the
executor lifecycle, and safety under *caller-side* concurrency: one
shared counter serving many threads at once.
"""

import threading
from concurrent.futures import ThreadPoolExecutor
from itertools import combinations

import numpy as np
import pytest

from repro.data import TransactionDatabase
from repro.mining import BitmapCounter
from repro.parallel import ThreadedBitmapCounter, ThreadShardPlanner

from ._support import N_ITEMS, make_db


def random_db(n_transactions, seed=0):
    rng = np.random.default_rng(seed)
    return TransactionDatabase(
        [
            tuple(np.nonzero(rng.integers(0, 2, size=N_ITEMS))[0])
            for _ in range(n_transactions)
        ],
        n_items=N_ITEMS,
    )


# -- planner -------------------------------------------------------------


class TestThreadShardPlanner:
    def test_empty_collection(self):
        plan = ThreadShardPlanner().plan(0, 4)
        assert plan.n_shards == 0

    def test_small_matrix_collapses_to_one_shard(self):
        # 8 words < min_words(16): fan-out would be pure overhead.
        plan = ThreadShardPlanner().plan(8, 4)
        assert plan.n_shards == 1
        assert plan.boundaries == (0, 8)

    def test_even_split_covers_all_words(self):
        plan = ThreadShardPlanner(min_words=1).plan(100, 4)
        assert plan.n_shards == 4
        assert plan.boundaries[0] == 0
        assert plan.boundaries[-1] == 100
        assert all(size > 0 for size in plan.sizes)

    def test_explicit_shard_count(self):
        plan = ThreadShardPlanner(n_shards=3, min_words=1).plan(10, 8)
        assert plan.n_shards == 3
        assert sum(plan.sizes) == 10

    def test_min_words_caps_shards(self):
        plan = ThreadShardPlanner(min_words=16).plan(40, 8)
        # 40 // 16 == 2 shards at most, whatever the worker count.
        assert plan.n_shards == 2

    def test_never_more_shards_than_words(self):
        plan = ThreadShardPlanner(min_words=1).plan(3, 8)
        assert plan.n_shards == 3

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            ThreadShardPlanner(n_shards=0)
        with pytest.raises(ValueError):
            ThreadShardPlanner(min_words=0)
        with pytest.raises(ValueError):
            ThreadShardPlanner().plan(-1, 2)
        with pytest.raises(ValueError):
            ThreadShardPlanner().plan(10, 0)


# -- exactness across worker and shard counts ---------------------------


@pytest.mark.parametrize("workers", (1, 2, 4))
@pytest.mark.parametrize("n_shards", (None, 2, 5))
def test_threaded_equals_serial_bitmap(workers, n_shards):
    db = random_db(1000, seed=workers)
    candidates = list(combinations(range(N_ITEMS), 2))
    reference = BitmapCounter().count(db, candidates)
    planner = ThreadShardPlanner(n_shards=n_shards, min_words=1)
    with ThreadedBitmapCounter(workers=workers, planner=planner) as counter:
        assert counter.count(db, candidates) == reference


def test_uneven_word_split_is_exact():
    # 1001 transactions -> 16 words; 3 shards cannot split evenly.
    db = random_db(1001, seed=9)
    candidates = list(combinations(range(N_ITEMS), 3))
    reference = {c: db.support(c) for c in candidates}
    planner = ThreadShardPlanner(n_shards=3, min_words=1)
    with ThreadedBitmapCounter(workers=3, planner=planner) as counter:
        assert counter.count(db, candidates) == reference


def test_tiny_database_stays_serial():
    db = make_db([{0, 1}, {1, 2}])
    with ThreadedBitmapCounter(workers=4) as counter:
        assert counter.count(db, [(1,)]) == {(1,): 2}
        # One word -> one shard -> no executor was ever built.
        assert counter._executor is None


# -- lifecycle -----------------------------------------------------------


def test_close_is_idempotent_and_context_managed():
    counter = ThreadedBitmapCounter(workers=2)
    counter.close()
    counter.close()
    with ThreadedBitmapCounter(workers=2) as managed:
        db = random_db(2000, seed=1)
        managed.count(db, [(0, 1)])
        assert managed._executor is not None
    assert managed._executor is None


def test_workers_resolved_from_env(monkeypatch):
    monkeypatch.setenv("REPRO_WORKERS", "3")
    counter = ThreadedBitmapCounter()
    try:
        assert counter.workers == 3
    finally:
        counter.close()


# -- caller-side thread safety ------------------------------------------


def test_concurrent_callers_match_serial():
    """N caller threads hammering one shared counter stay exact.

    Every thread issues interleaved ``count()`` and ``upper_bounds()``
    calls against the same instance (shared pack cache, shared
    executor); every result must equal the serial reference.
    """
    sizes = [400, 0, 350, 250]
    db = random_db(1000, seed=5)
    pairs = list(combinations(range(N_ITEMS), 2))
    triples = list(combinations(range(N_ITEMS), 3))
    serial = BitmapCounter(segment_sizes=sizes)
    ref_pairs = serial.count(db, pairs)
    ref_triples = serial.count(db, triples)
    ref_bounds = serial.upper_bounds(db, pairs)

    counter = ThreadedBitmapCounter(
        workers=2,
        segment_sizes=sizes,
        planner=ThreadShardPlanner(min_words=1),
    )
    n_callers = 8
    barrier = threading.Barrier(n_callers)
    failures: list[str] = []

    def caller(index):
        barrier.wait()
        for round_ in range(3):
            if (index + round_) % 2:
                got = counter.count(db, pairs)
                expected = ref_pairs
                kind = "pairs"
            else:
                got = counter.count(db, triples)
                expected = ref_triples
                kind = "triples"
            if got != expected:
                failures.append(f"caller {index} round {round_}: {kind}")
            bounds = counter.upper_bounds(db, pairs)
            if not np.array_equal(bounds, ref_bounds):
                failures.append(f"caller {index} round {round_}: bounds")

    try:
        with ThreadPoolExecutor(max_workers=n_callers) as callers:
            list(callers.map(caller, range(n_callers)))
    finally:
        counter.close()
    assert not failures, failures


def test_concurrent_first_count_packs_once():
    """The pack-cache lock: racing first counts pack exactly once."""
    db = random_db(500, seed=2)
    counter = ThreadedBitmapCounter(workers=2)
    barrier = threading.Barrier(4)

    def first_count(_):
        barrier.wait()
        return counter.count(db, [(0, 1)])

    try:
        with ThreadPoolExecutor(max_workers=4) as callers:
            results = list(callers.map(first_count, range(4)))
        assert all(r == results[0] for r in results)
        packed = counter._packed
        assert packed is not None
        counter.count(db, [(1, 2)])
        assert counter._packed is packed
    finally:
        counter.close()
