"""Differential harness: the parallel engine must be *exactly* serial.

Three layers of evidence:

* a property (hypothesis, with a seeded-random fallback) that
  :class:`ParallelCounter` returns bit-identical counts to every serial
  engine on arbitrary databases, for every worker count and a shard
  count that does not divide the collection evenly;
* per-miner differential runs — Apriori (plain and +OSSM), DHP and
  Partition produce the same :class:`MiningResult` per level whether
  counting is serial or fanned out over 1/2/4 workers;
* explicit degenerate-input cases (empty candidate set, empty
  database, the empty itemset, out-of-domain items, mixed
  cardinalities) where every counter — serial or parallel — must agree.
"""

from itertools import combinations

import pytest

from repro.data import TransactionDatabase, generate_quest
from repro.mining import (
    DHP,
    Apriori,
    HashTreeCounter,
    OSSMPruner,
    Partition,
    SubsetCounter,
)
from repro.mining.counting import TidsetCounter
from repro.parallel import ParallelCounter, ShardPlanner, parallel_build_ossm

from ._support import N_ITEMS, given_database

WORKER_COUNTS = (1, 2, 4)

#: (workers, in-shard engine) pairs covering every engine and every
#: worker count the issue calls for.
WORKER_ENGINES = ((1, "subset"), (2, "tidset"), (4, "hashtree"), (2, "subset"))

SERIAL_ENGINES = {
    "subset": SubsetCounter,
    "tidset": TidsetCounter,
    "hashtree": lambda: HashTreeCounter(branch=3, leaf_capacity=2),
}


def serial_reference(db, candidates):
    """Counts from the database itself — independent of every engine."""
    return {candidate: db.support(candidate) for candidate in candidates}


# -- property: counts are bit-identical ---------------------------------


@given_database(max_examples=8)
def test_parallel_counts_equal_every_serial_engine(db):
    parallel_counters = [
        # 3 shards over arbitrary sizes: almost never an even split.
        ParallelCounter(
            workers=workers, engine=engine,
            planner=ShardPlanner(n_shards=3),
        )
        for workers, engine in WORKER_ENGINES
    ]
    try:
        for k in (1, 2, 3):
            candidates = list(combinations(range(N_ITEMS), k))
            reference = serial_reference(db, candidates)
            for factory in SERIAL_ENGINES.values():
                assert factory().count(db, candidates) == reference
            for counter in parallel_counters:
                assert counter.count(db, candidates) == reference
    finally:
        for counter in parallel_counters:
            counter.close()


# -- per-miner differential runs ----------------------------------------


@pytest.fixture(scope="module")
def workload():
    return generate_quest(
        n_transactions=300,
        n_items=15,
        avg_transaction_len=5,
        n_patterns=40,
        seed=7,
    )


@pytest.fixture(scope="module")
def workload_ossm(workload):
    bounds = [0, 60, 60, 150, 151, 300]  # empty + 1-txn segments included
    return parallel_build_ossm(workload, bounds, workers=1)


MINSUP = 6


def miner_for(kind, workers, ossm):
    if kind == "apriori":
        return Apriori(max_level=4, workers=workers)
    if kind == "apriori+ossm":
        return Apriori(
            pruner=OSSMPruner(ossm), max_level=4, workers=workers
        )
    if kind == "dhp":
        return DHP(n_buckets=64, max_level=4, workers=workers)
    assert kind == "partition"
    return Partition(
        n_partitions=3, auto_ossm=2, max_level=4, workers=workers
    )


@pytest.fixture(scope="module")
def serial_results(workload, workload_ossm):
    return {
        kind: miner_for(kind, None, workload_ossm).mine(workload, MINSUP)
        for kind in ("apriori", "apriori+ossm", "dhp", "partition")
    }


@pytest.mark.parametrize("workers", WORKER_COUNTS)
@pytest.mark.parametrize(
    "kind", ("apriori", "apriori+ossm", "dhp", "partition")
)
def test_miners_identical_per_level_under_fanout(
    kind, workers, workload, workload_ossm, serial_results
):
    serial = serial_results[kind]
    result = miner_for(kind, workers, workload_ossm).mine(workload, MINSUP)
    assert result.algorithm == serial.algorithm
    assert result.min_support == serial.min_support
    assert result.frequent == serial.frequent
    assert result.levels == serial.levels  # per-level accounting too


def test_sanity_miners_find_something(serial_results):
    for kind, result in serial_results.items():
        assert result.n_frequent > 0, kind


# -- degenerate inputs: every counter agrees ----------------------------


def all_counters():
    for name, factory in SERIAL_ENGINES.items():
        yield name, factory()
    for workers, engine in WORKER_ENGINES:
        yield (
            f"parallel-{engine}-w{workers}",
            ParallelCounter(workers=workers, engine=engine),
        )


@pytest.fixture(params=list(all_counters()), ids=lambda pair: pair[0])
def any_counter(request):
    counter = request.param[1]
    yield counter
    closer = getattr(counter, "close", None)
    if closer is not None:
        closer()


def test_no_candidates_yields_empty_dict(any_counter, tiny_db):
    assert any_counter.count(tiny_db, []) == {}


def test_empty_database_yields_zero_counts(any_counter):
    empty = TransactionDatabase([], n_items=4)
    assert any_counter.count(empty, [(0,), (1,)]) == {(0,): 0, (1,): 0}


def test_empty_itemset_counts_every_transaction(any_counter, tiny_db):
    assert any_counter.count(tiny_db, [()]) == {(): len(tiny_db)}


def test_empty_itemset_on_empty_database(any_counter):
    empty = TransactionDatabase([], n_items=4)
    assert any_counter.count(empty, [()]) == {(): 0}


def test_out_of_domain_items_count_zero(any_counter, tiny_db):
    candidates = [(0, 99), (1, 2)]
    counts = any_counter.count(tiny_db, candidates)
    assert counts[(0, 99)] == 0
    assert counts[(1, 2)] == tiny_db.support((1, 2))


def test_mixed_cardinality_rejected(any_counter, tiny_db):
    with pytest.raises(ValueError, match="cardinality"):
        any_counter.count(tiny_db, [(0,), (0, 1)])
