"""CLI failure modes: every operational error is one typed line + exit 2.

The contract under test (DESIGN.md §11): a missing input, a damaged
artifact, an unusable checkpoint directory, or a mis-specified resume
never escapes as a traceback — ``repro.cli.main`` prints
``error: <ExceptionType>: <message>`` to stderr and returns 2, so
scripts and CI can branch on the exit code and humans can read the
one-liner.
"""

import pytest

from repro.cli import main
from repro.resilience import FaultPlan, use_faults


@pytest.fixture
def data_file(tmp_path):
    path = tmp_path / "data.dat"
    assert main(
        [
            "generate", "--kind", "quest", "--out", str(path),
            "--transactions", "150", "--items", "40",
            "--patterns", "60", "--seed", "5",
        ]
    ) == 0
    return path


def _error_line(capsys):
    captured = capsys.readouterr()
    lines = [line for line in captured.err.splitlines() if line]
    assert len(lines) == 1, captured.err
    return lines[0]


class TestCliErrors:
    def test_missing_input_is_one_line(self, capsys):
        code = main(["mine", "--data", "no/such/file.dat"])
        assert code == 2
        line = _error_line(capsys)
        assert line.startswith("error: FileNotFoundError:")

    def test_corrupt_binary_input(self, tmp_path, capsys):
        bad = tmp_path / "bad.npz"
        bad.write_bytes(b"PK\x03\x04 this is not an archive")
        code = main(["mine", "--data", str(bad)])
        assert code == 2
        assert _error_line(capsys).startswith("error: CorruptArtifact:")

    def test_corrupt_fimi_input(self, tmp_path, capsys):
        bad = tmp_path / "bad.dat"
        bad.write_text("1 2 3\n4 oops 6\n")
        code = main(["mine", "--data", str(bad)])
        assert code == 2
        line = _error_line(capsys)
        assert line.startswith("error: CorruptArtifact:")
        assert "line 2" in line

    def test_checkpoint_dir_blocked_by_file(self, data_file, tmp_path,
                                            capsys):
        blocker = tmp_path / "blocker"
        blocker.write_text("")
        code = main(
            [
                "mine", "--data", str(data_file),
                "--checkpoint-dir", str(blocker),
            ]
        )
        assert code == 2
        assert "error: FileExistsError:" in _error_line(capsys)

    def test_resume_without_checkpoint_dir(self, data_file, capsys):
        code = main(["mine", "--data", str(data_file), "--resume"])
        assert code == 2
        assert _error_line(capsys) == (
            "error: ValueError: --resume requires --checkpoint-dir"
        )

    def test_injected_level_crash_then_resume(self, data_file, tmp_path,
                                              capsys):
        ckdir = tmp_path / "ck"
        plan = FaultPlan.from_spec("mining.level_crash:after=2", seed=9)
        with use_faults(plan):
            code = main(
                [
                    "mine", "--data", str(data_file), "--minsup", "0.02",
                    "--checkpoint-dir", str(ckdir),
                ]
            )
        assert code == 2
        assert _error_line(capsys).startswith("error: InjectedFault:")
        assert sorted(p.name for p in ckdir.glob("*.ckpt")) == [
            "level_0001.ckpt", "level_0002.ckpt",
        ]
        code = main(
            [
                "mine", "--data", str(data_file), "--minsup", "0.02",
                "--checkpoint-dir", str(ckdir), "--resume", "--top", "1",
            ]
        )
        assert code == 0

    def test_resume_fingerprint_mismatch(self, data_file, tmp_path,
                                         capsys):
        ckdir = tmp_path / "ck"
        assert main(
            [
                "mine", "--data", str(data_file), "--minsup", "0.05",
                "--checkpoint-dir", str(ckdir), "--top", "0",
            ]
        ) == 0
        capsys.readouterr()
        code = main(
            [
                "mine", "--data", str(data_file), "--minsup", "0.1",
                "--checkpoint-dir", str(ckdir), "--resume",
            ]
        )
        assert code == 2
        assert _error_line(capsys).startswith("error: CheckpointMismatch:")

    def test_serve_missing_ossm(self, capsys):
        code = main(["serve", "--ossm", "no/such/map.npz", "--queries", "-"])
        assert code == 2
        assert _error_line(capsys).startswith("error: FileNotFoundError:")

    def test_success_paths_unaffected(self, data_file, capsys):
        assert main(
            ["mine", "--data", str(data_file), "--minsup", "0.05",
             "--top", "1"]
        ) == 0
        assert capsys.readouterr().err == ""
