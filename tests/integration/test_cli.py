"""CLI integration tests (in-process, via repro.cli.main)."""

import pytest

from repro.cli import main
from repro.data import load


@pytest.fixture
def data_file(tmp_path):
    path = tmp_path / "data.dat"
    code = main(
        [
            "generate", "--kind", "quest", "--out", str(path),
            "--transactions", "400", "--items", "60",
            "--patterns", "120", "--seed", "3",
        ]
    )
    assert code == 0
    return path


class TestGenerate:
    def test_writes_requested_shape(self, data_file):
        db = load(data_file)
        assert len(db) == 400

    def test_skewed_and_alarms(self, tmp_path, capsys):
        for kind in ("skewed", "alarms"):
            out = tmp_path / f"{kind}.dat"
            assert main(
                [
                    "generate", "--kind", kind, "--out", str(out),
                    "--transactions", "100", "--items", "30",
                ]
            ) == 0
            assert load(out, n_items=30).n_items == 30

    def test_binary_output(self, tmp_path):
        out = tmp_path / "db.npz"
        assert main(
            [
                "generate", "--out", str(out),
                "--transactions", "50", "--items", "20",
            ]
        ) == 0
        assert len(load(out)) == 50


class TestOssmCommand:
    def test_builds_and_reports(self, data_file, tmp_path, capsys):
        out = tmp_path / "map.npz"
        code = main(
            [
                "ossm", "--data", str(data_file), "--out", str(out),
                "--algorithm", "greedy", "--segments", "5",
                "--page-size", "20",
            ]
        )
        assert code == 0
        captured = capsys.readouterr().out
        assert "greedy" in captured
        assert "5 segments" in captured
        from repro.core import OSSM

        assert OSSM.load(out).n_segments == 5

    def test_all_algorithms(self, data_file, tmp_path):
        for algorithm in ("rc", "random", "random-rc", "random-greedy"):
            out = tmp_path / f"{algorithm}.npz"
            assert main(
                [
                    "ossm", "--data", str(data_file), "--out", str(out),
                    "--algorithm", algorithm, "--segments", "4",
                    "--page-size", "20", "--n-mid", "10",
                ]
            ) == 0

    def test_bubble_list_option(self, data_file, tmp_path):
        out = tmp_path / "bubble.npz"
        assert main(
            [
                "ossm", "--data", str(data_file), "--out", str(out),
                "--segments", "4", "--page-size", "20",
                "--bubble-size", "15", "--bubble-minsup", "0.01",
            ]
        ) == 0


class TestMineCommand:
    def test_plain_and_with_ossm_agree(self, data_file, tmp_path, capsys):
        ossm_path = tmp_path / "map.npz"
        main(
            [
                "ossm", "--data", str(data_file), "--out", str(ossm_path),
                "--segments", "5", "--page-size", "20",
            ]
        )
        assert main(
            ["mine", "--data", str(data_file), "--minsup", "0.05",
             "--max-level", "2", "--top", "3"]
        ) == 0
        plain_out = capsys.readouterr().out
        assert main(
            ["mine", "--data", str(data_file), "--minsup", "0.05",
             "--ossm", str(ossm_path), "--max-level", "2", "--top", "3"]
        ) == 0
        ossm_out = capsys.readouterr().out
        # Same frequent-set count in the headline line.
        count = plain_out.split(" frequent")[0].rsplit(" ", 1)[-1]
        assert f"{count} frequent" in ossm_out

    def test_charm_runs(self, data_file, capsys):
        assert main(
            ["mine", "--data", str(data_file), "--minsup", "0.05",
             "--algorithm", "charm", "--top", "0"]
        ) == 0
        assert "charm" in capsys.readouterr().out

    def test_every_miner_runs(self, data_file, capsys):
        counts = set()
        for algorithm in (
            "apriori", "dhp", "fpgrowth", "eclat", "partition",
            "depthproject",
        ):
            assert main(
                ["mine", "--data", str(data_file), "--minsup", "0.05",
                 "--algorithm", algorithm, "--max-level", "2",
                 "--top", "0"]
            ) == 0
            out = capsys.readouterr().out
            counts.add(out.split(" frequent")[0].rsplit(" ", 1)[-1])
        assert len(counts) == 1  # all miners report the same count


@pytest.fixture
def ossm_file(data_file, tmp_path):
    path = tmp_path / "map.npz"
    assert main(
        [
            "ossm", "--data", str(data_file), "--out", str(path),
            "--segments", "5", "--page-size", "20",
        ]
    ) == 0
    return path


class TestServe:
    QUERIES = "1,2\n3 4\n1,2\n\n# comment\n5\n"

    def test_bounds_match_equation_one(self, ossm_file, tmp_path, capsys):
        queries = tmp_path / "queries.txt"
        queries.write_text(self.QUERIES)
        capsys.readouterr()
        assert main(
            ["serve", "--ossm", str(ossm_file), "--queries", str(queries),
             "--batch", "2"]
        ) == 0
        out = capsys.readouterr().out
        from repro.core import OSSM

        ossm = OSSM.load(ossm_file)
        lines = out.strip().splitlines()
        assert lines[:4] == [
            f"{{1,2}}: {ossm.upper_bound((1, 2))}",
            f"{{3,4}}: {ossm.upper_bound((3, 4))}",
            f"{{1,2}}: {ossm.upper_bound((1, 2))}",
            f"{{5}}: {ossm.upper_bound((5,))}",
        ]
        # The repeated {1,2} query must have been a cache hit.
        assert "served 4 queries at epoch 0: 1 cache hits / 3 misses" in (
            lines[-1]
        )

    def test_quiet_prints_only_summary(self, ossm_file, tmp_path, capsys):
        queries = tmp_path / "queries.txt"
        queries.write_text(self.QUERIES)
        capsys.readouterr()
        assert main(
            ["serve", "--ossm", str(ossm_file), "--queries", str(queries),
             "--quiet"]
        ) == 0
        lines = capsys.readouterr().out.strip().splitlines()
        assert len(lines) == 1 and lines[0].startswith("served 4 queries")

    def test_reads_queries_from_stdin(
        self, ossm_file, capsys, monkeypatch
    ):
        import io

        monkeypatch.setattr("sys.stdin", io.StringIO("1,2\n3\n"))
        capsys.readouterr()
        assert main(["serve", "--ossm", str(ossm_file)]) == 0
        out = capsys.readouterr().out
        assert "served 2 queries" in out


class TestRecipeCommand:
    def test_recommendation_printed(self, capsys):
        assert main(
            ["recipe", "--n-user", "150", "--pages", "100", "--skewed"]
        ) == 0
        assert capsys.readouterr().out.strip() == "random"

    def test_greedy_branch(self, capsys):
        assert main(
            ["recipe", "--n-user", "40", "--pages", "100"]
        ) == 0
        assert capsys.readouterr().out.strip() == "greedy"


class TestObservabilityFlags:
    def test_trace_and_metrics_out(self, data_file, tmp_path):
        import json

        ossm_path = tmp_path / "map.npz"
        main(
            [
                "ossm", "--data", str(data_file), "--out", str(ossm_path),
                "--segments", "5", "--page-size", "20",
            ]
        )
        trace_path = tmp_path / "trace.json"
        metrics_path = tmp_path / "metrics.json"
        assert main(
            ["mine", "--data", str(data_file), "--minsup", "0.05",
             "--ossm", str(ossm_path), "--max-level", "2", "--top", "0",
             "--trace-out", str(trace_path),
             "--metrics-out", str(metrics_path)]
        ) == 0

        spans = json.loads(trace_path.read_text())["spans"]
        names = [span["name"] for span in spans]
        assert "apriori.mine" in names
        mine_span = spans[names.index("apriori.mine")]
        levels = [
            child["metadata"]["level"] for child in mine_span["children"]
            if child["name"] == "apriori.level"
        ]
        assert levels == [1, 2]

        snapshot = json.loads(metrics_path.read_text())
        counters = snapshot["counters"]
        assert counters["pruner.ossm.kept"] > 0
        assert (
            counters["pruner.ossm.kept"] + counters["pruner.ossm.pruned"]
            == counters["mining.candidates_generated"]
        )
        assert snapshot["histograms"]["ossm.bound_gap"]["count"] > 0

    def test_log_level_flag(self, data_file, capsys):
        assert main(
            ["mine", "--data", str(data_file), "--minsup", "0.05",
             "--max-level", "2", "--top", "0", "--log-level", "DEBUG"]
        ) == 0
        from repro.obs.log import reset_logging

        reset_logging()
        assert "level 2:" in capsys.readouterr().err
