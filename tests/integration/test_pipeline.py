"""End-to-end integration tests: generate → page → segment → mine → rules."""

import numpy as np
import pytest

from repro import (
    GreedySegmenter,
    OSSMPruner,
    PagedDatabase,
    RandomGreedySegmenter,
    RandomSegmenter,
    apriori,
    bubble_list_for,
    dhp,
    fpgrowth,
    generate_alarms,
    generate_quest,
    generate_rules,
    generate_skewed,
)


class TestFullPipeline:
    def test_quest_pipeline(self):
        db = generate_quest(
            n_transactions=1500, n_items=150, n_patterns=300, seed=9
        )
        paged = PagedDatabase(db, page_size=50)
        seg = GreedySegmenter().segment(paged, 8)
        plain = apriori(db, 0.02, max_level=3)
        fast = apriori(
            db, 0.02, pruner=OSSMPruner(seg.ossm), max_level=3
        )
        assert plain.same_itemsets(fast)
        assert fast.candidates_counted() <= plain.candidates_counted()
        rules = generate_rules(fast, len(db), min_confidence=0.5)
        for rule in rules:
            assert rule.support > 0 and 0.5 <= rule.confidence <= 1.0

    def test_skewed_pipeline_prunes_harder_than_regular(self):
        """Section 3's claim: the more skewed the data, the more
        effective the OSSM."""
        common = dict(n_transactions=2000, n_items=200, seed=4)
        regular = generate_quest(n_patterns=400, **common)
        seasonal = generate_skewed(skew=0.9, **common)

        def kept_fraction(db):
            paged = PagedDatabase(db, page_size=50)
            ossm = RandomSegmenter(seed=0).segment(paged, 20).ossm
            plain = apriori(db, 0.02, max_level=2)
            fast = apriori(db, 0.02, pruner=OSSMPruner(ossm), max_level=2)
            assert plain.same_itemsets(fast)
            base = plain.level(2).candidates_counted
            return fast.level(2).candidates_counted / max(base, 1)

        assert kept_fraction(seasonal) < kept_fraction(regular)

    def test_alarm_pipeline(self):
        db = generate_alarms(n_windows=1200, n_alarm_types=80, seed=2)
        paged = PagedDatabase(db, page_size=40)
        bubble = bubble_list_for(db, threshold=0.05, size=20)
        seg = RandomGreedySegmenter(n_mid=15, seed=0, items=bubble).segment(
            paged, 8
        )
        plain = dhp(db, 0.1, n_buckets=1024, max_level=2)
        fast = dhp(
            db, 0.1, n_buckets=1024,
            pruner=OSSMPruner(seg.ossm), max_level=2,
        )
        assert plain.same_itemsets(fast)

    def test_query_independence(self):
        """One OSSM, many thresholds (Section 3): build once, query at
        whatever threshold exploration lands on."""
        db = generate_quest(
            n_transactions=1000, n_items=120, n_patterns=240, seed=5
        )
        paged = PagedDatabase(db, page_size=25)
        ossm = GreedySegmenter().segment(paged, 10).ossm
        for minsup in (0.01, 0.02, 0.05, 0.2):
            plain = apriori(db, minsup, max_level=2)
            fast = apriori(db, minsup, pruner=OSSMPruner(ossm), max_level=2)
            assert plain.same_itemsets(fast), minsup

    def test_candidate_free_baseline_agrees(self):
        db = generate_quest(
            n_transactions=800, n_items=100, n_patterns=200, seed=6
        )
        assert fpgrowth(db, 0.03).same_itemsets(apriori(db, 0.03))

    def test_ossm_persistence_roundtrip_in_pipeline(self, tmp_path):
        db = generate_quest(
            n_transactions=600, n_items=80, n_patterns=160, seed=7
        )
        paged = PagedDatabase(db, page_size=30)
        ossm = GreedySegmenter().segment(paged, 6).ossm
        path = tmp_path / "built.npz"
        ossm.save(path)
        from repro import OSSM

        reloaded = OSSM.load(path)
        plain = apriori(db, 0.03, max_level=2)
        fast = apriori(db, 0.03, pruner=OSSMPruner(reloaded), max_level=2)
        assert plain.same_itemsets(fast)
