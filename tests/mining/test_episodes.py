"""Tests for WINEPI episode mining and its OSSM hook."""

from itertools import combinations, permutations

import pytest

from repro.core import OSSM
from repro.data import EventSequence, WindowView
from repro.mining import (
    EpisodeMiner,
    OSSMPruner,
    mine_parallel_episodes,
    mine_serial_episodes,
)
from repro.mining.episodes import _window_supports_serial


def brute_force_parallel(sequence, width, threshold, max_len=3):
    """Oracle: count windows containing each type set."""
    view = WindowView(sequence, width)
    window_sets = [
        frozenset(e for _, e in view.window_events(i))
        for i in range(view.n_windows)
    ]
    counts = {}
    for size in range(1, max_len + 1):
        for episode in combinations(range(sequence.n_types), size):
            count = sum(
                1 for w in window_sets if w.issuperset(episode)
            )
            if count >= threshold:
                counts[episode] = count
    return counts


def brute_force_serial(sequence, width, threshold, max_len=3):
    """Oracle: count windows containing each ordered type sequence."""
    view = WindowView(sequence, width)
    windows = [view.window_events(i) for i in range(view.n_windows)]
    counts = {}
    types = range(sequence.n_types)
    for size in range(1, max_len + 1):
        seen = set()
        for combo in combinations(types, size):
            for order in permutations(combo):
                seen.add(order)
        # also repeated-type episodes of size 2
        if size == 2:
            seen.update((t, t) for t in types)
        for episode in seen:
            count = sum(
                1
                for events in windows
                if _window_supports_serial(events, episode)
            )
            if count >= threshold:
                counts[episode] = count
    return counts


@pytest.fixture
def alarm_like():
    """A small bursty sequence: cascade a->b->c repeats, d is noise."""
    events = []
    for start in (0, 10, 20, 30, 40):
        events += [(start, 0), (start + 1, 1), (start + 2, 2)]
    events += [(5, 3), (17, 3), (33, 3)]
    return EventSequence(events, n_types=4)


class TestSerialContainment:
    def test_in_order(self):
        events = [(0, 5), (1, 7), (2, 9)]
        assert _window_supports_serial(events, (5, 9))
        assert _window_supports_serial(events, (5, 7, 9))

    def test_out_of_order(self):
        events = [(0, 9), (1, 5)]
        assert not _window_supports_serial(events, (5, 9))

    def test_strictly_increasing_times(self):
        """Two types at the same tick do not form a serial pair."""
        events = [(0, 5), (0, 9)]
        assert not _window_supports_serial(events, (5, 9))

    def test_repeated_type(self):
        assert _window_supports_serial([(0, 4), (3, 4)], (4, 4))
        assert not _window_supports_serial([(0, 4)], (4, 4))


class TestParallelEpisodes:
    def test_against_oracle(self, alarm_like):
        for threshold in (3, 8, 15):
            result = mine_parallel_episodes(
                alarm_like, width=5, min_support=threshold, max_level=3
            )
            assert result.frequent == brute_force_parallel(
                alarm_like, 5, threshold
            ), threshold

    def test_relative_threshold(self, alarm_like):
        view = WindowView(alarm_like, 5)
        absolute = mine_parallel_episodes(alarm_like, 5, 10)
        relative = mine_parallel_episodes(
            alarm_like, 5, 10 / view.n_windows
        )
        assert absolute.frequent == relative.frequent

    def test_cascade_is_frequent(self, alarm_like):
        result = mine_parallel_episodes(alarm_like, width=5, min_support=10)
        assert (0, 1, 2) in result.frequent

    def test_algorithm_name(self, alarm_like):
        result = mine_parallel_episodes(alarm_like, 4, 5)
        assert result.algorithm == "winepi-parallel"


class TestSerialEpisodes:
    def test_against_oracle(self, alarm_like):
        for threshold in (5, 10):
            result = mine_serial_episodes(
                alarm_like, width=5, min_support=threshold, max_level=3
            )
            assert result.frequent == brute_force_serial(
                alarm_like, 5, threshold
            ), threshold

    def test_order_matters(self, alarm_like):
        result = mine_serial_episodes(alarm_like, width=5, min_support=10)
        assert (0, 1) in result.frequent      # a then b: the cascade
        assert (1, 0) not in result.frequent  # b then a: never happens

    def test_serial_support_bounded_by_parallel(self, alarm_like):
        parallel = mine_parallel_episodes(alarm_like, 5, 1, max_level=3)
        serial = mine_serial_episodes(alarm_like, 5, 1, max_level=3)
        for episode, support in serial.frequent.items():
            shadow = tuple(sorted(set(episode)))
            assert support <= parallel.frequent[shadow]

    def test_validation(self):
        with pytest.raises(ValueError):
            EpisodeMiner(width=0)
        with pytest.raises(ValueError):
            EpisodeMiner(width=3, kind="zigzag")


class TestOSSMHook:
    def _ossm(self, sequence, width, n_segments=6):
        import numpy as np

        db = WindowView(sequence, width).to_database()
        bounds = np.linspace(0, len(db), n_segments + 1).astype(int)
        return OSSM.from_segments(
            [db[int(a):int(b)] for a, b in zip(bounds, bounds[1:])]
        )

    def test_parallel_output_unchanged(self, alarm_like):
        pruner = OSSMPruner(self._ossm(alarm_like, 5))
        plain = mine_parallel_episodes(alarm_like, 5, 8)
        fast = mine_parallel_episodes(alarm_like, 5, 8, pruner=pruner)
        assert plain.frequent == fast.frequent
        assert fast.algorithm == "winepi-parallel+ossm"

    def test_serial_output_unchanged(self, alarm_like):
        pruner = OSSMPruner(self._ossm(alarm_like, 5))
        plain = mine_serial_episodes(alarm_like, 5, 8, max_level=3)
        fast = mine_serial_episodes(
            alarm_like, 5, 8, pruner=pruner, max_level=3
        )
        assert plain.frequent == fast.frequent

    def test_pruning_reduces_counted_candidates(self):
        from repro.data import generate_alarms

        db = generate_alarms(n_windows=400, n_alarm_types=40, seed=5)
        sequence = EventSequence.from_database(db)
        pruner = OSSMPruner(self._ossm(sequence, 3, n_segments=20))
        plain = mine_parallel_episodes(sequence, 3, 0.1, max_level=2)
        fast = mine_parallel_episodes(
            sequence, 3, 0.1, pruner=pruner, max_level=2
        )
        assert plain.frequent == fast.frequent
        assert fast.candidates_counted() <= plain.candidates_counted()

    def test_stats_balance(self, alarm_like):
        pruner = OSSMPruner(self._ossm(alarm_like, 5))
        result = mine_parallel_episodes(alarm_like, 5, 8, pruner=pruner)
        for stats in result.levels:
            assert (
                stats.candidates_pruned + stats.candidates_counted
                == stats.candidates_generated
            )
