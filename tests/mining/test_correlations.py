"""Tests for chi-squared correlation mining."""

import numpy as np
import pytest

from repro.core import build_from_database
from repro.data import TransactionDatabase
from repro.mining import OSSMPruner
from repro.mining.correlations import (
    ContingencyTable,
    CorrelationMiner,
    contingency_table,
    mine_correlations,
)


def correlated_db(n=400, seed=0):
    """Items 0,1 strongly positively correlated; 2 independent."""
    rng = np.random.default_rng(seed)
    txns = []
    for _ in range(n):
        txn = set()
        if rng.random() < 0.5:
            txn.update((0, 1))  # bought together
        else:
            if rng.random() < 0.15:
                txn.add(0)
            if rng.random() < 0.15:
                txn.add(1)
        if rng.random() < 0.4:
            txn.add(2)
        txns.append(tuple(sorted(txn)) or (3,))
    return TransactionDatabase(txns, n_items=4)


def independent_db(n=400, seed=1):
    rng = np.random.default_rng(seed)
    txns = []
    for _ in range(n):
        txn = tuple(
            int(i) for i in np.flatnonzero(rng.random(3) < 0.4)
        )
        txns.append(txn or (3,))
    return TransactionDatabase(txns, n_items=4)


class TestContingencyTable:
    def test_cells_partition_collection(self, tiny_db):
        table = contingency_table(tiny_db, (0, 1))
        assert sum(table.cells) == len(tiny_db)

    def test_all_present_cell_is_support(self, tiny_db):
        table = contingency_table(tiny_db, (0, 1))
        assert table.cells[0b11] == tiny_db.support((0, 1))

    def test_marginals(self, tiny_db):
        table = contingency_table(tiny_db, (0, 1))
        supports = tiny_db.item_supports()
        assert table.marginal(0) == supports[0]
        assert table.marginal(1) == supports[1]

    def test_expected_sums_to_n(self, tiny_db):
        table = contingency_table(tiny_db, (0, 1, 2))
        total = sum(table.expected(p) for p in range(8))
        assert total == pytest.approx(len(tiny_db))

    def test_chi_squared_zero_for_perfect_independence(self):
        # Constructed 2x2 with exact independence: P(0)=P(1)=1/2.
        db = TransactionDatabase(
            [(0, 1)] * 25 + [(0,)] * 25 + [(1,)] * 25 + [()] * 25,
            n_items=2,
        )
        table = contingency_table(db, (0, 1))
        assert table.chi_squared() == pytest.approx(0.0)

    def test_chi_squared_high_for_perfect_correlation(self):
        db = TransactionDatabase([(0, 1)] * 50 + [()] * 50, n_items=2)
        table = contingency_table(db, (0, 1))
        assert table.chi_squared() == pytest.approx(100.0)  # == n
        assert table.p_value() < 1e-10


class TestMiner:
    def test_finds_planted_correlation(self):
        db = correlated_db()
        correlated = mine_correlations(db, 0.05, max_level=2)
        assert (0, 1) in correlated

    def test_independent_items_not_flagged(self):
        db = independent_db()
        correlated = mine_correlations(
            db, 0.05, significance=0.01, max_level=2
        )
        assert (0, 1) not in correlated
        assert (0, 2) not in correlated

    def test_minimality(self):
        """A superset of a reported set is never reported."""
        db = correlated_db()
        correlated = mine_correlations(db, 0.02, max_level=3)
        for found in correlated:
            for other in correlated:
                assert not set(found) < set(other)

    def test_ossm_pruning_changes_nothing(self):
        db = correlated_db()
        ossm = build_from_database(db, list(range(0, len(db) + 1, 50)))
        plain = mine_correlations(db, 0.05, max_level=3)
        fast = mine_correlations(
            db, 0.05, pruner=OSSMPruner(ossm), max_level=3
        )
        assert plain == fast

    def test_accounting(self):
        db = correlated_db()
        miner = CorrelationMiner(max_level=2)
        _, accounting = miner.mine(db, 0.05)
        assert accounting.level(2).candidates_generated > 0
        assert accounting.algorithm == "chi-squared"

    def test_validity_screen(self):
        """Tiny expected cells suppress the test instead of firing it."""
        db = TransactionDatabase([(0, 1)] * 3 + [(2,)] * 3, n_items=3)
        correlated = mine_correlations(
            db, 1, min_expected=5.0, max_level=2
        )
        assert correlated == {}

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            CorrelationMiner(significance=0.0)
        with pytest.raises(ValueError):
            CorrelationMiner(max_level=1)
