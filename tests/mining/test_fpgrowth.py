"""Tests for the FP-growth baseline."""

import pytest

from repro.data import TransactionDatabase
from repro.mining import apriori, fpgrowth
from tests.conftest import brute_force_frequent


class TestCorrectness:
    def test_against_brute_force(self, tiny_db):
        for threshold in (1, 2, 3, 4):
            result = fpgrowth(tiny_db, threshold)
            assert result.frequent == brute_force_frequent(
                tiny_db, threshold
            ), threshold

    def test_matches_apriori_on_quest(self, quest_db):
        for minsup in (0.02, 0.05):
            assert fpgrowth(quest_db, minsup).same_itemsets(
                apriori(quest_db, minsup)
            )

    def test_textbook_example(self):
        """The worked example from the FP-growth paper (SIGMOD 2000)."""
        db = TransactionDatabase.from_named(
            [
                ["f", "a", "c", "d", "g", "i", "m", "p"],
                ["a", "b", "c", "f", "l", "m", "o"],
                ["b", "f", "h", "j", "o"],
                ["b", "c", "k", "s", "p"],
                ["a", "f", "c", "e", "l", "p", "m", "n"],
            ]
        )
        result = fpgrowth(db, 3)
        vocab = db.vocabulary
        fcamp = tuple(sorted(vocab.id_of(x) for x in "fcam"))
        assert result.frequent[fcamp] == 3
        assert len(result.itemsets_of_size(1)) == 6  # f,c,a,b,m,p

    def test_single_path_shortcut(self):
        """A chain database exercises the single-path combination emit."""
        db = TransactionDatabase(
            [(0, 1, 2, 3)] * 3 + [(0, 1, 2)] * 2 + [(0, 1)] * 2, n_items=4
        )
        result = fpgrowth(db, 2)
        assert result.frequent == brute_force_frequent(db, 2)

    def test_max_level(self, tiny_db):
        result = fpgrowth(tiny_db, 1, max_level=2)
        assert result.max_level <= 2
        assert result.frequent == brute_force_frequent(
            tiny_db, 1, max_level=2
        )

    def test_empty_database(self):
        db = TransactionDatabase([], n_items=2)
        assert fpgrowth(db, 1).frequent == {}

    def test_nothing_frequent(self, tiny_db):
        assert fpgrowth(tiny_db, 100).frequent == {}

    def test_supports_exact(self, quest_db):
        result = fpgrowth(quest_db, 0.05)
        for itemset, support in result.frequent.items():
            assert support == quest_db.support(itemset)

    def test_level_stats_filled(self, tiny_db):
        result = fpgrowth(tiny_db, 2)
        assert result.level(1).frequent == len(result.itemsets_of_size(1))
