"""Tests for the shared mining result types."""

import pytest

from repro.mining import MiningResult, resolve_min_count
from repro.mining.base import LevelStats, as_itemset


class TestResolveMinCount:
    def test_relative(self):
        assert resolve_min_count(1000, 0.01) == 10
        assert resolve_min_count(1000, 0.011) == 11
        assert resolve_min_count(3, 0.5) == 2  # ceil(1.5)

    def test_absolute(self):
        assert resolve_min_count(1000, 7) == 7

    def test_at_least_one(self):
        assert resolve_min_count(10, 0.001) == 1

    def test_validation(self):
        with pytest.raises(ValueError):
            resolve_min_count(10, 0.0)
        with pytest.raises(ValueError):
            resolve_min_count(10, 1.0001)
        with pytest.raises(ValueError):
            resolve_min_count(10, 0)
        with pytest.raises(TypeError):
            resolve_min_count(10, True)


class TestMiningResult:
    @pytest.fixture
    def result(self):
        out = MiningResult(
            frequent={(0,): 5, (1,): 4, (0, 1): 3, (0, 1, 2): 2},
            min_support=2,
            algorithm="test",
        )
        stats = out.level(2)
        stats.candidates_generated = 10
        stats.candidates_pruned = 4
        stats.candidates_counted = 6
        stats.frequent = 1
        return out

    def test_level_autocreates(self, result):
        assert result.level(4).level == 4
        assert len(result.levels) == 4

    def test_itemsets_of_size(self, result):
        assert result.itemsets_of_size(1) == {(0,): 5, (1,): 4}
        assert result.itemsets_of_size(3) == {(0, 1, 2): 2}
        assert result.itemsets_of_size(9) == {}

    def test_n_frequent_and_max_level(self, result):
        assert result.n_frequent == 4
        assert result.max_level == 3

    def test_max_level_empty(self):
        empty = MiningResult(frequent={}, min_support=1, algorithm="x")
        assert empty.max_level == 0

    def test_candidates_counted(self, result):
        assert result.candidates_counted(2) == 6
        assert result.candidates_counted(9) == 0
        assert result.candidates_counted() == 6

    def test_candidates_generated(self, result):
        assert result.candidates_generated(2) == 10
        assert result.candidates_generated() == 10
        assert result.candidates_generated(7) == 0

    def test_same_itemsets(self, result):
        clone = MiningResult(
            frequent=dict(result.frequent), min_support=9,
            algorithm="other",
        )
        assert result.same_itemsets(clone)
        clone.frequent[(5,)] = 1
        assert not result.same_itemsets(clone)

    def test_sorted_itemsets(self, result):
        ordering = [itemset for itemset, _ in result.sorted_itemsets()]
        assert ordering == [(0,), (1,), (0, 1), (0, 1, 2)]


class TestHelpers:
    def test_as_itemset(self):
        assert as_itemset([3, 1, 3]) == (1, 3)
        assert as_itemset(()) == ()

    def test_level_stats_defaults(self):
        stats = LevelStats(level=2)
        assert stats.candidates_generated == 0
        assert stats.frequent == 0
