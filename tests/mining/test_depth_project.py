"""Tests for the DepthProject-style miner and its OSSM hook."""

from repro.core import OSSM, build_from_database
from repro.data import TransactionDatabase
from repro.mining import OSSMPruner, apriori, depth_project
from tests.conftest import brute_force_frequent


class TestCorrectness:
    def test_against_brute_force(self, tiny_db):
        for threshold in (1, 2, 3):
            result = depth_project(tiny_db, threshold)
            assert result.frequent == brute_force_frequent(
                tiny_db, threshold
            ), threshold

    def test_matches_apriori_on_quest(self, quest_db):
        for minsup in (0.02, 0.05):
            assert depth_project(quest_db, minsup).same_itemsets(
                apriori(quest_db, minsup)
            )

    def test_long_patterns(self):
        """The algorithm's raison d'être: one long pattern, found whole."""
        db = TransactionDatabase(
            [tuple(range(10))] * 5 + [(0, 1)] * 3, n_items=10
        )
        result = depth_project(db, 5)
        assert tuple(range(10)) in result.frequent
        assert result.frequent[tuple(range(10))] == 5

    def test_max_level(self, tiny_db):
        result = depth_project(tiny_db, 1, max_level=2)
        assert result.max_level <= 2
        assert result.frequent == brute_force_frequent(
            tiny_db, 1, max_level=2
        )

    def test_empty_database(self):
        db = TransactionDatabase([], n_items=2)
        assert depth_project(db, 1).frequent == {}


class TestOSSMHook:
    def test_output_identical_with_pruner(self, quest_db):
        ossm = build_from_database(
            quest_db, list(range(0, len(quest_db) + 1, 30))
        )
        plain = depth_project(quest_db, 0.03)
        fast = depth_project(quest_db, 0.03, pruner=OSSMPruner(ossm))
        assert plain.same_itemsets(fast)

    def test_pruner_reduces_counted_extensions(self, quest_db):
        ossm = build_from_database(
            quest_db, list(range(0, len(quest_db) + 1, 20))
        )
        plain = depth_project(quest_db, 0.02)
        fast = depth_project(quest_db, 0.02, pruner=OSSMPruner(ossm))
        assert fast.candidates_counted() <= plain.candidates_counted()

    def test_algorithm_label(self, tiny_db):
        result = depth_project(
            tiny_db, 2, pruner=OSSMPruner(OSSM.single_segment(tiny_db))
        )
        assert result.algorithm == "depthproject+ossm"

    def test_stats_balance(self, quest_db):
        ossm = build_from_database(
            quest_db, list(range(0, len(quest_db) + 1, 30))
        )
        result = depth_project(quest_db, 0.03, pruner=OSSMPruner(ossm))
        for stats in result.levels:
            assert (
                stats.candidates_pruned + stats.candidates_counted
                == stats.candidates_generated
            )
