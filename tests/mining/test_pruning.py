"""Tests for the candidate pruners."""

import numpy as np
import pytest

from repro.core import OSSM, GeneralizedOSSM
from repro.mining import (
    ChainPruner,
    GeneralizedOSSMPruner,
    NullPruner,
    OSSMPruner,
)


@pytest.fixture
def ossm(example1_matrix):
    return OSSM(example1_matrix)


class TestNullPruner:
    def test_keeps_everything(self):
        candidates = [(0, 1), (1, 2)]
        assert NullPruner().prune(candidates, 999) == candidates

    def test_label_empty(self):
        assert NullPruner().label == ""


class TestOSSMPruner:
    def test_prunes_by_bound(self, ossm):
        pruner = OSSMPruner(ossm)
        # Example 1: bound({a,b}) = 80.
        assert pruner.prune([(0, 1)], 81) == []
        assert pruner.prune([(0, 1)], 80) == [(0, 1)]

    def test_soundness_never_drops_frequent(self, ossm, tiny_db):
        segments = [tiny_db[:4], tiny_db[4:]]
        pruner = OSSMPruner(OSSM.from_segments(segments))
        from itertools import combinations

        for threshold in (1, 2, 3):
            candidates = list(combinations(range(tiny_db.n_items), 2))
            survivors = set(pruner.prune(candidates, threshold))
            for candidate in candidates:
                if tiny_db.support(candidate) >= threshold:
                    assert candidate in survivors

    def test_label(self, ossm):
        assert OSSMPruner(ossm).label == "+ossm"

    def test_empty_candidates(self, ossm):
        assert OSSMPruner(ossm).prune([], 10) == []


class TestGeneralizedPruner:
    def test_tighter_than_singleton(self, tiny_db):
        segments = [tiny_db[:4], tiny_db[4:]]
        classic = OSSMPruner(OSSM.from_segments(segments))
        general = GeneralizedOSSMPruner(
            GeneralizedOSSM.from_segments(segments, max_cardinality=2)
        )
        from itertools import combinations

        candidates = list(combinations(range(tiny_db.n_items), 3))
        for threshold in (1, 2, 3):
            kept_classic = set(classic.prune(candidates, threshold))
            kept_general = set(general.prune(candidates, threshold))
            assert kept_general <= kept_classic

    def test_label(self, tiny_db):
        gossm = GeneralizedOSSM.from_segments([tiny_db])
        assert GeneralizedOSSMPruner(gossm).label == "+gossm"


class TestChainPruner:
    def test_intersection_of_survivors(self, ossm):
        chain = ChainPruner([NullPruner(), OSSMPruner(ossm)])
        assert chain.prune([(0, 1)], 81) == []
        assert chain.prune([(0, 1)], 80) == [(0, 1)]

    def test_labels_concatenate(self, ossm):
        chain = ChainPruner([OSSMPruner(ossm), OSSMPruner(ossm)])
        assert chain.label == "+ossm+ossm"

    def test_empty_chain_rejected(self):
        with pytest.raises(ValueError):
            ChainPruner([])

    def test_short_circuits_when_empty(self, ossm):
        class Exploding(NullPruner):
            def prune(self, candidates, min_support):
                raise AssertionError("should not be reached")

        chain = ChainPruner([OSSMPruner(ossm), Exploding()])
        # Threshold so high the OSSM removes everything; the second
        # pruner must not run.
        assert chain.prune([(0, 1)], 10**9) == []
