"""Tests for DHP (hash filtering + transaction trimming)."""

import pytest

from repro.core import build_from_database
from repro.data import TransactionDatabase
from repro.mining import DHP, OSSMPruner, apriori, dhp
from tests.conftest import brute_force_frequent


class TestParameterValidation:
    def test_invalid_buckets(self):
        with pytest.raises(ValueError):
            DHP(n_buckets=0)

    def test_invalid_hash_passes(self):
        with pytest.raises(ValueError):
            DHP(hash_passes=1)


class TestCorrectness:
    def test_against_brute_force(self, tiny_db):
        for threshold in (1, 2, 3):
            result = dhp(tiny_db, threshold, n_buckets=64)
            assert result.frequent == brute_force_frequent(
                tiny_db, threshold
            )

    def test_matches_apriori_on_quest(self, quest_db):
        reference = apriori(quest_db, 0.02)
        for buckets in (16, 256, 4096):
            result = dhp(quest_db, 0.02, n_buckets=buckets)
            assert result.same_itemsets(reference), buckets

    def test_tiny_bucket_count_still_exact(self, tiny_db):
        """Hash filtering with massive collisions must stay sound."""
        result = dhp(tiny_db, 2, n_buckets=1)
        assert result.frequent == brute_force_frequent(tiny_db, 2)

    def test_trimming_disabled_same_output(self, quest_db):
        with_trim = DHP(n_buckets=512, trim=True).mine(quest_db, 0.02)
        without = DHP(n_buckets=512, trim=False).mine(quest_db, 0.02)
        assert with_trim.same_itemsets(without)

    def test_deeper_hash_passes_same_output(self, quest_db):
        shallow = DHP(n_buckets=512, hash_passes=2).mine(quest_db, 0.03)
        deep = DHP(n_buckets=512, hash_passes=3).mine(quest_db, 0.03)
        assert shallow.same_itemsets(deep)

    def test_max_level(self, tiny_db):
        result = dhp(tiny_db, 1, max_level=2, n_buckets=64)
        assert result.max_level <= 2
        assert result.frequent == brute_force_frequent(
            tiny_db, 1, max_level=2
        )


class TestHashFiltering:
    def test_filter_reduces_c2_vs_apriori(self, quest_db):
        """DHP's point: C2 after hashing < Apriori's raw C2."""
        plain = apriori(quest_db, 0.03, max_level=2)
        hashed = dhp(quest_db, 0.03, n_buckets=8192, max_level=2)
        assert (
            hashed.level(2).candidates_counted
            <= plain.level(2).candidates_counted
        )

    def test_more_buckets_prune_no_less(self, quest_db):
        few = dhp(quest_db, 0.03, n_buckets=32, max_level=2)
        many = dhp(quest_db, 0.03, n_buckets=16384, max_level=2)
        assert (
            many.level(2).candidates_counted
            <= few.level(2).candidates_counted
        )


class TestSection7Combination:
    def test_ossm_reduces_c2_further(self, quest_db):
        ossm = build_from_database(
            quest_db, list(range(0, len(quest_db) + 1, 20))
        )
        plain = dhp(quest_db, 0.02, n_buckets=4096, max_level=2)
        combined = dhp(
            quest_db,
            0.02,
            n_buckets=4096,
            pruner=OSSMPruner(ossm),
            max_level=2,
        )
        assert plain.same_itemsets(combined)
        assert (
            combined.level(2).candidates_counted
            <= plain.level(2).candidates_counted
        )

    def test_algorithm_label(self, tiny_db):
        from repro.core import OSSM

        result = dhp(
            tiny_db, 2, pruner=OSSMPruner(OSSM.single_segment(tiny_db))
        )
        assert result.algorithm == "dhp+ossm"


class TestTrimming:
    def test_trimmed_stream_preserves_higher_levels(self):
        """Crafted case where trimming actually removes items."""
        db = TransactionDatabase(
            [(0, 1, 2, 9)] * 4 + [(0, 1, 2)] * 2 + [(9,)] * 2 + [(3, 4)] * 3,
            n_items=10,
        )
        result = dhp(db, 3, n_buckets=128)
        assert result.frequent == brute_force_frequent(db, 3)
