"""Tests for GSP sequential-pattern mining."""

from itertools import combinations, product

import pytest

from repro.core import OSSM
from repro.data import TransactionDatabase
from repro.data.sequences import SequenceDatabase
from repro.mining import OSSMPruner
from repro.mining.gsp import GSP, _join, _subpatterns, gsp


def all_patterns_up_to_3(n_items):
    """Every sequential pattern with at most 3 items total."""
    items = range(n_items)
    patterns = [((x,),) for x in items]
    # size 2
    patterns += [((x,), (y,)) for x, y in product(items, repeat=2)]
    patterns += [((x, y),) for x, y in combinations(items, 2)]
    # size 3: element shapes [1,1,1], [1,2], [2,1], [3]
    patterns += [
        ((x,), (y,), (z,)) for x, y, z in product(items, repeat=3)
    ]
    patterns += [
        ((x,), (y, z))
        for x in items
        for y, z in combinations(items, 2)
    ]
    patterns += [
        ((y, z), (x,))
        for x in items
        for y, z in combinations(items, 2)
    ]
    patterns += [((x, y, z),) for x, y, z in combinations(items, 3)]
    return patterns


def oracle(seqdb, threshold):
    out = {}
    for pattern in all_patterns_up_to_3(seqdb.n_items):
        support = seqdb.support(pattern)
        if support >= threshold:
            out[pattern] = support
    return out


@pytest.fixture
def shop():
    return SequenceDatabase(
        [
            [(0,), (1,), (2,)],
            [(0, 1), (2,)],
            [(2,), (0,)],
            [(0,), (1, 2)],
            [(0,), (1,)],
        ],
        n_items=3,
    )


class TestJoinMachinery:
    def test_join_single_elements(self):
        assert _join(((0,), (1,)), ((1,), (2,))) == ((0,), (1,), (2,))

    def test_join_merged_element(self):
        assert _join(((0, 1),), ((1, 2),)) == ((0, 1, 2),)

    def test_join_mixed(self):
        assert _join(((0,), (1,)), ((1, 2),)) == ((0,), (1, 2))

    def test_join_mismatch(self):
        assert _join(((0,), (1,)), ((2,), (3,))) is None

    def test_subpatterns(self):
        subs = set(_subpatterns(((0,), (1, 2))))
        assert subs == {((1, 2),), ((0,), (2,)), ((0,), (1,))}


class TestCorrectness:
    def test_against_oracle(self, shop):
        for threshold in (1, 2, 3):
            result = gsp(shop, threshold, max_size=3)
            assert result.frequent == oracle(shop, threshold), threshold

    def test_relative_threshold(self, shop):
        absolute = gsp(shop, 2, max_size=2)
        relative = gsp(shop, 2 / len(shop), max_size=2)
        assert absolute.frequent == relative.frequent

    def test_order_distinguished(self, shop):
        result = gsp(shop, 2, max_size=2)
        assert ((0,), (1,)) in result.frequent   # 0 before 1: common
        assert ((1,), (0,)) not in result.frequent

    def test_together_vs_sequence(self, shop):
        result = gsp(shop, 1, max_size=2)
        # {0,1} together (customer 1) vs 0-then-1 (customers 0, 3, 4).
        assert result.frequent[((0, 1),)] == 1
        assert result.frequent[((0,), (1,))] == 3

    def test_repeat_purchases_found(self):
        db = SequenceDatabase([[(0,), (0,)], [(0,), (1,), (0,)]], n_items=2)
        result = gsp(db, 2, max_size=2)
        assert result.frequent[((0,), (0,))] == 2

    def test_on_generated_data(self, quest_db):
        seqdb = SequenceDatabase.from_transactions(quest_db[:200], 4)
        result = gsp(seqdb, 5, max_size=2)
        for pattern, support in result.frequent.items():
            assert support == seqdb.support(pattern)

    def test_max_size_validation(self):
        with pytest.raises(ValueError):
            GSP(max_size=0)

    def test_empty_database(self):
        db = SequenceDatabase([], n_items=2)
        assert gsp(db, 1).frequent == {}


class TestOSSMHook:
    def _pruner(self, seqdb, n_segments=4):
        import numpy as np

        flat = seqdb.flattened()
        bounds = np.linspace(0, len(flat), n_segments + 1).astype(int)
        ossm = OSSM.from_segments(
            [flat[int(a):int(b)] for a, b in zip(bounds, bounds[1:])]
        )
        return OSSMPruner(ossm)

    def test_output_unchanged(self, shop):
        pruner = self._pruner(shop, n_segments=2)
        plain = gsp(shop, 2, max_size=3)
        fast = gsp(shop, 2, pruner=pruner, max_size=3)
        assert plain.frequent == fast.frequent
        assert fast.algorithm == "gsp+ossm"

    def test_pruning_reduces_counting(self, quest_db):
        seqdb = SequenceDatabase.from_transactions(quest_db[:300], 3)
        pruner = self._pruner(seqdb, n_segments=10)
        plain = gsp(seqdb, 8, max_size=2)
        fast = gsp(seqdb, 8, pruner=pruner, max_size=2)
        assert plain.frequent == fast.frequent
        assert fast.candidates_counted() <= plain.candidates_counted()

    def test_stats_balance(self, shop):
        pruner = self._pruner(shop, n_segments=2)
        result = gsp(shop, 2, pruner=pruner, max_size=3)
        for stats in result.levels:
            assert (
                stats.candidates_pruned + stats.candidates_counted
                == stats.candidates_generated
            )
