"""Differential battery for the vertical bitmap engine.

The bitmap engine replaces a counting path every miner, the serve
layer and the breaker depend on, so the proof obligation is total:

* a property (hypothesis, seeded-random fallback) that
  :class:`BitmapCounter` — serial and thread-sharded — returns
  bit-identical counts to ``SubsetCounter``/``TidsetCounter``/
  ``HashTreeCounter``/``ParallelCounter`` on arbitrary databases;
* the pinned :class:`SupportCounter` contract (empty candidates,
  empty database, the empty itemset, out-of-domain items, mixed
  cardinalities);
* packing invariants — padding bits zero, rows bijective with
  tidsets, segment masks partition the transactions;
* segment views — ``count_segments`` columns sum to ``count``,
  ``to_ossm`` equals ``build_from_database``, ``upper_bounds`` equals
  the serial map's Equation (1) values, element for element.
"""

from itertools import combinations

import numpy as np
import pytest

from repro.core.ossm import build_from_database
from repro.data import TransactionDatabase
from repro.mining import (
    BitmapCounter,
    HashTreeCounter,
    PackedBitmap,
    SubsetCounter,
    pack_database,
)
from repro.mining.bitmap import WORD_BITS, popcount_reduce
from repro.mining.counting import TidsetCounter
from repro.parallel import ParallelCounter, ThreadedBitmapCounter

from ..parallel._support import N_ITEMS, given_database

SERIAL_ENGINES = {
    "subset": SubsetCounter,
    "tidset": TidsetCounter,
    "hashtree": lambda: HashTreeCounter(branch=3, leaf_capacity=2),
}


@pytest.fixture
def tiny_db():
    return TransactionDatabase([{0, 1}, {1, 2}, {0, 1, 2}], n_items=3)


# -- property: bit-identical to every engine ----------------------------


@given_database(max_examples=8)
def test_bitmap_counts_equal_every_engine(db):
    bitmap = BitmapCounter()
    threaded = [
        ThreadedBitmapCounter(workers=workers) for workers in (1, 2, 4)
    ]
    process = ParallelCounter(workers=2)
    try:
        for k in (1, 2, 3):
            candidates = list(combinations(range(N_ITEMS), k))
            reference = {c: db.support(c) for c in candidates}
            for factory in SERIAL_ENGINES.values():
                assert factory().count(db, candidates) == reference
            assert process.count(db, candidates) == reference
            assert bitmap.count(db, candidates) == reference
            for counter in threaded:
                assert counter.count(db, candidates) == reference
    finally:
        process.close()
        for counter in threaded:
            counter.close()


# -- pinned contract ----------------------------------------------------


@pytest.fixture(
    params=["serial", "threads-1", "threads-2", "threads-4"],
)
def bitmap_counter(request):
    if request.param == "serial":
        yield BitmapCounter()
        return
    workers = int(request.param.split("-")[1])
    with ThreadedBitmapCounter(workers=workers) as counter:
        yield counter


class TestContract:
    def test_no_candidates(self, bitmap_counter, tiny_db):
        assert bitmap_counter.count(tiny_db, []) == {}

    def test_empty_database_counts_zero(self, bitmap_counter):
        empty = TransactionDatabase([], n_items=4)
        assert bitmap_counter.count(empty, [(0,), (1,)]) == {
            (0,): 0, (1,): 0,
        }

    def test_empty_itemset_counts_every_transaction(
        self, bitmap_counter, tiny_db
    ):
        assert bitmap_counter.count(tiny_db, [()]) == {(): 3}

    def test_empty_itemset_on_empty_database(self, bitmap_counter):
        empty = TransactionDatabase([], n_items=4)
        assert bitmap_counter.count(empty, [()]) == {(): 0}

    def test_out_of_domain_items_count_zero(self, bitmap_counter, tiny_db):
        counts = bitmap_counter.count(tiny_db, [(0, 99), (1, 2)])
        assert counts == {(0, 99): 0, (1, 2): 2}

    def test_mixed_cardinality_rejected(self, bitmap_counter, tiny_db):
        with pytest.raises(ValueError, match="cardinality"):
            bitmap_counter.count(tiny_db, [(0,), (0, 1)])

    def test_plain_iterable_database(self, bitmap_counter):
        counts = bitmap_counter.count([(0, 1), (1, 2), (0,)], [(1,)])
        assert counts == {(1,): 2}


# -- packing invariants --------------------------------------------------


def test_pack_shapes_and_padding():
    db = TransactionDatabase([{0}] * 70, n_items=3)
    packed = pack_database(db)
    assert isinstance(packed, PackedBitmap)
    assert packed.words.shape == (3, 2)  # 70 txns -> 2 uint64 words
    assert packed.n_transactions == 70
    # Row 0: all 70 bits set, 58 bits of padding zero.
    assert int(np.bitwise_count(packed.words[0]).sum()) == 70
    # Rows 1/2: items occur nowhere.
    assert int(packed.words[1:].sum()) == 0


def test_pack_rows_are_tidset_bijective():
    db = TransactionDatabase(
        [(0, 2), (1,), (0, 1, 2), (), (2,)], n_items=3
    )
    packed = pack_database(db)
    for item, tids in enumerate(db.vertical()):
        row = packed.words[item]
        bits = np.unpackbits(row.view(np.uint8))[: len(db)]
        assert sorted(np.nonzero(bits)[0]) == sorted(tids)


def test_pack_empty_database():
    packed = pack_database(TransactionDatabase([], n_items=4))
    assert packed.words.shape == (4, 0)
    assert packed.n_transactions == 0
    assert packed.segment_bounds == (0, 0)


def test_pack_words_are_read_only():
    packed = pack_database(TransactionDatabase([{0}], n_items=1))
    with pytest.raises(ValueError):
        packed.words[0, 0] = 1


def test_segment_masks_partition_transactions():
    db = TransactionDatabase([{0}] * 100, n_items=2)
    packed = pack_database(db, segment_sizes=[30, 0, 45, 25])
    masks = packed.segment_masks()
    assert masks.shape == (4, packed.n_words)
    # Disjoint and exhaustive over the first 100 bit positions.
    union = np.bitwise_or.reduce(masks, axis=0)
    assert int(np.bitwise_count(union).sum()) == 100
    total = int(np.bitwise_count(masks).sum())
    assert total == 100  # no overlap: popcounts add up exactly


def test_inconsistent_segment_sizes_ignored():
    db = TransactionDatabase([{0}] * 10, n_items=1)
    packed = pack_database(db, segment_sizes=[3, 3])  # sums to 6, not 10
    assert packed.segment_bounds == (0, 10)


def test_pack_cache_reused_per_database_object():
    db = TransactionDatabase([{0, 1}, {1}], n_items=2)
    counter = BitmapCounter()
    counter.count(db, [(0,)])
    first = counter._packed
    counter.count(db, [(1,)])
    assert counter._packed is first
    other = TransactionDatabase([{0}], n_items=2)
    counter.count(other, [(0,)])
    assert counter._packed is not first


def test_popcount_reduce_word_ranges_sum_to_total():
    rng = np.random.default_rng(3)
    db = TransactionDatabase(
        [
            tuple(np.nonzero(rng.integers(0, 2, size=N_ITEMS))[0])
            for _ in range(400)
        ],
        n_items=N_ITEMS,
    )
    packed = pack_database(db)
    table = np.asarray(list(combinations(range(N_ITEMS), 2)))
    full = popcount_reduce(packed.words, table, 0, packed.n_words)
    cut = packed.n_words // 2
    left = popcount_reduce(packed.words, table, 0, cut)
    right = popcount_reduce(packed.words, table, cut, packed.n_words)
    assert np.array_equal(left + right, full)
    assert full.dtype == np.int64


# -- segment views -------------------------------------------------------


@pytest.fixture
def segmented():
    rng = np.random.default_rng(11)
    db = TransactionDatabase(
        [
            tuple(np.nonzero(rng.integers(0, 2, size=N_ITEMS))[0])
            for _ in range(130)
        ],
        n_items=N_ITEMS,
    )
    sizes = [40, 0, 63, 27]  # straddles word boundaries, empty segment
    return db, sizes, BitmapCounter(segment_sizes=sizes)


def test_count_segments_columns_sum_to_count(segmented):
    db, sizes, counter = segmented
    candidates = list(combinations(range(N_ITEMS), 2))
    matrix = counter.count_segments(db, candidates)
    assert matrix.shape == (len(sizes), len(candidates))
    totals = counter.count(db, candidates)
    assert list(matrix.sum(axis=0)) == [totals[c] for c in candidates]


def test_count_segments_matches_per_segment_serial(segmented):
    db, sizes, counter = segmented
    candidates = [(0, 1), (2, 3), (1, 4)]
    matrix = counter.count_segments(db, candidates)
    bounds = np.concatenate([[0], np.cumsum(sizes)])
    for s, (lo, hi) in enumerate(zip(bounds, bounds[1:])):
        segment = db[int(lo):int(hi)]
        for j, candidate in enumerate(candidates):
            assert matrix[s, j] == segment.support(candidate)


def test_to_ossm_equals_serial_build(segmented):
    db, sizes, counter = segmented
    bounds = [0] + list(np.cumsum(sizes))
    assert counter.to_ossm(db) == build_from_database(
        db, [int(b) for b in bounds]
    )


def test_upper_bounds_equal_serial_map(segmented):
    db, sizes, counter = segmented
    bounds = [0] + list(np.cumsum(sizes))
    reference = build_from_database(db, [int(b) for b in bounds])
    itemsets = list(combinations(range(N_ITEMS), 2))
    ours = counter.upper_bounds(db, itemsets)
    assert np.array_equal(ours, reference.upper_bounds(itemsets))
    # Soundness spot check: bound >= exact support.
    exact = counter.count(db, itemsets)
    for itemset, bound in zip(itemsets, ours):
        assert bound >= exact[itemset]


def test_threaded_counter_shares_segment_views(segmented):
    db, sizes, _ = segmented
    with ThreadedBitmapCounter(workers=2, segment_sizes=sizes) as counter:
        bounds = [0] + [int(b) for b in np.cumsum(sizes)]
        assert counter.to_ossm(db) == build_from_database(db, bounds)


def test_word_boundary_database_sizes():
    """Sizes around the 64-bit word edge — the padding-bit hazard."""
    for n in (63, 64, 65, 127, 128, 129):
        db = TransactionDatabase([{0, 1}] * n, n_items=2)
        counter = BitmapCounter()
        assert counter.count(db, [(0, 1)]) == {(0, 1): n}
