"""Tests for closed/maximal itemset derivation and the CHARM-style miner."""

import pytest

from repro.data import TransactionDatabase
from repro.mining import (
    apriori,
    closed_itemsets,
    maximal_itemsets,
    mine_closed,
)


def oracle_closed(db, threshold):
    result = apriori(db, threshold)
    closed = {}
    for itemset, support in result.frequent.items():
        dominated = any(
            support == other_support and set(itemset) < set(other)
            for other, other_support in result.frequent.items()
        )
        if not dominated:
            closed[itemset] = support
    return closed


def oracle_maximal(db, threshold):
    result = apriori(db, threshold)
    return {
        itemset: support
        for itemset, support in result.frequent.items()
        if not any(
            set(itemset) < set(other) for other in result.frequent
        )
    }


@pytest.fixture
def textbook_db():
    """The classic closed-set example: {a,b} always co-occur."""
    return TransactionDatabase(
        [(0, 1, 2), (0, 1), (0, 1, 3), (2, 3), (0, 1, 2, 3)], n_items=4
    )


class TestPostProcessing:
    def test_closed_matches_oracle(self, textbook_db):
        for threshold in (1, 2, 3):
            result = apriori(textbook_db, threshold)
            assert closed_itemsets(result) == oracle_closed(
                textbook_db, threshold
            ), threshold

    def test_maximal_matches_oracle(self, textbook_db):
        for threshold in (1, 2, 3):
            result = apriori(textbook_db, threshold)
            assert maximal_itemsets(result) == oracle_maximal(
                textbook_db, threshold
            ), threshold

    def test_closed_on_quest(self, quest_db):
        small = quest_db[:150]
        result = apriori(small, 4)
        assert closed_itemsets(result) == oracle_closed(small, 4)

    def test_ab_collapse(self, textbook_db):
        """Items 0,1 always co-occur: (0,) and (1,) are not closed."""
        result = apriori(textbook_db, 2)
        closed = closed_itemsets(result)
        assert (0,) not in closed
        assert (1,) not in closed
        assert (0, 1) in closed

    def test_maximal_subset_of_closed(self, textbook_db, quest_db):
        for db, threshold in ((textbook_db, 2), (quest_db[:150], 4)):
            result = apriori(db, threshold)
            closed = closed_itemsets(result)
            maximal = maximal_itemsets(result)
            assert set(maximal) <= set(closed)

    def test_closed_preserves_supports(self, textbook_db):
        result = apriori(textbook_db, 1)
        for itemset, support in closed_itemsets(result).items():
            assert support == textbook_db.support(itemset)


class TestCharmMiner:
    def test_matches_post_processing(self, textbook_db):
        for threshold in (1, 2, 3):
            direct = mine_closed(textbook_db, threshold)
            assert direct.frequent == oracle_closed(
                textbook_db, threshold
            ), threshold

    def test_matches_on_quest(self, quest_db):
        small = quest_db[:200]
        direct = mine_closed(small, 5)
        assert direct.frequent == oracle_closed(small, 5)

    def test_relative_threshold(self, textbook_db):
        absolute = mine_closed(textbook_db, 2)
        relative = mine_closed(textbook_db, 2 / len(textbook_db))
        assert absolute.frequent == relative.frequent

    def test_algorithm_name(self, textbook_db):
        assert mine_closed(textbook_db, 2).algorithm == "charm"

    def test_empty_database(self):
        db = TransactionDatabase([], n_items=2)
        assert mine_closed(db, 1).frequent == {}

    def test_far_fewer_than_all_frequent(self):
        """Condensation actually condenses on redundant data."""
        db = TransactionDatabase([(0, 1, 2, 3, 4)] * 6, n_items=5)
        all_frequent = apriori(db, 3)
        closed = mine_closed(db, 3)
        assert all_frequent.n_frequent == 2**5 - 1
        assert closed.n_frequent == 1  # only the full set is closed
