"""Tests for Apriori and Apriori+OSSM."""

import pytest

from repro.core import OSSM, build_from_database
from repro.data import TransactionDatabase
from repro.mining import Apriori, HashTreeCounter, OSSMPruner, apriori
from repro.mining.base import resolve_min_support
from tests.conftest import brute_force_frequent


class TestThresholdResolution:
    def test_relative(self, tiny_db):
        assert resolve_min_support(tiny_db, 0.5) == 4
        assert resolve_min_support(tiny_db, 0.49) == 4  # ceil(3.92)

    def test_absolute(self, tiny_db):
        assert resolve_min_support(tiny_db, 3) == 3

    def test_relative_bounds(self, tiny_db):
        with pytest.raises(ValueError):
            resolve_min_support(tiny_db, 0.0)
        with pytest.raises(ValueError):
            resolve_min_support(tiny_db, 1.5)

    def test_absolute_bounds(self, tiny_db):
        with pytest.raises(ValueError):
            resolve_min_support(tiny_db, 0)

    def test_bool_rejected(self, tiny_db):
        with pytest.raises(TypeError):
            resolve_min_support(tiny_db, True)

    def test_minimum_one(self):
        db = TransactionDatabase([(0,)], n_items=1)
        assert resolve_min_support(db, 0.0001) == 1


class TestCorrectness:
    def test_against_brute_force(self, tiny_db):
        result = apriori(tiny_db, 2)
        assert result.frequent == brute_force_frequent(tiny_db, 2)

    def test_against_brute_force_various_thresholds(self, tiny_db):
        for threshold in (1, 2, 3, 4, 5):
            result = apriori(tiny_db, threshold)
            assert result.frequent == brute_force_frequent(
                tiny_db, threshold
            ), threshold

    def test_quest_data_against_brute_force(self, quest_db):
        small = quest_db[:120]
        result = apriori(small, 5)
        assert result.frequent == brute_force_frequent(small, 5)

    def test_supports_are_exact(self, tiny_db):
        result = apriori(tiny_db, 2)
        for itemset, support in result.frequent.items():
            assert support == tiny_db.support(itemset)

    def test_max_level_caps_output(self, tiny_db):
        result = apriori(tiny_db, 1, max_level=2)
        assert result.max_level <= 2
        full = brute_force_frequent(tiny_db, 1, max_level=2)
        assert result.frequent == full

    def test_empty_database(self):
        db = TransactionDatabase([], n_items=3)
        result = apriori(db, 1)
        assert result.frequent == {}

    def test_nothing_frequent(self, tiny_db):
        result = apriori(tiny_db, len(tiny_db) + 1)
        assert result.frequent == {}

    def test_invalid_max_level(self):
        with pytest.raises(ValueError):
            Apriori(max_level=0)


class TestStats:
    def test_level1_accounting(self, tiny_db):
        result = apriori(tiny_db, 4)
        level1 = result.level(1)
        assert level1.candidates_generated == tiny_db.n_items
        assert level1.frequent == 4  # supports are [5,5,5,4]

    def test_level2_candidates_from_join(self, tiny_db):
        result = apriori(tiny_db, 4)
        # L1 = {0,1,2,3} -> C2 = C(4,2) = 6
        assert result.level(2).candidates_generated == 6

    def test_algorithm_name(self, tiny_db):
        assert apriori(tiny_db, 2).algorithm == "apriori"

    def test_elapsed_recorded(self, tiny_db):
        assert apriori(tiny_db, 2).elapsed_seconds >= 0

    def test_candidates_counted_totals(self, tiny_db):
        result = apriori(tiny_db, 2)
        assert result.candidates_counted() == sum(
            s.candidates_counted for s in result.levels
        )

    def test_itemsets_of_size(self, tiny_db):
        result = apriori(tiny_db, 2)
        pairs = result.itemsets_of_size(2)
        assert all(len(itemset) == 2 for itemset in pairs)
        assert pairs == {
            k: v for k, v in result.frequent.items() if len(k) == 2
        }


class TestOSSMIntegration:
    def test_output_identical_with_pruner(self, tiny_db):
        ossm = build_from_database(tiny_db, [0, 2, 4, 6, 8])
        for threshold in (1, 2, 3):
            plain = apriori(tiny_db, threshold)
            fast = apriori(tiny_db, threshold, pruner=OSSMPruner(ossm))
            assert plain.same_itemsets(fast)

    def test_pruner_reduces_counted_candidates(self, quest_db):
        ossm = build_from_database(
            quest_db, list(range(0, len(quest_db) + 1, 30))
        )
        plain = apriori(quest_db, 0.02, max_level=2)
        fast = apriori(
            quest_db, 0.02, pruner=OSSMPruner(ossm), max_level=2
        )
        assert plain.same_itemsets(fast)
        assert (
            fast.level(2).candidates_counted
            <= plain.level(2).candidates_counted
        )

    def test_algorithm_name_carries_label(self, tiny_db):
        ossm = OSSM.single_segment(tiny_db)
        result = apriori(tiny_db, 2, pruner=OSSMPruner(ossm))
        assert result.algorithm == "apriori+ossm"

    def test_pruned_plus_counted_equals_generated(self, quest_db):
        ossm = build_from_database(
            quest_db, list(range(0, len(quest_db) + 1, 50))
        )
        result = apriori(quest_db, 0.02, pruner=OSSMPruner(ossm), max_level=3)
        for stats in result.levels:
            assert (
                stats.candidates_pruned + stats.candidates_counted
                == stats.candidates_generated
            )


class TestAlternativeCounters:
    def test_hash_tree_counter_equivalent(self, tiny_db):
        plain = apriori(tiny_db, 2)
        tree = apriori(
            tiny_db, 2, counter=HashTreeCounter(branch=3, leaf_capacity=2)
        )
        assert plain.same_itemsets(tree)
