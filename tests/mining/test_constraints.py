"""Tests for constrained frequent-set mining."""

import numpy as np
import pytest

from repro.core import OSSM, build_from_database
from repro.mining import (
    ConstrainedApriori,
    ExcludesAll,
    MaxAttribute,
    MaxSize,
    MinAttributeAtMost,
    MinSize,
    OSSMPruner,
    SubsetOf,
    SupersetOf,
    apriori,
    constrained_apriori,
)
from tests.conftest import brute_force_frequent


def oracle(db, threshold, constraints, max_level=None):
    frequent = brute_force_frequent(db, threshold, max_level=max_level)
    return {
        itemset: support
        for itemset, support in frequent.items()
        if all(c.satisfied(itemset) for c in constraints)
    }


class TestConstraintPredicates:
    def test_max_size(self):
        c = MaxSize(2)
        assert c.satisfied((1,)) and c.satisfied((1, 2))
        assert not c.satisfied((1, 2, 3))
        assert c.anti_monotone and not c.monotone

    def test_min_size(self):
        c = MinSize(2)
        assert not c.satisfied((1,))
        assert c.satisfied((1, 2))
        assert c.monotone and not c.anti_monotone

    def test_subset_superset(self):
        assert SubsetOf([1, 2, 3]).satisfied((1, 3))
        assert not SubsetOf([1, 2]).satisfied((1, 4))
        assert SupersetOf([2]).satisfied((1, 2))
        assert not SupersetOf([2, 5]).satisfied((2,))

    def test_excludes(self):
        assert ExcludesAll([7]).satisfied((1, 2))
        assert not ExcludesAll([2]).satisfied((1, 2))

    def test_attribute_constraints(self):
        price = [1.0, 5.0, 20.0]
        assert MaxAttribute(price, 10).satisfied((0, 1))
        assert not MaxAttribute(price, 10).satisfied((0, 2))
        assert MinAttributeAtMost(price, 2).satisfied((0, 2))
        assert not MinAttributeAtMost(price, 2).satisfied((1, 2))

    def test_size_validation(self):
        with pytest.raises(ValueError):
            MaxSize(0)
        with pytest.raises(ValueError):
            MinSize(0)


class TestConstrainedMining:
    def test_anti_monotone_pushing_correct(self, tiny_db):
        constraints = [MaxSize(2), ExcludesAll([3])]
        result = constrained_apriori(tiny_db, 2, constraints)
        assert result.frequent == oracle(tiny_db, 2, constraints)

    def test_monotone_post_filter_correct(self, tiny_db):
        constraints = [MinSize(2)]
        result = constrained_apriori(tiny_db, 1, constraints)
        assert result.frequent == oracle(tiny_db, 1, constraints)

    def test_mixed_constraints(self, tiny_db):
        constraints = [MinSize(2), SubsetOf([0, 1, 2])]
        result = constrained_apriori(tiny_db, 1, constraints)
        assert result.frequent == oracle(tiny_db, 1, constraints)

    def test_attribute_constraints_end_to_end(self, quest_db):
        rng = np.random.default_rng(0)
        price = rng.uniform(1, 50, quest_db.n_items)
        constraints = [
            MaxAttribute(price, 30.0),
            MinAttributeAtMost(price, 10.0),
        ]
        result = constrained_apriori(
            quest_db, 0.03, constraints, max_level=3
        )
        unconstrained = apriori(quest_db, 0.03, max_level=3)
        expected = {
            itemset: support
            for itemset, support in unconstrained.frequent.items()
            if all(c.satisfied(itemset) for c in constraints)
        }
        assert result.frequent == expected

    def test_pushing_reduces_counting(self, quest_db):
        constraints = [SubsetOf(range(20))]
        plain = apriori(quest_db, 0.03, max_level=2)
        constrained = constrained_apriori(
            quest_db, 0.03, constraints, max_level=2
        )
        assert (
            constrained.candidates_counted()
            < plain.candidates_counted()
        )

    def test_composes_with_ossm(self, quest_db):
        ossm = build_from_database(
            quest_db, list(range(0, len(quest_db) + 1, 30))
        )
        constraints = [MaxSize(2), ExcludesAll([0, 1])]
        with_ossm = ConstrainedApriori(
            constraints, pruner=OSSMPruner(ossm)
        ).mine(quest_db, 0.02)
        without = constrained_apriori(quest_db, 0.02, constraints)
        assert with_ossm.frequent == without.frequent
        assert with_ossm.algorithm == "constrained-apriori+ossm"

    def test_undeclared_constraint_rejected(self):
        class Vague(SubsetOf):
            anti_monotone = False
            monotone = False

        with pytest.raises(ValueError, match="neither"):
            ConstrainedApriori([Vague([1])])

    def test_empty_constraints_equal_plain_apriori(self, tiny_db):
        result = constrained_apriori(tiny_db, 2, [])
        assert result.frequent == apriori(tiny_db, 2).frequent
