"""Tests for the counting engines (subset, tidset, hash tree)."""

from itertools import combinations

import pytest

from repro.data import TransactionDatabase
from repro.mining import HashTreeCounter, SubsetCounter, count_supports
from repro.mining.counting import TidsetCounter

ENGINES = [SubsetCounter, TidsetCounter, lambda: HashTreeCounter(branch=3, leaf_capacity=2)]
ENGINE_IDS = ["subset", "tidset", "hashtree"]


@pytest.fixture(params=ENGINES, ids=ENGINE_IDS)
def engine(request):
    return request.param()


class TestEngineContract:
    def test_exact_counts_small(self, engine, tiny_db):
        candidates = list(combinations(range(tiny_db.n_items), 2))
        counts = engine.count(tiny_db, candidates)
        for candidate in candidates:
            assert counts[candidate] == tiny_db.support(candidate)

    def test_exact_counts_triples(self, engine, tiny_db):
        candidates = list(combinations(range(tiny_db.n_items), 3))
        counts = engine.count(tiny_db, candidates)
        for candidate in candidates:
            assert counts[candidate] == tiny_db.support(candidate)

    def test_singletons(self, engine, tiny_db):
        candidates = [(i,) for i in range(tiny_db.n_items)]
        counts = engine.count(tiny_db, candidates)
        supports = tiny_db.item_supports()
        for (item,), count in counts.items():
            assert count == supports[item]

    def test_empty_candidates(self, engine, tiny_db):
        assert engine.count(tiny_db, []) == {}

    def test_mixed_cardinality_rejected(self, engine, tiny_db):
        with pytest.raises(ValueError, match="cardinality"):
            engine.count(tiny_db, [(0,), (0, 1)])

    # The explicit empty-input contract (SupportCounter docstring):
    # every engine, serial or parallel, must agree on these.

    def test_empty_database_counts_zero(self, engine):
        empty = TransactionDatabase([], n_items=3)
        assert engine.count(empty, [(0,), (2,)]) == {(0,): 0, (2,): 0}

    def test_empty_itemset_counts_every_transaction(self, engine, tiny_db):
        assert engine.count(tiny_db, [()]) == {(): len(tiny_db)}

    def test_empty_itemset_on_empty_database(self, engine):
        empty = TransactionDatabase([], n_items=3)
        assert engine.count(empty, [()]) == {(): 0}

    def test_out_of_domain_items_count_zero(self, engine, tiny_db):
        counts = engine.count(tiny_db, [(0, 99), (0, 1)])
        assert counts[(0, 99)] == 0
        assert counts[(0, 1)] == tiny_db.support((0, 1))

    def test_engines_agree_on_random_data(self, engine, quest_db):
        candidates = list(combinations(range(0, 20), 2))
        reference = {
            candidate: quest_db.support(candidate)
            for candidate in candidates
        }
        assert engine.count(quest_db, candidates) == reference


class TestSubsetCounterSpecifics:
    def test_accepts_plain_iterable(self):
        txns = [(0, 1), (1, 2), (0, 1, 2)]
        counts = SubsetCounter().count(txns, [(0, 1), (1, 2)])
        assert counts == {(0, 1): 2, (1, 2): 2}

    def test_count_supports_wrapper(self, tiny_db):
        assert count_supports(tiny_db, [(0, 1)]) == {
            (0, 1): tiny_db.support((0, 1))
        }


class TestTidsetCounterSpecifics:
    def test_cache_reused_for_same_database(self, tiny_db):
        counter = TidsetCounter()
        counter.count(tiny_db, [(0,)])
        first = counter._tidsets
        counter.count(tiny_db, [(1,)])
        assert counter._tidsets is first

    def test_cache_invalidated_for_new_database(self, tiny_db):
        counter = TidsetCounter()
        counter.count(tiny_db, [(0,)])
        first = counter._tidsets
        other = TransactionDatabase([(0, 1)], n_items=2)
        counter.count(other, [(0,)])
        assert counter._tidsets is not first

    def test_counts_zero_for_disjoint_pair(self):
        db = TransactionDatabase([(0,), (1,)], n_items=2)
        assert TidsetCounter().count(db, [(0, 1)]) == {(0, 1): 0}
