"""Tests of the counting-engine registry (`make_counter`/`make_pool`).

The registry is the single seam through which Apriori, DHP, Partition
and the CLI select a counting engine. Two families of checks:

* resolution — every registered name yields the documented class,
  serial names compose with ``workers=`` into the sharded counter, and
  unknown names fail with a message listing the registry;
* contract — every registry engine honors the pinned
  :class:`~repro.mining.counting.SupportCounter` empty-input contract.
"""

import pytest

import repro  # ensures repro.parallel registered its backend
from repro.data import TransactionDatabase
from repro.mining import BitmapCounter, HashTreeCounter, SubsetCounter
from repro.mining.counting import (
    ENGINE_ENV,
    TidsetCounter,
    make_counter,
    make_pool,
    register_engine,
    registered_engines,
    resolve_engine,
)
from repro.parallel import ParallelCounter, ThreadedBitmapCounter

assert repro  # imported for its registration side effect

SERIAL_NAMES = ("subset", "tidset", "hashtree")


@pytest.fixture
def tiny_db():
    return TransactionDatabase([{0, 1}, {1, 2}, {0, 1, 2}], n_items=3)


class TestResolution:
    def test_all_engines_registered(self):
        assert set(registered_engines()) >= {
            "subset", "tidset", "hashtree", "parallel", "bitmap",
        }

    def test_serial_names_resolve(self):
        assert isinstance(make_counter("subset"), SubsetCounter)
        assert isinstance(make_counter("tidset"), TidsetCounter)
        assert isinstance(make_counter("hashtree"), HashTreeCounter)

    def test_parallel_name_resolves(self):
        counter = make_counter("parallel", workers=2)
        try:
            assert isinstance(counter, ParallelCounter)
            assert counter.engine == "tidset"   # default shard engine
            assert counter.workers == 2
        finally:
            counter.close()

    def test_bitmap_name_resolves_serial(self):
        counter = make_counter("bitmap")
        assert isinstance(counter, BitmapCounter)
        assert not isinstance(counter, ThreadedBitmapCounter)

    def test_bitmap_with_workers_resolves_threads(self):
        with make_counter("bitmap", workers=2) as counter:
            assert isinstance(counter, ThreadedBitmapCounter)
            assert counter.workers == 2

    def test_bitmap_segment_sizes_forwarded(self):
        with make_counter(
            "bitmap", workers=2, segment_sizes=[2, 1]
        ) as counter:
            assert counter.segment_sizes == (2, 1)

    def test_resolve_engine_defaults(self, monkeypatch):
        monkeypatch.delenv(ENGINE_ENV, raising=False)
        assert resolve_engine(None) == "subset"
        assert resolve_engine(None, 4) == "parallel"
        assert resolve_engine("tidset", 4) == "tidset"

    def test_resolve_engine_env_override(self, monkeypatch):
        monkeypatch.setenv(ENGINE_ENV, "bitmap")
        assert resolve_engine(None) == "bitmap"
        assert resolve_engine(None, 4) == "bitmap"
        # An explicit engine beats the environment.
        assert resolve_engine("subset", 4) == "subset"

    def test_serial_name_with_workers_shards(self):
        counter = make_counter("subset", workers=2)
        try:
            assert isinstance(counter, ParallelCounter)
            assert counter.engine == "subset"
        finally:
            counter.close()

    def test_segment_sizes_forwarded(self):
        counter = make_counter(
            "parallel", workers=2, segment_sizes=[2, 1]
        )
        try:
            assert counter.segment_sizes == (2, 1)
        finally:
            counter.close()

    def test_unknown_engine_lists_registry(self):
        with pytest.raises(ValueError, match="subset"):
            make_counter("btree")

    def test_register_engine_round_trip(self):
        class FakeCounter(SubsetCounter):
            pass

        register_engine("fake-for-test", FakeCounter)
        try:
            assert "fake-for-test" in registered_engines()
            assert isinstance(make_counter("fake-for-test"), FakeCounter)
        finally:
            from repro.mining import counting

            counting._SERIAL_FACTORIES.pop("fake-for-test")

    def test_make_pool_serial_is_none(self):
        assert make_pool(None, 100) is None
        assert make_pool(1, 100) is None
        assert make_pool(4, 1) is None

    def test_make_pool_parallel(self):
        pool = make_pool(2, 100)
        assert pool is not None
        with pool:
            assert pool.workers == 2


@pytest.fixture(
    params=[
        "subset", "tidset", "hashtree", "parallel",
        "bitmap", "bitmap-threaded",
    ],
)
def registry_engine(request):
    if request.param == "parallel":
        counter = make_counter("parallel", workers=2)
    elif request.param == "bitmap-threaded":
        counter = make_counter("bitmap", workers=2)
    else:
        counter = make_counter(request.param)
    yield counter
    closer = getattr(counter, "close", None)
    if closer is not None:
        closer()


class TestRegistryEngineContract:
    """Every registry engine passes the pinned empty-input contract."""

    def test_no_candidates(self, registry_engine, tiny_db):
        assert registry_engine.count(tiny_db, []) == {}

    def test_empty_database_counts_zero(self, registry_engine):
        empty = TransactionDatabase([], n_items=3)
        assert registry_engine.count(empty, [(0,), (2,)]) == {
            (0,): 0, (2,): 0,
        }

    def test_empty_itemset_counts_every_transaction(
        self, registry_engine, tiny_db
    ):
        assert registry_engine.count(tiny_db, [()]) == {(): 3}

    def test_out_of_domain_items_count_zero(self, registry_engine, tiny_db):
        assert registry_engine.count(tiny_db, [(7,)]) == {(7,): 0}

    def test_mixed_cardinality_rejected(self, registry_engine, tiny_db):
        with pytest.raises(ValueError):
            registry_engine.count(tiny_db, [(0,), (0, 1)])

    def test_exact_counts(self, registry_engine, tiny_db):
        assert registry_engine.count(tiny_db, [(0, 1), (1, 2), (0, 2)]) == {
            (0, 1): 2, (1, 2): 2, (0, 2): 1,
        }
