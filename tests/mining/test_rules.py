"""Tests for association-rule generation."""

import pytest

from repro.data import TransactionDatabase
from repro.mining import apriori, generate_rules


@pytest.fixture
def market_db():
    """Small basket data with one strong rule: bread -> butter."""
    return TransactionDatabase(
        [
            (0, 1),      # bread, butter
            (0, 1),
            (0, 1),
            (0, 1, 2),   # + milk
            (0,),
            (2,),
            (1, 2),
            (0, 1, 2),
        ],
        n_items=3,
    )


class TestGeneration:
    def test_strong_rule_found(self, market_db):
        result = apriori(market_db, 2)
        rules = generate_rules(result, len(market_db), min_confidence=0.8)
        pairs = {(rule.antecedent, rule.consequent) for rule in rules}
        # supports: bread=6, butter=6, {bread,butter}=5 -> conf 5/6.
        assert ((0,), (1,)) in pairs
        assert all(rule.confidence >= 0.8 for rule in rules)

    def test_confidence_and_lift_values(self, market_db):
        result = apriori(market_db, 2)
        rules = generate_rules(result, len(market_db), min_confidence=0.5)
        by_pair = {
            (rule.antecedent, rule.consequent): rule for rule in rules
        }
        rule = by_pair[((0,), (1,))]
        assert rule.confidence == pytest.approx(5 / 6)
        assert rule.support == pytest.approx(5 / 8)
        assert rule.lift == pytest.approx((5 / 6) / (6 / 8))

    def test_min_confidence_filters(self, market_db):
        result = apriori(market_db, 2)
        lenient = generate_rules(result, len(market_db), min_confidence=0.4)
        strict = generate_rules(result, len(market_db), min_confidence=0.9)
        assert len(strict) <= len(lenient)
        assert all(rule.confidence >= 0.9 for rule in strict)

    def test_multi_item_consequents(self):
        db = TransactionDatabase([(0, 1, 2)] * 5 + [(0,)], n_items=3)
        result = apriori(db, 2)
        rules = generate_rules(result, len(db), min_confidence=0.8)
        consequents = {rule.consequent for rule in rules}
        assert (1, 2) in consequents

    def test_no_rules_from_singletons_only(self, tiny_db):
        result = apriori(tiny_db, len(tiny_db))  # nothing frequent
        assert generate_rules(result, len(tiny_db)) == []

    def test_antecedent_and_consequent_disjoint(self, market_db):
        result = apriori(market_db, 2)
        for rule in generate_rules(result, len(market_db), 0.4):
            assert not set(rule.antecedent) & set(rule.consequent)

    def test_validation(self, market_db):
        result = apriori(market_db, 2)
        with pytest.raises(ValueError):
            generate_rules(result, len(market_db), min_confidence=0.0)
        with pytest.raises(ValueError):
            generate_rules(result, 0)

    def test_non_closed_frequent_map_rejected(self):
        from repro.mining import MiningResult

        broken = MiningResult(
            frequent={(0, 1): 3, (0,): 5},  # (1,) missing
            min_support=2,
            algorithm="test",
        )
        with pytest.raises(ValueError, match="downward closed"):
            generate_rules(broken, 10, min_confidence=0.1)

    def test_str_rendering(self, market_db):
        result = apriori(market_db, 2)
        rule = generate_rules(result, len(market_db), 0.5)[0]
        text = str(rule)
        assert "->" in text and "conf=" in text

    def test_sorted_by_confidence(self, market_db):
        result = apriori(market_db, 2)
        rules = generate_rules(result, len(market_db), 0.4)
        confidences = [rule.confidence for rule in rules]
        assert confidences == sorted(confidences, reverse=True)
