"""Tests for candidate generation (apriori-gen)."""

import pytest

from repro.mining import apriori_gen, is_canonical, join_step, prune_step, subsets_of_size


class TestCanonical:
    def test_is_canonical(self):
        assert is_canonical((1, 2, 5))
        assert not is_canonical((2, 1))
        assert not is_canonical((1, 1))
        assert is_canonical(())

    def test_subsets_of_size(self):
        assert list(subsets_of_size((1, 2, 3), 2)) == [
            (1, 2), (1, 3), (2, 3)
        ]


class TestJoin:
    def test_joins_shared_prefix(self):
        frequent = [(1, 2), (1, 3), (1, 4), (2, 3)]
        assert join_step(frequent) == [(1, 2, 3), (1, 2, 4), (1, 3, 4)]

    def test_singletons_join_into_all_pairs(self):
        assert join_step([(1,), (2,), (3,)]) == [(1, 2), (1, 3), (2, 3)]

    def test_no_shared_prefix_no_candidates(self):
        assert join_step([(1, 2), (3, 4)]) == []


class TestPrune:
    def test_removes_candidates_with_infrequent_subset(self):
        # (1,2,3) needs (2,3) frequent; it is not.
        prior = {(1, 2), (1, 3), (1, 4), (3, 4)}
        pruned = prune_step([(1, 2, 3), (1, 3, 4)], prior)
        assert pruned == [(1, 3, 4)]

    def test_keeps_fully_supported(self):
        prior = {(1, 2), (1, 3), (2, 3)}
        assert prune_step([(1, 2, 3)], prior) == [(1, 2, 3)]


class TestAprioriGen:
    def test_classic_example(self):
        """The worked example from the Apriori paper."""
        l3 = [(1, 2, 3), (1, 2, 4), (1, 3, 4), (1, 3, 5), (2, 3, 4)]
        assert apriori_gen(l3) == [(1, 2, 3, 4)]

    def test_level_one_skips_subset_prune(self):
        assert apriori_gen([(2,), (5,), (9,)]) == [(2, 5), (2, 9), (5, 9)]

    def test_empty_input(self):
        assert apriori_gen([]) == []

    def test_mixed_cardinality_rejected(self):
        with pytest.raises(ValueError, match="one cardinality"):
            apriori_gen([(1,), (1, 2)])

    def test_output_canonical_and_sorted(self):
        out = apriori_gen([(1, 3), (1, 5), (1, 7)])
        assert out == sorted(out)
        assert all(is_canonical(c) for c in out)

    def test_unsorted_input_tolerated(self):
        # apriori_gen sorts internally.
        assert apriori_gen([(1, 3), (1, 2)]) == apriori_gen([(1, 2), (1, 3)])
