"""Tests for the Apriori hash tree itself."""

from itertools import combinations

import pytest

from repro.data import TransactionDatabase
from repro.mining import HashTree


class TestConstruction:
    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            HashTree(0)
        with pytest.raises(ValueError):
            HashTree(2, branch=1)
        with pytest.raises(ValueError):
            HashTree(2, leaf_capacity=0)

    def test_insert_wrong_size_rejected(self):
        tree = HashTree(2)
        with pytest.raises(ValueError, match="size"):
            tree.insert((1, 2, 3))

    def test_len_counts_inserts(self):
        tree = HashTree(2)
        for pair in [(0, 1), (1, 2), (2, 3)]:
            tree.insert(pair)
        assert len(tree) == 3

    def test_leaves_split_when_over_capacity(self):
        tree = HashTree(2, branch=4, leaf_capacity=2)
        for pair in combinations(range(8), 2):
            tree.insert(pair)
        assert not tree._root.is_leaf  # must have split at least once


class TestCounting:
    def test_counts_once_per_transaction(self):
        """A candidate reachable by several hash paths counts once."""
        tree = HashTree(2, branch=2, leaf_capacity=1)
        candidates = [(0, 2), (1, 3), (0, 4)]
        for candidate in candidates:
            tree.insert(candidate)
        counts = {candidate: 0 for candidate in candidates}
        tree.count_transaction((0, 1, 2, 3, 4), counts)
        assert counts == {(0, 2): 1, (1, 3): 1, (0, 4): 1}

    def test_short_transactions_skipped(self):
        tree = HashTree(3)
        tree.insert((0, 1, 2))
        counts = {(0, 1, 2): 0}
        tree.count_transaction((0, 1), counts)
        assert counts[(0, 1, 2)] == 0

    def test_exhaustive_against_brute_force(self, quest_db):
        candidates = list(combinations(range(15), 3))
        tree = HashTree(3, branch=4, leaf_capacity=4)
        for candidate in candidates:
            tree.insert(candidate)
        counts = {candidate: 0 for candidate in candidates}
        for txn in quest_db:
            tree.count_transaction(txn, counts)
        for candidate in candidates:
            assert counts[candidate] == quest_db.support(candidate)

    def test_collision_heavy_hash(self):
        """branch=2 forces heavy collisions; counts must stay exact."""
        db = TransactionDatabase(
            [(0, 2, 4), (1, 3, 5), (0, 1, 2, 3), (2, 4)], n_items=6
        )
        candidates = list(combinations(range(6), 2))
        tree = HashTree(2, branch=2, leaf_capacity=1)
        for candidate in candidates:
            tree.insert(candidate)
        counts = {candidate: 0 for candidate in candidates}
        for txn in db:
            tree.count_transaction(txn, counts)
        for candidate in candidates:
            assert counts[candidate] == db.support(candidate)
