"""Tests for the Partition algorithm and its OSSM enhancement."""

import pytest

from repro.core import OSSM
from repro.data import TransactionDatabase
from repro.mining import OSSMPruner, Partition, apriori, partition_mine
from tests.conftest import brute_force_frequent


class TestParameterValidation:
    def test_invalid_partitions(self):
        with pytest.raises(ValueError):
            Partition(n_partitions=0)

    def test_auto_ossm_exclusive_with_explicit(self):
        with pytest.raises(ValueError, match="auto_ossm"):
            Partition(auto_ossm=4, global_pruner=OSSMPruner(
                OSSM.single_segment(TransactionDatabase([(0,)]))
            ))

    def test_invalid_auto_ossm(self):
        with pytest.raises(ValueError):
            Partition(auto_ossm=0)


class TestCorrectness:
    def test_against_brute_force(self, tiny_db):
        for n_partitions in (1, 2, 4):
            result = partition_mine(tiny_db, 2, n_partitions=n_partitions)
            assert result.frequent == brute_force_frequent(tiny_db, 2)

    def test_matches_apriori_on_quest(self, quest_db):
        reference = apriori(quest_db, 0.02)
        for n_partitions in (2, 5, 10):
            result = partition_mine(
                quest_db, 0.02, n_partitions=n_partitions
            )
            assert result.same_itemsets(reference), n_partitions

    def test_relative_threshold(self, quest_db):
        direct = partition_mine(quest_db, 0.05, n_partitions=3)
        absolute = partition_mine(quest_db, 30, n_partitions=3)
        assert direct.same_itemsets(absolute)

    def test_more_partitions_than_transactions_clamped(self):
        db = TransactionDatabase([(0,), (0, 1)], n_items=2)
        result = partition_mine(db, 1, n_partitions=10)
        assert result.frequent == brute_force_frequent(db, 1)

    def test_max_level(self, quest_db):
        result = partition_mine(quest_db, 0.03, max_level=2)
        assert result.max_level <= 2


class TestGlobalCandidateAccounting:
    def test_phase2_counts_union_of_local_results(self, quest_db):
        result = partition_mine(quest_db, 0.02, n_partitions=4, max_level=2)
        # Every frequent itemset was a global candidate.
        for k in (1, 2):
            assert result.level(k).candidates_generated >= result.level(
                k
            ).frequent

    def test_skew_inflates_global_candidates(self):
        """Locally frequent ≠ globally frequent on seasonal data."""
        from repro.data import generate_skewed

        db = generate_skewed(
            n_transactions=600, n_items=40, skew=0.9, seed=3
        )
        result = partition_mine(db, 0.1, n_partitions=2, max_level=2)
        checked = sum(s.candidates_counted for s in result.levels)
        assert checked > result.n_frequent  # some candidates died globally


class TestOSSMEnhancement:
    def test_auto_ossm_same_output(self, quest_db):
        plain = partition_mine(quest_db, 0.02, n_partitions=4)
        enhanced = partition_mine(
            quest_db, 0.02, n_partitions=4, auto_ossm=5
        )
        assert plain.same_itemsets(enhanced)

    def test_auto_ossm_prunes_global_candidates(self):
        from repro.data import generate_skewed

        db = generate_skewed(
            n_transactions=800, n_items=50, skew=0.9, seed=5
        )
        plain = partition_mine(db, 0.08, n_partitions=2, max_level=2)
        enhanced = partition_mine(
            db, 0.08, n_partitions=2, auto_ossm=8, max_level=2
        )
        assert plain.same_itemsets(enhanced)
        assert (
            enhanced.candidates_counted() <= plain.candidates_counted()
        )

    def test_explicit_local_pruner_factory(self, quest_db):
        def factory(part, index):
            return OSSMPruner(OSSM.single_segment(part))

        result = partition_mine(
            quest_db, 0.02, n_partitions=3, local_pruner_factory=factory
        )
        reference = apriori(quest_db, 0.02)
        assert result.same_itemsets(reference)

    def test_algorithm_label_with_auto_ossm(self, quest_db):
        result = partition_mine(quest_db, 0.05, auto_ossm=4)
        assert result.algorithm == "partition+ossm"
