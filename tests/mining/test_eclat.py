"""Tests for the Eclat vertical miner."""

from repro.data import TransactionDatabase
from repro.mining import apriori, eclat
from tests.conftest import brute_force_frequent


class TestCorrectness:
    def test_against_brute_force(self, tiny_db):
        for threshold in (1, 2, 3, 4):
            result = eclat(tiny_db, threshold)
            assert result.frequent == brute_force_frequent(
                tiny_db, threshold
            ), threshold

    def test_matches_apriori_on_quest(self, quest_db):
        for minsup in (0.02, 0.05):
            assert eclat(quest_db, minsup).same_itemsets(
                apriori(quest_db, minsup)
            )

    def test_max_level_two(self, tiny_db):
        result = eclat(tiny_db, 1, max_level=2)
        assert result.max_level <= 2
        assert result.frequent == brute_force_frequent(
            tiny_db, 1, max_level=2
        )

    def test_max_level_one(self, tiny_db):
        result = eclat(tiny_db, 1, max_level=1)
        assert set(result.frequent) == {
            (i,) for i in range(tiny_db.n_items)
        }

    def test_max_level_three(self, tiny_db):
        result = eclat(tiny_db, 1, max_level=3)
        assert result.frequent == brute_force_frequent(
            tiny_db, 1, max_level=3
        )

    def test_empty_database(self):
        db = TransactionDatabase([], n_items=2)
        assert eclat(db, 1).frequent == {}

    def test_supports_exact(self, quest_db):
        result = eclat(quest_db, 0.05)
        for itemset, support in result.frequent.items():
            assert support == quest_db.support(itemset)

    def test_deep_itemsets(self):
        db = TransactionDatabase([(0, 1, 2, 3, 4)] * 3, n_items=5)
        result = eclat(db, 3)
        assert (0, 1, 2, 3, 4) in result.frequent
        assert len(result.frequent) == 2**5 - 1
