"""TenantStore WAL + artifact persistence and registry recovery.

The load-bearing properties:

* every control-plane transition survives a restart exactly: tenants,
  epochs, quotas, and (crucially) deletions;
* a WAL truncated at *any* byte offset inside its final record — the
  only damage a crash mid-append can produce — recovers silently to
  the longest valid prefix (hypothesis sweeps every offset);
* damage that is *not* a torn tail (a corrupted record with valid
  records after it, an artifact missing or disagreeing with the WAL)
  raises the typed ``CorruptArtifact`` instead of guessing.
"""

import asyncio
import json

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.ossm import OSSM
from repro.resilience import CorruptArtifact
from repro.serve import TenantQuota, TenantRegistry, TenantStore


def small_map(bump: int = 0, epoch: int = 0) -> OSSM:
    """A tiny deterministic OSSM; *bump* varies the bounds."""
    matrix = np.array(
        [[20, 40, 40], [10, 40, 20], [40, 10, 20]], dtype=np.int64
    ) + bump
    return OSSM(matrix, segment_sizes=(50, 50, 50), epoch=epoch)


@pytest.fixture
def store(tmp_path) -> TenantStore:
    return TenantStore(tmp_path / "state")


class TestWALFraming:
    def test_append_replay_round_trip(self, store):
        store.record_create("alpha", 0, "alpha/epoch_00000000.npz")
        store.record_publish("alpha", 1, "alpha/epoch_00000001.npz")
        store.record_quota("alpha", {"rate": 10.0})
        store.record_delete("alpha")
        ops = [record["op"] for record in store.replay()]
        assert ops == ["create", "publish", "quota", "delete"]

    def test_unknown_op_rejected_at_append(self, store):
        with pytest.raises(ValueError, match="unknown WAL op"):
            store.append({"op": "upgrade", "tenant": "x"})

    def test_missing_wal_is_empty(self, store):
        assert store.replay() == []
        assert store.recovered_tenants() == {}

    def test_corruption_before_valid_records_raises(self, store):
        """Damage mid-file cannot be a torn append: it must raise."""
        store.record_create("alpha", 0, "alpha/epoch_00000000.npz")
        store.record_create("beta", 0, "beta/epoch_00000000.npz")
        store.close()
        data = store.wal_path.read_bytes()
        damaged = bytearray(data)
        damaged[len(data) // 4] ^= 0xFF  # inside the first record
        store.wal_path.write_bytes(bytes(damaged))
        with pytest.raises(CorruptArtifact) as err:
            TenantStore(store.root).replay()
        assert str(store.wal_path) in str(err.value)

    def test_foreign_bytes_at_start_raise(self, store):
        store.wal_path.write_bytes(b"not a wal at all" * 4)
        with pytest.raises(CorruptArtifact, match="bad record magic"):
            store.replay()

    def test_torn_tail_truncated_so_appends_continue(self, store):
        store.record_create("alpha", 0, "alpha/epoch_00000000.npz")
        store.close()
        intact = store.wal_path.read_bytes()
        store.wal_path.write_bytes(
            intact + b"\x00\x01"  # crash wrote two bytes of magic
        )
        reopened = TenantStore(store.root)
        assert [r["op"] for r in reopened.replay()] == ["create"]
        # The tail is gone from disk: a new append must extend a log
        # that replays clean.
        reopened.record_publish("alpha", 1, "alpha/epoch_00000001.npz")
        reopened.close()
        ops = [r["op"] for r in TenantStore(store.root).replay()]
        assert ops == ["create", "publish"]


class TestRecoveredFold:
    def test_delete_then_recreate(self, store):
        store.record_create("a", 0, "a/epoch_00000000.npz")
        store.record_delete("a")
        store.record_create("a", 0, "a/epoch_00000000.npz")
        assert set(store.recovered_tenants()) == {"a"}

    def test_publish_for_unknown_tenant_is_corruption(self, store):
        store.record_publish("ghost", 1, "ghost/epoch_00000001.npz")
        with pytest.raises(CorruptArtifact, match="unknown tenant"):
            store.recovered_tenants()

    def test_epoch_regression_is_corruption(self, store):
        store.record_create("a", 0, "a/epoch_00000000.npz")
        store.record_publish("a", 2, "a/epoch_00000002.npz")
        store.record_publish("a", 1, "a/epoch_00000001.npz")
        with pytest.raises(CorruptArtifact, match="moved backwards"):
            store.recovered_tenants()

    def test_quota_record_replaces_quota(self, store):
        store.record_create(
            "a", 0, "a/epoch_00000000.npz", quota={"rate": 5.0}
        )
        store.record_quota("a", {"rate": 50.0, "burst": 10.0})
        state = store.recovered_tenants()["a"]
        assert state.quota == {"rate": 50.0, "burst": 10.0}

    def test_artifact_path_confined_to_store(self, store):
        with pytest.raises(CorruptArtifact, match="escapes the store"):
            store.artifact_path("../../etc/passwd")


class TestRegistryPersistence:
    def test_full_restore_bit_exact(self, store, tmp_path):
        """Tenants, epochs, quotas, and bounds all survive a restart."""
        async def before():
            registry = TenantRegistry(
                store=store, default_quota=TenantQuota(rate=1000.0)
            )
            registry.create("a", small_map())
            registry.create(
                "b", small_map(bump=3), quota=TenantQuota(rate=7.0)
            )
            assert registry.publish("a", small_map(bump=9)) == 1
            await registry.aclose()

        asyncio.run(before())

        async def after():
            registry = TenantRegistry.recover(TenantStore(store.root))
            assert registry.names() == ["a", "b"]
            a, b = registry.get("a"), registry.get("b")
            assert (a.epoch, b.epoch) == (1, 0)
            assert b.quota.rate == 7.0
            queries = [(0,), (1, 2), (0, 2)]
            async with registry:
                got = await a.query_batch(queries)
            oracle = small_map(bump=9)
            assert got == [oracle.upper_bound(q) for q in queries]

        asyncio.run(after())

    def test_deleted_tenant_stays_deleted(self, store):
        """Regression: a DELETE must survive the restart (tombstone)."""
        async def scenario():
            registry = TenantRegistry(store=store)
            registry.create("keep", small_map())
            registry.create("gone", small_map(bump=1))
            await registry.remove("gone")
            await registry.aclose()
            recovered = TenantRegistry.recover(TenantStore(store.root))
            assert recovered.names() == ["keep"]
            assert "gone" not in recovered
            await recovered.aclose()

        asyncio.run(scenario())

    def test_artifact_epoch_must_match_wal(self, store):
        async def scenario():
            registry = TenantRegistry(store=store)
            registry.create("a", small_map())
            await registry.aclose()

        asyncio.run(scenario())
        # Overwrite the artifact with one claiming a different epoch.
        path = store.artifact_path("a/epoch_00000000.npz")
        small_map(epoch=3).save(path)
        with pytest.raises(CorruptArtifact, match="does not match WAL"):
            TenantRegistry.recover(TenantStore(store.root))

    def test_sweep_removes_orphan_temp_files(self, store):
        orphan = store.artifacts_dir / "a"
        orphan.mkdir()
        (orphan / ".epoch_00000001.npz.123.tmp").write_bytes(b"partial")
        assert store.sweep_temp_files() == 1
        assert list(store.artifacts_dir.rglob("*.tmp")) == []

    def test_quota_overrides_applied_and_invalid_skipped(self, store):
        async def scenario():
            registry = TenantRegistry(store=store)
            registry.create("a", small_map())
            registry.create("b", small_map(bump=1))
            store.quotas_path.write_text(json.dumps({
                "a": {"rate": 3.0},
                "b": {"rate": -1.0},       # invalid: skipped with warning
                "ghost": {"rate": 2.0},    # unknown tenant: skipped
            }))
            assert registry.apply_quota_overrides() == 1
            assert registry.get("a").quota.rate == 3.0
            assert registry.get("b").quota.rate is None
            await registry.aclose()

        asyncio.run(scenario())

    def test_unparseable_overrides_raise_value_error(self, store):
        async def scenario():
            registry = TenantRegistry(store=store)
            registry.create("a", small_map())
            store.quotas_path.write_text("{nope")
            with pytest.raises(ValueError, match="unparseable"):
                registry.apply_quota_overrides()
            await registry.aclose()

        asyncio.run(scenario())

    def test_recover_applies_overrides_at_boot(self, store):
        async def scenario():
            registry = TenantRegistry(store=store)
            registry.create("a", small_map())
            await registry.aclose()
            store.quotas_path.write_text(json.dumps({"a": {"rate": 9.0}}))
            recovered = TenantRegistry.recover(TenantStore(store.root))
            assert recovered.get("a").quota.rate == 9.0
            await recovered.aclose()

        asyncio.run(scenario())


def _wal_with_publish_tail(root) -> tuple[TenantStore, bytes, int]:
    """A two-record WAL (create + publish) and its last-record offset."""
    store = TenantStore(root / "state")
    async def build():
        registry = TenantRegistry(store=store)
        registry.create("a", small_map())
        registry.publish("a", small_map(bump=9))
        await registry.aclose()
    asyncio.run(build())
    data = store.wal_path.read_bytes()
    # Frame prefix: 4 magic + 1 version + 12 header; walk to the tail.
    offset, last = 0, 0
    while offset < len(data):
        length = int.from_bytes(data[offset + 9:offset + 17], "big")
        last = offset
        offset += 17 + length
    return store, data, last


class TestTruncationProperty:
    @settings(
        max_examples=40,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    @given(data=st.data())
    def test_any_tail_truncation_recovers_longest_prefix(
        self, data, tmp_path_factory
    ):
        """Cut the WAL anywhere inside its final record: recovery must
        never raise and must restore exactly the prefix before it."""
        root = tmp_path_factory.mktemp("wal")
        store, intact, last = _wal_with_publish_tail(root)
        cut = data.draw(
            st.integers(min_value=last, max_value=len(intact) - 1)
        )
        store.wal_path.write_bytes(intact[:cut])
        recovered = TenantStore(store.root).recovered_tenants()
        assert set(recovered) == {"a"}
        assert recovered["a"].epoch == 0
        assert store.wal_path.stat().st_size == last

    def test_every_offset_exhaustively(self, tmp_path):
        """Belt and braces: the same invariant swept at every offset,
        independent of hypothesis' sampling."""
        store, intact, last = _wal_with_publish_tail(tmp_path)
        for cut in range(last, len(intact)):
            store.wal_path.write_bytes(intact[:cut])
            recovered = TenantStore(store.root).recovered_tenants()
            assert recovered["a"].epoch == 0, cut
