"""Unit tests of the epoch-tagged LRU bound cache."""

import pytest

from repro.serve import EpochLRUCache


class TestBasics:
    def test_miss_then_hit(self):
        cache = EpochLRUCache(maxsize=4)
        assert cache.get((1, 2)) is None
        assert cache.put((1, 2), 17, epoch=0)
        assert cache.get((1, 2)) == 17
        assert cache.stats.hits == 1
        assert cache.stats.misses == 1

    def test_rejects_bad_maxsize_and_epoch(self):
        with pytest.raises(ValueError):
            EpochLRUCache(maxsize=0)
        with pytest.raises(ValueError):
            EpochLRUCache(epoch=-1)

    def test_len_and_clear(self):
        cache = EpochLRUCache(maxsize=8)
        for item in range(5):
            cache.put((item,), item, epoch=0)
        assert len(cache) == 5
        cache.clear()
        assert len(cache) == 0
        assert cache.epoch == 0

    def test_hit_rate(self):
        cache = EpochLRUCache(maxsize=4)
        assert cache.stats.hit_rate == 0.0
        cache.put((1,), 1, epoch=0)
        cache.get((1,))
        cache.get((2,))
        assert cache.stats.hit_rate == pytest.approx(0.5)


class TestLRU:
    def test_eviction_order_is_least_recently_used(self):
        cache = EpochLRUCache(maxsize=2)
        cache.put((1,), 1, epoch=0)
        cache.put((2,), 2, epoch=0)
        cache.get((1,))                 # (2,) is now LRU
        cache.put((3,), 3, epoch=0)     # evicts (2,)
        assert cache.get((2,)) is None
        assert cache.get((1,)) == 1
        assert cache.get((3,)) == 3
        assert cache.stats.evictions == 1

    def test_put_refreshes_recency(self):
        cache = EpochLRUCache(maxsize=2)
        cache.put((1,), 1, epoch=0)
        cache.put((2,), 2, epoch=0)
        cache.put((1,), 1, epoch=0)     # refresh, no growth
        assert len(cache) == 2
        cache.put((3,), 3, epoch=0)     # evicts (2,)
        assert cache.get((2,)) is None
        assert cache.get((1,)) == 1


class TestEpochs:
    def test_advance_invalidates_wholesale(self):
        cache = EpochLRUCache(maxsize=8)
        for item in range(4):
            cache.put((item,), item, epoch=0)
        assert cache.advance_epoch(1) is True
        assert len(cache) == 0
        assert cache.stats.invalidations == 4
        for item in range(4):
            assert cache.get((item,)) is None

    def test_advance_to_same_epoch_is_noop(self):
        cache = EpochLRUCache(maxsize=8)
        cache.put((1,), 1, epoch=0)
        assert cache.advance_epoch(0) is False
        assert cache.get((1,)) == 1

    def test_epoch_must_be_monotonic(self):
        cache = EpochLRUCache(maxsize=8, epoch=3)
        with pytest.raises(ValueError, match="monotonic"):
            cache.advance_epoch(2)

    def test_stale_put_is_dropped(self):
        cache = EpochLRUCache(maxsize=8)
        cache.advance_epoch(2)
        # A bound computed against epoch 1 lands after the bump: drop.
        assert cache.put((1, 2), 9, epoch=1) is False
        assert cache.get((1, 2)) is None
        assert cache.stats.stale_drops >= 1

    def test_stale_entry_is_dropped_on_get(self):
        # Defense in depth for the §10 invariant: even if an old-epoch
        # entry somehow survives, it is never served.
        cache = EpochLRUCache(maxsize=8)
        cache.put((1,), 5, epoch=0)
        cache._entries[(1,)] = (0, 5)   # simulate a leaked stale entry
        cache.epoch = 1
        assert cache.get((1,)) is None
        assert cache.stats.stale_drops == 1
