"""BatchScheduler: quota gating and cross-request coalescing."""

import asyncio

import pytest

from repro.serve import (
    BatchScheduler,
    BoundQueryService,
    QuotaExceeded,
    ServiceClosed,
    TokenBucket,
)

from .conftest import N_ITEMS


class TestCoalescing:
    def test_results_align_with_each_request(self, ossm):
        async def main():
            async with BoundQueryService(ossm) as service:
                scheduler = BatchScheduler(service, linger=0.005)
                async with scheduler:
                    first = scheduler.submit([(1, 2), (3,)])
                    second = scheduler.submit([(4, 5)])
                    third = scheduler.submit([(3,), (1, 2), (6,)])
                    a, b, c = await asyncio.gather(first, second, third)
                assert a == [ossm.upper_bound((1, 2)),
                             ossm.upper_bound((3,))]
                assert b == [ossm.upper_bound((4, 5))]
                assert c == [ossm.upper_bound((3,)),
                             ossm.upper_bound((1, 2)),
                             ossm.upper_bound((6,))]
                # All three rode one linger window: one service batch.
                assert scheduler.stats()["batches"] == 1
                assert service.stats()["slo"]["requests"] == 1

        asyncio.run(main())

    def test_zero_linger_still_coalesces_same_tick(self, ossm):
        async def main():
            async with BoundQueryService(ossm) as service:
                async with BatchScheduler(service, linger=0.0) as sched:
                    results = await asyncio.gather(
                        *(sched.submit([(i,)]) for i in range(8))
                    )
                assert [r[0] for r in results] == [
                    ossm.upper_bound((i,)) for i in range(8)
                ]
                assert sched.stats()["batches"] <= 2

        asyncio.run(main())

    def test_max_batch_splits_flushes(self, ossm):
        async def main():
            async with BoundQueryService(ossm) as service:
                scheduler = BatchScheduler(
                    service, linger=0.005, max_batch=3
                )
                async with scheduler:
                    results = await asyncio.gather(
                        *(scheduler.submit([(i,), (i + 1,)])
                          for i in range(5))
                    )
                assert all(
                    r == [ossm.upper_bound((i,)),
                          ossm.upper_bound((i + 1,))]
                    for i, r in enumerate(results)
                )
                assert scheduler.stats()["batches"] >= 2

        asyncio.run(main())

    def test_empty_submission_is_free(self, ossm):
        async def main():
            async with BoundQueryService(ossm) as service:
                async with BatchScheduler(service) as scheduler:
                    assert await scheduler.submit([]) == []
                    assert scheduler.stats()["batches"] == 0

        asyncio.run(main())


class TestQuotaGate:
    def test_shed_before_the_service_sees_it(self, ossm):
        clock_now = [0.0]
        bucket = TokenBucket(rate=10, burst=2, clock=lambda: clock_now[0])

        async def main():
            async with BoundQueryService(ossm) as service:
                scheduler = BatchScheduler(
                    service, bucket=bucket, tenant="acme"
                )
                async with scheduler:
                    await scheduler.submit([(1,), (2,)])
                    with pytest.raises(QuotaExceeded) as info:
                        await scheduler.submit([(3,)])
                    assert info.value.status_code == 429
                    assert info.value.retry_after == pytest.approx(0.1)
                    # The shed request never reached the service.
                    assert service.stats()["slo"]["requests"] == 1
                    assert scheduler.stats()["quota_shed"] == 1
                    # The bucket refills; the same request then admits.
                    clock_now[0] += 0.1
                    bounds = await scheduler.submit([(3,)])
                    assert bounds == [ossm.upper_bound((3,))]

        asyncio.run(main())

    def test_rejection_debits_nothing(self, ossm):
        clock_now = [0.0]
        bucket = TokenBucket(rate=1, burst=1, clock=lambda: clock_now[0])

        async def main():
            async with BoundQueryService(ossm) as service:
                async with BatchScheduler(
                    service, bucket=bucket, tenant="acme"
                ) as scheduler:
                    await scheduler.submit([(1,)])
                    for _ in range(5):
                        with pytest.raises(QuotaExceeded):
                            await scheduler.submit([(2,)])
                    clock_now[0] += 1.0
                    assert await scheduler.submit([(2,)]) == [
                        ossm.upper_bound((2,))
                    ]

        asyncio.run(main())


class TestLifecycle:
    def test_closed_scheduler_rejects(self, ossm):
        async def main():
            async with BoundQueryService(ossm) as service:
                scheduler = BatchScheduler(service)
                await scheduler.aclose()
                with pytest.raises(ServiceClosed):
                    await scheduler.submit([(1,)])

        asyncio.run(main())

    def test_service_errors_reach_every_waiter(self, ossm):
        async def main():
            async with BoundQueryService(ossm) as service:
                async with BatchScheduler(service, linger=0.005) as sched:
                    bad = N_ITEMS + 5
                    waits = [
                        sched.submit([(bad,)]),
                        sched.submit([(bad, bad + 1)]),
                    ]
                    results = await asyncio.gather(
                        *waits, return_exceptions=True
                    )
                assert all(
                    isinstance(r, ValueError) for r in results
                ), results

        asyncio.run(main())
