"""The typed-error HTTP contract and API naming consistency.

The gateway maps errors *mechanically*: every :class:`ServeError`
subclass carries ``status_code`` and ``retry_after``, and the edge
reads exactly those two attributes. These tests pin that contract —
and the PR's naming-consolidation promise: one snake_case style across
``BoundQueryService.stats()``, ``Session.serve()`` kwargs, and tenant
stats payloads.
"""

import inspect
import re

import pytest

from repro.serve import (
    BoundQueryService,
    InvalidRequest,
    Overloaded,
    QueryTimeout,
    QuotaExceeded,
    ServeError,
    ServiceClosed,
    UnknownTenant,
)
from repro.session import Session


class TestStatusContract:
    def test_every_error_carries_a_status(self):
        for cls in (
            InvalidRequest, Overloaded, QueryTimeout, QuotaExceeded,
            ServeError, ServiceClosed, UnknownTenant,
        ):
            assert isinstance(cls.status_code, int)
            assert 400 <= cls.status_code <= 599 or cls is ServeError

    def test_status_assignments(self):
        assert ServeError.status_code == 500
        assert InvalidRequest.status_code == 400
        assert UnknownTenant.status_code == 404
        assert QuotaExceeded.status_code == 429
        assert Overloaded.status_code == 503
        assert ServiceClosed.status_code == 503
        assert QueryTimeout.status_code == 504

    def test_all_are_serve_errors(self):
        assert issubclass(Overloaded, ServeError)
        assert issubclass(QuotaExceeded, Overloaded)
        assert issubclass(UnknownTenant, ServeError)
        # One except clause still catches the whole family.
        with pytest.raises(ServeError):
            raise QuotaExceeded("acme", 0.25)

    def test_retry_after_semantics(self):
        # Retrying a malformed request cannot help: no hint.
        assert InvalidRequest("bad").retry_after is None
        assert UnknownTenant("ghost").retry_after is None
        # Shared overload carries a heuristic hint.
        assert Overloaded(10, 8).retry_after == pytest.approx(0.05)
        # Quota rejections carry the bucket's exact refill time.
        exc = QuotaExceeded("acme", 0.375)
        assert exc.retry_after == pytest.approx(0.375)
        assert exc.tenant == "acme"
        assert "0.375" in str(exc)

    def test_overloaded_keeps_queue_fields(self):
        exc = Overloaded(130, 128)
        assert exc.pending == 130
        assert exc.max_pending == 128
        assert "130" in str(exc) and "128" in str(exc)

    def test_unknown_tenant_names_the_tenant(self):
        exc = UnknownTenant("ghost")
        assert exc.tenant == "ghost"
        assert "ghost" in str(exc)


_SNAKE = re.compile(r"^[a-z][a-z0-9_]*$")


def _assert_snake_keys(payload, path="stats"):
    for key, value in payload.items():
        assert _SNAKE.match(key), f"{path}.{key} is not snake_case"
        if isinstance(value, dict):
            _assert_snake_keys(value, f"{path}.{key}")


class TestNamingConsistency:
    """The API-redesign sweep: one name style, one set of kwargs."""

    def test_service_stats_keys_are_snake_case(self, ossm):
        import asyncio

        async def main():
            async with BoundQueryService(ossm) as service:
                await service.query((1, 2))
                return service.stats()

        _assert_snake_keys(asyncio.run(main()))

    def test_tenant_stats_keys_are_snake_case(self, ossm):
        import asyncio

        from repro.serve import TenantRegistry

        async def main():
            async with TenantRegistry() as tenants:
                tenant = tenants.create("acme", ossm)
                await tenant.query((1, 2))
                return tenant.stats()

        _assert_snake_keys(asyncio.run(main()))

    def test_session_serve_kwargs_match_service_ctor(self):
        """Session.serve() forwards: every kwarg must exist on the
        BoundQueryService constructor under the same name."""
        serve_params = set(
            inspect.signature(Session.serve).parameters
        ) - {"self"}
        ctor_params = set(
            inspect.signature(BoundQueryService.__init__).parameters
        ) - {"self", "ossm"}
        assert serve_params <= ctor_params, (
            serve_params - ctor_params
        )

    def test_registry_defaults_match_service_ctor_names(self):
        from repro.serve import TenantRegistry

        registry_params = set(
            inspect.signature(TenantRegistry.__init__).parameters
        )
        for shared in (
            "workers", "cache_size", "timeout",
            "slo_target", "slo_objective",
        ):
            assert shared in registry_params
