"""Behavioral tests of :class:`repro.serve.BoundQueryService`.

The load-bearing properties, in rough order of importance:

* every served bound — cached or not, parallel or serial — is
  byte-identical to the serial Equation (1) value of the map being
  served;
* no stale bound survives an epoch bump (DESIGN.md §10), including
  under interleaved query/extend traffic (hypothesis);
* worker-pool failure degrades, never corrupts: retry once on a fresh
  pool, then fall back to the serial path;
* back-pressure sheds with :class:`Overloaded`, timeouts raise
  :class:`QueryTimeout` without cancelling the shared evaluation.
"""

import asyncio
import os
import signal
import threading
import time

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

import repro.serve.service as service_module
from repro.core import GreedySegmenter, extend_ossm
from repro.data import PagedDatabase, generate_quest
from repro.obs.metrics import MetricsRegistry, use_registry
from repro.obs.trace import TraceRecorder, use_recorder
from repro.serve import (
    BoundQueryService,
    Overloaded,
    QueryTimeout,
    ServiceClosed,
    canonical_itemset,
)

N_ITEMS = 60


@pytest.fixture(scope="module")
def db():
    return generate_quest(
        n_transactions=600, n_items=N_ITEMS,
        avg_transaction_len=8.0, n_patterns=80, seed=5,
    )


@pytest.fixture(scope="module")
def ossm(db):
    paged = PagedDatabase(db, page_size=50)
    return GreedySegmenter().segment(paged, n_segments=6).ossm


def run(coroutine):
    return asyncio.run(coroutine)


# -- exactness -----------------------------------------------------------


class TestExactness:
    def test_single_query_matches_serial(self, ossm):
        async def main():
            async with BoundQueryService(ossm) as service:
                for itemset in [(0,), (1, 2), (3, 4, 5), ()]:
                    assert await service.query(itemset) == \
                        ossm.upper_bound(itemset)

        run(main())

    def test_batch_mixed_cardinality_matches_serial(self, ossm):
        batch = [(1,), (2, 3), (), (4, 5, 6), (7,), (2, 3)]

        async def main():
            async with BoundQueryService(ossm) as service:
                bounds = await service.query_batch(batch)
                assert bounds == [ossm.upper_bound(s) for s in batch]

        run(main())

    def test_cached_answer_is_identical(self, ossm):
        async def main():
            async with BoundQueryService(ossm) as service:
                first = await service.query((2, 5))
                second = await service.query((2, 5))
                assert first == second == ossm.upper_bound((2, 5))
                assert service.stats()["cache"]["hits"] == 1

        run(main())

    def test_canonicalization_shares_cache_entries(self, ossm):
        async def main():
            async with BoundQueryService(ossm) as service:
                a = await service.query((5, 2))
                b = await service.query((2, 5, 5))
                assert a == b == ossm.upper_bound((2, 5))
                stats = service.stats()["cache"]
                assert stats["hits"] == 1 and stats["misses"] == 1

        run(main())

    def test_empty_batch(self, ossm):
        async def main():
            async with BoundQueryService(ossm) as service:
                assert await service.query_batch([]) == []

        run(main())

    def test_rejects_bad_items(self, ossm):
        async def main():
            async with BoundQueryService(ossm) as service:
                with pytest.raises(ValueError, match="out of range"):
                    await service.query((ossm.n_items,))
                with pytest.raises(ValueError, match=">= 0"):
                    await service.query((-1,))

        run(main())


def test_canonical_itemset():
    assert canonical_itemset((3, 1, 3)) == (1, 3)
    assert canonical_itemset(()) == ()
    with pytest.raises(ValueError):
        canonical_itemset((-2,))


# -- coalescing ----------------------------------------------------------


class TestCoalescing:
    def test_concurrent_duplicates_evaluate_once(self, ossm):
        service = BoundQueryService(ossm)
        calls = []
        inner = service._evaluate

        def slow_evaluate(current, keys):
            calls.append(list(keys))
            time.sleep(0.02)
            return inner(current, keys)

        service._evaluate = slow_evaluate

        async def main():
            async with service:
                bounds = await asyncio.gather(
                    *(service.query((4, 9)) for _ in range(8))
                )
            assert set(bounds) == {ossm.upper_bound((4, 9))}

        run(main())
        evaluated = [key for batch in calls for key in batch]
        assert evaluated == [(4, 9)]


# -- back-pressure and timeouts ------------------------------------------


class TestBackpressure:
    def test_overload_sheds_with_typed_error(self, ossm):
        service = BoundQueryService(ossm, max_pending=2)
        release = threading.Event()
        inner = service._evaluate

        def blocked_evaluate(current, keys):
            release.wait()
            return inner(current, keys)

        service._evaluate = blocked_evaluate

        async def main():
            async with service:
                filler = asyncio.create_task(
                    service.query_batch([(1,), (2,)])
                )
                await asyncio.sleep(0.05)
                assert service.pending == 2
                with pytest.raises(Overloaded) as excinfo:
                    await service.query((3,))
                assert excinfo.value.max_pending == 2
                release.set()
                bounds = await filler
                assert bounds == [
                    ossm.upper_bound((1,)), ossm.upper_bound((2,))
                ]
                assert service.pending == 0
                # Capacity is back: the shed itemset now succeeds.
                assert await service.query((3,)) == ossm.upper_bound((3,))

        run(main())

    def test_timeout_raises_but_evaluation_completes(self, ossm):
        service = BoundQueryService(ossm, timeout=0.05)
        inner = service._evaluate

        def slow_evaluate(current, keys):
            time.sleep(0.25)
            return inner(current, keys)

        service._evaluate = slow_evaluate

        async def main():
            async with service:
                with pytest.raises(QueryTimeout):
                    await service.query((6, 7))
                # The shared evaluation was not cancelled: it finishes
                # and warms the cache for the next caller.
                while service.pending:
                    await asyncio.sleep(0.02)
                assert await service.query((6, 7), timeout=None) == \
                    ossm.upper_bound((6, 7))
                assert service.stats()["cache"]["hits"] == 1

        run(main())

    def test_per_call_timeout_overrides_default(self, ossm):
        async def main():
            async with BoundQueryService(ossm, timeout=0.001) as service:
                # Generous per-call override on a fast query: no timeout.
                assert await service.query((1,), timeout=30.0) == \
                    ossm.upper_bound((1,))

        run(main())

    def test_closed_service_refuses_work(self, ossm):
        async def main():
            service = BoundQueryService(ossm)
            await service.aclose()
            with pytest.raises(ServiceClosed):
                await service.query((1,))

        run(main())


# -- epochs --------------------------------------------------------------


class TestEpochs:
    def test_update_invalidates_and_serves_new_map(self, db, ossm):
        extra = generate_quest(
            n_transactions=200, n_items=N_ITEMS,
            avg_transaction_len=8.0, n_patterns=80, seed=6,
        )
        grown = extend_ossm(ossm, extra, page_size=50)
        assert grown.epoch == ossm.epoch + 1

        async def main():
            async with BoundQueryService(ossm) as service:
                before = await service.query((2, 3))
                assert before == ossm.upper_bound((2, 3))
                assert service.update(grown) is True
                assert service.epoch == grown.epoch
                after = await service.query((2, 3))
                assert after == grown.upper_bound((2, 3))
                assert service.stats()["cache"]["invalidations"] >= 1

        run(main())

    def test_update_rejects_older_epoch(self, ossm):
        extra = generate_quest(
            n_transactions=100, n_items=N_ITEMS, seed=7,
        )
        grown = extend_ossm(ossm, extra, page_size=50)

        async def main():
            async with BoundQueryService(grown) as service:
                with pytest.raises(ValueError, match="backwards"):
                    service.update(ossm)

        run(main())

    def test_same_epoch_reshape_clears_cache(self, ossm):
        coarser = ossm.merge_segments([[0, 1], [2, 3], [4, 5]])
        assert coarser.epoch == ossm.epoch

        async def main():
            async with BoundQueryService(ossm) as service:
                await service.query((2, 3))
                service.update(coarser)
                bound = await service.query((2, 3))
                assert bound == coarser.upper_bound((2, 3))

        run(main())

    def test_update_with_same_object_is_noop(self, ossm):
        async def main():
            async with BoundQueryService(ossm) as service:
                await service.query((1, 2))
                assert service.update(ossm) is False
                assert service.stats()["cache"]["invalidations"] == 0

        run(main())


@settings(
    max_examples=15, deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(
    ops=st.lists(
        st.one_of(
            st.tuples(
                st.just("query"),
                st.lists(
                    st.integers(min_value=0, max_value=19),
                    min_size=0, max_size=3,
                ),
            ),
            st.tuples(st.just("extend"), st.integers(0, 2**16)),
        ),
        min_size=1, max_size=8,
    )
)
def test_no_stale_bound_under_interleaving(ops):
    """Interleaved queries and extensions never serve a stale bound."""
    base = generate_quest(
        n_transactions=120, n_items=20,
        avg_transaction_len=5.0, n_patterns=20, seed=1,
    )
    paged = PagedDatabase(base, page_size=30)
    current = GreedySegmenter().segment(paged, n_segments=4).ossm

    async def main(current):
        async with BoundQueryService(current) as service:
            for op, payload in ops:
                if op == "query":
                    bound = await service.query(payload)
                    assert bound == current.upper_bound(payload)
                    # Ask again: the cached answer must agree too.
                    assert await service.query(payload) == bound
                else:
                    extra = generate_quest(
                        n_transactions=40, n_items=20,
                        avg_transaction_len=5.0, n_patterns=20,
                        seed=payload,
                    )
                    current = extend_ossm(current, extra, page_size=30)
                    service.update(current)
                    assert service.epoch == current.epoch

    asyncio.run(main(current))


# -- parallel evaluation and worker failure ------------------------------


class TestParallelPath:
    def _batch(self, n):
        return [(i % N_ITEMS, (i + 7) % N_ITEMS) for i in range(n)]

    def test_parallel_batch_matches_serial(self, ossm):
        batch = [s for s in self._batch(100) if len(set(s)) == 2]

        async def main():
            async with BoundQueryService(
                ossm, workers=2, parallel_threshold=8
            ) as service:
                bounds = await service.query_batch(batch)
                assert bounds == [ossm.upper_bound(s) for s in batch]
                assert service.parallel_healthy

        run(main())

    def test_retry_once_recovers(self, ossm, monkeypatch):
        real = service_module.parallel_upper_bounds
        calls = {"n": 0}

        def flaky(current, group, workers=None, pool=None):
            calls["n"] += 1
            if calls["n"] == 1:
                raise RuntimeError("worker died")
            return real(current, group, workers=workers, pool=pool)

        monkeypatch.setattr(
            service_module, "parallel_upper_bounds", flaky
        )
        batch = self._batch(40)

        async def main():
            async with BoundQueryService(
                ossm, workers=2, parallel_threshold=8
            ) as service:
                bounds = await service.query_batch(batch)
                assert bounds == [ossm.upper_bound(s) for s in batch]
                # First attempt failed, the fresh-pool retry succeeded.
                assert calls["n"] == 2
                assert service.parallel_healthy

        run(main())

    def test_double_failure_falls_back_to_serial(self, ossm, monkeypatch):
        def broken(current, group, workers=None, pool=None):
            raise RuntimeError("pool is gone")

        monkeypatch.setattr(
            service_module, "parallel_upper_bounds", broken
        )
        batch = self._batch(40)

        async def main():
            registry = MetricsRegistry()
            with use_registry(registry):
                async with BoundQueryService(
                    ossm, workers=2, parallel_threshold=8
                ) as service:
                    bounds = await service.query_batch(batch)
                    assert bounds == [ossm.upper_bound(s) for s in batch]
                    assert not service.parallel_healthy
            snapshot = registry.snapshot()
            assert snapshot["counters"]["serve.fallbacks"] >= 1
            assert snapshot["counters"]["serve.retries"] >= 1

        run(main())

    def test_killed_workers_mid_batch_still_exact(self, ossm):
        """A real SIGKILL on the pool's workers: the service retries on
        a fresh pool (or falls back serially) and stays exact."""
        batch = self._batch(64)

        async def main():
            async with BoundQueryService(
                ossm, workers=2, parallel_threshold=8
            ) as service:
                first = await service.query_batch(batch)
                assert first == [ossm.upper_bound(s) for s in batch]
                pool = service._pool
                assert pool is not None
                for pid in list(pool._executor._processes):
                    os.kill(pid, signal.SIGKILL)
                fresh = [(i % N_ITEMS, (i + 11) % N_ITEMS)
                         for i in range(64)]
                bounds = await service.query_batch(fresh)
                assert bounds == [ossm.upper_bound(s) for s in fresh]

        run(main())


# -- observability -------------------------------------------------------


class TestObservability:
    def test_metrics_and_spans(self, ossm):
        registry = MetricsRegistry()
        recorder = TraceRecorder()

        async def main():
            async with BoundQueryService(ossm) as service:
                await service.query_batch([(1, 2), (3, 4)])
                await service.query((1, 2))

        with use_registry(registry), use_recorder(recorder):
            run(main())
        snapshot = registry.snapshot()
        counters = snapshot["counters"]
        assert counters["serve.queries"] == 3
        assert counters["serve.cache.misses"] == 2
        assert counters["serve.cache.hits"] == 1
        assert snapshot["gauges"]["serve.queue_depth"] == 0
        assert "serve.batch_seconds" in snapshot["timers"]
        names = {span["name"] for span in recorder.to_dicts()}
        assert "serve.batch" in names
