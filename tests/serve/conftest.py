"""Shared fixtures for the serving-plane tests."""

import pytest

from repro.core import GreedySegmenter
from repro.data import PagedDatabase, generate_quest

N_ITEMS = 40


@pytest.fixture(scope="session")
def db():
    return generate_quest(
        n_transactions=400, n_items=N_ITEMS,
        avg_transaction_len=6.0, n_patterns=50, seed=11,
    )


@pytest.fixture(scope="session")
def ossm(db):
    paged = PagedDatabase(db, page_size=40)
    return GreedySegmenter().segment(paged, n_segments=5).ossm
