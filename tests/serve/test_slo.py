"""Serve SLOs: rolling latency quantiles and the error budget."""

import asyncio

import pytest

from repro.core import GreedySegmenter
from repro.data import PagedDatabase, generate_quest
from repro.obs.metrics import MetricsRegistry, use_registry
from repro.serve import BoundQueryService, Overloaded

N_ITEMS = 40


@pytest.fixture(scope="module")
def ossm():
    db = generate_quest(
        n_transactions=300, n_items=N_ITEMS,
        avg_transaction_len=6.0, n_patterns=40, seed=9,
    )
    paged = PagedDatabase(db, page_size=30)
    return GreedySegmenter().segment(paged, n_segments=5).ossm


def run(coroutine):
    return asyncio.run(coroutine)


class TestConstruction:
    def test_rejects_bad_slo_target(self, ossm):
        with pytest.raises(ValueError):
            BoundQueryService(ossm, slo_target=0.0)
        with pytest.raises(ValueError):
            BoundQueryService(ossm, slo_target=-1.0)

    def test_rejects_bad_objective(self, ossm):
        with pytest.raises(ValueError):
            BoundQueryService(ossm, slo_objective=0.0)
        with pytest.raises(ValueError):
            BoundQueryService(ossm, slo_objective=1.5)


class TestLatencyStats:
    def test_every_batch_lands_in_the_window(self, ossm):
        service = BoundQueryService(ossm)

        async def main():
            async with service:
                for item in range(5):
                    await service.query((item,))
            return service.stats()

        stats = run(main())
        latency = stats["latency"]
        assert latency["window_count"] == 5
        assert latency["p50_ms"] >= 0.0
        assert latency["p50_ms"] <= latency["p95_ms"] <= latency["p99_ms"]

    def test_stats_without_traffic(self, ossm):
        stats = BoundQueryService(ossm).stats()
        assert stats["latency"]["window_count"] == 0
        assert stats["slo"]["requests"] == 0
        assert stats["slo"]["budget_remaining"] == 1.0


class TestErrorBudget:
    def test_no_target_means_no_latency_violations(self, ossm):
        service = BoundQueryService(ossm)

        async def main():
            async with service:
                await service.query((1,))
            return service.stats()

        slo = run(main())["slo"]
        assert slo["target_seconds"] is None
        assert slo["violations"] == 0
        assert slo["budget_remaining"] == 1.0

    def test_slow_requests_consume_budget(self, ossm):
        # An impossible target: every request violates.
        service = BoundQueryService(ossm, slo_target=1e-12)

        async def main():
            async with service:
                for item in range(4):
                    await service.query((item,))
            return service.stats()

        slo = run(main())["slo"]
        assert slo["requests"] == 4
        assert slo["violations"] == 4
        assert slo["budget_remaining"] == 0.0

    def test_shed_requests_consume_budget(self, ossm):
        service = BoundQueryService(ossm, max_pending=1)

        async def main():
            async with service:
                with pytest.raises(Overloaded):
                    await service.query_batch(
                        [(i,) for i in range(N_ITEMS)]
                    )
            return service.stats()

        slo = run(main())["slo"]
        assert slo["violations"] == 1

    def test_budget_arithmetic(self, ossm):
        # objective 0.5 over 4 requests allows 2 violations; 1 observed
        # leaves half the budget.
        service = BoundQueryService(
            ossm, slo_target=1e-12, slo_objective=0.5
        )

        async def main():
            async with service:
                await service.query((0,))
            service._slo_requests = 4
            return service.stats()

        slo = run(main())["slo"]
        assert slo["violations"] == 1
        assert slo["budget_remaining"] == pytest.approx(0.5)

    def test_violations_reach_the_metrics_registry(self, ossm):
        registry = MetricsRegistry()
        service = BoundQueryService(ossm, slo_target=1e-12)

        async def main():
            async with service:
                await service.query((1,))

        with use_registry(registry):
            run(main())
        snapshot = registry.snapshot()
        assert snapshot["counters"]["serve.slo.violations"] == 1
        assert snapshot["histograms"]["serve.latency_seconds"]["count"] == 1
