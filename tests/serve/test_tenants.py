"""TokenBucket, TenantQuota, and TenantRegistry behavior.

The load-bearing properties:

* the bucket admits at the configured sustained rate, returns *exact*
  refill hints on rejection, and lets oversized batches through at a
  full reservoir (debt) so the long-run rate holds for any batch size;
* the registry isolates tenants (separate services, quotas, pending
  budgets) and publishes new maps behind a strictly advancing epoch;
* hot reload under concurrent queries never serves a stale or dropped
  bound (hypothesis interleaving).
"""

import asyncio

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core import GreedySegmenter, extend_ossm
from repro.data import PagedDatabase, generate_quest
from repro.serve import (
    InvalidRequest,
    QuotaExceeded,
    TenantQuota,
    TenantRegistry,
    TokenBucket,
    UnknownTenant,
)

from .conftest import N_ITEMS


class FakeClock:
    def __init__(self):
        self.now = 100.0

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


class TestTokenBucket:
    def test_burst_then_exact_refill_hint(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=10, burst=5, clock=clock)
        for _ in range(5):
            assert bucket.acquire() == 0.0
        delay = bucket.acquire()
        assert delay == pytest.approx(0.1)
        # Nothing was debited by the rejection.
        clock.advance(delay)
        assert bucket.acquire() == 0.0

    def test_sustained_rate_holds(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=100, burst=1, clock=clock)
        admitted = 0
        for _ in range(1000):
            if bucket.acquire() == 0.0:
                admitted += 1
            clock.advance(0.005)  # 200 attempts/s against a 100/s quota
        assert 450 <= admitted <= 510

    def test_batch_larger_than_burst_admits_at_full_reservoir(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=10, burst=4, clock=clock)
        delay = bucket.acquire(40)  # full reservoir funds it, into debt
        assert delay == 0.0
        assert bucket.available == pytest.approx(-36.0)
        # The debt throttles everything until it is repaid.
        assert bucket.acquire() > 0.0
        clock.advance(3.7)  # -36 + 37 tokens = +1
        assert bucket.acquire() == 0.0

    def test_reservoir_caps_refill(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=10, burst=3, clock=clock)
        clock.advance(1000)
        assert bucket.available == pytest.approx(3.0)

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            TokenBucket(rate=0)
        with pytest.raises(ValueError):
            TokenBucket(rate=5, burst=0.5)
        with pytest.raises(ValueError):
            TokenBucket(rate=5).acquire(0)


class TestTenantQuota:
    def test_defaults_are_unlimited(self):
        quota = TenantQuota()
        assert quota.rate is None
        assert quota.bucket() is None
        assert quota.max_pending_share == 1.0

    def test_bucket_burst_defaults_to_one_second(self):
        bucket = TenantQuota(rate=25).bucket()
        assert bucket.burst == pytest.approx(25.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            TenantQuota(rate=-1)
        with pytest.raises(ValueError):
            TenantQuota(max_pending_share=0.0)
        with pytest.raises(ValueError):
            TenantQuota(max_pending_share=1.5)


class TestRegistryLifecycle:
    def test_create_get_remove(self, ossm):
        async def main():
            async with TenantRegistry() as tenants:
                tenant = tenants.create("acme", ossm)
                assert tenants.get("acme") is tenant
                assert "acme" in tenants
                assert len(tenants) == 1
                assert tenants.names() == ["acme"]
                assert await tenant.query((1, 2)) == \
                    ossm.upper_bound((1, 2))
                await tenants.remove("acme")
                assert "acme" not in tenants
                with pytest.raises(UnknownTenant):
                    tenants.get("acme")
                with pytest.raises(UnknownTenant):
                    await tenants.remove("acme")

        asyncio.run(main())

    def test_duplicate_create_rejected(self, ossm):
        async def main():
            async with TenantRegistry() as tenants:
                tenants.create("acme", ossm)
                with pytest.raises(InvalidRequest, match="already exists"):
                    tenants.create("acme", ossm)

        asyncio.run(main())

    @pytest.mark.parametrize(
        "name", ["", "-leading", "has space", "a" * 65, "sla/sh"]
    )
    def test_bad_names_rejected(self, ossm, name):
        async def main():
            async with TenantRegistry() as tenants:
                with pytest.raises(InvalidRequest, match="tenant name"):
                    tenants.create(name, ossm)

        asyncio.run(main())

    def test_pending_budget_is_shared_out(self, ossm):
        async def main():
            async with TenantRegistry(max_pending_total=100) as tenants:
                half = tenants.create(
                    "half", ossm, quota=TenantQuota(max_pending_share=0.5)
                )
                full = tenants.create("full", ossm)
                assert half.service.max_pending == 50
                assert full.service.max_pending == 100

        asyncio.run(main())

    def test_closed_registry_rejects_creates(self, ossm):
        async def main():
            tenants = TenantRegistry()
            await tenants.aclose()
            with pytest.raises(InvalidRequest, match="closed"):
                tenants.create("late", ossm)

        asyncio.run(main())

    def test_quota_isolation_between_tenants(self, ossm):
        """One tenant burning its quota never touches its neighbour."""

        async def main():
            async with TenantRegistry() as tenants:
                slow = tenants.create(
                    "slow", ossm, quota=TenantQuota(rate=1.0, burst=1)
                )
                fast = tenants.create("fast", ossm)
                assert await slow.query((1,)) == ossm.upper_bound((1,))
                with pytest.raises(QuotaExceeded) as info:
                    await slow.query((2,))
                assert info.value.retry_after > 0
                assert info.value.tenant == "slow"
                # The neighbour is untouched by the shed.
                for item in range(10):
                    assert await fast.query((item,)) == \
                        ossm.upper_bound((item,))

        asyncio.run(main())


class TestPublish:
    def test_publish_always_advances_the_epoch(self, ossm):
        async def main():
            async with TenantRegistry() as tenants:
                tenant = tenants.create("acme", ossm)
                assert tenant.epoch == 0
                # Artifacts usually land at epoch 0; publishing one
                # must still bump the serving epoch.
                epoch = tenants.publish("acme", ossm)
                assert epoch == 1
                assert tenant.epoch == 1
                epoch = tenants.publish("acme", ossm)
                assert epoch == 2
                # A map already ahead keeps its own (higher) epoch.
                from repro.core import OSSM

                ahead = OSSM(
                    ossm.matrix,
                    segment_sizes=ossm.segment_sizes,
                    epoch=10,
                )
                assert tenants.publish("acme", ahead) == 10

        asyncio.run(main())

    def test_publish_to_unknown_tenant(self, ossm):
        async def main():
            async with TenantRegistry() as tenants:
                with pytest.raises(UnknownTenant):
                    tenants.publish("ghost", ossm)

        asyncio.run(main())

    def test_publish_invalidates_served_bounds(self, ossm, db):
        extra = generate_quest(
            n_transactions=100, n_items=N_ITEMS,
            avg_transaction_len=6.0, n_patterns=50, seed=77,
        )
        grown = extend_ossm(ossm, extra, page_size=40)

        async def main():
            async with TenantRegistry() as tenants:
                tenant = tenants.create("acme", ossm)
                before = await tenant.query((1, 2))
                assert before == ossm.upper_bound((1, 2))
                tenants.publish("acme", grown)
                after = await tenant.query((1, 2))
                assert after == grown.upper_bound((1, 2))

        asyncio.run(main())


@settings(
    max_examples=12, deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(
    ops=st.lists(
        st.one_of(
            st.tuples(
                st.just("query"),
                st.sampled_from(["a", "b"]),
                st.lists(
                    st.integers(min_value=0, max_value=19),
                    min_size=0, max_size=3,
                ),
            ),
            st.tuples(
                st.just("publish"),
                st.sampled_from(["a", "b"]),
                st.integers(0, 2**16),
            ),
        ),
        min_size=1, max_size=8,
    )
)
def test_hot_reload_vs_concurrent_queries(ops):
    """Interleaved per-tenant publishes and queries: every bound served
    is exact for the map its tenant was serving, and no query is ever
    dropped by a concurrent reload."""
    base = generate_quest(
        n_transactions=120, n_items=20,
        avg_transaction_len=5.0, n_patterns=20, seed=2,
    )
    paged = PagedDatabase(base, page_size=30)
    start = GreedySegmenter().segment(paged, n_segments=4).ossm
    current = {"a": start, "b": start}

    async def main():
        async with TenantRegistry() as tenants:
            for name in ("a", "b"):
                tenants.create(name, current[name])
            for op, name, payload in ops:
                if op == "query":
                    tenant = tenants.get(name)
                    # Fire the query and the answer check around any
                    # publish that lands while it is in flight.
                    bound = await tenant.query(payload)
                    assert bound == current[name].upper_bound(payload)
                else:
                    extra = generate_quest(
                        n_transactions=40, n_items=20,
                        avg_transaction_len=5.0, n_patterns=20,
                        seed=payload,
                    )
                    grown = extend_ossm(
                        current[name], extra, page_size=30
                    )
                    current[name] = grown
                    tenants.publish(name, grown)
                    assert tenants.get(name).epoch == grown.epoch

    asyncio.run(main())
