"""HTTP contract tests for every gateway route.

Each route is pinned down over a real socket: status codes, JSON error
bodies with ``Retry-After``, keep-alive semantics, artifact-upload
verification, quota shedding, and the epoch-bump-during-batch
guarantee (a publish landing mid-flight drops nothing and mislabels
nothing).
"""

import asyncio
import json

import pytest

from repro.core import OSSM, extend_ossm
from repro.data import generate_quest
from repro.resilience import FaultPlan, FaultRule, use_faults
from repro.serve import Gateway, TenantQuota, TenantRegistry

from .conftest import N_ITEMS


async def http(
    gateway, method, path, body=b"", headers=None, connection=None
):
    """One HTTP/1.1 exchange; returns (status, headers, body bytes)."""
    if connection is None:
        reader, writer = await asyncio.open_connection(
            gateway.host, gateway.port
        )
        close = True
    else:
        reader, writer = connection
        close = False
    head = (
        f"{method} {path} HTTP/1.1\r\n"
        f"Host: {gateway.host}\r\n"
        f"Content-Length: {len(body)}\r\n"
    )
    for key, value in (headers or {}).items():
        head += f"{key}: {value}\r\n"
    if close:
        head += "Connection: close\r\n"
    writer.write(head.encode("latin-1") + b"\r\n" + body)
    await writer.drain()
    status_line = await reader.readline()
    status = int(status_line.split()[1])
    response_headers = {}
    while True:
        line = await reader.readline()
        if line in (b"\r\n", b"\n", b""):
            break
        key, _, value = line.decode("latin-1").partition(":")
        response_headers[key.strip().lower()] = value.strip()
    length = int(response_headers.get("content-length", "0"))
    payload = await reader.readexactly(length) if length else b""
    if close:
        writer.close()
        await writer.wait_closed()
    return status, response_headers, payload


def post_json(gateway, path, payload, connection=None):
    return http(
        gateway, "POST", path, json.dumps(payload).encode("utf-8"),
        connection=connection,
    )


@pytest.fixture()
def artifact(ossm, tmp_path):
    path = tmp_path / "map.npz"
    ossm.save(path)
    return path.read_bytes()


def run(coroutine):
    return asyncio.run(coroutine)


class TestUploadRoute:
    def test_put_creates_then_replaces(self, ossm, artifact):
        async def main():
            async with Gateway() as gateway:
                status, _, body = await http(
                    gateway, "PUT", "/v1/tenants/acme/ossm", artifact
                )
                assert status == 201
                payload = json.loads(body)
                assert payload == {
                    "tenant": "acme", "epoch": 0, "created": True,
                    "n_segments": ossm.n_segments,
                    "n_items": ossm.n_items,
                }
                # Replacing publishes behind an epoch bump.
                status, _, body = await http(
                    gateway, "PUT", "/v1/tenants/acme/ossm", artifact
                )
                assert status == 200
                payload = json.loads(body)
                assert payload["created"] is False
                assert payload["epoch"] == 1

        run(main())

    def test_corrupt_artifact_rejected_with_400(self, artifact):
        damaged = artifact[:-7] + b"garbage"

        async def main():
            async with Gateway() as gateway:
                status, _, body = await http(
                    gateway, "PUT", "/v1/tenants/acme/ossm", damaged
                )
                assert status == 400
                assert json.loads(body)["error"] == "InvalidRequest"
                # The failed upload provisioned nothing.
                status, _, body = await http(
                    gateway, "GET", "/v1/tenants"
                )
                assert json.loads(body)["tenants"] == []

        run(main())

    def test_empty_upload_rejected(self):
        async def main():
            async with Gateway() as gateway:
                status, _, body = await http(
                    gateway, "PUT", "/v1/tenants/acme/ossm", b""
                )
                assert status == 400
                assert "empty upload" in json.loads(body)["message"]

        run(main())


class TestBoundsRoute:
    def test_single_and_batch_are_exact(self, ossm, artifact):
        async def main():
            async with Gateway() as gateway:
                await http(
                    gateway, "PUT", "/v1/tenants/acme/ossm", artifact
                )
                status, _, body = await post_json(
                    gateway, "/v1/tenants/acme/bounds",
                    {"itemset": [1, 2]},
                )
                assert status == 200
                payload = json.loads(body)
                assert payload["bound"] == ossm.upper_bound((1, 2))
                assert payload["epoch"] == 0
                assert "bounds" not in payload

                batch = [[0], [3, 4], [], [1, 2, 3]]
                status, _, body = await post_json(
                    gateway, "/v1/tenants/acme/bounds",
                    {"itemsets": batch},
                )
                assert status == 200
                payload = json.loads(body)
                assert payload["bounds"] == [
                    ossm.upper_bound(tuple(s)) for s in batch
                ]

        run(main())

    @pytest.mark.parametrize(
        "body, fragment",
        [
            (b"not json", "not valid JSON"),
            (b"[1, 2]", "JSON object"),
            (b"{}", "exactly one of"),
            (
                json.dumps(
                    {"itemset": [0], "itemsets": [[1]]}
                ).encode(),
                "exactly one of",
            ),
            (json.dumps({"itemsets": "nope"}).encode(), "JSON array"),
            (json.dumps({"itemsets": [3]}).encode(), "itemset #0"),
            (
                json.dumps({"itemset": [1.5]}).encode(),
                "non-integer",
            ),
            (
                json.dumps({"itemset": [True]}).encode(),
                "non-integer",
            ),
            (
                json.dumps({"itemset": [10**6]}).encode(),
                "out of range",
            ),
            (
                json.dumps({"itemset": [-1]}).encode(),
                "out of range",
            ),
        ],
    )
    def test_malformed_requests_get_400(self, artifact, body, fragment):
        async def main():
            async with Gateway() as gateway:
                await http(
                    gateway, "PUT", "/v1/tenants/acme/ossm", artifact
                )
                status, _, response = await http(
                    gateway, "POST", "/v1/tenants/acme/bounds", body
                )
                assert status == 400, response
                payload = json.loads(response)
                assert payload["error"] == "InvalidRequest"
                assert fragment in payload["message"]
                assert "retry_after" not in payload

        run(main())

    def test_unknown_tenant_is_404(self):
        async def main():
            async with Gateway() as gateway:
                status, _, body = await post_json(
                    gateway, "/v1/tenants/ghost/bounds", {"itemset": [1]}
                )
                assert status == 404
                payload = json.loads(body)
                assert payload["error"] == "UnknownTenant"
                assert "ghost" in payload["message"]

        run(main())

    def test_quota_exhaustion_is_429_with_retry_after(self, ossm):
        async def main():
            registry = TenantRegistry(
                default_quota=TenantQuota(rate=1.0, burst=2)
            )
            async with registry:
                registry.create("metered", ossm)
                async with Gateway(registry) as gateway:
                    for _ in range(2):
                        status, _, _body = await post_json(
                            gateway, "/v1/tenants/metered/bounds",
                            {"itemset": [1]},
                        )
                        assert status == 200
                    status, headers, body = await post_json(
                        gateway, "/v1/tenants/metered/bounds",
                        {"itemset": [2]},
                    )
                    assert status == 429
                    payload = json.loads(body)
                    assert payload["error"] == "QuotaExceeded"
                    assert payload["retry_after"] > 0
                    assert int(headers["retry-after"]) >= 1

        run(main())


class TestEpochBumpDuringBatch:
    def test_publish_mid_flight_drops_nothing(self, ossm, db, tmp_path):
        """A PUT landing while a bounds batch is evaluating: the batch
        completes against the map it was admitted under, labeled with
        that map's epoch, and nothing is shed or timed out."""
        extra = generate_quest(
            n_transactions=100, n_items=N_ITEMS,
            avg_transaction_len=6.0, n_patterns=50, seed=99,
        )
        grown = extend_ossm(ossm, extra, page_size=40)
        grown_path = tmp_path / "grown.npz"
        OSSM(grown.matrix, segment_sizes=grown.segment_sizes).save(
            grown_path
        )
        grown_blob = grown_path.read_bytes()
        batch = [[i % N_ITEMS, (i + 3) % N_ITEMS] for i in range(12)]
        plan = FaultPlan(
            [FaultRule(point="serve.latency", times=1, delay=0.4)]
        )

        async def main():
            async with Gateway() as gateway:
                gateway.tenants.create("acme", ossm)
                inflight = asyncio.create_task(
                    post_json(
                        gateway, "/v1/tenants/acme/bounds",
                        {"itemsets": batch},
                    )
                )
                await asyncio.sleep(0.15)  # batch is mid-evaluation
                status, _, body = await http(
                    gateway, "PUT", "/v1/tenants/acme/ossm", grown_blob
                )
                assert status == 200
                assert json.loads(body)["epoch"] == 1
                status, _, body = await inflight
                assert status == 200
                payload = json.loads(body)
                # Answered exactly, against the admitted (old) map.
                assert payload["epoch"] == 0
                assert payload["bounds"] == [
                    ossm.upper_bound(tuple(s)) for s in batch
                ]
                stats = gateway.tenants.get("acme").stats()
                assert stats["epoch"] == 1
                assert stats["slo"]["violations"] == 0
                # Fresh queries see the new map immediately.
                status, _, body = await post_json(
                    gateway, "/v1/tenants/acme/bounds",
                    {"itemset": [1, 2]},
                )
                payload = json.loads(body)
                assert payload["epoch"] == 1
                assert payload["bound"] == grown.upper_bound((1, 2))

        with use_faults(plan):
            run(main())


class TestStatsAndOps:
    def test_tenant_stats_route(self, ossm, artifact):
        async def main():
            async with Gateway() as gateway:
                await http(
                    gateway, "PUT", "/v1/tenants/acme/ossm", artifact
                )
                await post_json(
                    gateway, "/v1/tenants/acme/bounds", {"itemset": [1]}
                )
                status, _, body = await http(
                    gateway, "GET", "/v1/tenants/acme/stats"
                )
                assert status == 200
                stats = json.loads(body)
                assert stats["tenant"] == "acme"
                assert stats["admission"]["requests"] == 1
                assert stats["quota"]["rate"] is None
                assert "latency" in stats and "slo" in stats

        run(main())

    def test_registry_routes(self, ossm):
        async def main():
            async with Gateway() as gateway:
                gateway.tenants.create("a1", ossm)
                gateway.tenants.create("a2", ossm)
                status, _, body = await http(gateway, "GET", "/v1/tenants")
                assert status == 200
                assert json.loads(body)["tenants"] == ["a1", "a2"]
                status, _, body = await http(gateway, "GET", "/stats")
                payload = json.loads(body)
                assert payload["tenant_count"] == 2
                assert set(payload["tenants"]) == {"a1", "a2"}
                status, _, body = await http(gateway, "GET", "/health")
                assert json.loads(body) == {
                    "status": "ok", "tenants": 2
                }

        run(main())

    def test_metrics_route_exposes_tenant_counters(self, ossm):
        from repro.obs.metrics import MetricsRegistry, use_registry

        registry = MetricsRegistry()

        async def main():
            async with Gateway() as gateway:
                gateway.tenants.create("acme", ossm)
                await post_json(
                    gateway, "/v1/tenants/acme/bounds", {"itemset": [1]}
                )
                status, headers, body = await http(
                    gateway, "GET", "/metrics"
                )
                assert status == 200
                assert headers["content-type"].startswith("text/plain")
                text = body.decode("utf-8")
                assert "repro_serve_tenant_acme_requests_total" in text
                assert "repro_serve_gateway_requests_total" in text

        with use_registry(registry):
            run(main())


class TestHttpPlumbing:
    def test_keep_alive_serves_many_requests(self, ossm, artifact):
        async def main():
            async with Gateway() as gateway:
                await http(
                    gateway, "PUT", "/v1/tenants/acme/ossm", artifact
                )
                connection = await asyncio.open_connection(
                    gateway.host, gateway.port
                )
                try:
                    for item in range(5):
                        status, headers, body = await post_json(
                            gateway, "/v1/tenants/acme/bounds",
                            {"itemset": [item]}, connection=connection,
                        )
                        assert status == 200
                        assert headers["connection"] == "keep-alive"
                        assert json.loads(body)["bound"] == \
                            ossm.upper_bound((item,))
                finally:
                    connection[1].close()
                    await connection[1].wait_closed()

        run(main())

    def test_unknown_route_and_method(self, ossm):
        async def main():
            async with Gateway() as gateway:
                gateway.tenants.create("acme", ossm)
                status, _, _body = await http(gateway, "GET", "/nope")
                assert status == 404
                status, _, _body = await http(
                    gateway, "GET", "/v1/tenants/acme/bounds"
                )
                assert status == 405
                status, _, _body = await http(
                    gateway, "POST", "/v1/tenants/acme/ossm", b"x"
                )
                assert status == 405
                status, _, _body = await http(
                    gateway, "PUT", "/v1/tenants/acme/stats", b""
                )
                assert status == 405
                status, _, _body = await http(
                    gateway, "GET", "/v1/tenants/acme/nothing"
                )
                assert status == 404

        run(main())

    def test_bad_tenant_name_is_400(self):
        async def main():
            async with Gateway() as gateway:
                status, _, body = await http(
                    gateway, "GET", "/v1/tenants/-bad-/stats"
                )
                assert status == 400
                assert json.loads(body)["error"] == "InvalidRequest"

        run(main())

    def test_oversized_content_length_is_413(self):
        async def main():
            async with Gateway() as gateway:
                reader, writer = await asyncio.open_connection(
                    gateway.host, gateway.port
                )
                writer.write(
                    b"PUT /v1/tenants/a/ossm HTTP/1.1\r\n"
                    b"Content-Length: 999999999999\r\n\r\n"
                )
                await writer.drain()
                status_line = await reader.readline()
                assert b"413" in status_line
                writer.close()
                await writer.wait_closed()

        run(main())

    def test_delete_then_404(self, ossm):
        async def main():
            async with Gateway() as gateway:
                gateway.tenants.create("acme", ossm)
                status, _, body = await http(
                    gateway, "DELETE", "/v1/tenants/acme"
                )
                assert status == 204
                assert body == b""
                status, _, _body = await http(
                    gateway, "DELETE", "/v1/tenants/acme"
                )
                assert status == 404

        run(main())


class TestReadinessAndDrain:
    def test_ready_flips_on_drain_while_health_holds(self, ossm):
        """Liveness and readiness must diverge during a drain: the
        orchestrator keeps the process, the balancer stops routing."""
        async def main():
            async with Gateway() as gateway:
                gateway.tenants.create("demo", ossm)
                status, _, payload = await http(gateway, "GET", "/ready")
                assert status == 200
                assert json.loads(payload)["status"] == "ready"
                gateway.begin_drain()
                gateway.begin_drain()  # idempotent
                status, _, payload = await http(gateway, "GET", "/ready")
                assert status == 503
                assert json.loads(payload)["status"] == "draining"
                status, _, _payload = await http(gateway, "GET", "/health")
                assert status == 200

        run(main())

    def test_draining_sheds_mutations_keeps_reads(self, ossm, artifact):
        async def main():
            async with Gateway() as gateway:
                gateway.tenants.create("demo", ossm)
                gateway.begin_drain()
                status, headers, payload = await post_json(
                    gateway, "/v1/tenants/demo/bounds", {"itemset": [1]}
                )
                assert status == 503
                body = json.loads(payload)
                assert body["error"] == "Draining"
                assert "retry-after" in headers
                status, _, _p = await http(
                    gateway, "PUT", "/v1/tenants/demo/ossm", artifact
                )
                assert status == 503
                status, _, _p = await http(
                    gateway, "DELETE", "/v1/tenants/demo"
                )
                assert status == 503
                # Introspection stays available for the operator.
                status, _, _p = await http(
                    gateway, "GET", "/v1/tenants/demo/stats"
                )
                assert status == 200
                status, _, _p = await http(gateway, "GET", "/metrics")
                assert status == 200

        run(main())
