"""Tests of the online bound-query serving layer."""
