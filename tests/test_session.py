"""Tests of the top-level ``repro.Session`` facade and the parameter-
name deprecation shims.

The facade must be a pure convenience: everything it returns is
exactly what calling the layers directly would produce. The shim must
warn exactly once per call and delegate with identical results.
"""

import asyncio
import warnings

import pytest

import repro
from repro import (
    GreedySegmenter,
    OSSMPruner,
    PagedDatabase,
    Session,
    apriori,
    generate_quest,
)


@pytest.fixture(scope="module")
def db():
    return generate_quest(
        n_transactions=500, n_items=50,
        avg_transaction_len=6.0, n_patterns=60, seed=9,
    )


class TestSessionPipeline:
    def test_generate_segment_mine_matches_direct_api(self, db):
        session = (
            Session(page_size=50)
            .use(db)
            .segment(n_segments=5, algorithm="greedy")
        )
        facade = session.mine(min_support=0.05, max_level=2)

        paged = PagedDatabase(db, page_size=50)
        ossm = GreedySegmenter().segment(paged, n_segments=5).ossm
        direct = apriori(
            db, 0.05, pruner=OSSMPruner(ossm), max_level=2
        )
        assert facade.frequent == direct.frequent

    def test_generate_kinds(self):
        for kind in ("quest", "skewed", "alarms"):
            session = Session().generate(
                kind,
                **{
                    "quest": dict(n_transactions=50, n_items=20, seed=1),
                    "skewed": dict(n_transactions=50, n_items=20, seed=1),
                    "alarms": dict(n_windows=50, n_alarm_types=20, seed=1),
                }[kind],
            )
            assert len(session.database) > 0
        with pytest.raises(ValueError, match="unknown workload"):
            Session().generate("nonsense")

    def test_load_roundtrip(self, db, tmp_path):
        path = tmp_path / "db.npz"
        repro.save(db, str(path))
        session = Session().load(path)
        assert len(session.database) == len(db)

    def test_accessors_raise_before_state_exists(self):
        session = Session()
        with pytest.raises(RuntimeError, match="no database"):
            session.database
        with pytest.raises(RuntimeError, match="no OSSM"):
            session.ossm
        assert session.segmentation is None

    def test_use_ossm(self, db):
        paged = PagedDatabase(db, page_size=50)
        ossm = GreedySegmenter().segment(paged, n_segments=4).ossm
        session = Session().use(db).use_ossm(ossm)
        assert session.ossm is ossm

    def test_mine_algorithms_agree(self, db):
        session = Session().use(db).segment(n_segments=4)
        reference = session.mine(min_support=0.05, max_level=2)
        for algorithm in ("fpgrowth", "eclat", "partition"):
            result = session.mine(
                min_support=0.05, algorithm=algorithm, max_level=2
            )
            assert result.frequent == reference.frequent, algorithm
        with pytest.raises(ValueError, match="unknown mining"):
            session.mine(min_support=0.05, algorithm="magic")

    def test_unknown_segmenter_rejected(self, db):
        with pytest.raises(ValueError, match="unknown segmenter"):
            Session().use(db).segment(algorithm="quantum")

    def test_segmenter_instance_accepted(self, db):
        session = Session().use(db).segment(
            n_segments=4, algorithm=GreedySegmenter()
        )
        assert session.ossm.n_segments == 4

    def test_bad_page_size(self):
        with pytest.raises(ValueError):
            Session(page_size=0)

    def test_repr(self, db):
        session = Session().use(db).segment(n_segments=4)
        text = repr(session)
        assert "transactions=500" in text and "epoch=0" in text


class TestSessionServing:
    def test_serve_and_extend_push_epoch(self, db):
        session = Session(page_size=50).use(db).segment(n_segments=5)
        extra = generate_quest(
            n_transactions=100, n_items=50,
            avg_transaction_len=6.0, n_patterns=60, seed=10,
        )

        async def main():
            async with session.serve(cache_size=128) as service:
                before = await service.query((1, 2))
                assert before == session.ossm.upper_bound((1, 2))
                session.extend(extra)
                assert service.epoch == session.ossm.epoch == 1
                after = await service.query((1, 2))
                assert after == session.ossm.upper_bound((1, 2))
                assert len(session.database) == len(db) + 100

        asyncio.run(main())


class TestRemovedNames:
    """PR 4 deprecated ``segment(n_user=)``; the cycle is now complete
    and the alias raises a pointed TypeError instead of warning."""

    def test_n_user_keyword_raises_pointed_type_error(self, db):
        paged = PagedDatabase(db, page_size=50)
        with pytest.raises(TypeError, match="n_segments"):
            GreedySegmenter().segment(paged, n_user=4)
        with pytest.raises(TypeError, match="deprecation cycle"):
            GreedySegmenter().segment(paged, n_user=4)

    def test_supported_spelling_is_silent(self, db):
        paged = PagedDatabase(db, page_size=50)
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            result = GreedySegmenter().segment(paged, n_segments=4)
        assert not [
            w for w in caught if issubclass(w.category, DeprecationWarning)
        ]
        assert result.n_segments == 4

    def test_positional_still_works_silently(self, db):
        paged = PagedDatabase(db, page_size=50)
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            result = GreedySegmenter().segment(paged, 4)
        assert not caught
        assert result.n_segments == 4

    def test_both_names_rejected(self, db):
        paged = PagedDatabase(db, page_size=50)
        with pytest.raises(TypeError, match="n_user"):
            GreedySegmenter().segment(paged, 4, n_user=4)

    def test_other_unknown_keywords_rejected_plainly(self, db):
        paged = PagedDatabase(db, page_size=50)
        with pytest.raises(TypeError, match="bogus"):
            GreedySegmenter().segment(paged, 4, bogus=1)

    def test_missing_segment_count_rejected(self, db):
        paged = PagedDatabase(db, page_size=50)
        with pytest.raises(TypeError, match="n_segments"):
            GreedySegmenter().segment(paged)
