"""Public-API consistency checks."""

import importlib

import pytest

PACKAGES = [
    "repro",
    "repro.core",
    "repro.data",
    "repro.mining",
    "repro.parallel",
    "repro.bench",
    "repro.obs",
    "repro.serve",
]


@pytest.mark.parametrize("package_name", PACKAGES)
def test_all_names_resolve(package_name):
    """Every name in __all__ is actually importable from the package."""
    package = importlib.import_module(package_name)
    assert hasattr(package, "__all__")
    for name in package.__all__:
        assert hasattr(package, name), f"{package_name}.{name} missing"


@pytest.mark.parametrize("package_name", PACKAGES)
def test_no_duplicate_exports(package_name):
    package = importlib.import_module(package_name)
    assert len(package.__all__) == len(set(package.__all__))


def test_version_exposed():
    import repro

    assert repro.__version__ == "1.0.0"


def test_star_import_is_clean():
    namespace: dict = {}
    exec("from repro import *", namespace)  # noqa: S102 - deliberate
    assert "OSSM" in namespace
    assert "apriori" in namespace


def test_key_symbols_reachable_from_top_level():
    import repro

    for name in (
        "OSSM", "GreedySegmenter", "RCSegmenter", "RandomSegmenter",
        "RandomRCSegmenter", "RandomGreedySegmenter", "bubble_list",
        "minimize_transactions", "n_min_bound", "StreamingOSSMBuilder",
        "TransactionDatabase", "PagedDatabase", "SequenceDatabase",
        "EventSequence", "generate_quest", "generate_skewed",
        "generate_alarms", "apriori", "dhp", "fpgrowth", "eclat",
        "partition_mine", "depth_project", "gsp",
        "mine_parallel_episodes", "mine_serial_episodes",
        "OSSMPruner", "generate_rules", "recommend",
        "ParallelCounter", "ParallelOSSMPruner", "parallel_build_ossm",
        "ShardPlanner", "Session", "make_counter", "registered_engines",
        "BitmapCounter", "ThreadedBitmapCounter", "ThreadShardPlanner",
        "BoundQueryService", "EpochLRUCache", "Overloaded",
        "QueryTimeout", "ServiceClosed",
        "Gateway", "TenantRegistry", "Tenant", "TenantQuota",
        "TokenBucket", "BatchScheduler", "QuotaExceeded",
        "UnknownTenant", "InvalidRequest",
        "OpsServer", "SlidingQuantile", "render_prometheus",
    ):
        assert hasattr(repro, name), name
