"""The exception-safety checker: swallowed resilience errors."""

from __future__ import annotations

from repro.analysis import ExceptionSafetyChecker, lint_paths, lint_source

from .conftest import FIXTURES, rules_of

CHECKERS = [ExceptionSafetyChecker()]


def lint(source: str, path: str = "repro/resilience/recovery.py"):
    return lint_source(source, path=path, checkers=CHECKERS)


class TestFixtures:
    def test_bad_fixture_fires_per_swallow(self):
        result = lint_paths(
            [FIXTURES / "bad" / "resilience" / "recovery.py"], CHECKERS
        )
        assert rules_of(result) == {"except-swallow-resilience"}
        assert len(result.findings) == 2

    def test_good_fixture_is_clean(self):
        result = lint_paths(
            [FIXTURES / "good" / "resilience" / "recovery.py"], CHECKERS
        )
        assert not result.failed, [f.render() for f in result.findings]


class TestSwallows:
    def test_pass_body_swallows(self):
        source = (
            "def f(reader, path):\n"
            "    try:\n"
            "        return reader(path)\n"
            "    except CorruptArtifact:\n"
            "        pass\n"
        )
        assert rules_of(lint(source)) == {"except-swallow-resilience"}

    def test_ellipsis_body_swallows(self):
        source = (
            "def f(pool, task):\n"
            "    try:\n"
            "        return pool.run(task)\n"
            "    except PoolFailure:\n"
            "        ...\n"
        )
        assert rules_of(lint(source)) == {"except-swallow-resilience"}

    def test_tuple_catch_including_resilience_error(self):
        source = (
            "def f(pool, task):\n"
            "    try:\n"
            "        return pool.run(task)\n"
            "    except (PoolFailure, OSError):\n"
            "        pass\n"
        )
        assert rules_of(lint(source)) == {"except-swallow-resilience"}

    def test_logging_handler_is_fine(self):
        source = (
            "def f(reader, path, logger):\n"
            "    try:\n"
            "        return reader(path)\n"
            "    except CorruptArtifact as exc:\n"
            "        logger.warning('rejected: %s', exc)\n"
            "        return None\n"
        )
        assert not lint(source).failed

    def test_fallback_handler_is_fine(self):
        source = (
            "def f(pool, task, fallback):\n"
            "    try:\n"
            "        return pool.run(task)\n"
            "    except PoolFailure:\n"
            "        return fallback(task)\n"
        )
        assert not lint(source).failed

    def test_unrelated_exception_swallow_is_out_of_scope(self):
        source = (
            "def f(mapping, key):\n"
            "    try:\n"
            "        return mapping[key]\n"
            "    except KeyError:\n"
            "        pass\n"
        )
        assert not lint(source).failed

    def test_local_subclass_is_covered(self):
        source = (
            "class ShardError(PoolFailure):\n"
            "    pass\n"
            "def f(pool, task):\n"
            "    try:\n"
            "        return pool.run(task)\n"
            "    except ShardError:\n"
            "        pass\n"
        )
        assert rules_of(lint(source)) == {"except-swallow-resilience"}
