"""The lifecycle CFG: exception edges, finally funnels, reachability."""

from __future__ import annotations

import ast

from repro.analysis.cfg import EXIT, build_cfg


def cfg_of(source: str):
    """Build the CFG of the first function in *source*."""
    tree = ast.parse(source)
    func = tree.body[0]
    assert isinstance(func, (ast.FunctionDef, ast.AsyncFunctionDef))
    return func, build_cfg(func)


def node_for(func, cfg, needle: str) -> int:
    """The node id of the statement whose source contains *needle*."""
    for node in cfg.nodes.values():
        text = ast.unparse(node.stmt).splitlines()[0]
        if needle in text and not node.is_header:
            return node.index
    raise AssertionError(f"no simple-statement node matching {needle!r}")


class TestStraightLine:
    def test_fallthrough_reaches_exit(self):
        func, cfg = cfg_of("def f():\n    a = 1\n    b = 2\n")
        start = node_for(func, cfg, "a = 1")
        assert cfg.reaches_exit(start, stops=set())

    def test_stop_on_the_only_path_blocks_exit(self):
        func, cfg = cfg_of("def f():\n    a = 1\n    b = 2\n")
        start = node_for(func, cfg, "a = 1")
        stop = node_for(func, cfg, "b = 2")
        # Normal flow is blocked, but b = 2 could itself raise… except
        # reaches_exit exempts only the *start* node's exception edge,
        # and the stop node is never traversed at all.
        assert not cfg.reaches_exit(start, stops={stop})

    def test_exception_edge_of_downstream_statement_escapes(self):
        source = (
            "def f():\n"
            "    a = acquire()\n"
            "    gap = build()\n"
            "    try:\n"
            "        use(a)\n"
            "    finally:\n"
            "        a.close()\n"
        )
        func, cfg = cfg_of(source)
        start = node_for(func, cfg, "a = acquire()")
        release = node_for(func, cfg, "a.close()")
        # `gap = build()` can raise before the try is entered: EXIT is
        # reachable without passing the release.
        assert cfg.reaches_exit(start, stops={release})

    def test_try_immediately_after_acquire_is_covered(self):
        source = (
            "def f():\n"
            "    a = acquire()\n"
            "    try:\n"
            "        gap = build()\n"
            "        use(a)\n"
            "    finally:\n"
            "        a.close()\n"
        )
        func, cfg = cfg_of(source)
        start = node_for(func, cfg, "a = acquire()")
        release = node_for(func, cfg, "a.close()")
        assert not cfg.reaches_exit(start, stops={release})


class TestTryShapes:
    def test_return_inside_try_funnels_through_finally(self):
        source = (
            "def f():\n"
            "    a = acquire()\n"
            "    try:\n"
            "        return use(a)\n"
            "    finally:\n"
            "        a.close()\n"
        )
        func, cfg = cfg_of(source)
        start = node_for(func, cfg, "a = acquire()")
        release = node_for(func, cfg, "a.close()")
        assert not cfg.reaches_exit(start, stops={release})

    def test_handler_swallow_then_fallthrough(self):
        source = (
            "def f():\n"
            "    a = acquire()\n"
            "    try:\n"
            "        use(a)\n"
            "    except ValueError:\n"
            "        log()\n"
            "    done()\n"
        )
        func, cfg = cfg_of(source)
        start = node_for(func, cfg, "a = acquire()")
        # Handler swallows and falls through: exit reachable, and no
        # release anywhere to stop it.
        assert cfg.reaches_exit(start, stops=set())

    def test_release_only_in_handler_misses_normal_path(self):
        source = (
            "def f():\n"
            "    a = acquire()\n"
            "    try:\n"
            "        use(a)\n"
            "    except ValueError:\n"
            "        a.close()\n"
        )
        func, cfg = cfg_of(source)
        start = node_for(func, cfg, "a = acquire()")
        release = node_for(func, cfg, "a.close()")
        # The success path never runs the handler: EXIT still reachable.
        assert cfg.reaches_exit(start, stops={release})


class TestLoops:
    def test_break_flows_to_after_the_loop(self):
        source = (
            "def f(items):\n"
            "    found = None\n"
            "    for item in items:\n"
            "        if item:\n"
            "            break\n"
            "    return found\n"
        )
        func, cfg = cfg_of(source)
        brk = node_for(func, cfg, "break")
        ret = node_for(func, cfg, "return found")
        assert ret in cfg.nodes[brk].succ
        assert cfg.reaches_exit(node_for(func, cfg, "found = None"), set())

    def test_while_true_with_return_only_exit(self):
        source = (
            "def f():\n"
            "    a = acquire()\n"
            "    while True:\n"
            "        if done():\n"
            "            a.close()\n"
            "            return\n"
        )
        func, cfg = cfg_of(source)
        start = node_for(func, cfg, "a = acquire()")
        release = node_for(func, cfg, "a.close()")
        # done() (evaluated at the if header) can raise → EXIT without
        # the release.
        assert cfg.reaches_exit(start, stops={release})
