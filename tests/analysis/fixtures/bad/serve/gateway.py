"""Event-loop violations the async-hygiene checker must catch."""

from __future__ import annotations

import asyncio
import subprocess
import time


async def refresh_epoch(service):
    """Three blocking calls inside a coroutine."""
    time.sleep(0.5)
    with open("/tmp/epoch") as handle:
        payload = handle.read()
    subprocess.run(["sync"], check=False)
    return payload


async def harvest(future):
    """Blocking Future.result() instead of awaiting."""
    return future.result()


async def query_once(service, item):
    return await service.query(item)


async def fan_out(service, items):
    """Coroutine called but never awaited; task reference dropped."""
    for item in items:
        query_once(service, item)
    asyncio.create_task(service.drain())


async def bounded_wait(task):
    """wait_for cancels the shared task on timeout — no shield."""
    return await asyncio.wait_for(task, timeout=1.0)
