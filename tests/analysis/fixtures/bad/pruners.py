"""Known-bad pruners: one violation of every pruner-protocol rule."""

from repro.mining.pruning import CandidatePruner


class MissingLabelPruner(CandidatePruner):
    """Violates pruner-label: no `label` anywhere."""

    def prune(self, candidates, min_support):
        return list(candidates)


class MissingPrunePruner(CandidatePruner):
    """Violates pruner-prune: no `prune` implementation."""

    label = "+noop"


class WrongArityPruner(CandidatePruner):
    """Violates pruner-prune: wrong `prune` signature."""

    label = "+arity"

    def prune(self, candidates):
        return list(candidates)


class ForgetfulBoundPruner(CandidatePruner):
    """Violates pruner-bounds-missing: computes bounds, no override."""

    label = "+forgetful"

    def __init__(self, ossm):
        self.ossm = ossm

    def prune(self, candidates, min_support):
        bounds = self.ossm.upper_bounds(candidates)
        return [
            candidate
            for candidate, bound in zip(candidates, bounds)
            if bound >= min_support
        ]


class SpuriousBoundPruner(CandidatePruner):
    """Violates pruner-bounds-spurious: overrides without a bound."""

    label = "+spurious"

    def prune(self, candidates, min_support):
        return list(candidates)

    def candidate_bounds(self, candidates):
        return [0] * len(candidates)
