"""Fork hazards the fork-safety checker must catch."""

from __future__ import annotations

import random

from repro.parallel.pool import WorkerPool

_CANDIDATE_CACHE: dict[str, int] = {}
_RNG = random.Random(1234)


def warm_cache(items):
    """Parent-side population of the module cache."""
    for item in items:
        _CANDIDATE_CACHE[item] = len(item)


def shard_task(payload):
    """Worker reads parent-populated state: empty under spawn."""
    return _CANDIDATE_CACHE.get(payload, 0)


def jitter_task(payload):
    """Worker draws from the fork-duplicated module RNG."""
    return len(payload) + _RNG.random()


def run(items):
    warm_cache(items)
    with WorkerPool(2) as pool:
        counts = pool.run(shard_task, items)
        jitters = pool.run(jitter_task, items)
    return counts, jitters
