"""Resource leaks the resource-lifecycle checker must catch."""

from __future__ import annotations

from multiprocessing import shared_memory

import numpy as np

from repro.parallel.pool import WorkerPool, plain_pool


def publish(array):
    """The copy into the fresh segment can raise — segment stranded."""
    segment = shared_memory.SharedMemory(create=True, size=array.nbytes)
    view = np.ndarray(array.shape, dtype=np.int64, buffer=segment.buf)
    view[:] = array
    return segment


def count_batch(work, payloads):
    """Happy-path-only close: pool.run raising skips pool.close()."""
    pool = WorkerPool(2)
    results = pool.run(work, payloads)
    pool.close()
    return results


def probe(array):
    """Acquired and dropped on the floor: nothing can release it."""
    shared_memory.SharedMemory(create=True, size=array.nbytes)
    return array.nbytes


def forgotten_pool(workers):
    """Context-manager factory called but never entered."""
    plain_pool(workers)
