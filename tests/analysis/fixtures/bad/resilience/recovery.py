"""Swallowed resilience errors the exception-safety checker must catch."""

from __future__ import annotations

from repro.resilience.errors import CorruptArtifact, PoolFailure


def load_counts(path, reader):
    """Integrity failure silently dropped: a bad artifact becomes None."""
    try:
        return reader(path)
    except CorruptArtifact:
        pass
    return None


def drain(pool, tasks):
    """Tuple catch incl. PoolFailure, body is a bare ellipsis."""
    results = []
    for task in tasks:
        try:
            results.append(pool.run(task))
        except (PoolFailure, OSError):
            ...
    return results
