"""Known-bad bound module: one violation per bound-soundness rule."""

from __future__ import annotations


def mean_bound(bounds):
    """bound-float-div: true division in support arithmetic."""
    return sum(bounds) / len(bounds)


def halved_bound(bound):
    """bound-float-literal: float literal promotes the expression."""
    return bound * 0.5


def widened_support(support):
    """bound-float-cast: explicit float() conversion."""
    return float(support)


def float_matrix(matrix, np):
    """bound-float-cast: astype to a float dtype."""
    return matrix.astype(np.float64)


def float_total(bounds):
    """bound-builtin-float: float start value turns the sum float."""
    return sum(bounds, 0.0)
