"""Known-bad API hygiene: one violation per api-hygiene rule."""

__all__ = ["exists", "ghost"]


def exists():
    return 1


def drifted():
    return 2


def mutable_default(values=[]):
    values.append(1)
    return values


async def async_mutable_default(*, cache={}):
    return cache


def annotated(count: int) -> int:
    return count


def segment(source, n_user=None):
    return (source, n_user)
