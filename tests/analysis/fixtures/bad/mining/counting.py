"""Known-bad hot-path module: one violation per hot-path rule."""

from __future__ import annotations


def unguarded_obs(database, metrics):
    """hot-obs-unguarded: telemetry call in a loop, no guard."""
    total = 0
    for txn in database:
        metrics.inc("counting.rows")
        total += len(txn)
    return total


def per_call_import(values):
    """hot-func-import: import machinery on every call."""
    import math

    return [math.sqrt(value) for value in values]


class LeafCache:
    """hot-getattr-default: allocates the default dict on every call."""

    def lookup(self, key):
        cache = getattr(self, "_cache", {})
        return cache.get(key)


def nested_lookup(rows, scorer):
    """hot-attr-hoist: attribute re-resolved per inner iteration."""
    total = 0
    for row in rows:
        for item in row:
            total += scorer.score(item)
    return total
