"""Known-good pruners: conforming counterparts of the bad fixtures."""

from repro.mining.pruning import CandidatePruner


class KeepAllPruner(CandidatePruner):
    """No bound, no `candidate_bounds` override: consistent."""

    label = ""

    def prune(self, candidates, min_support):
        return list(candidates)


class BoundBackedPruner(CandidatePruner):
    """Computes bounds and exposes them: consistent."""

    label = "+bound"

    def __init__(self, ossm):
        self.ossm = ossm

    def prune(self, candidates, min_support):
        bounds = self.ossm.upper_bounds(candidates)
        return [
            candidate
            for candidate, bound in zip(candidates, bounds)
            if bound >= min_support
        ]

    def candidate_bounds(self, candidates):
        if not candidates:
            return None
        return self.ossm.upper_bounds(candidates)


class LabelInInitPruner(CandidatePruner):
    """`label` assigned in __init__ also satisfies pruner-label."""

    def __init__(self, inner):
        self.inner = inner
        self.label = inner.label

    def prune(self, candidates, min_support):
        return self.inner.prune(candidates, min_support)

    def candidate_bounds(self, candidates):
        return self.inner.candidate_bounds(candidates)
