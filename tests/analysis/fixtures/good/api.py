"""Known-good API hygiene: the compliant rewrite."""

from __future__ import annotations

__all__ = ["Endpoint", "exists", "fresh_list", "annotated", "scrape"]


class Endpoint:
    async def handle(self, path: str) -> str:
        return path


async def scrape(path: str = "/metrics") -> str:
    return path


def exists():
    return 1


def _private_helper():
    return 2


def fresh_list(values=None):
    if values is None:
        values = []
    values.append(1)
    return values


def annotated(count: int) -> int:
    return count
