"""Known-good API hygiene: the compliant rewrite."""

from __future__ import annotations

__all__ = ["exists", "fresh_list", "annotated"]


def exists():
    return 1


def _private_helper():
    return 2


def fresh_list(values=None):
    if values is None:
        values = []
    values.append(1)
    return values


def annotated(count: int) -> int:
    return count
