"""Known-good API hygiene: the compliant rewrite."""

from __future__ import annotations

__all__ = [
    "Endpoint",
    "exists",
    "fresh_list",
    "annotated",
    "scrape",
    "segment",
]


class Endpoint:
    async def handle(self, path: str) -> str:
        return path


async def scrape(path: str = "/metrics") -> str:
    return path


def exists():
    return 1


def _private_helper():
    return 2


def fresh_list(values=None):
    if values is None:
        values = []
    values.append(1)
    return values


def annotated(count: int) -> int:
    return count


def segment(source, n_segments=None):
    return _reduce(source, n_segments)


def _reduce(state, n_user):
    # Private helpers may keep the paper's name; only the public
    # surface is held to the post-deprecation spelling.
    return (state, n_user)
