"""Known-good resource lifecycles: the compliant rewrites."""

from __future__ import annotations

from multiprocessing import shared_memory

import numpy as np

from repro.parallel.pool import WorkerPool, plain_pool


def publish(array):
    """Failure between acquire and return reaches a cleanup handler."""
    segment = shared_memory.SharedMemory(create=True, size=array.nbytes)
    try:
        view = np.ndarray(array.shape, dtype=np.int64, buffer=segment.buf)
        view[:] = array
    except BaseException:
        segment.close()
        segment.unlink()
        raise
    return segment


def count_batch(work, payloads):
    """try/finally covers every exit, exceptional ones included."""
    pool = WorkerPool(2)
    try:
        return pool.run(work, payloads)
    finally:
        pool.close()


def probe(array):
    """Bound and released instead of dropped."""
    segment = shared_memory.SharedMemory(create=True, size=array.nbytes)
    try:
        return segment.size
    finally:
        segment.close()
        segment.unlink()


def entered_pool(work, payloads, workers):
    """Context-manager factory actually entered."""
    with plain_pool(workers) as pool:
        return pool.run(work, payloads)
