"""Known-good fork discipline: the compliant rewrites."""

from __future__ import annotations

import random

from repro.parallel.pool import WorkerPool

_CANDIDATE_CACHE: dict[str, int] = {}


def init_cache(snapshot):
    """Pool initializer: rebuild the cache inside each worker."""
    global _CANDIDATE_CACHE
    _CANDIDATE_CACHE = dict(snapshot)


def shard_task(payload):
    """Reads initializer-managed state: valid under fork and spawn."""
    return _CANDIDATE_CACHE.get(payload, 0)


def jitter_task(payload):
    """Per-call RNG seeded from the payload: streams never collide."""
    rng = random.Random(len(payload))
    return len(payload) + rng.random()


def run(items):
    snapshot = {item: len(item) for item in items}
    with WorkerPool(2, init_cache, snapshot) as pool:
        counts = pool.run(shard_task, items)
        jitters = pool.run(jitter_task, items)
    return counts, jitters
