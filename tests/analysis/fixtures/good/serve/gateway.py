"""Known-good event-loop discipline: the compliant rewrites."""

from __future__ import annotations

import asyncio
import subprocess


def _read_epoch():
    with open("/tmp/epoch") as handle:
        return handle.read()


async def refresh_epoch(service):
    """Blocking work pushed off the loop."""
    await asyncio.sleep(0.5)
    payload = await asyncio.to_thread(_read_epoch)
    await asyncio.to_thread(subprocess.run, ["sync"])
    return payload


async def harvest(future):
    """Await the wrapped future instead of blocking on result()."""
    return await asyncio.wrap_future(future)


async def query_once(service, item):
    return await service.query(item)


async def fan_out(service, items, tasks):
    """Coroutines awaited; background task reference retained."""
    for item in items:
        await query_once(service, item)
    task = asyncio.create_task(service.drain())
    tasks.add(task)
    task.add_done_callback(tasks.discard)


async def bounded_wait(task):
    """shield() keeps a timeout from cancelling shared work."""
    return await asyncio.wait_for(asyncio.shield(task), timeout=1.0)
