"""Known-good hot-path module: the compliant rewrites."""

from __future__ import annotations

import math


def guarded_obs(database, metrics):
    """Telemetry guarded by `.enabled`: allowed in a loop."""
    total = 0
    for txn in database:
        if metrics.enabled:
            metrics.inc("counting.rows")
        total += len(txn)
    return total


def module_level_import(values):
    """Import hoisted to module level."""
    return [math.sqrt(value) for value in values]


class LeafCache:
    """Attribute initialized once in __init__."""

    def __init__(self):
        self._cache = {}

    def lookup(self, key):
        return self._cache.get(key)


def nested_lookup(rows, scorer):
    """Bound method hoisted to a local before the loops."""
    score = scorer.score
    total = 0
    for row in rows:
        for item in row:
            total += score(item)
    return total
