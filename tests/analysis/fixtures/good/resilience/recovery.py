"""Known-good resilience handling: the compliant rewrites."""

from __future__ import annotations

from repro.resilience.errors import CorruptArtifact, PoolFailure


def load_counts(path, reader, logger):
    """The rejected artifact is surfaced before degrading."""
    try:
        return reader(path)
    except CorruptArtifact as exc:
        logger.warning("artifact rejected, rebuilding: %s", exc)
        return None


def drain(pool, tasks, fallback):
    """PoolFailure degrades to the serial fallback, never vanishes."""
    results = []
    for task in tasks:
        try:
            results.append(pool.run(task))
        except PoolFailure:
            results.append(fallback(task))
    return results
