"""Known-good bound module: integer discipline throughout."""

from __future__ import annotations


def mean_bound_floor(bounds):
    """Floor division keeps the arithmetic integral."""
    return sum(bounds) // max(len(bounds), 1)


def halved_bound(bound):
    """Exact halving of an even quantity via //."""
    return bound // 2


def widened_support(support):
    """int() is the sound normalization for a support count."""
    return int(support)


def int_matrix(matrix, np):
    """Support matrices stay int64."""
    return matrix.astype(np.int64)


def int_total(bounds):
    """Integer start value keeps the reduction integral."""
    return sum(bounds, 0)
