"""The hot-path checker against fixtures and the real hot modules."""

from __future__ import annotations

from repro.analysis import HotPathChecker, lint_paths, lint_source

from .conftest import FIXTURES, SRC, rules_of

CHECKERS = [HotPathChecker()]


class TestFixtures:
    def test_bad_fixture_trips_every_rule(self):
        result = lint_paths(
            [FIXTURES / "bad" / "mining" / "counting.py"], CHECKERS
        )
        assert rules_of(result) == {
            "hot-obs-unguarded",
            "hot-func-import",
            "hot-getattr-default",
            "hot-attr-hoist",
        }

    def test_good_fixture_is_clean(self):
        result = lint_paths(
            [FIXTURES / "good" / "mining" / "counting.py"], CHECKERS
        )
        assert not result.failed, [f.render() for f in result.findings]


class TestScoping:
    def test_non_hot_module_is_ignored(self):
        source = "def f(db, metrics):\n    for t in db:\n        metrics.inc('x')\n"
        result = lint_source(source, path="repro/other.py", checkers=CHECKERS)
        assert not result.failed

    def test_custom_hot_module_list(self):
        source = "def f(db, metrics):\n    for t in db:\n        metrics.inc('x')\n"
        checker = HotPathChecker(hot_modules=("custom.py",))
        result = lint_source(source, path="pkg/custom.py", checkers=[checker])
        assert rules_of(result) == {"hot-obs-unguarded"}


class TestGuardsAndLoops:
    PATH = "x/mining/counting.py"  # a default hot-module suffix

    def lint(self, source):
        return lint_source(source, path=self.PATH, checkers=CHECKERS)

    def test_enabled_guard_exempts_obs_calls(self):
        source = (
            "def f(db, metrics):\n"
            "    for t in db:\n"
            "        if metrics.enabled:\n"
            "            metrics.inc('rows')\n"
        )
        assert not self.lint(source).failed

    def test_obs_call_outside_loop_is_fine(self):
        source = "def f(metrics):\n    metrics.inc('calls')\n"
        assert not self.lint(source).failed

    def test_single_loop_attr_call_is_not_hoist_flagged(self):
        source = (
            "def f(rows, scorer):\n"
            "    total = 0\n"
            "    for row in rows:\n"
            "        total += scorer.score(row)\n"
            "    return total\n"
        )
        assert not self.lint(source).failed

    def test_loop_variant_base_is_not_flagged(self):
        source = (
            "def f(rows):\n"
            "    out = []\n"
            "    for row in rows:\n"
            "        for item in row:\n"
            "            cursor = item.open()\n"
            "            cursor.close()\n"
            "    return out\n"
        )
        # `item` is the inner loop variable and `cursor` is rebound in
        # the inner loop: neither lookup is hoistable.
        assert not self.lint(source).failed

    def test_while_loops_count_as_loops(self):
        source = (
            "def f(metrics):\n"
            "    n = 0\n"
            "    while n < 10:\n"
            "        metrics.inc('spins')\n"
            "        n += 1\n"
        )
        assert rules_of(self.lint(source)) == {"hot-obs-unguarded"}


class TestRealTree:
    def test_shipped_hot_modules_are_clean(self):
        paths = [
            SRC / "repro" / "mining" / "counting.py",
            SRC / "repro" / "mining" / "hash_tree.py",
            SRC / "repro" / "core" / "greedy.py",
            SRC / "repro" / "core" / "bubble.py",
        ]
        result = lint_paths(paths, CHECKERS)
        assert not result.failed, [f.render() for f in result.findings]
