"""Shared helpers for the analysis test tier."""

from __future__ import annotations

from pathlib import Path

import pytest

FIXTURES = Path(__file__).parent / "fixtures"
REPO_ROOT = Path(__file__).parents[2]
SRC = REPO_ROOT / "src"


@pytest.fixture
def fixtures() -> Path:
    return FIXTURES


@pytest.fixture
def src_tree() -> Path:
    return SRC


def rules_of(result) -> set[str]:
    """The distinct rule ids present in a LintResult's findings."""
    return {finding.rule for finding in result.findings}
