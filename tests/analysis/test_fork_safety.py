"""The fork-safety checker: worker closure, shared state, module RNGs."""

from __future__ import annotations

from repro.analysis import ForkSafetyChecker, lint_paths, lint_source

from .conftest import FIXTURES, rules_of

CHECKERS = [ForkSafetyChecker()]


def lint(source: str, path: str = "repro/parallel/workers.py"):
    return lint_source(source, path=path, checkers=CHECKERS)


PRELUDE = "from repro.parallel.pool import WorkerPool\n"


class TestFixtures:
    def test_bad_fixture_trips_every_rule(self):
        result = lint_paths(
            [FIXTURES / "bad" / "parallel" / "workers.py"], CHECKERS
        )
        assert rules_of(result) == {"fork-module-state", "fork-shared-rng"}

    def test_good_fixture_is_clean(self):
        result = lint_paths(
            [FIXTURES / "good" / "parallel" / "workers.py"], CHECKERS
        )
        assert not result.failed, [f.render() for f in result.findings]


class TestModuleState:
    def test_parent_warmed_cache_read_by_worker(self):
        source = PRELUDE + (
            "_CACHE = {}\n"
            "def warm(items):\n"
            "    for item in items:\n"
            "        _CACHE[item] = 1\n"
            "def task(payload):\n"
            "    return _CACHE.get(payload, 0)\n"
            "def run(items):\n"
            "    warm(items)\n"
            "    with WorkerPool(2) as pool:\n"
            "        return pool.run(task, items)\n"
        )
        assert rules_of(lint(source)) == {"fork-module-state"}

    def test_constant_table_is_safe(self):
        # Never mutated after definition: identical in every process.
        source = PRELUDE + (
            "_WEIGHTS = {'a': 1, 'b': 2}\n"
            "def task(payload):\n"
            "    return _WEIGHTS.get(payload, 0)\n"
            "def run(items):\n"
            "    with WorkerPool(2) as pool:\n"
            "        return pool.run(task, items)\n"
        )
        assert not lint(source).failed

    def test_initializer_managed_state_is_safe(self):
        source = PRELUDE + (
            "_CACHE = {}\n"
            "def warm(items):\n"
            "    for item in items:\n"
            "        _CACHE[item] = 1\n"
            "def init_cache(items):\n"
            "    global _CACHE\n"
            "    _CACHE = {item: 1 for item in items}\n"
            "def task(payload):\n"
            "    return _CACHE.get(payload, 0)\n"
            "def run(items):\n"
            "    warm(items)\n"
            "    with WorkerPool(2, init_cache, items) as pool:\n"
            "        return pool.run(task, items)\n"
        )
        assert not lint(source).failed

    def test_transitive_worker_calls_are_audited(self):
        source = PRELUDE + (
            "_CACHE = {}\n"
            "def warm(items):\n"
            "    for item in items:\n"
            "        _CACHE[item] = 1\n"
            "def helper(payload):\n"
            "    return _CACHE.get(payload, 0)\n"
            "def task(payload):\n"
            "    return helper(payload) + 1\n"
            "def run(items):\n"
            "    warm(items)\n"
            "    with WorkerPool(2) as pool:\n"
            "        return pool.run(task, items)\n"
        )
        assert rules_of(lint(source)) == {"fork-module-state"}

    def test_non_worker_function_is_not_audited(self):
        source = PRELUDE + (
            "_CACHE = {}\n"
            "def warm(items):\n"
            "    for item in items:\n"
            "        _CACHE[item] = 1\n"
            "def local_only(payload):\n"
            "    return _CACHE.get(payload, 0)\n"
        )
        assert not lint(source).failed


class TestSharedRng:
    def test_module_level_rng_in_worker(self):
        source = PRELUDE + (
            "import random\n"
            "_RNG = random.Random(7)\n"
            "def task(payload):\n"
            "    return _RNG.random()\n"
            "def run(items):\n"
            "    with WorkerPool(2) as pool:\n"
            "        return pool.run(task, items)\n"
        )
        assert rules_of(lint(source)) == {"fork-shared-rng"}

    def test_per_call_rng_is_safe(self):
        source = PRELUDE + (
            "import random\n"
            "def task(payload):\n"
            "    rng = random.Random(len(payload))\n"
            "    return rng.random()\n"
            "def run(items):\n"
            "    with WorkerPool(2) as pool:\n"
            "        return pool.run(task, items)\n"
        )
        assert not lint(source).failed
