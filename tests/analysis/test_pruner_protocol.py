"""The pruner-protocol checker against fixtures and the real tree."""

from __future__ import annotations

from repro.analysis import PrunerProtocolChecker, lint_paths, lint_source

from .conftest import FIXTURES, SRC, rules_of

CHECKERS = [PrunerProtocolChecker()]


class TestFixtures:
    def test_bad_fixture_trips_every_rule(self):
        result = lint_paths([FIXTURES / "bad" / "pruners.py"], CHECKERS)
        assert rules_of(result) == {
            "pruner-label",
            "pruner-prune",
            "pruner-bounds-missing",
            "pruner-bounds-spurious",
        }

    def test_bad_fixture_finding_per_class(self):
        result = lint_paths([FIXTURES / "bad" / "pruners.py"], CHECKERS)
        assert len(result.findings) == 5  # WrongArity trips arity variant

    def test_good_fixture_is_clean(self):
        result = lint_paths([FIXTURES / "good" / "pruners.py"], CHECKERS)
        assert not result.failed


class TestUnitCases:
    def test_label_in_init_counts(self):
        source = (
            "class P(CandidatePruner):\n"
            "    def __init__(self):\n"
            "        self.label = '+x'\n"
            "    def prune(self, candidates, min_support):\n"
            "        return list(candidates)\n"
        )
        assert not lint_source(source, checkers=CHECKERS).failed

    def test_unrelated_class_is_ignored(self):
        source = "class NotAPruner:\n    pass\n"
        assert not lint_source(source, checkers=CHECKERS).failed

    def test_chain_delegation_requires_bounds_override(self):
        source = (
            "class Wrapper(CandidatePruner):\n"
            "    label = '+w'\n"
            "    def __init__(self, inner):\n"
            "        self.inner = inner\n"
            "    def prune(self, candidates, min_support):\n"
            "        return self.inner.prune(candidates, min_support)\n"
        )
        result = lint_source(source, checkers=CHECKERS)
        assert rules_of(result) == {"pruner-bounds-missing"}


class TestRealTree:
    def test_shipped_pruning_layer_conforms(self):
        result = lint_paths(
            [SRC / "repro" / "mining" / "pruning.py",
             SRC / "repro" / "mining" / "constraints.py"],
            CHECKERS,
        )
        assert not result.failed, [f.render() for f in result.findings]
