"""The bound-soundness checker against fixtures and the real modules."""

from __future__ import annotations

from repro.analysis import BoundSoundnessChecker, lint_paths, lint_source

from .conftest import FIXTURES, SRC, rules_of

CHECKERS = [BoundSoundnessChecker()]
PATH = "x/core/ossm.py"  # a default bound-module suffix


def lint(source):
    return lint_source(source, path=PATH, checkers=CHECKERS)


class TestFixtures:
    def test_bad_fixture_trips_every_rule(self):
        result = lint_paths([FIXTURES / "bad" / "core" / "ossm.py"], CHECKERS)
        assert rules_of(result) == {
            "bound-float-div",
            "bound-float-literal",
            "bound-float-cast",
            "bound-builtin-float",
        }

    def test_good_fixture_is_clean(self):
        result = lint_paths([FIXTURES / "good" / "core" / "ossm.py"], CHECKERS)
        assert not result.failed, [f.render() for f in result.findings]


class TestUnitCases:
    def test_floor_division_is_allowed(self):
        assert not lint("def f(a, b):\n    return (a + b) // 2\n").failed

    def test_true_division_is_flagged(self):
        result = lint("def f(a, b):\n    return (a + b) / 2\n")
        assert rules_of(result) == {"bound-float-div"}

    def test_dtype_keyword_float_is_flagged(self):
        result = lint(
            "def f(np, xs):\n"
            "    return np.asarray(xs, dtype=np.float32)\n"
        )
        assert rules_of(result) == {"bound-float-cast"}

    def test_dtype_keyword_int_is_clean(self):
        assert not lint(
            "def f(np, xs):\n    return np.asarray(xs, dtype=np.int64)\n"
        ).failed

    def test_min_with_float_default_is_flagged(self):
        result = lint("def f(xs):\n    return min(xs, default=0.0)\n")
        assert rules_of(result) == {"bound-builtin-float"}

    def test_non_bound_module_is_ignored(self):
        source = "def f(a, b):\n    return a / b\n"
        result = lint_source(source, path="repro/bench/x.py", checkers=CHECKERS)
        assert not result.failed

    def test_pragma_documents_a_justified_cast(self):
        source = (
            "def f(np, m):\n"
            "    return m.astype(np.float64)  # lint: skip=bound-float-cast\n"
        )
        result = lint(source)
        assert not result.failed
        assert len(result.suppressed) == 1


class TestRealTree:
    def test_shipped_bound_modules_are_clean(self):
        paths = [
            SRC / "repro" / "core" / "ossm.py",
            SRC / "repro" / "core" / "generalized.py",
            SRC / "repro" / "core" / "loss.py",
        ]
        result = lint_paths(paths, CHECKERS)
        assert not result.failed, [f.render() for f in result.findings]
