"""Tooling configuration: pyproject gates, CI workflow, typing marker.

The container may not ship ruff/mypy; tests that *execute* them skip
when the binary is absent. The configuration itself is always checked —
a malformed gate that CI would trip over should fail locally too.
"""

from __future__ import annotations

import shutil
import subprocess
import sys
import tomllib

import pytest

from .conftest import REPO_ROOT, SRC

PYPROJECT = REPO_ROOT / "pyproject.toml"


@pytest.fixture(scope="module")
def pyproject() -> dict:
    return tomllib.loads(PYPROJECT.read_text(encoding="utf-8"))


class TestPyproject:
    def test_lint_extra_declares_tools(self, pyproject):
        extras = pyproject["project"]["optional-dependencies"]
        joined = " ".join(extras["lint"])
        assert "ruff" in joined and "mypy" in joined

    def test_mypy_gate_covers_core_and_mining(self, pyproject):
        mypy = pyproject["tool"]["mypy"]
        assert mypy["strict"] is True
        assert set(mypy["packages"]) == {"repro.core", "repro.mining"}
        assert mypy["mypy_path"] == "src"

    def test_ruff_selects_bugbear_mutable_defaults(self, pyproject):
        select = pyproject["tool"]["ruff"]["lint"]["select"]
        assert "F" in select and "B006" in select

    def test_ruff_excludes_lint_fixtures(self, pyproject):
        excludes = pyproject["tool"]["ruff"]["extend-exclude"]
        assert any("fixtures" in entry for entry in excludes)

    def test_py_typed_is_packaged(self, pyproject):
        assert (SRC / "repro" / "py.typed").exists()
        package_data = pyproject["tool"]["setuptools"]["package-data"]
        assert "py.typed" in package_data["repro"]


class TestWorkflow:
    def test_ci_runs_all_four_gates(self):
        ci = (REPO_ROOT / ".github" / "workflows" / "ci.yml").read_text()
        for gate in ("pytest", "ruff check", "mypy", "repro lint"):
            assert gate in ci, f"CI workflow is missing the {gate} gate"

    def test_precommit_mirrors_ci(self):
        config = (REPO_ROOT / ".pre-commit-config.yaml").read_text()
        for hook in ("ruff", "repro lint", "mypy"):
            assert hook in config


@pytest.mark.skipif(shutil.which("ruff") is None, reason="ruff not installed")
def test_ruff_clean():
    proc = subprocess.run(
        ["ruff", "check", "src", "tests", "benchmarks", "examples"],
        cwd=REPO_ROOT, capture_output=True, text=True,
    )
    assert proc.returncode == 0, proc.stdout + proc.stderr


@pytest.mark.skipif(shutil.which("mypy") is None, reason="mypy not installed")
def test_mypy_strict_clean():
    proc = subprocess.run(
        [sys.executable, "-m", "mypy"],
        cwd=REPO_ROOT, capture_output=True, text=True,
    )
    assert proc.returncode == 0, proc.stdout + proc.stderr
