"""The resource-lifecycle checker: CFG-backed leak detection."""

from __future__ import annotations

from repro.analysis import ResourceLifecycleChecker, lint_paths, lint_source

from .conftest import FIXTURES, rules_of

CHECKERS = [ResourceLifecycleChecker()]


def lint(source: str, path: str = "repro/parallel/transport.py"):
    return lint_source(source, path=path, checkers=CHECKERS)


POOL_IMPORT = "from repro.parallel.pool import WorkerPool, plain_pool\n"
SHM_IMPORT = "from multiprocessing import shared_memory\n"


class TestFixtures:
    def test_bad_fixture_trips_every_rule(self):
        result = lint_paths(
            [FIXTURES / "bad" / "parallel" / "transport.py"], CHECKERS
        )
        assert rules_of(result) == {
            "resource-leak",
            "resource-dropped",
            "resource-cm-only",
        }
        leaks = [f for f in result.findings if f.rule == "resource-leak"]
        assert len(leaks) == 2  # publish() gap + count_batch happy path

    def test_good_fixture_is_clean(self):
        result = lint_paths(
            [FIXTURES / "good" / "parallel" / "transport.py"], CHECKERS
        )
        assert not result.failed, [f.render() for f in result.findings]


class TestLeakPaths:
    def test_statement_between_acquire_and_try_leaks(self):
        source = POOL_IMPORT + (
            "def f(work, payloads):\n"
            "    pool = WorkerPool(2)\n"
            "    batches = list(payloads)\n"
            "    try:\n"
            "        return pool.run(work, batches)\n"
            "    finally:\n"
            "        pool.close()\n"
        )
        assert rules_of(lint(source)) == {"resource-leak"}

    def test_immediate_try_finally_is_clean(self):
        source = POOL_IMPORT + (
            "def f(work, payloads):\n"
            "    pool = WorkerPool(2)\n"
            "    try:\n"
            "        batches = list(payloads)\n"
            "        return pool.run(work, batches)\n"
            "    finally:\n"
            "        pool.close()\n"
        )
        assert not lint(source).failed

    def test_happy_path_only_close_leaks(self):
        source = POOL_IMPORT + (
            "def f(work, payloads):\n"
            "    pool = WorkerPool(2)\n"
            "    results = pool.run(work, payloads)\n"
            "    pool.close()\n"
            "    return results\n"
        )
        assert rules_of(lint(source)) == {"resource-leak"}

    def test_conditional_release_header_is_trusted(self):
        source = POOL_IMPORT + (
            "def f(pool2, owned):\n"
            "    pool = WorkerPool(2)\n"
            "    try:\n"
            "        return pool.run(len, [])\n"
            "    finally:\n"
            "        if owned:\n"
            "            pool.close()\n"
        )
        assert not lint(source).failed

    def test_either_release_method_settles(self):
        # WorkerPool releases via close() OR kill().
        source = POOL_IMPORT + (
            "def f(work, payloads):\n"
            "    pool = WorkerPool(2)\n"
            "    try:\n"
            "        return pool.run(work, payloads)\n"
            "    finally:\n"
            "        pool.kill()\n"
        )
        assert not lint(source).failed


class TestExemptions:
    def test_with_statement_is_exempt(self):
        source = POOL_IMPORT + (
            "def f(work, payloads):\n"
            "    with WorkerPool(2) as pool:\n"
            "        return pool.run(work, payloads)\n"
        )
        assert not lint(source).failed

    def test_self_attribute_ownership_is_exempt(self):
        source = POOL_IMPORT + (
            "class Engine:\n"
            "    def start(self):\n"
            "        self._pool = WorkerPool(2)\n"
        )
        assert not lint(source).failed

    def test_returned_resource_escapes(self):
        source = SHM_IMPORT + (
            "def f(n):\n"
            "    seg = shared_memory.SharedMemory(create=True, size=n)\n"
            "    return seg\n"
        )
        assert not lint(source).failed

    def test_non_tracked_call_is_ignored(self):
        source = "def f(n):\n    buf = bytearray(n)\n    return len(buf)\n"
        assert not lint(source).failed


class TestDroppedAndCmOnly:
    def test_dropped_acquisition(self):
        source = SHM_IMPORT + (
            "def f(n):\n"
            "    shared_memory.SharedMemory(create=True, size=n)\n"
        )
        assert rules_of(lint(source)) == {"resource-dropped"}

    def test_cm_factory_called_without_with(self):
        source = POOL_IMPORT + (
            "def f(n):\n"
            "    plain_pool(n)\n"
        )
        assert rules_of(lint(source)) == {"resource-cm-only"}

    def test_cm_factory_under_with_is_fine(self):
        source = POOL_IMPORT + (
            "def f(n, work, payloads):\n"
            "    with plain_pool(n) as pool:\n"
            "        return pool.map(work, payloads)\n"
        )
        assert not lint(source).failed


class TestTupleUnpacking:
    def test_attach_handle_must_be_closed(self):
        source = (
            "from repro.parallel.pool import attach_int64\n"
            "def f(name, shape):\n"
            "    view, handle = attach_int64(name, shape)\n"
            "    total = int(view.sum())\n"
            "    handle.close()\n"
            "    return total\n"
        )
        # view.sum() can raise before handle.close(): a leak.
        assert rules_of(lint(source)) == {"resource-leak"}

    def test_attach_with_try_finally_is_clean(self):
        source = (
            "from repro.parallel.pool import attach_int64\n"
            "def f(name, shape):\n"
            "    view, handle = attach_int64(name, shape)\n"
            "    try:\n"
            "        return int(view.sum())\n"
            "    finally:\n"
            "        handle.close()\n"
        )
        assert not lint(source).failed
