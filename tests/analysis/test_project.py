"""The pass-1 project index: aliases, symbols, coroutines, acquires."""

from __future__ import annotations

import ast

from repro.analysis import FileContext, ProjectContext


def context_of(path: str, source: str) -> FileContext:
    return FileContext(path=path, source=source, tree=ast.parse(source))


def project_of(**files: str) -> ProjectContext:
    contexts = {
        path: context_of(path, source) for path, source in files.items()
    }
    return ProjectContext(contexts)


class TestModuleNames:
    def test_src_prefix_is_stripped(self):
        context = context_of("src/repro/serve/service.py", "")
        assert context.module_name() == "repro.serve.service"

    def test_init_maps_to_package(self):
        context = context_of("src/repro/parallel/__init__.py", "")
        assert context.module_name() == "repro.parallel"


class TestAliases:
    def test_plain_and_renamed_imports(self):
        project = project_of(
            **{
                "src/pkg/mod.py": (
                    "import time\n"
                    "import numpy as np\n"
                    "from asyncio import sleep as asleep\n"
                )
            }
        )
        aliases = project.aliases["src/pkg/mod.py"]
        assert aliases["time"] == "time"
        assert aliases["np"] == "numpy"
        assert aliases["asleep"] == "asyncio.sleep"

    def test_relative_import_resolves_against_module(self):
        project = project_of(
            **{
                "src/repro/serve/service.py": (
                    "from ..obs.metrics import get_registry\n"
                )
            }
        )
        aliases = project.aliases["src/repro/serve/service.py"]
        assert aliases["get_registry"] == "repro.obs.metrics.get_registry"


class TestSymbolsAndCoroutines:
    SOURCE = (
        "class Service:\n"
        "    async def query(self):\n"
        "        return 1\n"
        "    def close(self):\n"
        "        return None\n"
        "async def top():\n"
        "    return 2\n"
        "def plain():\n"
        "    return 3\n"
    )

    def test_methods_get_qualified_names(self):
        project = project_of(**{"src/repro/s.py": self.SOURCE})
        assert "repro.s.Service.query" in project.symbols
        assert "repro.s.Service.close" in project.symbols
        assert "repro.s.top" in project.symbols

    def test_async_classification(self):
        project = project_of(**{"src/repro/s.py": self.SOURCE})
        assert "repro.s.top" in project.async_functions
        assert "repro.s.Service.query" in project.async_functions
        assert "repro.s.plain" not in project.async_functions

    def test_is_coroutine_call_through_import(self):
        project = project_of(
            **{
                "src/repro/a.py": "async def fetch():\n    return 1\n",
                "src/repro/b.py": (
                    "from repro.a import fetch\n"
                    "def go():\n"
                    "    fetch()\n"
                ),
            }
        )
        call = None
        for node in ast.walk(project.files["src/repro/b.py"].tree):
            if isinstance(node, ast.Call):
                call = node
        assert call is not None
        assert project.is_coroutine_call("src/repro/b.py", call)


class TestResilienceHierarchy:
    def test_canonical_names_are_seeded(self):
        project = project_of(**{"src/x.py": ""})
        assert "PoolFailure" in project.resilience_errors
        assert "CorruptArtifact" in project.resilience_errors

    def test_local_subclasses_close_transitively(self):
        project = project_of(
            **{
                "src/repro/err.py": (
                    "class ShardError(PoolFailure):\n    pass\n"
                    "class HotShard(ShardError):\n    pass\n"
                    "class Unrelated(ValueError):\n    pass\n"
                )
            }
        )
        assert "ShardError" in project.resilience_errors
        assert "HotShard" in project.resilience_errors
        assert "Unrelated" not in project.resilience_errors


class TestAcquireClassification:
    SOURCE = (
        "from multiprocessing import shared_memory\n"
        "from repro.parallel.pool import WorkerPool, attach_int64\n"
        "def assigned(n):\n"
        "    seg = shared_memory.SharedMemory(create=True, size=n)\n"
        "    return seg\n"
        "def dropped(n):\n"
        "    shared_memory.SharedMemory(create=True, size=n)\n"
        "def managed(n):\n"
        "    with WorkerPool(2) as pool:\n"
        "        return pool\n"
        "def unpacked(name, shape):\n"
        "    view, handle = attach_int64(name, shape)\n"
        "    return view\n"
        "class Holder:\n"
        "    def bind(self, n):\n"
        "        self._pool = WorkerPool(n)\n"
    )

    def test_usages(self):
        project = project_of(**{"src/repro/t.py": self.SOURCE})
        sites = {
            site.function.rsplit(".", 1)[-1]: site
            for site in project.acquires["src/repro/t.py"]
        }
        assert sites["assigned"].usage == "assigned"
        assert sites["assigned"].variable == "seg"
        assert sites["dropped"].usage == "dropped"
        assert sites["managed"].usage == "with"
        # attach_int64 returns (view, handle): the handle is the
        # resource (tuple_index=1).
        assert sites["unpacked"].usage == "assigned"
        assert sites["unpacked"].variable == "handle"
        assert sites["bind"].usage == "self"
