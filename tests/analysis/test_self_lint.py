"""The gate itself: the shipped tree must hold every enforced invariant.

This is the tier ISSUE-mandated: the full default checker suite runs
over ``src/`` on every test run, so a regression that re-introduces an
unguarded hot-path metrics call or a float in a bound computation fails
CI even if nobody runs ``repro-ossm lint`` by hand.
"""

from __future__ import annotations

from repro.analysis import lint_paths

from .conftest import SRC


def test_src_tree_has_no_findings():
    result = lint_paths([SRC])
    assert not result.errors, result.errors
    assert not result.findings, "\n".join(
        f.render() for f in result.findings
    )


def test_src_tree_suppressions_are_rare():
    """Pragmas are for justified exceptions; a pile of them is a smell."""
    result = lint_paths([SRC])
    assert len(result.suppressed) <= 3, "\n".join(
        f.render() for f in result.suppressed
    )
