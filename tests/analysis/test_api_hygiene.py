"""The api-hygiene checker against fixtures and targeted cases."""

from __future__ import annotations

from repro.analysis import ApiHygieneChecker, lint_paths, lint_source

from .conftest import FIXTURES, rules_of

CHECKERS = [ApiHygieneChecker()]


class TestFixtures:
    def test_bad_fixture_trips_every_rule(self):
        result = lint_paths([FIXTURES / "bad" / "api.py"], CHECKERS)
        assert rules_of(result) == {
            "api-all-undefined",
            "api-all-missing",
            "api-mutable-default",
            "api-future-import",
            "api-removed-alias",
        }

    def test_good_fixture_is_clean(self):
        result = lint_paths([FIXTURES / "good" / "api.py"], CHECKERS)
        assert not result.failed, [f.render() for f in result.findings]


class TestAllDrift:
    def test_undefined_export(self):
        source = "__all__ = ['ghost']\n"
        result = lint_source(source, checkers=CHECKERS)
        assert rules_of(result) == {"api-all-undefined"}

    def test_reexport_via_import_counts_as_bound(self):
        source = "from x import thing\n__all__ = ['thing']\n"
        assert not lint_source(source, checkers=CHECKERS).failed

    def test_version_dunder_is_exempt(self):
        source = "__version__ = '1.0'\n__all__ = ['__version__']\n"
        assert not lint_source(source, checkers=CHECKERS).failed

    def test_public_def_missing_from_all(self):
        source = "__all__ = []\n\ndef public():\n    return 1\n"
        result = lint_source(source, checkers=CHECKERS)
        assert rules_of(result) == {"api-all-missing"}

    def test_private_def_needs_no_export(self):
        source = "__all__ = []\n\ndef _private():\n    return 1\n"
        assert not lint_source(source, checkers=CHECKERS).failed

    def test_module_without_all_is_not_checked_for_drift(self):
        source = "def public():\n    return 1\n"
        assert not lint_source(source, checkers=CHECKERS).failed

    def test_conditional_definition_counts_as_bound(self):
        source = (
            "try:\n"
            "    import fast_path as impl\n"
            "except ImportError:\n"
            "    impl = None\n"
            "__all__ = ['impl']\n"
        )
        assert not lint_source(source, checkers=CHECKERS).failed


class TestAsyncSurface:
    """The export plane made coroutines public API; the checker must
    treat ``async def`` exactly like ``def``."""

    def test_async_def_missing_from_all(self):
        source = "__all__ = []\n\nasync def scrape():\n    return 1\n"
        result = lint_source(source, checkers=CHECKERS)
        assert rules_of(result) == {"api-all-missing"}

    def test_async_def_counts_as_bound(self):
        source = "__all__ = ['scrape']\n\nasync def scrape():\n    return 1\n"
        assert not lint_source(source, checkers=CHECKERS).failed

    def test_async_mutable_default_is_flagged(self):
        source = "async def f(cache={}):\n    return cache\n"
        result = lint_source(source, checkers=CHECKERS)
        assert rules_of(result) == {"api-mutable-default"}


class TestMutableDefaults:
    def test_kwonly_default_is_checked(self):
        source = "def f(*, cache={}):\n    return cache\n"
        result = lint_source(source, checkers=CHECKERS)
        assert rules_of(result) == {"api-mutable-default"}

    def test_constructor_call_default_is_flagged(self):
        source = "def f(items=list()):\n    return items\n"
        result = lint_source(source, checkers=CHECKERS)
        assert rules_of(result) == {"api-mutable-default"}

    def test_none_default_is_clean(self):
        source = "def f(items=None):\n    return items or []\n"
        assert not lint_source(source, checkers=CHECKERS).failed

    def test_tuple_default_is_clean(self):
        source = "def f(items=()):\n    return items\n"
        assert not lint_source(source, checkers=CHECKERS).failed


class TestRemovedAliases:
    """Names walked back through a deprecation cycle must stay gone."""

    def test_public_segment_n_user_is_flagged(self):
        source = "def segment(source, n_user=None):\n    return n_user\n"
        result = lint_source(source, checkers=CHECKERS)
        assert rules_of(result) == {"api-removed-alias"}

    def test_kwonly_spelling_is_flagged_too(self):
        source = "def segment(source, *, n_user=None):\n    return n_user\n"
        result = lint_source(source, checkers=CHECKERS)
        assert rules_of(result) == {"api-removed-alias"}

    def test_private_def_may_keep_the_paper_name(self):
        source = "def _reduce(state, n_user):\n    return n_user\n"
        assert not lint_source(source, checkers=CHECKERS).failed

    def test_other_functions_may_use_the_name(self):
        # RecipeInputs-style APIs (Figure 7) legitimately take n_user.
        source = "def recommend(n_user):\n    return n_user\n"
        assert not lint_source(source, checkers=CHECKERS).failed

    def test_supported_spelling_is_clean(self):
        source = (
            "def segment(source, n_segments=None):\n"
            "    return n_segments\n"
        )
        assert not lint_source(source, checkers=CHECKERS).failed


class TestFutureImport:
    def test_annotations_without_future_import(self):
        source = "def f(x: int) -> int:\n    return x\n"
        result = lint_source(source, checkers=CHECKERS)
        assert rules_of(result) == {"api-future-import"}

    def test_annotations_with_future_import(self):
        source = (
            "from __future__ import annotations\n"
            "def f(x: int) -> int:\n    return x\n"
        )
        assert not lint_source(source, checkers=CHECKERS).failed

    def test_unannotated_module_needs_no_import(self):
        source = "def f(x):\n    return x\n"
        assert not lint_source(source, checkers=CHECKERS).failed
