"""Regression tests for the defects the static-analysis pass surfaced.

Each test pins the *behaviour* of a fix made in this PR so the lint
rule and the runtime stay in agreement:

* greedy hot loop: metrics are guard-gated but still recorded when a
  registry is active;
* hash tree: ``_leaves_by_id`` is initialised eagerly (the old
  ``getattr(self, "_leaves_by_id", {})`` default silently returned no
  leaves for trees built before the attribute existed);
* OSSM pair bounds: the pdist fast path stays in integer arithmetic
  and agrees exactly with the generic Equation (1) evaluation;
* chained constraint pruner: ``candidate_bounds`` delegates to the
  wrapped support pruner instead of inheriting the protocol's ``None``
  (which silently dropped bound-tightness telemetry).
"""

from __future__ import annotations

from itertools import combinations

import numpy as np

from repro.core.greedy import GreedySegmenter
from repro.core.ossm import OSSM
from repro.data import PagedDatabase
from repro.mining import HashTreeCounter, SubsetCounter
from repro.mining.constraints import MaxSize, _ChainedPruner, _ConstraintPruner
from repro.mining.counting import TidsetCounter
from repro.mining.pruning import OSSMPruner
from repro.obs.metrics import MetricsRegistry, use_registry


class TestGreedyMetricsGuarded:
    def test_counters_recorded_when_registry_active(self, quest_db):
        registry = MetricsRegistry()
        pages = PagedDatabase(quest_db, page_size=30)
        with use_registry(registry):
            GreedySegmenter().segment(pages, 4)
        counters = registry.snapshot()["counters"]
        assert counters["segmentation.greedy.merges"] > 0
        assert counters["segmentation.greedy.heap_pushes"] > 0

    def test_result_identical_with_and_without_registry(self, quest_db):
        pages = PagedDatabase(quest_db, page_size=30)
        bare = GreedySegmenter().segment(pages, 4)
        with use_registry(MetricsRegistry()):
            observed = GreedySegmenter().segment(pages, 4)
        assert bare.ossm == observed.ossm


class TestHashTreeLeafIndex:
    def test_counts_match_subset_counter(self, tiny_db):
        candidates = list(combinations(range(tiny_db.n_items), 2))
        reference = SubsetCounter().count(tiny_db, candidates)
        tree = HashTreeCounter(branch=3, leaf_capacity=2)
        assert tree.count(tiny_db, candidates) == reference


class TestTidsetCounter:
    def test_counts_match_subset_counter(self, tiny_db):
        candidates = list(combinations(range(tiny_db.n_items), 3))
        reference = SubsetCounter().count(tiny_db, candidates)
        assert TidsetCounter().count(tiny_db, candidates) == reference


class TestPairBoundIntegerPath:
    def test_fast_path_matches_generic_and_stays_integral(self):
        rng = np.random.default_rng(5)
        matrix = rng.integers(0, 1000, size=(8, 30)).astype(np.int64)
        ossm = OSSM(matrix)
        pairs = np.array(list(combinations(range(30), 2)), dtype=np.int64)

        fast = ossm._pair_bounds(pairs)
        generic = matrix[:, pairs].min(axis=2).sum(axis=0)

        assert np.issubdtype(fast.dtype, np.integer)
        assert np.array_equal(fast, generic)

    def test_odd_supports_do_not_round(self):
        # p=3, q=2 in one segment: min is 2; (3+2-1)//2 == 2 exactly,
        # while float division then truncation could have produced 2.5.
        ossm = OSSM(np.array([[3, 2]], dtype=np.int64))
        bounds = ossm.upper_bounds([(0, 1)])
        assert bounds.tolist() == [2]


class TestChainedPrunerBounds:
    def test_bounds_delegate_to_support_pruner(self, tiny_db):
        ossm = OSSM.single_segment(tiny_db)
        support = OSSMPruner(ossm)
        chained = _ChainedPruner(_ConstraintPruner([MaxSize(2)]), support)
        candidates = [(0, 1), (1, 2), (0, 3)]
        delegated = chained.candidate_bounds(candidates)
        direct = support.candidate_bounds(candidates)
        assert delegated is not None
        assert np.array_equal(delegated, direct)

    def test_pruning_behaviour_unchanged(self, tiny_db):
        ossm = OSSM.single_segment(tiny_db)
        chained = _ChainedPruner(
            _ConstraintPruner([MaxSize(2)]), OSSMPruner(ossm)
        )
        survivors = chained.prune([(0, 1), (0, 1, 2)], 1)
        assert (0, 1) in survivors
        assert (0, 1, 2) not in survivors  # MaxSize(2) drops it
