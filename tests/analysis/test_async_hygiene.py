"""The async-hygiene checker: blocking calls, dropped coroutines/tasks."""

from __future__ import annotations

from repro.analysis import AsyncHygieneChecker, lint_paths, lint_source

from .conftest import FIXTURES, rules_of

CHECKERS = [AsyncHygieneChecker()]


def lint(source: str, path: str = "repro/serve/gateway.py"):
    return lint_source(source, path=path, checkers=CHECKERS)


class TestFixtures:
    def test_bad_fixture_trips_every_rule(self):
        result = lint_paths(
            [FIXTURES / "bad" / "serve" / "gateway.py"], CHECKERS
        )
        assert rules_of(result) == {
            "async-blocking-call",
            "async-unawaited-coroutine",
            "async-dropped-task",
            "async-unshielded-wait-for",
        }
        blocking = [
            f for f in result.findings if f.rule == "async-blocking-call"
        ]
        # time.sleep, open, subprocess.run, future.result()
        assert len(blocking) == 4

    def test_good_fixture_is_clean(self):
        result = lint_paths(
            [FIXTURES / "good" / "serve" / "gateway.py"], CHECKERS
        )
        assert not result.failed, [f.render() for f in result.findings]


class TestBlockingCalls:
    def test_time_sleep_in_coroutine(self):
        source = (
            "import time\n"
            "async def f():\n"
            "    time.sleep(1)\n"
        )
        assert rules_of(lint(source)) == {"async-blocking-call"}

    def test_renamed_import_still_resolves(self):
        source = (
            "from time import sleep as snooze\n"
            "async def f():\n"
            "    snooze(1)\n"
        )
        assert rules_of(lint(source)) == {"async-blocking-call"}

    def test_sync_function_is_exempt(self):
        source = "import time\ndef f():\n    time.sleep(1)\n"
        assert not lint(source).failed

    def test_asyncio_sleep_is_fine(self):
        source = (
            "import asyncio\n"
            "async def f():\n"
            "    await asyncio.sleep(1)\n"
        )
        assert not lint(source).failed

    def test_zero_arg_result_is_blocking(self):
        source = "async def f(future):\n    return future.result()\n"
        assert rules_of(lint(source)) == {"async-blocking-call"}

    def test_result_with_args_is_not_future_result(self):
        # e.g. a regex Match-like .result(default) — not concurrent.futures
        source = "async def f(match):\n    return match.result(1)\n"
        assert not lint(source).failed


class TestUnawaitedCoroutines:
    def test_local_coroutine_called_as_statement(self):
        source = (
            "async def fetch():\n"
            "    return 1\n"
            "async def go():\n"
            "    fetch()\n"
        )
        assert rules_of(lint(source)) == {"async-unawaited-coroutine"}

    def test_awaited_call_is_fine(self):
        source = (
            "async def fetch():\n"
            "    return 1\n"
            "async def go():\n"
            "    await fetch()\n"
        )
        assert not lint(source).failed

    def test_self_method_resolves(self):
        source = (
            "class S:\n"
            "    async def ping(self):\n"
            "        return 1\n"
            "    async def go(self):\n"
            "        self.ping()\n"
        )
        assert rules_of(lint(source)) == {"async-unawaited-coroutine"}

    def test_assigned_coroutine_is_not_flagged(self):
        # Held for a later await/gather: not a statement-level drop.
        source = (
            "import asyncio\n"
            "async def fetch():\n"
            "    return 1\n"
            "async def go():\n"
            "    coros = [fetch() for _ in range(3)]\n"
            "    return await asyncio.gather(*coros)\n"
        )
        assert not lint(source).failed


class TestTasks:
    def test_dropped_create_task(self):
        source = (
            "import asyncio\n"
            "async def go(worker):\n"
            "    asyncio.create_task(worker())\n"
        )
        assert rules_of(lint(source)) == {"async-dropped-task"}

    def test_retained_task_is_fine(self):
        source = (
            "import asyncio\n"
            "async def go(worker, tasks):\n"
            "    task = asyncio.create_task(worker())\n"
            "    tasks.add(task)\n"
            "    task.add_done_callback(tasks.discard)\n"
        )
        assert not lint(source).failed

    def test_unshielded_wait_for_on_shared_task(self):
        source = (
            "import asyncio\n"
            "async def go(task):\n"
            "    return await asyncio.wait_for(task, timeout=1.0)\n"
        )
        assert rules_of(lint(source)) == {"async-unshielded-wait-for"}

    def test_shielded_wait_for_is_fine(self):
        source = (
            "import asyncio\n"
            "async def go(task):\n"
            "    return await asyncio.wait_for(\n"
            "        asyncio.shield(task), timeout=1.0\n"
            "    )\n"
        )
        assert not lint(source).failed

    def test_wait_for_on_fresh_coroutine_is_fine(self):
        # A fresh coroutine belongs to wait_for: cancellation is safe.
        source = (
            "import asyncio\n"
            "async def go(service):\n"
            "    return await asyncio.wait_for(service.query(), timeout=1.0)\n"
        )
        assert not lint(source).failed
