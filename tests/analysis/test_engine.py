"""Engine behaviour: pragmas, baselines, selection, file collection."""

from __future__ import annotations

import pytest

from repro.analysis import (
    ApiHygieneChecker,
    AsyncHygieneChecker,
    apply_baseline,
    default_checkers,
    lint_paths,
    lint_source,
    load_baseline,
    prune_baseline,
    select_checkers,
    write_baseline,
)

MUTABLE_DEFAULT = "def f(x=[]):\n    return x\n"


class TestLintSource:
    def test_reports_a_finding(self):
        result = lint_source(MUTABLE_DEFAULT, checkers=[ApiHygieneChecker()])
        assert result.failed
        assert [f.rule for f in result.findings] == ["api-mutable-default"]

    def test_pragma_suppresses_all_rules(self):
        source = "def f(x=[]):  # lint: skip\n    return x\n"
        result = lint_source(source, checkers=[ApiHygieneChecker()])
        assert not result.failed
        assert [f.rule for f in result.suppressed] == ["api-mutable-default"]

    def test_pragma_with_rule_list_is_selective(self):
        hit = "def f(x=[]):  # lint: skip=api-mutable-default\n    return x\n"
        miss = "def f(x=[]):  # lint: skip=other-rule\n    return x\n"
        assert not lint_source(hit, checkers=[ApiHygieneChecker()]).failed
        assert lint_source(miss, checkers=[ApiHygieneChecker()]).failed

    def test_syntax_error_becomes_engine_error(self):
        result = lint_source("def broken(:\n")
        assert result.failed
        assert result.errors and "syntax error" in result.errors[0]


class TestPragmaPlacement:
    def test_pragma_on_decorated_def_line(self):
        # The finding anchors at the `def`, not the decorator: the
        # pragma must work where the finding points.
        source = (
            "@memoize\n"
            "def f(x=[]):  # lint: skip=api-mutable-default\n"
            "    return x\n"
        )
        result = lint_source(source, checkers=[ApiHygieneChecker()])
        assert not result.failed
        assert [f.rule for f in result.suppressed] == ["api-mutable-default"]

    def test_pragma_on_multiline_statement_tail(self):
        # The call spans four lines; the pragma sits on the closing
        # paren, matched through the finding's end_line.
        source = (
            "async def fetch(a, b):\n"
            "    return a + b\n"
            "async def go():\n"
            "    fetch(\n"
            "        1,\n"
            "        2,\n"
            "    )  # lint: skip=async-unawaited-coroutine\n"
        )
        result = lint_source(source, checkers=[AsyncHygieneChecker()])
        assert not result.failed
        assert [f.rule for f in result.suppressed] == [
            "async-unawaited-coroutine"
        ]

    def test_unrelated_trailing_comment_does_not_suppress(self):
        source = (
            "async def fetch(a, b):\n"
            "    return a + b\n"
            "async def go():\n"
            "    fetch(\n"
            "        1,\n"
            "        2,\n"
            "    )  # fire-and-forget\n"
        )
        result = lint_source(source, checkers=[AsyncHygieneChecker()])
        assert result.failed


class TestSelectCheckers:
    def test_by_checker_name(self):
        chosen = select_checkers(default_checkers(), "api-hygiene")
        assert [c.name for c in chosen] == ["api-hygiene"]

    def test_by_rule_id(self):
        chosen = select_checkers(default_checkers(), "bound-float-div")
        assert [c.name for c in chosen] == ["bound-soundness"]

    def test_unknown_selection_raises(self):
        with pytest.raises(ValueError, match="unknown"):
            select_checkers(default_checkers(), "no-such-rule")

    def test_none_keeps_everything(self):
        checkers = default_checkers()
        assert select_checkers(checkers, None) is checkers


class TestLintPaths:
    def test_aggregates_over_a_tree(self, tmp_path):
        (tmp_path / "one.py").write_text(MUTABLE_DEFAULT)
        sub = tmp_path / "pkg"
        sub.mkdir()
        (sub / "two.py").write_text(MUTABLE_DEFAULT)
        result = lint_paths([tmp_path], checkers=[ApiHygieneChecker()])
        assert len(result.findings) == 2
        assert result.findings[0].path < result.findings[1].path

    def test_missing_path_is_an_error(self, tmp_path):
        result = lint_paths([tmp_path / "nope"])
        assert result.failed
        assert "no such file" in result.errors[0]

    def test_hidden_directories_are_skipped(self, tmp_path):
        hidden = tmp_path / ".venv"
        hidden.mkdir()
        (hidden / "bad.py").write_text(MUTABLE_DEFAULT)
        result = lint_paths([tmp_path], checkers=[ApiHygieneChecker()])
        assert not result.failed


class TestBaseline:
    def test_round_trip_grandfathers_findings(self, tmp_path):
        target = tmp_path / "bad.py"
        target.write_text(MUTABLE_DEFAULT)
        baseline_file = tmp_path / "baseline.json"

        first = lint_paths([target], checkers=[ApiHygieneChecker()])
        assert first.failed
        write_baseline(baseline_file, first.findings)

        second = lint_paths([target], checkers=[ApiHygieneChecker()])
        second = apply_baseline(second, load_baseline(baseline_file))
        assert not second.failed
        assert len(second.suppressed) == 1

    def test_new_findings_still_fail(self, tmp_path):
        target = tmp_path / "bad.py"
        target.write_text(MUTABLE_DEFAULT)
        baseline_file = tmp_path / "baseline.json"
        write_baseline(
            baseline_file,
            lint_paths([target], checkers=[ApiHygieneChecker()]).findings,
        )
        # A second, different defect appears: the baseline must not eat it.
        target.write_text(MUTABLE_DEFAULT + "\n\ndef g(y={}):\n    return y\n")
        result = apply_baseline(
            lint_paths([target], checkers=[ApiHygieneChecker()]),
            load_baseline(baseline_file),
        )
        assert result.failed
        assert len(result.findings) == 1
        assert len(result.suppressed) == 1

    def test_malformed_baseline_raises(self, tmp_path):
        bad = tmp_path / "baseline.json"
        bad.write_text('{"version": 99}')
        with pytest.raises(ValueError, match="unsupported version"):
            load_baseline(bad)


class TestPruneBaseline:
    def test_fixed_fingerprints_are_dropped(self, tmp_path):
        target = tmp_path / "bad.py"
        target.write_text(MUTABLE_DEFAULT + "\ndef g(y={}):\n    return y\n")
        baseline_file = tmp_path / "baseline.json"
        write_baseline(
            baseline_file,
            lint_paths([target], checkers=[ApiHygieneChecker()]).findings,
        )
        # One of the two grandfathered defects gets fixed.
        target.write_text(MUTABLE_DEFAULT)
        fresh = lint_paths([target], checkers=[ApiHygieneChecker()])
        pruned, stale = prune_baseline(
            load_baseline(baseline_file), fresh.findings
        )
        assert stale == 1
        assert sum(pruned.values()) == 1

    def test_partially_fixed_allowance_shrinks(self):
        source = "def f(x=[]):\n    return x\n"
        finding = lint_source(
            source, path="m.py", checkers=[ApiHygieneChecker()]
        ).findings[0]
        # Two grandfathered occurrences, only one still fires.
        pruned, stale = prune_baseline({finding.fingerprint: 2}, [finding])
        assert pruned == {finding.fingerprint: 1}
        assert stale == 1

    def test_live_findings_keep_their_allowance(self):
        finding = lint_source(
            MUTABLE_DEFAULT, path="m.py", checkers=[ApiHygieneChecker()]
        ).findings[0]
        pruned, stale = prune_baseline({finding.fingerprint: 1}, [finding])
        assert pruned == {finding.fingerprint: 1}
        assert stale == 0
