"""Finding identity, ordering, and serialization."""

from __future__ import annotations

import pytest

from repro.analysis import Finding, sort_findings


class TestFinding:
    def test_fingerprint_ignores_position(self):
        a = Finding("r", "m.py", 3, 0, "msg")
        b = Finding("r", "m.py", 99, 7, "msg")
        assert a.fingerprint == b.fingerprint

    def test_fingerprint_distinguishes_rule_path_message(self):
        base = Finding("r", "m.py", 1, 0, "msg")
        assert base.fingerprint != Finding("r2", "m.py", 1, 0, "msg").fingerprint
        assert base.fingerprint != Finding("r", "n.py", 1, 0, "msg").fingerprint
        assert base.fingerprint != Finding("r", "m.py", 1, 0, "other").fingerprint

    def test_to_dict_round_trips_fields(self):
        finding = Finding("rule-x", "pkg/m.py", 12, 4, "boom")
        payload = finding.to_dict()
        assert payload["rule"] == "rule-x"
        assert payload["path"] == "pkg/m.py"
        assert payload["line"] == 12
        assert payload["col"] == 4
        assert payload["severity"] == "error"
        assert payload["fingerprint"] == finding.fingerprint

    def test_render_is_compiler_style(self):
        finding = Finding("rule-x", "pkg/m.py", 12, 4, "boom")
        assert finding.render() == "pkg/m.py:12:4: [rule-x] boom"

    def test_rejects_unknown_severity(self):
        with pytest.raises(ValueError):
            Finding("r", "m.py", 1, 0, "msg", severity="fatal")


class TestSortFindings:
    def test_orders_by_path_then_position(self):
        findings = [
            Finding("z", "b.py", 1, 0, "m"),
            Finding("a", "a.py", 9, 0, "m"),
            Finding("a", "a.py", 2, 5, "m"),
            Finding("a", "a.py", 2, 1, "m"),
        ]
        ordered = sort_findings(findings)
        keys = [(f.path, f.line, f.col) for f in ordered]
        assert keys == sorted(keys)
