"""The ``repro-ossm lint`` subcommand end to end, via ``main()``."""

from __future__ import annotations

import json

import pytest

from repro.cli import main

from .conftest import FIXTURES, SRC

BAD_FIXTURES = [
    FIXTURES / "bad" / "pruners.py",
    FIXTURES / "bad" / "mining" / "counting.py",
    FIXTURES / "bad" / "core" / "ossm.py",
    FIXTURES / "bad" / "api.py",
    FIXTURES / "bad" / "serve" / "gateway.py",
    FIXTURES / "bad" / "parallel" / "transport.py",
    FIXTURES / "bad" / "parallel" / "workers.py",
    FIXTURES / "bad" / "resilience" / "recovery.py",
]


class TestExitCodes:
    @pytest.mark.parametrize(
        "fixture", BAD_FIXTURES, ids=lambda p: p.name + ":" + p.parent.name
    )
    def test_each_bad_fixture_fails(self, fixture, capsys):
        assert main(["lint", str(fixture)]) == 1
        assert "finding(s)" in capsys.readouterr().out

    def test_good_fixtures_pass(self, capsys):
        assert main(["lint", str(FIXTURES / "good")]) == 0

    def test_shipped_tree_is_clean(self, capsys):
        assert main(["lint", str(SRC)]) == 0

    def test_unknown_select_is_usage_error(self, capsys):
        code = main(["lint", str(SRC), "--select", "no-such-rule"])
        assert code == 2
        assert "unknown" in capsys.readouterr().out

    def test_missing_path_fails(self, capsys):
        assert main(["lint", "definitely/not/here"]) == 1


class TestFormats:
    def test_json_output_parses(self, capsys):
        assert main(["lint", str(FIXTURES / "bad" / "api.py"),
                     "--format", "json"]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["findings"]
        assert payload["counts"]

    def test_text_output_names_rules(self, capsys):
        main(["lint", str(FIXTURES / "bad" / "api.py")])
        out = capsys.readouterr().out
        assert "[api-mutable-default]" in out

    def test_github_output_emits_workflow_commands(self, capsys):
        assert main(["lint", str(FIXTURES / "bad" / "api.py"),
                     "--format", "github"]) == 1
        out = capsys.readouterr().out
        lines = [line for line in out.splitlines() if line.startswith("::")]
        assert lines
        first = lines[0]
        assert first.startswith("::error file=")
        assert ",line=" in first and ",endLine=" in first
        assert any("title=api-mutable-default" in line for line in lines)

    def test_github_output_escapes_newlines(self, capsys):
        # No multi-line workflow commands: messages are %0A-escaped, so
        # every finding stays on one ::error line.
        main(["lint", str(FIXTURES / "bad"), "--format", "github"])
        out = capsys.readouterr().out
        body = [line for line in out.splitlines() if line.strip()]
        annotations = [line for line in body if line.startswith("::")]
        # Everything except the trailing summary line is an annotation.
        assert len(annotations) >= len(body) - 1

    def test_list_rules(self, capsys):
        assert main(["lint", "--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule_id in ("pruner-prune", "hot-obs-unguarded",
                        "bound-float-div", "api-mutable-default"):
            assert rule_id in out


class TestSelect:
    def test_select_restricts_to_one_checker(self, capsys):
        # The bad api fixture is invisible to the pruner checker.
        code = main(["lint", str(FIXTURES / "bad" / "api.py"),
                     "--select", "pruner-protocol"])
        assert code == 0


class TestBaseline:
    def test_grandfathering_round_trip(self, tmp_path, capsys):
        bad = FIXTURES / "bad" / "api.py"
        baseline = tmp_path / "baseline.json"
        assert main(["lint", str(bad), "--baseline", str(baseline),
                     "--write-baseline"]) == 0
        assert main(["lint", str(bad), "--baseline", str(baseline)]) == 0
        assert "suppressed" in capsys.readouterr().out

    def test_write_baseline_requires_path(self, capsys):
        assert main(["lint", str(SRC), "--write-baseline"]) == 2

    def test_malformed_baseline_is_usage_error(self, tmp_path, capsys):
        baseline = tmp_path / "baseline.json"
        baseline.write_text('{"version": 99}')
        code = main(["lint", str(SRC), "--baseline", str(baseline)])
        assert code == 2


class TestPruneBaseline:
    def test_prune_drops_stale_fingerprints(self, tmp_path, capsys):
        # Grandfather two defects, fix one, prune: the stale entry goes.
        target = tmp_path / "api.py"
        target.write_text(
            "def f(x=[]):\n    return x\n\ndef g(y={}):\n    return y\n"
        )
        baseline = tmp_path / "baseline.json"
        assert main(["lint", str(target), "--baseline", str(baseline),
                     "--write-baseline"]) == 0
        target.write_text("def f(x=[]):\n    return x\n")
        capsys.readouterr()
        assert main(["lint", str(target), "--baseline", str(baseline),
                     "--prune-baseline"]) == 0
        out = capsys.readouterr().out
        assert "pruned 1 stale" in out
        assert "1 remain" in out
        # The pruned baseline still grandfathers the surviving defect.
        assert main(["lint", str(target), "--baseline", str(baseline)]) == 0

    def test_prune_requires_baseline_path(self, capsys):
        assert main(["lint", str(SRC), "--prune-baseline"]) == 2
        assert "--baseline" in capsys.readouterr().out
