"""Registry semantics: counters, gauges, timers, histograms, swap-in."""

import json

import pytest

from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    Histogram,
    MetricsRegistry,
    NULL_REGISTRY,
    NullRegistry,
    get_registry,
    set_registry,
    use_registry,
)


class TestCounter:
    def test_increments(self):
        registry = MetricsRegistry()
        registry.inc("events")
        registry.inc("events", 4)
        assert registry.counter("events").value == 5

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            MetricsRegistry().counter("c").inc(-1)

    def test_create_or_get_returns_same_instrument(self):
        registry = MetricsRegistry()
        assert registry.counter("x") is registry.counter("x")


class TestGauge:
    def test_last_write_wins(self):
        registry = MetricsRegistry()
        registry.set_gauge("size", 10)
        registry.set_gauge("size", 3)
        assert registry.gauge("size").value == 3


class TestTimer:
    def test_context_manager_records(self):
        registry = MetricsRegistry()
        with registry.time("work"):
            pass
        with registry.time("work"):
            pass
        snap = registry.timer("work").snapshot()
        assert snap["count"] == 2
        assert snap["total_seconds"] >= 0.0
        assert snap["min_seconds"] <= snap["max_seconds"]

    def test_observe_rejects_negative(self):
        with pytest.raises(ValueError):
            MetricsRegistry().timer("t").observe(-0.1)

    def test_empty_snapshot_has_zero_min(self):
        assert MetricsRegistry().timer("t").snapshot()["min_seconds"] == 0.0


class TestHistogram:
    def test_bucket_placement(self):
        hist = Histogram("h", buckets=(0, 10, 100))
        for value in (0, 5, 10, 11, 1000):
            hist.observe(value)
        # value 0 -> bucket <=0; 5, 10 -> <=10; 11 -> <=100; 1000 -> overflow
        assert hist.counts == [1, 2, 1, 1]
        assert hist.count == 5
        assert hist.min == 0 and hist.max == 1000

    def test_rejects_bad_buckets(self):
        with pytest.raises(ValueError):
            Histogram("h", buckets=())
        with pytest.raises(ValueError):
            Histogram("h", buckets=(3, 1))
        with pytest.raises(ValueError):
            Histogram("h", buckets=(1, 1))

    def test_registry_observe_shorthand(self):
        registry = MetricsRegistry()
        registry.observe("gap", 7)
        assert registry.histogram("gap").count == 1


class TestRegistry:
    def test_name_collision_across_kinds_raises(self):
        registry = MetricsRegistry()
        registry.counter("x")
        with pytest.raises(ValueError):
            registry.gauge("x")

    def test_snapshot_structure_and_json_round_trip(self):
        registry = MetricsRegistry()
        registry.inc("c", 2)
        registry.set_gauge("g", 1.5)
        with registry.time("t"):
            pass
        registry.observe("h", 12)
        parsed = json.loads(registry.to_json())
        assert parsed["counters"]["c"] == 2
        assert parsed["gauges"]["g"] == 1.5
        assert parsed["timers"]["t"]["count"] == 1
        assert parsed["histograms"]["h"]["count"] == 1
        assert parsed["histograms"]["h"]["buckets"] == list(DEFAULT_BUCKETS)

    def test_reset_clears_everything(self):
        registry = MetricsRegistry()
        registry.inc("c")
        registry.reset()
        assert registry.snapshot() == {
            "counters": {}, "gauges": {}, "timers": {}, "histograms": {},
        }


class TestActiveRegistry:
    def test_default_is_disabled_null(self):
        assert get_registry() is NULL_REGISTRY
        assert not get_registry().enabled

    def test_null_registry_records_nothing(self):
        null = NullRegistry()
        null.inc("c", 5)
        null.set_gauge("g", 1)
        null.observe("h", 3)
        with null.time("t"):
            pass
        assert null.snapshot() == {
            "counters": {}, "gauges": {}, "timers": {}, "histograms": {},
        }

    def test_use_registry_swaps_and_restores(self):
        registry = MetricsRegistry()
        with use_registry(registry) as active:
            assert active is registry
            assert get_registry() is registry
            get_registry().inc("seen")
        assert get_registry() is NULL_REGISTRY
        assert registry.counter("seen").value == 1

    def test_use_registry_restores_on_exception(self):
        registry = MetricsRegistry()
        with pytest.raises(RuntimeError):
            with use_registry(registry):
                raise RuntimeError("boom")
        assert get_registry() is NULL_REGISTRY

    def test_set_registry_none_restores_null(self):
        registry = MetricsRegistry()
        set_registry(registry)
        try:
            assert get_registry() is registry
        finally:
            set_registry(None)
        assert get_registry() is NULL_REGISTRY
