"""Prometheus exposition and the asyncio ops endpoint."""

import asyncio
import json

import pytest

from repro.obs.export import OpsServer, prometheus_name, render_prometheus
from repro.obs.metrics import MetricsRegistry, use_registry


def sample_registry() -> MetricsRegistry:
    registry = MetricsRegistry()
    registry.inc("apriori.levels", 3)
    registry.set_gauge("cache.size", 42)
    registry.timer("counting.seconds").observe(0.5)
    registry.observe("bound.tightness", 0.25, buckets=(0.1, 0.5, 1.0))
    registry.observe("bound.tightness", 0.75, buckets=(0.1, 0.5, 1.0))
    return registry


class TestPrometheusName:
    def test_dots_become_underscores(self):
        assert prometheus_name("apriori.levels") == "repro_apriori_levels"

    def test_illegal_characters_sanitized(self):
        assert prometheus_name("a-b c") == "repro_a_b_c"

    def test_no_prefix_digit_guard(self):
        assert prometheus_name("2fast", prefix="") == "_2fast"


class TestRenderPrometheus:
    def test_counter_becomes_total(self):
        text = render_prometheus(sample_registry().snapshot())
        assert "# TYPE repro_apriori_levels_total counter" in text
        assert "repro_apriori_levels_total 3" in text

    def test_gauge_rendered_verbatim(self):
        text = render_prometheus(sample_registry().snapshot())
        assert "repro_cache_size 42" in text

    def test_timer_becomes_summary(self):
        text = render_prometheus(sample_registry().snapshot())
        assert "repro_counting_seconds_count 1" in text
        assert "repro_counting_seconds_sum 0.5" in text

    def test_histogram_buckets_are_cumulative(self):
        text = render_prometheus(sample_registry().snapshot())
        assert 'repro_bound_tightness_bucket{le="0.5"} 1' in text
        assert 'repro_bound_tightness_bucket{le="1.0"} 2' in text
        assert 'repro_bound_tightness_bucket{le="+Inf"} 2' in text
        assert "repro_bound_tightness_count 2" in text

    def test_empty_snapshot_is_just_a_newline(self):
        assert render_prometheus(MetricsRegistry().snapshot()) == "\n"


async def _http_get(host: str, port: int, path: str, method: str = "GET"):
    reader, writer = await asyncio.open_connection(host, port)
    writer.write(
        f"{method} {path} HTTP/1.1\r\nHost: {host}\r\n\r\n".encode()
    )
    await writer.drain()
    raw = await reader.read()
    writer.close()
    await writer.wait_closed()
    head, _, body = raw.partition(b"\r\n\r\n")
    status = int(head.split(b" ", 2)[1])
    return status, body.decode("utf-8")


class FakeService:
    def stats(self):
        return {"epoch": 7, "pending": 0, "parallel_healthy": True}


class TestOpsServer:
    def test_metrics_endpoint_scrapes_registry(self):
        async def run():
            async with OpsServer(registry=sample_registry()) as server:
                return await _http_get(server.host, server.port, "/metrics")

        status, body = asyncio.run(run())
        assert status == 200
        assert "repro_apriori_levels_total 3" in body

    def test_metrics_endpoint_tracks_active_registry(self):
        # No explicit registry: the scrape sees whatever is active at
        # request time, so a server started early still works.
        async def run():
            async with OpsServer() as server:
                with use_registry(sample_registry()):
                    return await _http_get(
                        server.host, server.port, "/metrics"
                    )

        status, body = asyncio.run(run())
        assert status == 200
        assert "repro_cache_size 42" in body

    def test_health_includes_service_liveness(self):
        async def run():
            async with OpsServer(service=FakeService()) as server:
                return await _http_get(server.host, server.port, "/health")

        status, body = asyncio.run(run())
        assert status == 200
        payload = json.loads(body)
        assert payload["status"] == "ok"
        assert payload["epoch"] == 7
        assert payload["parallel_healthy"] is True

    def test_stats_reports_service_and_metric_counts(self):
        async def run():
            async with OpsServer(
                registry=sample_registry(), service=FakeService()
            ) as server:
                return await _http_get(server.host, server.port, "/stats")

        status, body = asyncio.run(run())
        assert status == 200
        payload = json.loads(body)
        assert payload["service"]["epoch"] == 7
        assert payload["metrics"]["counters"] == 1
        assert payload["metrics"]["histograms"] == 1

    def test_unknown_path_is_404(self):
        async def run():
            async with OpsServer() as server:
                return await _http_get(server.host, server.port, "/nope")

        status, _ = asyncio.run(run())
        assert status == 404

    def test_non_get_is_405(self):
        async def run():
            async with OpsServer() as server:
                return await _http_get(
                    server.host, server.port, "/metrics", method="POST"
                )

        status, _ = asyncio.run(run())
        assert status == 405

    def test_scrapes_counted_when_registry_enabled(self):
        registry = sample_registry()

        async def run():
            async with OpsServer(registry=registry) as server:
                await _http_get(server.host, server.port, "/metrics")
                await _http_get(server.host, server.port, "/nope")

        asyncio.run(run())
        assert registry.counter("obs.http.requests").value == 2
        assert registry.counter("obs.http.errors").value == 1

    def test_start_is_idempotent_and_close_releases_port(self):
        async def run():
            server = OpsServer()
            await server.start()
            first_port = server.port
            await server.start()
            assert server.port == first_port
            await server.aclose()
            await server.aclose()  # idempotent
            with pytest.raises(OSError):
                await _http_get(server.host, first_port, "/health")

        asyncio.run(run())
