"""Span tracing: nesting, metadata, exports, no-op default."""

import json

import pytest

from repro.obs.trace import (
    NULL_RECORDER,
    TraceRecorder,
    get_recorder,
    trace,
    use_recorder,
)


class TestNesting:
    def test_children_attach_to_innermost_open_span(self):
        recorder = TraceRecorder()
        with recorder.span("outer"):
            with recorder.span("inner-1"):
                with recorder.span("leaf"):
                    pass
            with recorder.span("inner-2"):
                pass
        with recorder.span("second-root"):
            pass
        assert [root.name for root in recorder.roots] == [
            "outer", "second-root",
        ]
        outer = recorder.roots[0]
        assert [child.name for child in outer.children] == [
            "inner-1", "inner-2",
        ]
        assert outer.children[0].children[0].name == "leaf"

    def test_elapsed_covers_children(self):
        recorder = TraceRecorder()
        with recorder.span("outer"):
            with recorder.span("inner"):
                pass
        outer, = recorder.roots
        assert outer.elapsed_seconds >= outer.children[0].elapsed_seconds

    def test_span_closes_on_exception(self):
        recorder = TraceRecorder()
        with pytest.raises(RuntimeError):
            with recorder.span("outer"):
                raise RuntimeError("boom")
        # The stack unwound: a new span is a fresh root, not a child.
        with recorder.span("after"):
            pass
        assert [root.name for root in recorder.roots] == ["outer", "after"]


class TestMetadataAndExport:
    def test_metadata_recorded(self):
        recorder = TraceRecorder()
        with recorder.span("apriori.level", level=2, algorithm="apriori"):
            pass
        span = recorder.roots[0]
        assert span.metadata == {"level": 2, "algorithm": "apriori"}

    def test_json_round_trip(self):
        recorder = TraceRecorder()
        with recorder.span("a", k=1):
            with recorder.span("b"):
                pass
        parsed = json.loads(recorder.to_json())
        assert parsed["spans"][0]["name"] == "a"
        assert parsed["spans"][0]["metadata"] == {"k": 1}
        assert parsed["spans"][0]["children"][0]["name"] == "b"
        assert parsed["spans"][0]["elapsed_seconds"] >= 0

    def test_format_tree_indents_children(self):
        recorder = TraceRecorder()
        with recorder.span("root"):
            with recorder.span("child", level=2):
                pass
        tree = recorder.format_tree()
        lines = tree.splitlines()
        assert lines[0].startswith("root")
        assert lines[1].startswith("  child")
        assert "level=2" in lines[1]

    def test_reset(self):
        recorder = TraceRecorder()
        with recorder.span("x"):
            pass
        recorder.reset()
        assert recorder.roots == []
        assert recorder.format_tree() == ""


class TestActiveRecorder:
    def test_default_is_null_and_trace_is_noop(self):
        assert get_recorder() is NULL_RECORDER
        with trace("ignored", level=1):
            pass
        assert NULL_RECORDER.to_dicts() == []
        assert json.loads(NULL_RECORDER.to_json()) == {"spans": []}

    def test_trace_lands_in_active_recorder(self):
        recorder = TraceRecorder()
        with use_recorder(recorder):
            with trace("seen", level=3):
                pass
        assert get_recorder() is NULL_RECORDER
        assert recorder.roots[0].name == "seen"

    def test_use_recorder_restores_on_exception(self):
        recorder = TraceRecorder()
        with pytest.raises(RuntimeError):
            with use_recorder(recorder):
                raise RuntimeError("boom")
        assert get_recorder() is NULL_RECORDER
