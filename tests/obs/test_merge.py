"""Merge semantics of :meth:`MetricsRegistry.merge` (DESIGN.md §12).

The merge is the foundation of cross-process aggregation: worker
registries snapshot-and-reset per task and the parent folds the deltas
in. These tests pin the per-kind contract (counters sum, gauges
last-write, timers/histograms element-wise) plus the algebraic
properties the differential harness relies on — associativity and
commutativity over the instrument kinds that are order-free.

Hypothesis values are drawn from multiples of 0.5 so float sums are
exact regardless of addition order; gauges are excluded from the
commutativity property because last-write-wins is order-dependent by
design.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.obs.metrics import (
    NULL_REGISTRY,
    MetricsRegistry,
)

EDGES = (0.001, 0.01, 0.1, 1.0)


def _registry_from(spec: dict) -> MetricsRegistry:
    """Build a registry from {counters: {...}, observations: {...}}."""
    registry = MetricsRegistry()
    for name, amount in spec.get("counters", {}).items():
        registry.inc(name, amount)
    for name, value in spec.get("gauges", {}).items():
        registry.set_gauge(name, value)
    for name, values in spec.get("timers", {}).items():
        for value in values:
            registry.timer(name).observe(value)
    for name, values in spec.get("histograms", {}).items():
        for value in values:
            registry.observe(name, value, buckets=EDGES)
    return registry


class TestMergeBasics:
    def test_counters_sum(self):
        target = _registry_from({"counters": {"a": 2}})
        target.merge(_registry_from({"counters": {"a": 3, "b": 1}}).snapshot())
        assert target.counter("a").value == 5
        assert target.counter("b").value == 1

    def test_gauges_last_write_wins(self):
        target = _registry_from({"gauges": {"g": 1.0}})
        target.merge(_registry_from({"gauges": {"g": 7.5}}).snapshot())
        assert target.gauge("g").value == 7.5

    def test_timers_merge_elementwise(self):
        target = _registry_from({"timers": {"t": [0.5, 1.5]}})
        target.merge(_registry_from({"timers": {"t": [0.25]}}).snapshot())
        snap = target.timer("t").snapshot()
        assert snap["count"] == 3
        assert snap["total_seconds"] == 2.25
        assert snap["min_seconds"] == 0.25
        assert snap["max_seconds"] == 1.5

    def test_histograms_merge_bucketwise(self):
        target = _registry_from({"histograms": {"h": [0.005, 0.5]}})
        target.merge(
            _registry_from({"histograms": {"h": [0.005, 5.0]}}).snapshot()
        )
        hist = target.histogram("h", EDGES)
        assert hist.count == 4
        assert hist.counts == [0, 2, 0, 1, 1]
        assert hist.total == 0.005 + 0.5 + 0.005 + 5.0
        assert hist.min == 0.005 and hist.max == 5.0


class TestMergeEdgeCases:
    def test_empty_into_populated_changes_nothing(self):
        target = _registry_from({
            "counters": {"a": 2},
            "timers": {"t": [1.0]},
            "histograms": {"h": [0.05]},
        })
        before = target.snapshot()
        target.merge(MetricsRegistry().snapshot())
        assert target.snapshot() == before

    def test_populated_into_empty_equals_source(self):
        source = _registry_from({
            "counters": {"a": 2},
            "gauges": {"g": 3.0},
            "timers": {"t": [1.0, 0.5]},
            "histograms": {"h": [0.05, 2.0]},
        })
        target = MetricsRegistry()
        target.merge(source.snapshot())
        assert target.snapshot() == source.snapshot()

    def test_empty_timer_entry_does_not_poison_min(self):
        # A worker that created a timer but never observed ships
        # count=0 with the inf/zero sentinels; merging it must not
        # disturb the target's extrema.
        target = _registry_from({"timers": {"t": [1.0]}})
        source = MetricsRegistry()
        source.timer("t")  # created, never observed
        target.merge(source.snapshot())
        snap = target.timer("t").snapshot()
        assert snap["count"] == 1
        assert snap["min_seconds"] == 1.0

    def test_mismatched_bucket_edges_raise(self):
        target = _registry_from({"histograms": {"h": [0.05]}})
        source = MetricsRegistry()
        source.observe("h", 0.05, buckets=(1.0, 2.0))
        with pytest.raises(ValueError, match="bucket edges"):
            target.merge(source.snapshot())

    def test_mismatched_edges_raise_even_for_empty_histogram(self):
        # The shape check must not hide behind the empty-skip: a
        # mis-bucketed worker is a bug even on a quiet run.
        target = _registry_from({"histograms": {"h": [0.05]}})
        source = MetricsRegistry()
        source.histogram("h", (1.0, 2.0))  # created, never observed
        with pytest.raises(ValueError, match="bucket edges"):
            target.merge(source.snapshot())

    def test_counter_overflow_stays_int(self):
        # Beyond 2**53 floats drop increments; the merge must not
        # round-trip counters through float.
        big = 2**60
        target = _registry_from({"counters": {"a": big}})
        target.merge(_registry_from({"counters": {"a": 1}}).snapshot())
        value = target.counter("a").value
        assert value == big + 1
        assert isinstance(value, int)

    def test_null_registry_merge_is_a_noop(self):
        NULL_REGISTRY.merge(
            _registry_from({"counters": {"a": 5}}).snapshot()
        )
        assert NULL_REGISTRY.snapshot() == {
            "counters": {}, "gauges": {}, "timers": {}, "histograms": {},
        }


# -- algebraic properties -------------------------------------------------

#: Exact-in-float values: multiples of 0.5 sum order-independently.
_halves = st.integers(min_value=0, max_value=40).map(lambda n: n * 0.5)

_spec = st.fixed_dictionaries({
    "counters": st.dictionaries(
        st.sampled_from(("a", "b", "c")),
        st.integers(min_value=0, max_value=1000),
        max_size=3,
    ),
    "timers": st.dictionaries(
        st.sampled_from(("t1", "t2")),
        st.lists(_halves, max_size=4),
        max_size=2,
    ),
    "histograms": st.dictionaries(
        st.sampled_from(("h1", "h2")),
        st.lists(_halves, max_size=4),
        max_size=2,
    ),
})


def _merge_all(specs) -> dict:
    target = MetricsRegistry()
    for spec in specs:
        target.merge(_registry_from(spec).snapshot())
    return target.snapshot()


@settings(max_examples=40, deadline=None)
@given(_spec, _spec, _spec)
def test_merge_is_associative(x, y, z):
    """merge(merge(x, y), z) == merge(x, merge(y, z))."""
    left_first = MetricsRegistry()
    left_first.merge(_registry_from(x).snapshot())
    left_first.merge(_registry_from(y).snapshot())
    left_first.merge(_registry_from(z).snapshot())

    right_inner = MetricsRegistry()
    right_inner.merge(_registry_from(y).snapshot())
    right_inner.merge(_registry_from(z).snapshot())
    right_first = MetricsRegistry()
    right_first.merge(_registry_from(x).snapshot())
    right_first.merge(right_inner.snapshot())

    assert left_first.snapshot() == right_first.snapshot()


@settings(max_examples=40, deadline=None)
@given(_spec, _spec)
def test_merge_is_commutative_without_gauges(x, y):
    """Order-free for counters/timers/histograms (gauges are
    last-write-wins by design, hence excluded)."""
    assert _merge_all([x, y]) == _merge_all([y, x])


@settings(max_examples=30, deadline=None)
@given(st.lists(_spec, min_size=1, max_size=4))
def test_sharded_merge_equals_single_registry(specs):
    """Folding N shard snapshots == recording everything in one
    registry — the exactness claim the parallel harness rests on."""
    merged = _merge_all(specs)

    combined: dict = {"counters": {}, "timers": {}, "histograms": {}}
    for spec in specs:
        for name, amount in spec["counters"].items():
            combined["counters"][name] = (
                combined["counters"].get(name, 0) + amount
            )
        for kind in ("timers", "histograms"):
            for name, values in spec[kind].items():
                combined[kind].setdefault(name, []).extend(values)
    single = _registry_from(combined).snapshot()

    assert merged == single
