"""Disabled observability stays off the Apriori hot path.

The strict 5%-budget comparison lives in
``benchmarks/bench_obs_overhead.py``; this test runs the same
plain-vs-instrumented comparison on every test run with a deliberately
generous ceiling so it catches regressions (e.g. someone making the
null registry do real work) without being timing-flaky on loaded
machines.
"""

import time

from repro.data import generate_quest
from repro.mining.apriori import Apriori
from repro.mining.base import resolve_min_support
from repro.mining.counting import SubsetCounter
from repro.mining.itemsets import apriori_gen

MAX_LEVEL = 3
MINSUP = 0.03
#: Generous: real cost is a few percent; 2x would mean the disabled
#: path started doing real work.
MAX_OVERHEAD_RATIO = 2.0


def plain_apriori(database, min_support, max_level=MAX_LEVEL):
    """Un-instrumented replica of the Apriori level loop."""
    threshold = resolve_min_support(database, min_support)
    counter = SubsetCounter()
    frequent = {}

    supports = database.item_supports()
    frequent_prev = []
    for item in range(database.n_items):
        support = int(supports[item])
        if support >= threshold:
            frequent[(item,)] = support
            frequent_prev.append((item,))

    k = 2
    while frequent_prev and k <= max_level:
        candidates = apriori_gen(frequent_prev)
        if not candidates:
            break
        counts = counter._count(database, candidates)
        frequent_prev = []
        for itemset, support in counts.items():
            if support >= threshold:
                frequent[itemset] = support
                frequent_prev.append(itemset)
        frequent_prev.sort()
        k += 1
    return frequent


def best_of(fn, repeats=5):
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def test_disabled_instrumentation_overhead_bounded():
    db = generate_quest(
        n_transactions=800, n_items=120, n_patterns=200, seed=7
    )
    miner = Apriori(max_level=MAX_LEVEL)

    # Warm both paths once so neither pays first-call costs in timing.
    assert miner.mine(db, MINSUP).frequent == plain_apriori(db, MINSUP)

    plain_seconds = best_of(lambda: plain_apriori(db, MINSUP))
    instrumented_seconds = best_of(lambda: miner.mine(db, MINSUP))

    ratio = instrumented_seconds / plain_seconds
    assert ratio <= MAX_OVERHEAD_RATIO, (
        f"instrumented-but-disabled Apriori took {ratio:.2f}x the "
        f"un-instrumented loop (ceiling {MAX_OVERHEAD_RATIO}x)"
    )
