"""Sliding-window quantile estimator: buckets, rotation, expiry."""

import pytest

from repro.obs.quantiles import LATENCY_BUCKETS, SlidingQuantile


class FakeClock:
    def __init__(self, now: float = 0.0) -> None:
        self.now = now

    def __call__(self) -> float:
        return self.now


def make(window: float = 60.0, slices: int = 12, **kwargs):
    clock = FakeClock()
    estimator = SlidingQuantile(
        window_seconds=window, slices=slices, clock=clock, **kwargs
    )
    return estimator, clock


class TestValidation:
    def test_rejects_bad_buckets(self):
        with pytest.raises(ValueError):
            SlidingQuantile(buckets=())
        with pytest.raises(ValueError):
            SlidingQuantile(buckets=(1.0, 0.5))

    def test_rejects_bad_window(self):
        with pytest.raises(ValueError):
            SlidingQuantile(window_seconds=0)
        with pytest.raises(ValueError):
            SlidingQuantile(slices=0)

    def test_rejects_bad_q(self):
        estimator, _ = make()
        for q in (-0.1, 0.0, 1.1):
            with pytest.raises(ValueError):
                estimator.quantile(q)


class TestQuantiles:
    def test_empty_is_zero(self):
        estimator, _ = make()
        assert estimator.count == 0
        assert estimator.quantile(0.5) == 0.0

    def test_reports_bucket_upper_edge(self):
        estimator, _ = make()
        for _ in range(99):
            estimator.observe(0.0004)  # -> le=0.0005 at default buckets
        estimator.observe(0.09)        # -> le=0.1
        assert estimator.quantile(0.50) == 0.0005
        assert estimator.quantile(0.99) == 0.0005
        assert estimator.quantile(1.0) == 0.1

    def test_overflow_clamps_to_top_edge(self):
        estimator, _ = make()
        estimator.observe(10 * LATENCY_BUCKETS[-1])
        assert estimator.quantile(0.5) == LATENCY_BUCKETS[-1]

    def test_snapshot_keys(self):
        estimator, _ = make()
        estimator.observe(0.002)
        snap = estimator.snapshot()
        assert snap["count"] == 1
        assert snap["window_seconds"] == 60.0
        assert set(snap) == {"count", "window_seconds", "p50", "p95", "p99"}


class TestWindowing:
    def test_old_slices_expire(self):
        estimator, clock = make(window=60.0, slices=12)
        estimator.observe(1.0)
        assert estimator.count == 1
        clock.now += 61.0  # a full window later
        assert estimator.count == 0
        assert estimator.quantile(0.5) == 0.0

    def test_recent_slices_survive(self):
        estimator, clock = make(window=60.0, slices=12)
        estimator.observe(1.0)
        clock.now += 30.0  # half a window: still live
        estimator.observe(0.001)
        assert estimator.count == 2

    def test_recycled_slot_is_zeroed(self):
        # Advancing exactly `slices` slice-widths lands observations in
        # the same ring slot; the old counts must be gone, not added to.
        estimator, clock = make(window=60.0, slices=12)
        for _ in range(5):
            estimator.observe(1.0)
        clock.now += 60.0
        estimator.observe(0.001)
        assert estimator.count == 1

    def test_reset_clears_everything(self):
        estimator, _ = make()
        estimator.observe(1.0)
        estimator.reset()
        assert estimator.count == 0
        assert estimator.quantile(0.99) == 0.0
