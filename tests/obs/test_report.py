"""Report rendering from snapshots and traces."""

from repro.obs.metrics import MetricsRegistry
from repro.obs.report import (
    format_snapshot,
    pruning_effectiveness,
    render_report,
)
from repro.obs.trace import TraceRecorder


def populated_registry() -> MetricsRegistry:
    registry = MetricsRegistry()
    registry.inc("mining.candidates_generated", 100)
    registry.inc("mining.candidates_pruned", 40)
    registry.inc("mining.candidates_counted", 60)
    registry.inc("pruner.ossm.pruned", 40)
    registry.inc("pruner.ossm.kept", 60)
    registry.set_gauge("ossm.n_segments", 8)
    with registry.time("counting.subset_seconds"):
        pass
    for gap in (0, 0, 3, 17):
        registry.observe("ossm.bound_gap", gap)
    return registry


class TestFormatSnapshot:
    def test_sections_present(self):
        text = format_snapshot(populated_registry().snapshot())
        assert "counters:" in text
        assert "gauges:" in text
        assert "timers:" in text
        assert "histogram ossm.bound_gap:" in text

    def test_empty_snapshot_is_empty(self):
        assert format_snapshot(MetricsRegistry().snapshot()) == ""


class TestPruningEffectiveness:
    def test_ratios_and_tightness(self):
        text = pruning_effectiveness(populated_registry().snapshot())
        assert "100 generated, 40 pruned (40.0%)" in text
        assert "pruner ossm: 40 of 100 candidates pruned (40.0%)" in text
        assert "bound tightness" in text
        assert "exact on 50.0%" in text  # 2 of 4 gaps were zero

    def test_empty_when_nothing_recorded(self):
        assert pruning_effectiveness(MetricsRegistry().snapshot()) == ""


class TestRenderReport:
    def test_combines_all_sections(self):
        recorder = TraceRecorder()
        with recorder.span("apriori.mine"):
            with recorder.span("apriori.level", level=1):
                pass
        text = render_report(
            populated_registry().snapshot(), recorder, title="smoke"
        )
        assert "smoke" in text
        assert "pruning effectiveness:" in text
        assert "spans:" in text
        assert "apriori.level" in text

    def test_without_recorder(self):
        text = render_report(populated_registry().snapshot())
        assert "spans:" not in text
