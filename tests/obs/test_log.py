"""Logging: silent-by-default contract, configuration, JSON lines."""

import io
import json
import logging

import pytest

from repro.obs.log import (
    ROOT_LOGGER_NAME,
    configure_logging,
    get_logger,
    reset_logging,
)


@pytest.fixture(autouse=True)
def clean_handlers():
    yield
    reset_logging()


class TestSilentByDefault:
    def test_root_logger_has_null_handler(self):
        handlers = logging.getLogger(ROOT_LOGGER_NAME).handlers
        assert any(
            isinstance(handler, logging.NullHandler) for handler in handlers
        )

    def test_unconfigured_library_emits_nothing(self, capfd):
        # Exercise a logging call site without configuring anything.
        from repro import GreedySegmenter, PagedDatabase, generate_quest

        db = generate_quest(n_transactions=60, n_items=15, seed=0)
        GreedySegmenter().segment(PagedDatabase(db, page_size=20), 2)
        captured = capfd.readouterr()
        assert captured.err == ""


class TestGetLogger:
    def test_prefixes_bare_names(self):
        assert get_logger("mining.apriori").name == "repro.mining.apriori"

    def test_leaves_namespaced_names(self):
        assert get_logger("repro.core").name == "repro.core"
        assert get_logger(ROOT_LOGGER_NAME).name == ROOT_LOGGER_NAME


class TestConfigureLogging:
    def test_records_reach_the_stream(self):
        stream = io.StringIO()
        configure_logging("DEBUG", stream=stream)
        get_logger("test.text").debug("hello %d", 42)
        assert "hello 42" in stream.getvalue()
        assert "repro.test.text" in stream.getvalue()

    def test_level_filters(self):
        stream = io.StringIO()
        configure_logging("WARNING", stream=stream)
        get_logger("test.filter").info("not shown")
        get_logger("test.filter").warning("shown")
        assert "not shown" not in stream.getvalue()
        assert "shown" in stream.getvalue()

    def test_idempotent_no_duplicate_handlers(self):
        stream = io.StringIO()
        configure_logging("INFO", stream=stream)
        configure_logging("INFO", stream=stream)
        get_logger("test.idem").info("once")
        assert stream.getvalue().count("once") == 1

    def test_json_lines(self):
        stream = io.StringIO()
        configure_logging("INFO", json=True, stream=stream)
        get_logger("test.json").info(
            "structured", extra={"level_k": 2, "pruned": 7}
        )
        record = json.loads(stream.getvalue().strip())
        assert record["message"] == "structured"
        assert record["level"] == "INFO"
        assert record["logger"] == "repro.test.json"
        assert record["level_k"] == 2
        assert record["pruned"] == 7

    def test_json_handles_unserializable_extra(self):
        stream = io.StringIO()
        configure_logging("INFO", json=True, stream=stream)
        get_logger("test.json2").info("x", extra={"obj": object()})
        record = json.loads(stream.getvalue().strip())
        assert record["obj"].startswith("<object object")

    def test_reset_removes_managed_handler(self):
        stream = io.StringIO()
        configure_logging("INFO", stream=stream)
        reset_logging()
        get_logger("test.reset").info("gone")
        assert stream.getvalue() == ""
