"""End-to-end: the instrumented pipeline emits spans and counters.

The acceptance smoke of the observability layer: mining with an OSSM
attached while a registry + recorder are active must produce per-level
spans, prune/keep counters, and the Equation (1) bound-tightness
histogram — without changing any mining result.
"""

import pytest

from repro import (
    DHP,
    Apriori,
    DepthProject,
    GreedySegmenter,
    MetricsRegistry,
    OSSMPruner,
    PagedDatabase,
    Partition,
    TraceRecorder,
    generate_quest,
    use_recorder,
    use_registry,
)
from repro.mining.pruning import ChainPruner, NullPruner


@pytest.fixture(scope="module")
def workload():
    db = generate_quest(
        n_transactions=400, n_items=60, n_patterns=120, seed=3
    )
    ossm = GreedySegmenter().segment(
        PagedDatabase(db, page_size=20), 5
    ).ossm
    return db, ossm


def span_names(recorder):
    collected = []

    def walk(spans):
        for span in spans:
            collected.append((span.name, span.metadata))
            walk(span.children)

    walk(recorder.roots)
    return collected


class TestAprioriSmoke:
    def test_emits_levels_counters_and_bound_gaps(self, workload):
        db, ossm = workload
        registry = MetricsRegistry()
        recorder = TraceRecorder()
        with use_registry(registry), use_recorder(recorder):
            instrumented = Apriori(
                pruner=OSSMPruner(ossm), max_level=3
            ).mine(db, 0.05)
        plain = Apriori(pruner=OSSMPruner(ossm), max_level=3).mine(db, 0.05)

        # Identical mining output — instrumentation observes only.
        assert instrumented.same_itemsets(plain)

        spans = span_names(recorder)
        levels = [
            meta["level"] for name, meta in spans if name == "apriori.level"
        ]
        assert levels == sorted(levels) and levels[0] == 1 and len(levels) >= 2

        counters = registry.snapshot()["counters"]
        assert counters["pruner.ossm.kept"] > 0
        assert counters["pruner.ossm.pruned"] >= 0
        assert (
            counters["pruner.ossm.pruned"] + counters["pruner.ossm.kept"]
            == counters["mining.candidates_generated"]
        )
        assert counters["mining.candidates_counted"] == sum(
            stats.candidates_counted for stats in instrumented.levels
        )

        gap = registry.snapshot()["histograms"]["ossm.bound_gap"]
        assert gap["count"] > 0
        # Soundness: the Equation (1) bound never undershoots.
        assert gap["min"] >= 0

    def test_timers_recorded(self, workload):
        db, ossm = workload
        registry = MetricsRegistry()
        with use_registry(registry):
            Apriori(pruner=OSSMPruner(ossm), max_level=2).mine(db, 0.05)
        timers = registry.snapshot()["timers"]
        assert timers["apriori.count_seconds"]["count"] >= 1
        assert timers["counting.subset_seconds"]["count"] >= 1

    def test_null_pruner_records_no_bound_gap(self, workload):
        db, _ = workload
        registry = MetricsRegistry()
        with use_registry(registry):
            Apriori(max_level=2).mine(db, 0.05)
        assert "ossm.bound_gap" not in registry.snapshot()["histograms"]


class TestOtherMiners:
    def test_dhp(self, workload):
        db, ossm = workload
        registry = MetricsRegistry()
        recorder = TraceRecorder()
        with use_registry(registry), use_recorder(recorder):
            DHP(pruner=OSSMPruner(ossm), max_level=2).mine(db, 0.05)
        counters = registry.snapshot()["counters"]
        assert counters["dhp.candidates_generated"] > 0
        assert "dhp.hash_filtered" in counters
        assert any(n == "dhp.level" for n, _ in span_names(recorder))

    def test_partition(self, workload):
        db, _ = workload
        registry = MetricsRegistry()
        recorder = TraceRecorder()
        with use_registry(registry), use_recorder(recorder):
            Partition(n_partitions=2, auto_ossm=3, max_level=2).mine(
                db, 0.05
            )
        counters = registry.snapshot()["counters"]
        assert counters["partition.global_candidates"] > 0
        names = [n for n, _ in span_names(recorder)]
        assert "partition.phase1" in names
        assert "partition.phase2" in names
        assert "partition.level" in names

    def test_depthproject(self, workload):
        db, ossm = workload
        registry = MetricsRegistry()
        recorder = TraceRecorder()
        with use_registry(registry), use_recorder(recorder):
            DepthProject(pruner=OSSMPruner(ossm), max_level=3).mine(
                db, 0.05
            )
        counters = registry.snapshot()["counters"]
        assert counters["depthproject.candidates_generated"] > 0
        assert any(
            n == "depthproject.mine" for n, _ in span_names(recorder)
        )


class TestSegmentation:
    def test_segmenter_emits_gauges_and_span(self, workload):
        db, _ = workload
        registry = MetricsRegistry()
        recorder = TraceRecorder()
        with use_registry(registry), use_recorder(recorder):
            GreedySegmenter().segment(PagedDatabase(db, page_size=20), 4)
        snapshot = registry.snapshot()
        assert snapshot["gauges"]["ossm.n_segments"] == 4
        assert snapshot["gauges"]["ossm.nominal_bytes"] > 0
        assert snapshot["counters"]["segmentation.greedy.merges"] > 0
        assert snapshot["gauges"]["segmentation.loss_evaluations"] > 0
        assert any(
            n == "segment.greedy" for n, _ in span_names(recorder)
        )


class TestCandidateBounds:
    def test_null_pruner_has_no_bounds(self):
        assert NullPruner().candidate_bounds([(0, 1)]) is None

    def test_ossm_pruner_bounds_align(self, workload):
        _, ossm = workload
        pruner = OSSMPruner(ossm)
        candidates = [(0, 1), (1, 2)]
        bounds = pruner.candidate_bounds(candidates)
        assert list(bounds) == [
            ossm.upper_bound(c) for c in candidates
        ]
        assert pruner.candidate_bounds([]) is None

    def test_chain_pruner_takes_tightest(self, workload):
        _, ossm = workload
        chain = ChainPruner([NullPruner(), OSSMPruner(ossm)])
        candidates = [(0, 1)]
        assert list(chain.candidate_bounds(candidates)) == [
            ossm.upper_bound((0, 1))
        ]
        assert ChainPruner([NullPruner()]).candidate_bounds(
            candidates
        ) is None
