"""Tests for the bench workload registry."""

import pytest

from repro.bench import workloads


class TestScaleSelection:
    def test_default_scale(self, monkeypatch):
        monkeypatch.delenv("REPRO_SCALE", raising=False)
        assert workloads.current_scale().name == "default"

    def test_env_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "smoke")
        assert workloads.current_scale().name == "smoke"

    def test_invalid_scale_rejected(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "huge")
        with pytest.raises(ValueError, match="REPRO_SCALE"):
            workloads.current_scale()

    def test_n_pages_derived(self):
        scale = workloads.current_scale()
        assert scale.n_pages == -(-scale.n_transactions // scale.page_size)


class TestWorkloads:
    def test_regular_synthetic_smoke_shape(self):
        db = workloads.regular_synthetic("smoke")
        assert len(db) == 2000
        assert db.n_items == 200

    def test_skewed_synthetic_smoke_shape(self):
        db = workloads.skewed_synthetic("smoke")
        assert len(db) == 2000

    def test_alarm_stream_smoke_shape(self):
        db = workloads.alarm_stream("smoke")
        assert len(db) == 1000
        assert db.n_items == 200

    def test_caching(self):
        assert workloads.regular_synthetic("smoke") is workloads.regular_synthetic(
            "smoke"
        )

    def test_paged_uses_scale_page_size(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "smoke")
        db = workloads.regular_synthetic("smoke")
        paged = workloads.paged(db)
        assert paged.page_size == 25

    def test_paged_explicit_page_size(self):
        db = workloads.regular_synthetic("smoke")
        assert workloads.paged(db, page_size=10).page_size == 10

    def test_regular_synthetic_pages_sized_exactly(self):
        from repro.bench.workloads import regular_synthetic_pages

        paged = regular_synthetic_pages(8, "smoke")
        assert paged.n_pages == 8
        assert len(paged.database) == 8 * paged.page_size

    def test_drifting_synthetic_pages_drift(self):
        from repro.bench.workloads import drifting_synthetic_pages

        paged = drifting_synthetic_pages(40, "smoke")
        assert paged.n_pages == 40
        db = paged.database
        half = len(db) // 2
        first = db[:half].item_supports().astype(float) + 1
        second = db[half:].item_supports().astype(float) + 1
        assert (first / second).max() > 1.5  # non-stationary by design

    def test_regime_average_item_support_near_threshold(self):
        """The OSSM-relevant regime: typical items sit near minsup."""
        db = workloads.regular_synthetic("smoke")
        supports = db.item_supports()
        mean_support = supports.mean() / len(db)
        assert 0.2 * workloads.MINSUP < mean_support < 10 * workloads.MINSUP
