"""Tests for the bench metrics."""

import numpy as np
import pytest

from repro.bench import candidate_ratio, ossm_megabytes, pruned_fraction, speedup
from repro.core import OSSM
from repro.mining import MiningResult
from repro.mining.base import LevelStats


def result_with_levels(counted, generated=None, pruned=None):
    levels = []
    for k, count in enumerate(counted, start=1):
        stats = LevelStats(level=k, candidates_counted=count)
        if generated:
            stats.candidates_generated = generated[k - 1]
        if pruned:
            stats.candidates_pruned = pruned[k - 1]
        levels.append(stats)
    return MiningResult(
        frequent={}, min_support=1, algorithm="test", levels=levels
    )


class TestSpeedup:
    def test_basic(self):
        assert speedup(10.0, 2.0) == 5.0

    def test_zero_denominator(self):
        assert speedup(1.0, 0.0) == float("inf")
        assert speedup(0.0, 0.0) == 1.0

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            speedup(-1.0, 2.0)


class TestCandidateRatio:
    def test_level_two_default(self):
        with_ossm = result_with_levels([10, 30])
        without = result_with_levels([10, 100])
        assert candidate_ratio(with_ossm, without) == 0.3

    def test_explicit_level(self):
        with_ossm = result_with_levels([5, 30, 4])
        without = result_with_levels([10, 100, 8])
        assert candidate_ratio(with_ossm, without, level=3) == 0.5

    def test_zero_baseline(self):
        assert candidate_ratio(
            result_with_levels([0]), result_with_levels([0]), level=1
        ) == 1.0


class TestPrunedFraction:
    def test_basic(self):
        result = result_with_levels([60], generated=[100], pruned=[40])
        assert pruned_fraction(result, level=1) == 0.4

    def test_missing_level(self):
        assert pruned_fraction(result_with_levels([5]), level=7) == 0.0

    def test_zero_generated(self):
        result = result_with_levels([0], generated=[0])
        assert pruned_fraction(result, level=1) == 0.0


class TestOssmMegabytes:
    def test_paper_number(self):
        ossm = OSSM(np.zeros((100, 1000), dtype=np.int64))
        assert ossm_megabytes(ossm) == pytest.approx(0.2)
