"""Tests for the bench table renderer."""

from repro.bench import banner, format_table


class TestFormatTable:
    def test_empty_rows(self):
        text = format_table(["alpha", "b"], [])
        lines = text.splitlines()
        assert lines[0].strip().startswith("alpha")
        assert len(lines) == 2  # header + rule only

    def test_floats_three_decimals(self):
        text = format_table(["x"], [[1.23456]])
        assert "1.235" in text

    def test_ints_unmodified(self):
        text = format_table(["x"], [[1234567]])
        assert "1234567" in text

    def test_columns_right_aligned(self):
        text = format_table(["col"], [[1], [1000]])
        lines = text.splitlines()
        assert lines[2].endswith("   1")
        assert lines[3].endswith("1000")

    def test_wide_value_stretches_column(self):
        text = format_table(["c"], [["a-very-long-value"]])
        header, rule, row = text.splitlines()
        assert len(header) == len(rule) == len(row)

    def test_mixed_types(self):
        text = format_table(
            ["name", "count", "ratio"], [["greedy", 40, 0.5]]
        )
        assert "greedy" in text and "40" in text and "0.500" in text


class TestBanner:
    def test_contains_title(self):
        assert "Figure 9" in banner("Figure 9")

    def test_bar_at_least_title_width(self):
        lines = banner("A much longer experiment title").splitlines()
        bar = lines[1]
        assert len(bar) >= len("A much longer experiment title")

    def test_minimum_bar(self):
        lines = banner("ab").splitlines()
        assert len(lines[1]) >= 8
