"""BENCH history loading, trajectory math, and the CLI gate."""

import json

import pytest

from repro.bench.history import (
    load_bench_records,
    metric_direction,
    render_history,
    trajectories,
)
from repro.cli import main


def write_bench(tmp_path, name, records):
    path = tmp_path / f"BENCH_{name}.json"
    path.write_text(json.dumps(records), encoding="utf-8")
    return path


def series(bench, metric, values, **config):
    return {bench: [{"bench": bench, metric: v, **config} for v in values]}


class TestMetricDirection:
    def test_lower_is_better(self):
        for name in ("wall_seconds", "p99_ms", "overhead_ratio",
                     "candidates_counted", "c2_ratio"):
            assert metric_direction(name) == "down", name

    def test_higher_is_better(self):
        for name in ("throughput_qps", "speedup", "cache_hit_rate"):
            assert metric_direction(name) == "up", name

    def test_unknown_is_none(self):
        assert metric_direction("n_frequent") is None


class TestLoadRecords:
    def test_reads_lists_and_single_objects(self, tmp_path):
        write_bench(tmp_path, "a", [{"bench": "a", "x": 1}])
        write_bench(tmp_path, "b", {"bench": "b", "x": 2})
        records = load_bench_records(tmp_path)
        assert len(records["a"]) == 1
        assert len(records["b"]) == 1

    def test_corrupt_file_does_not_abort_the_sweep(self, tmp_path):
        (tmp_path / "BENCH_bad.json").write_text("{not json", "utf-8")
        write_bench(tmp_path, "good", [{"bench": "good", "x": 1}])
        records = load_bench_records(tmp_path)
        assert records["bad"] == []
        assert len(records["good"]) == 1

    def test_empty_directory(self, tmp_path):
        assert load_bench_records(tmp_path) == {}


class TestTrajectories:
    def test_short_series_is_new_never_flagged(self):
        trajs = trajectories(series("b", "wall_seconds", [1.0, 100.0]))
        assert [t.status for t in trajs] == ["new"]

    def test_stable_series_is_ok(self):
        trajs = trajectories(
            series("b", "wall_seconds", [1.0, 1.05, 0.95, 1.02])
        )
        assert [t.status for t in trajs] == ["ok"]

    def test_regression_beyond_tolerance_in_worsening_direction(self):
        trajs = trajectories(
            series("b", "wall_seconds", [1.0, 1.0, 1.0, 2.0])
        )
        (traj,) = trajs
        assert traj.status == "regression"
        assert traj.baseline == 1.0
        assert traj.delta == pytest.approx(1.0)

    def test_improvement_flagged_as_improved(self):
        trajs = trajectories(series("b", "speedup", [2.0, 2.0, 2.0, 4.0]))
        assert [t.status for t in trajs] == ["improved"]

    def test_higher_better_drop_is_a_regression(self):
        trajs = trajectories(series("b", "speedup", [4.0, 4.0, 4.0, 1.0]))
        assert [t.status for t in trajs] == ["regression"]

    def test_unknown_direction_is_informational(self):
        trajs = trajectories(
            series("b", "n_frequent", [10, 10, 10, 10_000])
        )
        assert [t.status for t in trajs] == ["info"]

    def test_configs_partition_series(self):
        records = {
            "b": [
                {"bench": "b", "workers": 1, "wall_seconds": 1.0},
                {"bench": "b", "workers": 4, "wall_seconds": 0.3},
                {"bench": "b", "workers": 1, "wall_seconds": 1.0},
                {"bench": "b", "workers": 4, "wall_seconds": 0.3},
                {"bench": "b", "workers": 1, "wall_seconds": 1.0},
                {"bench": "b", "workers": 4, "wall_seconds": 0.3},
            ]
        }
        trajs = trajectories(records)
        assert len(trajs) == 2
        assert all(t.status == "ok" for t in trajs)
        assert {t.config for t in trajs} == {"workers=1", "workers=4"}

    def test_window_bounds_the_baseline(self):
        # Ancient bad values outside the window must not mask a
        # regression against the recent normal.
        values = [9.0] * 10 + [1.0] * 5 + [2.0]
        trajs = trajectories(
            series("b", "wall_seconds", values), window=5
        )
        assert [t.status for t in trajs] == ["regression"]

    def test_validation(self):
        with pytest.raises(ValueError):
            trajectories({}, window=0)
        with pytest.raises(ValueError):
            trajectories({}, tolerance=0.0)

    def test_render_mentions_regressions(self):
        text = render_history(
            trajectories(series("b", "wall_seconds", [1.0, 1.0, 1.0, 9.0]))
        )
        assert "REGRESSION" in text
        text_ok = render_history(
            trajectories(series("b", "wall_seconds", [1.0, 1.0, 1.0]))
        )
        assert "no regressions flagged" in text_ok


class TestCli:
    def test_report_mode_always_exits_zero(self, tmp_path, capsys):
        write_bench(
            tmp_path, "b",
            [{"bench": "b", "wall_seconds": v} for v in (1.0, 1.0, 1.0, 9.0)],
        )
        code = main(["bench-history", "--dir", str(tmp_path)])
        assert code == 0
        assert "regression" in capsys.readouterr().out

    def test_check_mode_exits_one_on_regression(self, tmp_path, capsys):
        write_bench(
            tmp_path, "b",
            [{"bench": "b", "wall_seconds": v} for v in (1.0, 1.0, 1.0, 9.0)],
        )
        assert main(["bench-history", "--dir", str(tmp_path), "--check"]) == 1

    def test_check_mode_exits_zero_when_clean(self, tmp_path, capsys):
        write_bench(
            tmp_path, "b",
            [{"bench": "b", "wall_seconds": 1.0}] * 4,
        )
        assert main(["bench-history", "--dir", str(tmp_path), "--check"]) == 0

    def test_empty_directory_reports_and_exits_zero(self, tmp_path, capsys):
        assert main(["bench-history", "--dir", str(tmp_path)]) == 0
        assert "no BENCH_*.json" in capsys.readouterr().out

    def test_tolerance_flag_widens_the_band(self, tmp_path):
        write_bench(
            tmp_path, "b",
            [{"bench": "b", "wall_seconds": v} for v in (1.0, 1.0, 1.0, 1.5)],
        )
        assert main(
            ["bench-history", "--dir", str(tmp_path), "--check",
             "--tolerance", "0.6"]
        ) == 0
        assert main(
            ["bench-history", "--dir", str(tmp_path), "--check",
             "--tolerance", "0.2"]
        ) == 1
