"""Tests for the experiment harness."""

import numpy as np
import pytest

from repro.bench import baseline, evaluate, format_cells, segment
from repro.core import OSSM, RandomSegmenter
from repro.data import PagedDatabase


class TestBaseline:
    def test_result_and_timing(self, quest_db):
        base = baseline(quest_db, 0.05, max_level=2)
        assert base.seconds > 0
        assert base.result.max_level <= 2
        assert base.min_support == 0.05

    def test_repeats_take_best(self, quest_db):
        single = baseline(quest_db, 0.05, max_level=2, repeats=1)
        multi = baseline(quest_db, 0.05, max_level=2, repeats=3)
        assert multi.result.same_itemsets(single.result)


class TestEvaluate:
    def test_cell_fields(self, quest_db, quest_paged):
        base = baseline(quest_db, 0.05, max_level=2)
        seg = segment(quest_paged, RandomSegmenter(seed=0), 5)
        cell = evaluate(quest_db, seg.ossm, base, seg)
        assert cell.algorithm == "random"
        assert cell.n_user == 5
        assert cell.speedup == pytest.approx(
            cell.baseline_seconds / cell.mining_seconds
        )
        assert 0 < cell.c2_ratio <= 1.0
        assert cell.ossm_mb > 0

    def test_unsound_ossm_rejected(self, quest_db):
        base = baseline(quest_db, 0.05, max_level=2)
        # An OSSM that does not describe the data will (generically)
        # under-bound some candidate and change the output.
        bogus = OSSM(
            np.zeros((2, quest_db.n_items), dtype=np.int64),
            segment_sizes=[0, 0],
        )
        with pytest.raises(AssertionError, match="unsound"):
            evaluate(quest_db, bogus, base)

    def test_without_segmentation_metadata(self, quest_db):
        base = baseline(quest_db, 0.05, max_level=2)
        ossm = OSSM.single_segment(quest_db)
        cell = evaluate(quest_db, ossm, base)
        assert cell.algorithm == "given"
        assert cell.segmentation_seconds == 0.0


class TestReporting:
    def test_format_cells_renders_columns(self, quest_db, quest_paged):
        base = baseline(quest_db, 0.05, max_level=2)
        seg = segment(quest_paged, RandomSegmenter(seed=0), 4)
        cell = evaluate(quest_db, seg.ossm, base, seg)
        text = format_cells([cell])
        assert "speedup" in text
        assert "random" in text

    def test_format_table_alignment(self):
        from repro.bench import format_table

        text = format_table(
            ["a", "bbb"], [[1, 2.5], [10, 0.125]]
        )
        lines = text.splitlines()
        assert len(lines) == 4
        assert lines[0].endswith("bbb")
        assert "0.125" in lines[3]

    def test_banner(self):
        from repro.bench import banner

        assert "Figure 4" in banner("Figure 4")
