"""Round-trip tests for the IO formats."""

import pytest

from repro.data import (
    TransactionDatabase,
    load,
    load_binary,
    load_fimi,
    save,
    save_binary,
    save_fimi,
)
from repro.data.io import iter_fimi


class TestFimi:
    def test_roundtrip(self, tiny_db, tmp_path):
        path = tmp_path / "db.dat"
        save_fimi(tiny_db, path)
        loaded = load_fimi(path, n_items=tiny_db.n_items)
        assert loaded == tiny_db

    def test_file_is_human_readable(self, tiny_db, tmp_path):
        path = tmp_path / "db.dat"
        save_fimi(tiny_db, path)
        first = path.read_text().splitlines()[0]
        assert first == "0 1 2"

    def test_iter_fimi_streams(self, tiny_db, tmp_path):
        path = tmp_path / "db.dat"
        save_fimi(tiny_db, path)
        assert list(iter_fimi(path)) == list(tiny_db)

    def test_empty_lines_become_empty_transactions(self, tmp_path):
        path = tmp_path / "db.dat"
        path.write_text("1 2\n\n3\n")
        db = load_fimi(path)
        assert list(db) == [(1, 2), (), (3,)]

    def test_duplicate_items_in_line_collapse(self, tmp_path):
        path = tmp_path / "db.dat"
        path.write_text("5 5 1\n")
        assert load_fimi(path)[0] == (1, 5)


class TestBinary:
    def test_roundtrip(self, tiny_db, tmp_path):
        path = tmp_path / "db.npz"
        save_binary(tiny_db, path)
        assert load_binary(path) == tiny_db

    def test_preserves_n_items(self, tmp_path):
        db = TransactionDatabase([(0,)], n_items=99)
        path = tmp_path / "db.npz"
        save_binary(db, path)
        assert load_binary(path).n_items == 99

    def test_empty_database(self, tmp_path):
        db = TransactionDatabase([], n_items=5)
        path = tmp_path / "db.npz"
        save_binary(db, path)
        loaded = load_binary(path)
        assert len(loaded) == 0
        assert loaded.n_items == 5


class TestSpmf:
    def _shop(self):
        from repro.data.sequences import SequenceDatabase

        return SequenceDatabase(
            [
                [(0,), (1, 2)],
                [(2,)],
                [],
            ],
            n_items=3,
        )

    def test_roundtrip(self, tmp_path):
        from repro.data import load_spmf, save_spmf

        db = self._shop()
        path = tmp_path / "seq.spmf"
        save_spmf(db, path)
        loaded = load_spmf(path, n_items=3)
        assert list(loaded) == list(db)
        assert loaded.n_items == 3

    def test_format_is_spmf(self, tmp_path):
        from repro.data import save_spmf

        path = tmp_path / "seq.spmf"
        save_spmf(self._shop(), path)
        lines = path.read_text().splitlines()
        assert lines[0] == "0 -1 1 2 -1 -2"
        assert lines[1] == "2 -1 -2"
        assert lines[2] == "-2"

    def test_missing_trailing_minus_one_tolerated(self, tmp_path):
        from repro.data import load_spmf

        path = tmp_path / "seq.spmf"
        path.write_text("3 4 -1 5 -2\n")
        loaded = load_spmf(path)
        assert loaded[0] == ((3, 4), (5,))

    def test_bad_token_rejected(self, tmp_path):
        from repro.data import load_spmf

        path = tmp_path / "seq.spmf"
        path.write_text("1 -7 -2\n")
        with pytest.raises(ValueError, match="negative token"):
            load_spmf(path)


class TestDispatch:
    def test_save_load_by_extension(self, tiny_db, tmp_path):
        text = tmp_path / "db.dat"
        binary = tmp_path / "db.npz"
        save(tiny_db, text)
        save(tiny_db, binary)
        assert load(text, n_items=tiny_db.n_items) == tiny_db
        assert load(binary) == tiny_db

    def test_load_binary_n_items_mismatch_rejected(self, tiny_db, tmp_path):
        path = tmp_path / "db.npz"
        save(tiny_db, path)
        with pytest.raises(ValueError, match="n_items"):
            load(path, n_items=tiny_db.n_items + 1)
