"""Tests for the customer-sequence substrate."""

import pytest

from repro.data import TransactionDatabase
from repro.data.sequences import (
    SequenceDatabase,
    contains_sequence,
)


@pytest.fixture
def shop():
    """Three customers with simple purchase histories."""
    return SequenceDatabase(
        [
            [(0,), (1,), (2,)],        # 0 then 1 then 2
            [(0, 1), (2,)],            # 0+1 together, then 2
            [(2,), (0,)],              # 2 then 0
        ],
        n_items=3,
    )


class TestContainment:
    def test_in_order(self):
        customer = ((0,), (1,), (2,))
        assert contains_sequence(customer, ((0,), (2,)))
        assert contains_sequence(customer, ((1,),))
        assert not contains_sequence(customer, ((2,), (0,)))

    def test_element_subset(self):
        customer = ((0, 1, 2), (3,))
        assert contains_sequence(customer, ((0, 2), (3,)))
        assert not contains_sequence(customer, ((0, 3),))

    def test_same_element_not_split(self):
        """⟨{x}{y}⟩ needs two *different* transactions."""
        customer = ((0, 1),)
        assert contains_sequence(customer, ((0, 1),))
        assert not contains_sequence(customer, ((0,), (1,)))

    def test_repeated_item(self):
        assert contains_sequence(((0,), (0,)), ((0,), (0,)))
        assert not contains_sequence(((0,),), ((0,), (0,)))

    def test_empty_pattern(self):
        assert contains_sequence(((0,),), ())


class TestSequenceDatabase:
    def test_canonicalization(self):
        db = SequenceDatabase([[(2, 1, 1), ()]])
        assert db[0] == ((1, 2),)  # sorted, deduped, empty element gone

    def test_n_items(self, shop):
        assert shop.n_items == 3
        with pytest.raises(ValueError, match="n_items"):
            SequenceDatabase([[(5,)]], n_items=3)

    def test_negative_items_rejected(self):
        with pytest.raises(ValueError):
            SequenceDatabase([[(-1,)]])

    def test_support(self, shop):
        assert shop.support([(0,), (2,)]) == 2   # customers 0 and 1
        assert shop.support([(2,), (0,)]) == 1   # customer 2
        assert shop.support([(0, 1)]) == 1       # only customer 1
        assert shop.support([]) == 3

    def test_average_visits(self, shop):
        assert shop.average_visits() == pytest.approx(7 / 3)

    def test_flattened(self, shop):
        flat = shop.flattened()
        assert isinstance(flat, TransactionDatabase)
        assert flat[0] == (0, 1, 2)
        assert flat[2] == (0, 2)

    def test_item_supports_counts_customers(self, shop):
        assert shop.item_supports().tolist() == [3, 2, 3]

    def test_flattened_support_dominates_sequential(self, shop):
        pattern = [(0,), (2,)]
        items = (0, 2)
        assert shop.support(pattern) <= shop.flattened().support(items)

    def test_from_transactions(self, tiny_db):
        seqdb = SequenceDatabase.from_transactions(tiny_db, 3)
        assert len(seqdb) == 3  # ceil(8 / 3)
        assert seqdb[0] == tuple(tiny_db)[0:3]
        with pytest.raises(ValueError):
            SequenceDatabase.from_transactions(tiny_db, 0)

    def test_repr(self, shop):
        assert "3 customers" in repr(shop)
