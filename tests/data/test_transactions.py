"""Unit tests for the transaction database substrate."""

import numpy as np
import pytest

from repro.data import TransactionDatabase, Vocabulary


class TestCanonicalization:
    def test_transactions_are_sorted_and_deduplicated(self):
        db = TransactionDatabase([(3, 1, 2, 1)])
        assert db[0] == (1, 2, 3)

    def test_negative_items_rejected(self):
        with pytest.raises(ValueError, match="non-negative"):
            TransactionDatabase([(-1, 2)])

    def test_empty_transactions_allowed(self):
        db = TransactionDatabase([(), (0,)])
        assert db[0] == ()
        assert len(db) == 2

    def test_n_items_defaults_to_max_plus_one(self):
        db = TransactionDatabase([(0, 5)])
        assert db.n_items == 6

    def test_explicit_n_items_may_exceed_observed(self):
        db = TransactionDatabase([(0,)], n_items=10)
        assert db.n_items == 10

    def test_n_items_too_small_rejected(self):
        with pytest.raises(ValueError, match="contains item"):
            TransactionDatabase([(0, 7)], n_items=5)

    def test_empty_database(self):
        db = TransactionDatabase([], n_items=3)
        assert len(db) == 0
        assert db.n_items == 3
        assert db.average_length() == 0.0
        assert db.density() == 0.0


class TestSequenceProtocol:
    def test_len_iter_getitem(self, tiny_db):
        assert len(tiny_db) == 8
        assert list(tiny_db)[0] == (0, 1, 2)
        assert tiny_db[1] == (0, 1)

    def test_slicing_returns_database(self, tiny_db):
        head = tiny_db[:3]
        assert isinstance(head, TransactionDatabase)
        assert len(head) == 3
        assert head.n_items == tiny_db.n_items

    def test_equality(self):
        a = TransactionDatabase([(0, 1)], n_items=2)
        b = TransactionDatabase([(1, 0)], n_items=2)
        c = TransactionDatabase([(0, 1)], n_items=3)
        assert a == b
        assert a != c

    def test_repr_mentions_shape(self, tiny_db):
        assert "8 transactions" in repr(tiny_db)
        assert "4 items" in repr(tiny_db)


class TestSupports:
    def test_item_supports(self, tiny_db):
        supports = tiny_db.item_supports()
        assert supports.tolist() == [5, 5, 5, 4]

    def test_support_of_itemset(self, tiny_db):
        assert tiny_db.support([0, 1]) == 3
        assert tiny_db.support([0, 1, 2]) == 2
        assert tiny_db.support([0, 1, 2, 3]) == 1

    def test_support_of_empty_itemset_is_collection_size(self, tiny_db):
        assert tiny_db.support([]) == len(tiny_db)

    def test_supports_batch(self, tiny_db):
        assert tiny_db.supports([[0], [0, 1]]) == [5, 3]

    def test_vertical_matches_supports(self, tiny_db):
        tidsets = tiny_db.vertical()
        supports = tiny_db.item_supports()
        for item in range(tiny_db.n_items):
            assert len(tidsets[item]) == supports[item]
            for tid in tidsets[item]:
                assert item in tiny_db[int(tid)]

    def test_to_matrix_roundtrip(self, tiny_db):
        matrix = tiny_db.to_matrix()
        assert matrix.shape == (8, 4)
        assert matrix.sum(axis=0).tolist() == tiny_db.item_supports().tolist()

    def test_average_length_and_density(self, tiny_db):
        assert tiny_db.average_length() == pytest.approx(19 / 8)
        assert tiny_db.density() == pytest.approx(19 / 32)


class TestReorderingAndSplitting:
    def test_reordered_permutes(self, tiny_db):
        order = list(reversed(range(len(tiny_db))))
        flipped = tiny_db.reordered(order)
        assert flipped[0] == tiny_db[len(tiny_db) - 1]
        assert flipped.item_supports().tolist() == tiny_db.item_supports().tolist()

    def test_reordered_rejects_non_permutation(self, tiny_db):
        with pytest.raises(ValueError, match="permutation"):
            tiny_db.reordered([0] * len(tiny_db))

    def test_split_partitions_everything(self, tiny_db):
        parts = tiny_db.split(3)
        assert sum(len(p) for p in parts) == len(tiny_db)
        rejoined = [txn for part in parts for txn in part]
        assert rejoined == list(tiny_db)

    def test_split_bounds(self, tiny_db):
        with pytest.raises(ValueError):
            tiny_db.split(0)
        with pytest.raises(ValueError):
            tiny_db.split(len(tiny_db) + 1)

    def test_concatenated(self, tiny_db):
        both = tiny_db.concatenated(tiny_db)
        assert len(both) == 2 * len(tiny_db)
        assert (
            both.item_supports() == 2 * tiny_db.item_supports()
        ).all()


class TestVocabulary:
    def test_ids_assigned_first_seen(self):
        vocab = Vocabulary()
        assert vocab.add("milk") == 0
        assert vocab.add("bread") == 1
        assert vocab.add("milk") == 0

    def test_encode_decode_roundtrip(self):
        vocab = Vocabulary()
        txn = vocab.encode(["beer", "chips", "beer"])
        assert txn == (0, 1)
        assert set(vocab.decode(txn)) == {"beer", "chips"}

    def test_lookup_errors(self):
        vocab = Vocabulary(["a"])
        with pytest.raises(KeyError):
            vocab.id_of("missing")
        with pytest.raises(IndexError):
            vocab.name_of(5)

    def test_from_named_database(self):
        db = TransactionDatabase.from_named(
            [["milk", "bread"], ["milk"], ["bread", "eggs"]]
        )
        assert db.n_items == 3
        assert db.support([db.vocabulary.id_of("milk")]) == 2

    def test_container_protocol(self):
        vocab = Vocabulary(["x", "y"])
        assert "x" in vocab
        assert len(vocab) == 2
        assert list(vocab) == ["x", "y"]
