"""Tests for the seasonal skewed generator."""

import numpy as np
import pytest

from repro.data import SkewedConfig, SkewedGenerator, generate_skewed


class TestConfigValidation:
    def test_rejects_bad_skew(self):
        with pytest.raises(ValueError):
            SkewedConfig(skew=-0.1)
        with pytest.raises(ValueError):
            SkewedConfig(skew=1.1)

    def test_rejects_more_seasons_than_items(self):
        with pytest.raises(ValueError):
            SkewedConfig(n_items=2, n_seasons=3)


class TestGeneration:
    def test_shape_and_determinism(self):
        a = generate_skewed(n_transactions=200, n_items=40, seed=1)
        b = generate_skewed(n_transactions=200, n_items=40, seed=1)
        assert len(a) == 200
        assert a.n_items == 40
        assert a == b

    def test_halves_prefer_their_item_groups(self):
        db = generate_skewed(
            n_transactions=2000, n_items=100, skew=0.8, seed=2
        )
        first = db[: len(db) // 2]
        second = db[len(db) // 2:]
        low_items = range(0, 50)  # group 0: biased to the first era
        first_low = sum(first.item_supports()[i] for i in low_items)
        second_low = sum(second.item_supports()[i] for i in low_items)
        assert first_low > 2 * second_low

    def test_paper_statement_50_50(self):
        """50% of items favour the first half, 50% the second (Sec 6.1)."""
        db = generate_skewed(n_transactions=3000, n_items=60, skew=0.9, seed=3)
        half = len(db) // 2
        first = db[:half].item_supports().astype(float)
        second = db[half:].item_supports().astype(float)
        favours_first = (first > second).sum()
        assert 0.4 * db.n_items <= favours_first <= 0.6 * db.n_items

    def test_skew_one_separates_eras_completely(self):
        gen = SkewedGenerator(
            SkewedConfig(n_transactions=400, n_items=20, skew=1.0, seed=4)
        )
        db = gen.generate()
        half = len(db) // 2
        first_items = {i for txn in db[:half] for i in txn}
        second_items = {i for txn in db[half:] for i in txn}
        assert first_items.isdisjoint(second_items)

    def test_skew_zero_is_roughly_uniform(self):
        db = generate_skewed(
            n_transactions=4000, n_items=20, skew=0.0, seed=5
        )
        supports = db.item_supports().astype(float)
        assert supports.std() / supports.mean() < 0.2

    def test_item_group_assignment(self):
        gen = SkewedGenerator(SkewedConfig(n_items=10, n_seasons=2))
        groups = [gen.item_group(i) for i in range(10)]
        assert groups == [0] * 5 + [1] * 5

    def test_multiple_seasons(self):
        db = generate_skewed(
            n_transactions=900, n_items=30, n_seasons=3, skew=0.9, seed=6
        )
        era = len(db) // 3
        for season in range(3):
            chunk = db[season * era:(season + 1) * era]
            supports = chunk.item_supports()
            own = supports[season * 10:(season + 1) * 10].sum()
            assert own > supports.sum() / 3  # own group over-represented
