"""Tests for the telecom alarm-stream simulator (Nokia substitute)."""

import numpy as np
import pytest

from repro.data import AlarmConfig, AlarmStreamGenerator, generate_alarms


class TestConfigValidation:
    def test_rejects_bad_counts(self):
        with pytest.raises(ValueError):
            AlarmConfig(n_windows=-1)
        with pytest.raises(ValueError):
            AlarmConfig(n_alarm_types=0)
        with pytest.raises(ValueError):
            AlarmConfig(n_fault_classes=0)
        with pytest.raises(ValueError):
            AlarmConfig(drift_period=0)

    def test_rejects_negative_rates(self):
        with pytest.raises(ValueError):
            AlarmConfig(background_rate=-1.0)


class TestGeneration:
    def test_paper_scale_defaults(self):
        cfg = AlarmConfig()
        assert cfg.n_windows == 5000
        assert cfg.n_alarm_types == 200

    def test_shape_and_determinism(self):
        a = generate_alarms(n_windows=300, n_alarm_types=50, seed=1)
        b = generate_alarms(n_windows=300, n_alarm_types=50, seed=1)
        assert len(a) == 300
        assert a.n_items == 50
        assert a == b

    def test_windows_never_empty(self):
        db = generate_alarms(n_windows=500, n_alarm_types=40, seed=2)
        assert all(len(txn) >= 1 for txn in db)

    def test_cascades_produce_cooccurrence(self):
        gen = AlarmStreamGenerator(
            AlarmConfig(
                n_windows=3000,
                n_alarm_types=200,
                cascade_rate=0.3,
                background_rate=0.5,
                n_fault_classes=6,
                seed=3,
            )
        )
        db = gen.generate()
        cascade = gen.cascades[0]
        primary, secondary = cascade[0], cascade[1]
        joint = db.support([primary, secondary])
        # Secondary fires with p=0.8 given the primary's cascade; joint
        # support must be far above the independence baseline.
        independent = (
            db.support([primary]) * db.support([secondary]) / len(db)
        )
        assert joint > 2 * independent

    def test_frequencies_drift_over_the_stream(self):
        db = generate_alarms(
            n_windows=2000, n_alarm_types=80, drift_period=500, seed=4
        )
        half = len(db) // 2
        first = db[:half].item_supports().astype(float) + 1
        second = db[half:].item_supports().astype(float) + 1
        ratio = first / second
        # Non-stationarity: some alarms are strongly era-specific.
        assert ratio.max() > 2.0
        assert ratio.min() < 0.5

    def test_active_classes_rotate(self):
        gen = AlarmStreamGenerator(AlarmConfig(drift_period=10, seed=5))
        era0 = set(gen._active_classes(0).tolist())
        era1 = set(gen._active_classes(10).tolist())
        assert era0 != era1

    def test_zipf_background_is_heavy_tailed(self):
        db = generate_alarms(
            n_windows=3000,
            n_alarm_types=100,
            cascade_rate=0.0,
            background_rate=3.0,
            seed=6,
        )
        supports = np.sort(db.item_supports())[::-1]
        assert supports[0] > 5 * supports[30]
