"""Tests for the IBM Quest–style generator."""

import numpy as np
import pytest

from repro.data import QuestConfig, QuestGenerator, generate_quest


class TestConfigValidation:
    def test_rejects_bad_counts(self):
        with pytest.raises(ValueError):
            QuestConfig(n_transactions=-1)
        with pytest.raises(ValueError):
            QuestConfig(n_items=0)
        with pytest.raises(ValueError):
            QuestConfig(n_patterns=0)

    def test_rejects_bad_correlation(self):
        with pytest.raises(ValueError):
            QuestConfig(correlation=1.5)

    def test_rejects_non_positive_lengths(self):
        with pytest.raises(ValueError):
            QuestConfig(avg_transaction_len=0)
        with pytest.raises(ValueError):
            QuestConfig(avg_pattern_len=-1)

    def test_constructor_rejects_config_plus_overrides(self):
        with pytest.raises(TypeError):
            QuestGenerator(QuestConfig(), seed=3)


class TestGeneration:
    def test_shape(self):
        db = generate_quest(n_transactions=200, n_items=50, seed=0)
        assert len(db) == 200
        assert db.n_items == 50

    def test_deterministic_given_seed(self):
        a = generate_quest(n_transactions=100, n_items=40, seed=5)
        b = generate_quest(n_transactions=100, n_items=40, seed=5)
        assert a == b

    def test_different_seeds_differ(self):
        a = generate_quest(n_transactions=100, n_items=40, seed=5)
        b = generate_quest(n_transactions=100, n_items=40, seed=6)
        assert a != b

    def test_no_empty_transactions(self):
        db = generate_quest(n_transactions=300, n_items=30, seed=1)
        assert all(len(txn) >= 1 for txn in db)

    def test_average_length_near_target(self):
        db = generate_quest(
            n_transactions=2000, n_items=500, avg_transaction_len=10, seed=2
        )
        assert 7 <= db.average_length() <= 13

    def test_streaming_continues(self):
        gen = QuestGenerator(QuestConfig(n_transactions=50, n_items=30, seed=3))
        first = gen.generate()
        second = gen.generate()
        assert first != second  # the stream advances

    def test_patterns_exposed(self):
        gen = QuestGenerator(QuestConfig(n_items=30, n_patterns=10, seed=4))
        patterns = gen.patterns
        assert len(patterns) == 10
        assert all(1 <= len(p) <= 30 for p in patterns)
        assert all(list(p) == sorted(set(p)) for p in patterns)

    def test_support_distribution_is_heavy_tailed(self):
        # The regime the paper's experiments rely on: a dense band of
        # items near/below the average support with a long upper tail.
        db = generate_quest(
            n_transactions=3000,
            n_items=300,
            avg_transaction_len=10,
            n_patterns=600,
            seed=7,
        )
        supports = db.item_supports()
        assert supports.max() > 3 * np.median(supports[supports > 0])

    def test_zero_transactions(self):
        db = generate_quest(n_transactions=0, n_items=10, seed=0)
        assert len(db) == 0
        assert db.n_items == 10


class TestSeasonalDrift:
    def test_config_validation(self):
        with pytest.raises(ValueError):
            QuestConfig(n_seasons=0)
        with pytest.raises(ValueError):
            QuestConfig(seasonal_skew=1.5)

    def test_no_drift_is_default(self):
        cfg = QuestConfig()
        assert cfg.n_seasons == 1
        assert cfg.seasonal_skew == 0.0

    def test_drift_shifts_item_frequencies_between_eras(self):
        db = QuestGenerator(
            QuestConfig(
                n_transactions=4000,
                n_items=200,
                n_patterns=400,
                n_seasons=2,
                seasonal_skew=0.9,
                seed=8,
            )
        ).generate()
        half = len(db) // 2
        first = db[:half].item_supports().astype(float) + 1
        second = db[half:].item_supports().astype(float) + 1
        ratio = first / second
        # Era-coherent drift: some items are strongly era-specific.
        assert ratio.max() > 2.0
        assert ratio.min() < 0.5

    def test_zero_skew_with_seasons_is_stationary(self):
        """seasonal_skew=0 must not change the stream's statistics."""
        drifting = QuestGenerator(
            QuestConfig(
                n_transactions=3000,
                n_items=150,
                n_patterns=300,
                n_seasons=4,
                seasonal_skew=0.0,
                seed=9,
            )
        ).generate()
        half = len(drifting) // 2
        first = drifting[:half].item_supports().astype(float) + 1
        second = drifting[half:].item_supports().astype(float) + 1
        # No systematic era preference: log-ratios centred near zero.
        assert abs(np.log(first / second).mean()) < 0.25

    def test_deterministic_with_drift(self):
        cfg = QuestConfig(
            n_transactions=500, n_items=60, n_seasons=3,
            seasonal_skew=0.5, seed=4,
        )
        assert QuestGenerator(cfg).generate() == QuestGenerator(cfg).generate()
