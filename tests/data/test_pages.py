"""Unit tests for the paged database view."""

import numpy as np
import pytest

from repro.data import PagedDatabase, TransactionDatabase


@pytest.fixture
def paged(tiny_db) -> PagedDatabase:
    return PagedDatabase(tiny_db, page_size=3)


class TestPaging:
    def test_page_count_rounds_up(self, paged):
        assert paged.n_pages == 3  # 8 transactions / 3 per page

    def test_page_bounds(self, paged):
        assert paged.page_bounds(0) == (0, 3)
        assert paged.page_bounds(2) == (6, 8)

    def test_page_bounds_out_of_range(self, paged):
        with pytest.raises(IndexError):
            paged.page_bounds(3)

    def test_page_contents(self, paged, tiny_db):
        assert list(paged.page(0)) == list(tiny_db)[:3]
        assert list(paged.page(2)) == list(tiny_db)[6:]

    def test_iteration_covers_everything(self, paged, tiny_db):
        seen = [txn for page in paged for txn in page]
        assert seen == list(tiny_db)

    def test_page_lengths(self, paged):
        assert paged.page_lengths().tolist() == [3, 3, 2]

    def test_invalid_page_size(self, tiny_db):
        with pytest.raises(ValueError):
            PagedDatabase(tiny_db, page_size=0)

    def test_empty_database_has_one_empty_page_range(self):
        paged = PagedDatabase(TransactionDatabase([], n_items=2), page_size=4)
        assert paged.n_pages == 1
        assert paged.page_lengths().tolist() == [0]

    def test_default_page_size_is_paper_nominal(self, tiny_db):
        assert PagedDatabase(tiny_db).page_size == 100


class TestPageSupports:
    def test_matrix_shape_and_totals(self, paged, tiny_db):
        matrix = paged.page_supports()
        assert matrix.shape == (3, 4)
        assert (matrix.sum(axis=0) == tiny_db.item_supports()).all()

    def test_rows_match_page_databases(self, paged):
        matrix = paged.page_supports()
        for p in range(paged.n_pages):
            assert (
                matrix[p] == paged.page(p).item_supports()
            ).all()

    def test_matrix_cached(self, paged):
        assert paged.page_supports() is paged.page_supports()

    def test_item_supports_shortcut(self, paged, tiny_db):
        assert (
            paged.item_supports() == tiny_db.item_supports()
        ).all()


class TestSegmentRealization:
    def test_segment_supports_sums_rows(self, paged):
        matrix = paged.page_supports()
        segs = paged.segment_supports([[0, 2], [1]])
        assert (segs[0] == matrix[0] + matrix[2]).all()
        assert (segs[1] == matrix[1]).all()

    def test_segment_supports_requires_partition(self, paged):
        with pytest.raises(ValueError, match="partition"):
            paged.segment_supports([[0], [1]])  # page 2 missing
        with pytest.raises(ValueError, match="partition"):
            paged.segment_supports([[0, 1], [1, 2]])  # page 1 twice

    def test_segment_databases_match_supports(self, paged):
        groups = [[0, 2], [1]]
        segs = paged.segment_databases(groups)
        matrix = paged.segment_supports(groups)
        for seg_db, row in zip(segs, matrix):
            assert (seg_db.item_supports() == row).all()

    def test_segment_databases_preserve_transactions(self, paged, tiny_db):
        segs = paged.segment_databases([[0], [1], [2]])
        rejoined = [txn for seg in segs for txn in seg]
        assert rejoined == list(tiny_db)
