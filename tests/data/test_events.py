"""Tests for event sequences and sliding windows."""

import pytest

from repro.data import EventSequence, TransactionDatabase, WindowView


@pytest.fixture
def sequence():
    # times:  0    1    2    3    5
    # types:  a    b    a    c    b      (a=0, b=1, c=2)
    return EventSequence(
        [(0, 0), (1, 1), (2, 0), (3, 2), (5, 1)], n_types=3
    )


class TestEventSequence:
    def test_events_sorted_by_time(self):
        seq = EventSequence([(5, 1), (0, 0)])
        assert list(seq) == [(0, 0), (5, 1)]

    def test_validation(self):
        with pytest.raises(ValueError, match="non-negative"):
            EventSequence([(-1, 0)])
        with pytest.raises(ValueError, match="non-negative"):
            EventSequence([(0, -2)])
        with pytest.raises(ValueError, match="n_types"):
            EventSequence([(0, 5)], n_types=3)

    def test_span_and_len(self, sequence):
        assert len(sequence) == 5
        assert sequence.span == 6
        assert EventSequence([]).span == 0

    def test_events_between(self, sequence):
        assert sequence.events_between(1, 4) == [(1, 1), (2, 0), (3, 2)]
        assert sequence.events_between(4, 5) == []

    def test_type_counts(self, sequence):
        assert sequence.type_counts().tolist() == [2, 2, 1]

    def test_from_database(self):
        db = TransactionDatabase([(0, 1), (2,)], n_items=3)
        seq = EventSequence.from_database(db, spacing=10)
        assert list(seq) == [(0, 0), (0, 1), (10, 2)]
        assert seq.n_types == 3


class TestWindowView:
    def test_window_count_winepi(self, sequence):
        # WINEPI: span + width - 1 windows.
        view = WindowView(sequence, width=3)
        assert view.n_windows == sequence.span + 3 - 1

    def test_window_count_truncated(self, sequence):
        view = WindowView(sequence, width=3, truncated=True)
        assert view.n_windows == sequence.span - 3 + 1

    def test_invalid_width(self, sequence):
        with pytest.raises(ValueError):
            WindowView(sequence, width=0)

    def test_every_event_in_width_windows(self, sequence):
        """WINEPI's defining property: each event is seen by exactly
        `width` sliding windows."""
        width = 3
        view = WindowView(sequence, width=width)
        appearances = 0
        for events in view.iter_windows():
            appearances += sum(1 for t, e in events if (t, e) == (2, 0))
        assert appearances == width

    def test_window_events_ordered(self, sequence):
        view = WindowView(sequence, width=4, truncated=True)
        events = view.window_events(0)
        assert events == [(0, 0), (1, 1), (2, 0), (3, 2)]

    def test_to_database_shape(self, sequence):
        view = WindowView(sequence, width=2, truncated=True)
        db = view.to_database()
        assert len(db) == view.n_windows
        assert db.n_items == 3

    def test_to_database_contents(self, sequence):
        view = WindowView(sequence, width=2, truncated=True)
        db = view.to_database()
        # window [0,2): events a,b -> {0,1}
        assert db[0] == (0, 1)
        # window [4,6): event b -> {1}
        assert db[4] == (1,)

    def test_empty_windows_allowed(self, sequence):
        view = WindowView(sequence, width=1, truncated=True)
        db = view.to_database()
        assert db[4] == ()  # time 4 has no events
