"""Lint engine: file collection, checker dispatch, pragmas, baselines.

The engine is deliberately tiny: parse each ``.py`` file once, hand the
tree to every applicable checker, then post-filter the findings through
two escape hatches:

* **pragmas** — a ``# lint: skip`` comment on the flagged line
  suppresses every rule there; ``# lint: skip=rule-a,rule-b`` only the
  named ones. Pragmas are for *justified* exceptions (the comment
  should say why), not for making the gate pass.
* **baseline** — a JSON file of finding fingerprints with counts
  (``repro lint --write-baseline``). Grandfathered findings are
  reported as suppressed, not failures, so the gate can be adopted on a
  tree with known debt and still reject *new* debt. Fingerprints ignore
  line numbers, so unrelated edits do not un-grandfather anything.
"""

from __future__ import annotations

import ast
import json
import re
from dataclasses import dataclass, field
from pathlib import Path

from .base import Checker, FileContext
from .findings import Finding, sort_findings

__all__ = [
    "LintResult",
    "collect_files",
    "default_checkers",
    "lint_source",
    "lint_paths",
    "load_baseline",
    "write_baseline",
    "apply_baseline",
    "select_checkers",
]

_PRAGMA = re.compile(r"#\s*lint:\s*skip(?:=(?P<rules>[\w\-,]+))?")

BASELINE_VERSION = 1


def default_checkers() -> list[Checker]:
    """Fresh instances of every shipped checker."""
    from .checkers import build_default_checkers

    return build_default_checkers()


def select_checkers(
    checkers: list[Checker], select: str | None
) -> list[Checker]:
    """Restrict *checkers* to comma-separated checker names or rule ids."""
    if not select:
        return checkers
    wanted = {token.strip() for token in select.split(",") if token.strip()}
    known = {checker.name for checker in checkers}
    known.update(
        rule_id for checker in checkers for rule_id in checker.rule_ids()
    )
    unknown = wanted - known
    if unknown:
        raise ValueError(
            f"unknown checker/rule selection: {', '.join(sorted(unknown))}"
        )
    chosen = [
        checker
        for checker in checkers
        if checker.name in wanted
        or any(rule_id in wanted for rule_id in checker.rule_ids())
    ]
    return chosen


@dataclass
class LintResult:
    """Findings of one run, split by what the gate should do with them."""

    findings: list[Finding] = field(default_factory=list)
    suppressed: list[Finding] = field(default_factory=list)
    errors: list[str] = field(default_factory=list)

    @property
    def failed(self) -> bool:
        return bool(self.findings or self.errors)

    def counts_by_rule(self) -> dict[str, int]:
        counts: dict[str, int] = {}
        for finding in self.findings:
            counts[finding.rule] = counts.get(finding.rule, 0) + 1
        return dict(sorted(counts.items()))

    def to_dict(self) -> dict[str, object]:
        return {
            "version": BASELINE_VERSION,
            "findings": [f.to_dict() for f in self.findings],
            "suppressed": [f.to_dict() for f in self.suppressed],
            "errors": list(self.errors),
            "counts": self.counts_by_rule(),
        }


def _pragma_suppressed(finding: Finding, lines: list[str]) -> bool:
    if not 1 <= finding.line <= len(lines):
        return False
    match = _PRAGMA.search(lines[finding.line - 1])
    if match is None:
        return False
    rules = match.group("rules")
    if rules is None:
        return True
    return finding.rule in {token.strip() for token in rules.split(",")}


def lint_source(
    source: str,
    path: str = "<string>",
    checkers: list[Checker] | None = None,
) -> LintResult:
    """Lint one module given as text (the unit-test entry point)."""
    result = LintResult()
    if checkers is None:
        checkers = default_checkers()
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        result.errors.append(f"{path}: syntax error: {exc.msg} (line {exc.lineno})")
        return result
    context = FileContext(path=path, source=source, tree=tree)
    collected: list[Finding] = []
    for checker in checkers:
        if checker.applies_to(context):
            collected.extend(checker.check(context))
    for finding in sort_findings(collected):
        if _pragma_suppressed(finding, context.lines):
            result.suppressed.append(finding)
        else:
            result.findings.append(finding)
    return result


def collect_files(paths: list[str | Path]) -> list[Path]:
    """Expand files/directories into a sorted list of ``.py`` files."""
    files: set[Path] = set()
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            files.update(
                candidate
                for candidate in path.rglob("*.py")
                if not any(
                    part.startswith(".") for part in candidate.parts
                )
            )
        elif path.suffix == ".py":
            files.add(path)
        elif not path.exists():
            raise FileNotFoundError(f"no such file or directory: {path}")
    return sorted(files)


def lint_paths(
    paths: list[str | Path],
    checkers: list[Checker] | None = None,
) -> LintResult:
    """Lint every ``.py`` file under *paths*; aggregate one result."""
    if checkers is None:
        checkers = default_checkers()
    result = LintResult()
    try:
        files = collect_files(paths)
    except FileNotFoundError as exc:
        result.errors.append(str(exc))
        return result
    for file in files:
        try:
            source = file.read_text(encoding="utf-8")
        except (OSError, UnicodeDecodeError) as exc:
            result.errors.append(f"{file}: unreadable: {exc}")
            continue
        per_file = lint_source(
            source, path=file.as_posix(), checkers=checkers
        )
        result.findings.extend(per_file.findings)
        result.suppressed.extend(per_file.suppressed)
        result.errors.extend(per_file.errors)
    result.findings = sort_findings(result.findings)
    result.suppressed = sort_findings(result.suppressed)
    return result


# -- baselines -------------------------------------------------------------


def load_baseline(path: str | Path) -> dict[str, int]:
    """Fingerprint → allowed count, from a ``--write-baseline`` file."""
    payload = json.loads(Path(path).read_text(encoding="utf-8"))
    if payload.get("version") != BASELINE_VERSION:
        raise ValueError(
            f"baseline {path} has unsupported version "
            f"{payload.get('version')!r}"
        )
    fingerprints = payload.get("fingerprints", {})
    if not isinstance(fingerprints, dict):
        raise ValueError(f"baseline {path} is malformed")
    return {str(fp): int(count) for fp, count in fingerprints.items()}


def write_baseline(path: str | Path, findings: list[Finding]) -> None:
    """Persist *findings* as the grandfathered set."""
    fingerprints: dict[str, int] = {}
    for finding in findings:
        fingerprints[finding.fingerprint] = (
            fingerprints.get(finding.fingerprint, 0) + 1
        )
    payload = {
        "version": BASELINE_VERSION,
        "fingerprints": dict(sorted(fingerprints.items())),
    }
    Path(path).write_text(
        json.dumps(payload, indent=2) + "\n", encoding="utf-8"
    )


def apply_baseline(
    result: LintResult, baseline: dict[str, int]
) -> LintResult:
    """Move grandfathered findings from ``findings`` to ``suppressed``."""
    remaining = dict(baseline)
    kept: list[Finding] = []
    for finding in result.findings:
        allowance = remaining.get(finding.fingerprint, 0)
        if allowance > 0:
            remaining[finding.fingerprint] = allowance - 1
            result.suppressed.append(finding)
        else:
            kept.append(finding)
    result.findings = kept
    result.suppressed = sort_findings(result.suppressed)
    return result
