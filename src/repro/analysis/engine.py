"""Lint engine: file collection, two-pass dispatch, pragmas, baselines.

The engine runs in two passes. Pass 1 parses every collected file and
builds one :class:`~repro.analysis.base.ProjectContext` — the import
graph, symbol table, coroutine classification, and acquires-resource
annotations. Pass 2 hands each file plus that shared index to every
applicable checker via :meth:`Checker.check_project`; per-file checkers
never notice (their default ``check_project`` delegates to ``check``).

Findings then post-filter through two escape hatches:

* **pragmas** — a ``# lint: skip`` comment anywhere on the flagged
  statement's ``line..end_line`` range suppresses every rule there;
  ``# lint: skip=rule-a,rule-b`` only the named ones. Pragmas are for
  *justified* exceptions (the comment should say why), not for making
  the gate pass.
* **baseline** — a JSON file of finding fingerprints with counts
  (``repro lint --write-baseline``). Grandfathered findings are
  reported as suppressed, not failures, so the gate can be adopted on a
  tree with known debt and still reject *new* debt. Fingerprints ignore
  line numbers, so unrelated edits do not un-grandfather anything.
  ``--prune-baseline`` re-lints and drops fingerprints that no longer
  fire, so the grandfathered set shrinks monotonically.
"""

from __future__ import annotations

import ast
import json
import re
from dataclasses import dataclass, field
from pathlib import Path

from .base import Checker, FileContext, ProjectContext
from .findings import Finding, sort_findings

__all__ = [
    "LintResult",
    "collect_files",
    "default_checkers",
    "lint_source",
    "lint_paths",
    "load_baseline",
    "write_baseline",
    "apply_baseline",
    "prune_baseline",
    "save_fingerprints",
    "select_checkers",
]

_PRAGMA = re.compile(r"#\s*lint:\s*skip(?:=(?P<rules>[\w\-,]+))?")

BASELINE_VERSION = 1


def default_checkers(
    tiers: dict[str, tuple[str, ...]] | None = None,
) -> list[Checker]:
    """Fresh instances of every shipped checker.

    *tiers* optionally narrows path-scoped checkers: checker name →
    module-suffix tuple (see ``build_default_checkers``).
    """
    from .checkers import build_default_checkers

    return build_default_checkers(tiers)


def select_checkers(
    checkers: list[Checker], select: str | None
) -> list[Checker]:
    """Restrict *checkers* to comma-separated checker names or rule ids."""
    if not select:
        return checkers
    wanted = {token.strip() for token in select.split(",") if token.strip()}
    known = {checker.name for checker in checkers}
    known.update(
        rule_id for checker in checkers for rule_id in checker.rule_ids()
    )
    unknown = wanted - known
    if unknown:
        raise ValueError(
            f"unknown checker/rule selection: {', '.join(sorted(unknown))}"
        )
    chosen = [
        checker
        for checker in checkers
        if checker.name in wanted
        or any(rule_id in wanted for rule_id in checker.rule_ids())
    ]
    return chosen


@dataclass
class LintResult:
    """Findings of one run, split by what the gate should do with them."""

    findings: list[Finding] = field(default_factory=list)
    suppressed: list[Finding] = field(default_factory=list)
    errors: list[str] = field(default_factory=list)

    @property
    def failed(self) -> bool:
        return bool(self.findings or self.errors)

    def counts_by_rule(self) -> dict[str, int]:
        counts: dict[str, int] = {}
        for finding in self.findings:
            counts[finding.rule] = counts.get(finding.rule, 0) + 1
        return dict(sorted(counts.items()))

    def to_dict(self) -> dict[str, object]:
        return {
            "version": BASELINE_VERSION,
            "findings": [f.to_dict() for f in self.findings],
            "suppressed": [f.to_dict() for f in self.suppressed],
            "errors": list(self.errors),
            "counts": self.counts_by_rule(),
        }


def _pragma_suppressed(finding: Finding, lines: list[str]) -> bool:
    """A pragma anywhere on the flagged statement's line range counts.

    Multi-line calls and decorated defs span several physical lines;
    checkers record the span as ``line..end_line`` so the pragma can sit
    wherever reads best (typically the closing line).
    """
    last = max(finding.line, finding.end_line)
    for lineno in range(finding.line, last + 1):
        if not 1 <= lineno <= len(lines):
            continue
        match = _PRAGMA.search(lines[lineno - 1])
        if match is None:
            continue
        rules = match.group("rules")
        if rules is None:
            return True
        if finding.rule in {token.strip() for token in rules.split(",")}:
            return True
    return False


def _lint_context(
    context: FileContext,
    checkers: list[Checker],
    project: ProjectContext,
    result: LintResult,
) -> None:
    """Pass 2 for one file: dispatch checkers, apply pragmas."""
    collected: list[Finding] = []
    for checker in checkers:
        if checker.applies_to(context):
            collected.extend(checker.check_project(context, project))
    for finding in sort_findings(collected):
        if _pragma_suppressed(finding, context.lines):
            result.suppressed.append(finding)
        else:
            result.findings.append(finding)


def lint_source(
    source: str,
    path: str = "<string>",
    checkers: list[Checker] | None = None,
) -> LintResult:
    """Lint one module given as text (the unit-test entry point).

    The project index is built from this one file, so cross-file
    resolution degrades gracefully: locally-defined coroutines and
    acquires still resolve, external names stay unresolved.
    """
    result = LintResult()
    if checkers is None:
        checkers = default_checkers()
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        result.errors.append(f"{path}: syntax error: {exc.msg} (line {exc.lineno})")
        return result
    context = FileContext(path=path, source=source, tree=tree)
    _lint_context(context, checkers, ProjectContext.single(context), result)
    return result


def collect_files(paths: list[str | Path]) -> list[Path]:
    """Expand files/directories into a sorted list of ``.py`` files."""
    files: set[Path] = set()
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            files.update(
                candidate
                for candidate in path.rglob("*.py")
                if not any(
                    part.startswith(".") for part in candidate.parts
                )
            )
        elif path.suffix == ".py":
            files.add(path)
        elif not path.exists():
            raise FileNotFoundError(f"no such file or directory: {path}")
    return sorted(files)


def lint_paths(
    paths: list[str | Path],
    checkers: list[Checker] | None = None,
) -> LintResult:
    """Lint every ``.py`` file under *paths*; aggregate one result.

    Pass 1 parses everything and builds the shared project index; files
    that fail to parse are reported as errors and excluded from the
    index (their absence degrades resolution, never crashes it).
    """
    if checkers is None:
        checkers = default_checkers()
    result = LintResult()
    try:
        files = collect_files(paths)
    except FileNotFoundError as exc:
        result.errors.append(str(exc))
        return result

    contexts: dict[str, FileContext] = {}
    for file in files:
        posix = file.as_posix()
        try:
            source = file.read_text(encoding="utf-8")
        except (OSError, UnicodeDecodeError) as exc:
            result.errors.append(f"{file}: unreadable: {exc}")
            continue
        try:
            tree = ast.parse(source, filename=posix)
        except SyntaxError as exc:
            result.errors.append(
                f"{posix}: syntax error: {exc.msg} (line {exc.lineno})"
            )
            continue
        contexts[posix] = FileContext(path=posix, source=source, tree=tree)

    project = ProjectContext(contexts)
    for posix in sorted(contexts):
        _lint_context(contexts[posix], checkers, project, result)
    result.findings = sort_findings(result.findings)
    result.suppressed = sort_findings(result.suppressed)
    return result


# -- baselines -------------------------------------------------------------


def load_baseline(path: str | Path) -> dict[str, int]:
    """Fingerprint → allowed count, from a ``--write-baseline`` file."""
    payload = json.loads(Path(path).read_text(encoding="utf-8"))
    if payload.get("version") != BASELINE_VERSION:
        raise ValueError(
            f"baseline {path} has unsupported version "
            f"{payload.get('version')!r}"
        )
    fingerprints = payload.get("fingerprints", {})
    if not isinstance(fingerprints, dict):
        raise ValueError(f"baseline {path} is malformed")
    return {str(fp): int(count) for fp, count in fingerprints.items()}


def save_fingerprints(
    path: str | Path, fingerprints: dict[str, int]
) -> None:
    """Persist a fingerprint→count map in the baseline file format."""
    payload = {
        "version": BASELINE_VERSION,
        "fingerprints": dict(sorted(fingerprints.items())),
    }
    Path(path).write_text(
        json.dumps(payload, indent=2) + "\n", encoding="utf-8"
    )


def write_baseline(path: str | Path, findings: list[Finding]) -> None:
    """Persist *findings* as the grandfathered set."""
    fingerprints: dict[str, int] = {}
    for finding in findings:
        fingerprints[finding.fingerprint] = (
            fingerprints.get(finding.fingerprint, 0) + 1
        )
    save_fingerprints(path, fingerprints)


def apply_baseline(
    result: LintResult, baseline: dict[str, int]
) -> LintResult:
    """Move grandfathered findings from ``findings`` to ``suppressed``."""
    remaining = dict(baseline)
    kept: list[Finding] = []
    for finding in result.findings:
        allowance = remaining.get(finding.fingerprint, 0)
        if allowance > 0:
            remaining[finding.fingerprint] = allowance - 1
            result.suppressed.append(finding)
        else:
            kept.append(finding)
    result.findings = kept
    result.suppressed = sort_findings(result.suppressed)
    return result


def prune_baseline(
    baseline: dict[str, int], findings: list[Finding]
) -> tuple[dict[str, int], int]:
    """Drop grandfathered fingerprints that no longer fire.

    *findings* must be the raw (pre-baseline) findings of a fresh run.
    Each surviving fingerprint's allowance is capped at the number of
    times it actually still fires, so partially-fixed debt shrinks too.
    Returns ``(pruned_map, stale_count)`` where *stale_count* is how
    many grandfathered occurrences were dropped.
    """
    live: dict[str, int] = {}
    for finding in findings:
        live[finding.fingerprint] = live.get(finding.fingerprint, 0) + 1
    pruned: dict[str, int] = {}
    stale = 0
    for fingerprint, allowance in baseline.items():
        kept = min(allowance, live.get(fingerprint, 0))
        if kept:
            pruned[fingerprint] = kept
        stale += allowance - kept
    return pruned, stale
