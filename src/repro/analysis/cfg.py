"""A small intra-function control-flow graph for lifecycle checking.

The resource-lifecycle checker needs one question answered soundly:
*from this acquisition, can control reach a function exit without
passing a release — including along exception paths?* A full dataflow
framework would be overkill; this module builds a statement-level CFG
with explicit exception edges and answers reachability queries on it.

Model
-----
* One node per simple statement and per compound-statement *header*
  (the ``if``/``while`` test, the ``for`` iter, the ``with`` items).
  Headers carry only their header expressions, so a release buried in
  a branch does not silently bless the branch that skips it — except
  through the explicit conditional-release rule below.
* Every node has an implicit *exception edge* to the innermost
  enclosing handler entry (the first except clause, or the ``finally``
  body) and, with none enclosing, to :data:`EXIT`. This is what makes
  "one statement between acquire and ``try``" a detectable leak: that
  statement can raise, and nothing downstream releases.
* ``return``/``raise`` edge to the innermost ``finally`` when one
  encloses them, else to :data:`EXIT`; ``break``/``continue`` edge to
  the loop exit/header.
* Conditional-release rule: a header whose *subtree* contains a
  release-shaped call for the tracked variable is treated as releasing
  (``if owned: pool.close()`` patterns). This errs toward silence —
  a lint must not cry wolf on guarded cleanup — while the exception
  edges still catch cleanup that can be skipped entirely.

Nested ``def``/``class``/``lambda`` bodies are opaque single nodes:
their execution is deferred, so for lifecycle purposes only the names
they capture matter (the checker treats closure capture as an escape).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field

__all__ = ["EXIT", "CFGNode", "FunctionCFG", "build_cfg"]

#: The synthetic exit node id (normal return, fall-through, and
#: unhandled exception all converge here).
EXIT = -1


@dataclass
class CFGNode:
    """One CFG node: a statement (or header) plus its out-edges."""

    index: int
    #: The statement this node belongs to.
    stmt: ast.stmt
    #: The AST fragments evaluated *at* this node (header expressions
    #: for compound statements, the whole statement otherwise).
    parts: tuple[ast.AST, ...]
    #: Normal-flow successor ids (EXIT included).
    succ: set[int] = field(default_factory=set)
    #: Where an exception raised *at this node* transfers: the
    #: innermost enclosing handler/finally entry, else EXIT. Kept apart
    #: from :attr:`succ` so lifecycle queries can exempt the acquiring
    #: statement's own raise path (nothing was acquired if the
    #: acquiring call itself raised). ``None`` for nodes that evaluate
    #: nothing (finally-entry placeholders, bare ``except:`` entries).
    exc: int | None = None
    #: True for compound-statement headers (conditional-release rule).
    is_header: bool = False


class FunctionCFG:
    """The CFG of one function body."""

    def __init__(self) -> None:
        self.nodes: dict[int, CFGNode] = {}

    def node_of(self, stmt: ast.stmt) -> int | None:
        """The node id owning *stmt*, if the statement got one."""
        for node in self.nodes.values():
            if node.stmt is stmt:
                return node.index
        return None

    def reaches_exit(
        self,
        start: int,
        stops: set[int],
    ) -> bool:
        """Can :data:`EXIT` be reached from *start* avoiding *stops*?

        *stops* are node ids whose traversal terminates a path (the
        release/escape nodes of the lifecycle checker). Exception edges
        count for every node except *start* itself: a raise inside the
        acquiring statement means the resource never existed, while a
        raise anywhere downstream leaks it.
        """
        seen: set[int] = set()
        stack = [start]
        while stack:
            index = stack.pop()
            if index == EXIT:
                return True
            if index in seen or (index in stops and index != start):
                continue
            seen.add(index)
            node = self.nodes.get(index)
            if node is None:
                continue
            stack.extend(node.succ)
            if index != start and node.exc is not None:
                stack.append(node.exc)
        return False


class _Builder:
    """Builds the graph; keeps handler/finally/loop context on stacks."""

    def __init__(self) -> None:
        self.cfg = FunctionCFG()
        self._count = 0
        #: Innermost-first exception targets (handler/finally entries).
        self._exc: list[int] = []
        #: Innermost-first ``finally`` entries (return/raise funnels).
        self._finals: list[int] = []
        #: Innermost-first (loop_header, loop_exit_placeholder) pairs.
        self._loops: list[tuple[int, set[int]]] = []

    # -- plumbing --------------------------------------------------------

    def _new(
        self, stmt: ast.stmt, parts: tuple[ast.AST, ...], header: bool
    ) -> int:
        index = self._count
        self._count += 1
        node = CFGNode(index=index, stmt=stmt, parts=parts, is_header=header)
        if parts:
            node.exc = self._exc[-1] if self._exc else EXIT
        self.cfg.nodes[index] = node
        return index

    def _link(self, sources: set[int], target: int) -> None:
        for source in sources:
            if source != EXIT:
                self.cfg.nodes[source].succ.add(target)

    def _abrupt_target(self) -> int:
        """Where ``return``/``raise`` transfer first."""
        return self._finals[-1] if self._finals else EXIT

    # -- statement dispatch ----------------------------------------------

    def block(self, stmts: list[ast.stmt], entry: set[int]) -> set[int]:
        """Wire *stmts* after *entry*; returns the block's exit frontier."""
        frontier = entry
        for stmt in stmts:
            frontier = self.statement(stmt, frontier)
            if not frontier:
                break  # unreachable tail (after return/raise/…)
        return frontier

    def statement(self, stmt: ast.stmt, entry: set[int]) -> set[int]:
        if isinstance(stmt, ast.If):
            return self._if(stmt, entry)
        if isinstance(stmt, (ast.For, ast.AsyncFor, ast.While)):
            return self._loop(stmt, entry)
        if isinstance(stmt, ast.Try):
            return self._try(stmt, entry)
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            return self._with(stmt, entry)
        if isinstance(stmt, (ast.Return, ast.Raise)):
            parts: tuple[ast.AST, ...] = (stmt,)
            index = self._new(stmt, parts, header=False)
            self._link(entry, index)
            self.cfg.nodes[index].succ.add(self._abrupt_target())
            return set()
        if isinstance(stmt, (ast.Break, ast.Continue)):
            index = self._new(stmt, (stmt,), header=False)
            self._link(entry, index)
            if self._loops:
                header, exits = self._loops[-1]
                if isinstance(stmt, ast.Break):
                    exits.add(index)
                else:
                    self.cfg.nodes[index].succ.add(header)
            return set()
        # Simple statements — and opaque nested defs/classes.
        index = self._new(stmt, (stmt,), header=False)
        self._link(entry, index)
        return {index}

    # -- compound statements ---------------------------------------------

    def _if(self, stmt: ast.If, entry: set[int]) -> set[int]:
        header = self._new(stmt, (stmt.test,), header=True)
        self._link(entry, header)
        then_exit = self.block(stmt.body, {header})
        else_exit = self.block(stmt.orelse, {header}) if stmt.orelse else {header}
        return then_exit | else_exit

    def _loop(
        self, stmt: ast.For | ast.AsyncFor | ast.While, entry: set[int]
    ) -> set[int]:
        if isinstance(stmt, ast.While):
            parts: tuple[ast.AST, ...] = (stmt.test,)
        else:
            parts = (stmt.iter, stmt.target)
        header = self._new(stmt, parts, header=True)
        self._link(entry, header)
        break_exits: set[int] = set()
        self._loops.append((header, break_exits))
        body_exit = self.block(stmt.body, {header})
        self._loops.pop()
        self._link(body_exit, header)
        after: set[int] = {header} | break_exits
        if stmt.orelse:
            after = self.block(stmt.orelse, after)
        return after

    def _with(self, stmt: ast.With | ast.AsyncWith, entry: set[int]) -> set[int]:
        parts = tuple(item.context_expr for item in stmt.items) + tuple(
            item.optional_vars
            for item in stmt.items
            if item.optional_vars is not None
        )
        header = self._new(stmt, parts, header=True)
        self._link(entry, header)
        return self.block(stmt.body, {header})

    def _try(self, stmt: ast.Try, entry: set[int]) -> set[int]:
        # Entries are created up front so body statements can point
        # their exception edges at them; blocks are wired afterwards.
        has_final = bool(stmt.finalbody)
        final_entry: int | None = None
        if has_final:
            # Placeholder header representing "enter finally".
            final_entry = self._new(stmt, (), header=True)
        handler_entries: list[int] = []
        for handler in stmt.handlers:
            h_parts = (handler.type,) if handler.type else ()
            entry_node = self._new(stmt, h_parts, header=True)
            handler_entries.append(entry_node)

        exc_target: int
        if handler_entries:
            exc_target = handler_entries[0]
        elif final_entry is not None:
            exc_target = final_entry
        else:
            exc_target = self._exc[-1] if self._exc else EXIT

        self._exc.append(exc_target)
        if final_entry is not None:
            self._finals.append(final_entry)
        body_exit = self.block(stmt.body, entry)
        if stmt.orelse:
            body_exit = self.block(stmt.orelse, body_exit)
        self._exc.pop()

        # An exception may match any handler (or none): chain entries.
        for first, second in zip(handler_entries, handler_entries[1:]):
            self.cfg.nodes[first].succ.add(second)
        if handler_entries:
            unmatched = (
                final_entry
                if final_entry is not None
                else (self._exc[-1] if self._exc else EXIT)
            )
            self.cfg.nodes[handler_entries[-1]].succ.add(unmatched)

        handler_exits: set[int] = set()
        for handler, entry_node in zip(stmt.handlers, handler_entries):
            # Handler bodies raise into the finally (or outward).
            if final_entry is not None:
                self._exc.append(final_entry)
            handler_exits |= self.block(handler.body, {entry_node})
            if final_entry is not None:
                self._exc.pop()
        if final_entry is not None:
            self._finals.pop()

        normal_exit = body_exit | handler_exits
        if final_entry is None:
            return normal_exit
        self._link(normal_exit, final_entry)
        final_exit = self.block(stmt.finalbody, {final_entry})
        # The finally re-raises in-flight exceptions and propagates
        # returns: its exit also reaches the enclosing target/EXIT.
        for index in final_exit:
            if index != EXIT:
                self.cfg.nodes[index].succ.add(
                    self._exc[-1] if self._exc else EXIT
                )
        return final_exit


def build_cfg(func: ast.FunctionDef | ast.AsyncFunctionDef) -> FunctionCFG:
    """The CFG of *func*'s body (nested defs stay opaque)."""
    builder = _Builder()
    frontier = builder.block(func.body, set())
    # Fall-through exits the function.
    for index in frontier:
        if index != EXIT:
            builder.cfg.nodes[index].succ.add(EXIT)
    return builder.cfg
