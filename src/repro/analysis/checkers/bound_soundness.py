"""Checker: floating-point smells in the support-bound arithmetic.

Equation (1) soundness — ``sup_hat(X) >= sup(X)`` — is an *integer*
statement: supports are transaction counts. The moment bound arithmetic
passes through floats, two silent failure modes open up: rounding can
pull a bound below the true support (unsound: a frequent itemset gets
pruned and the miner's output is wrong, not slow), and int/float mixing
propagates inexactness into comparisons against ``min_support``. The
related bound-sketch literature (Geerts et al., Liberty et al.) leans
on exactly this kind of discipline.

Scoped to the modules that own the bound math (``core/ossm.py``,
``core/generalized.py``, ``core/loss.py``):

* ``bound-float-div`` — true division ``/``; support arithmetic should
  use ``//`` (exactness is then provable) or justify itself with a
  ``# lint: skip=bound-float-div`` pragma.
* ``bound-float-cast`` — ``float(...)``, ``np.float64(...)``,
  ``.astype(float/np.float32/np.float64)``: an explicit exit from
  integer arithmetic.
* ``bound-float-literal`` — a float literal inside arithmetic
  (``x * 0.5`` and friends) silently promotes the whole expression.
* ``bound-builtin-float`` — ``sum``/``min``/``max`` invoked with a
  float argument or float ``start=``/``default=`` keyword; the classic
  way an integer reduction turns float.
"""

from __future__ import annotations

import ast

from ..base import Checker, FileContext, Rule
from ..findings import Finding

__all__ = ["BoundSoundnessChecker", "DEFAULT_BOUND_MODULES"]

#: Path suffixes of the modules owning Equation (1)/(2) arithmetic.
DEFAULT_BOUND_MODULES: tuple[str, ...] = (
    "core/ossm.py",
    "core/generalized.py",
    "core/loss.py",
    "parallel/ossm.py",
    # The bitmap engine's supports and segment matrix feed Equation (1)
    # directly; any float creeping into its reduces would unsound them.
    "mining/bitmap.py",
    # Checkpoints and artifacts carry exact counts; float arithmetic
    # sneaking into their (de)serialization would corrupt resumes.
    "resilience/checkpoint.py",
    "resilience/integrity.py",
)

_FLOAT_DTYPES = frozenset({"float", "float16", "float32", "float64"})
_REDUCTIONS = frozenset({"sum", "min", "max"})


def _is_float_const(node: ast.expr) -> bool:
    return isinstance(node, ast.Constant) and isinstance(node.value, float)


def _names_float_dtype(node: ast.expr) -> bool:
    """``float`` / ``np.float64`` / ``"float64"`` as a dtype argument."""
    if isinstance(node, ast.Name):
        return node.id in _FLOAT_DTYPES
    if isinstance(node, ast.Attribute):
        return node.attr in _FLOAT_DTYPES
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value in _FLOAT_DTYPES
    return False


class BoundSoundnessChecker(Checker):
    name = "bound-soundness"
    rules = (
        Rule("bound-float-div", "true division in bound arithmetic"),
        Rule("bound-float-cast", "explicit float cast in bound module"),
        Rule("bound-float-literal", "float literal in bound arithmetic"),
        Rule("bound-builtin-float", "float-typed sum/min/max reduction"),
    )

    def __init__(
        self, bound_modules: tuple[str, ...] = DEFAULT_BOUND_MODULES
    ):
        self.bound_modules = bound_modules

    def applies_to(self, context: FileContext) -> bool:
        return context.matches_any(self.bound_modules)

    def check(self, context: FileContext) -> list[Finding]:
        findings: list[Finding] = []

        def report(rule: str, message: str, node: ast.AST) -> None:
            findings.append(
                Finding(
                    rule=rule,
                    path=context.path,
                    line=node.lineno,
                    col=node.col_offset,
                    message=message,
                )
            )

        for node in ast.walk(context.tree):
            if isinstance(node, ast.BinOp):
                if isinstance(node.op, ast.Div):
                    report(
                        "bound-float-div",
                        "true division `/` leaves integer support "
                        "arithmetic; use `//` (and prove exactness) or "
                        "justify with `# lint: skip=bound-float-div`",
                        node,
                    )
                elif _is_float_const(node.left) or _is_float_const(
                    node.right
                ):
                    report(
                        "bound-float-literal",
                        "float literal promotes support arithmetic to "
                        "float; use integer constants",
                        node,
                    )
            elif isinstance(node, ast.Call):
                findings.extend(self._check_call(context, node))
        return findings

    def _check_call(
        self, context: FileContext, node: ast.Call
    ) -> list[Finding]:
        findings: list[Finding] = []

        def report(rule: str, message: str) -> None:
            findings.append(
                Finding(
                    rule=rule,
                    path=context.path,
                    line=node.lineno,
                    col=node.col_offset,
                    message=message,
                )
            )

        func = node.func
        # float(...) / np.float64(...)
        if (
            isinstance(func, ast.Name) and func.id == "float"
        ) or (
            isinstance(func, ast.Attribute) and func.attr in _FLOAT_DTYPES
        ):
            report(
                "bound-float-cast",
                "explicit float conversion inside a bound module; keep "
                "support arithmetic integral or justify with a pragma",
            )
        # .astype(float64-ish) / np.asarray(..., dtype=float64-ish)
        dtype_args: list[ast.expr] = []
        if isinstance(func, ast.Attribute) and func.attr == "astype":
            dtype_args.extend(node.args[:1])
        dtype_args.extend(
            kw.value for kw in node.keywords if kw.arg == "dtype"
        )
        if any(_names_float_dtype(arg) for arg in dtype_args):
            report(
                "bound-float-cast",
                "conversion to a float dtype inside a bound module; keep "
                "support vectors integral or justify with a pragma",
            )
        # sum/min/max with float arguments or float start/default.
        if isinstance(func, ast.Name) and func.id in _REDUCTIONS:
            float_pos = any(_is_float_const(arg) for arg in node.args)
            float_kw = any(
                kw.arg in ("start", "default", "initial")
                and _is_float_const(kw.value)
                for kw in node.keywords
            )
            if float_pos or float_kw:
                report(
                    "bound-builtin-float",
                    f"`{func.id}` with a float argument turns an integer "
                    "reduction float; use integer operands",
                )
        return findings
