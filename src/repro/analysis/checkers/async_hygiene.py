"""Async-hygiene checker: keep the event loop responsive and tasks owned.

The serve plane (:mod:`repro.serve.service`, :mod:`repro.obs.export`)
runs a single event loop; one blocking call inside a coroutine stalls
every in-flight query, and the SLO math of DESIGN.md §11 silently stops
meaning anything. These rules encode the loop discipline that code
review keeps re-explaining:

* ``async-blocking-call`` — a known-blocking call (``time.sleep``,
  builtin ``open``, ``subprocess.*``, ``os.system``, ``Future.result``)
  inside an ``async def``. Use ``asyncio.sleep`` / ``asyncio.to_thread``
  instead.
* ``async-unawaited-coroutine`` — a statement-level call whose target
  the project index resolves to an ``async def``, with no ``await``:
  the coroutine object is created, never run, and raises a
  ``RuntimeWarning`` at GC time in production.
* ``async-dropped-task`` — ``asyncio.create_task(...)`` as a bare
  expression statement. The loop holds only a weak reference; a dropped
  task can be garbage-collected mid-flight. Keep the reference (the
  serve plane's ``self._tasks`` set is the house pattern).
* ``async-unshielded-wait-for`` — ``asyncio.wait_for`` applied to an
  already-existing task/future (a name, not a fresh call): on timeout
  ``wait_for`` *cancels* its argument, killing work other waiters may
  share. Wrap shared work in ``asyncio.shield`` (see
  ``BoundQueryService._query_batch``).
"""

from __future__ import annotations

import ast

from ..base import Checker, FileContext, ProjectContext, Rule
from ..findings import Finding

__all__ = ["AsyncHygieneChecker", "BLOCKING_CALLS"]

#: Resolved qualified names that block the calling thread. Matched
#: after import-alias resolution, so ``from time import sleep`` and
#: ``import time as t`` both resolve to ``time.sleep``.
BLOCKING_CALLS: frozenset[str] = frozenset(
    {
        "time.sleep",
        "open",
        "os.system",
        "subprocess.run",
        "subprocess.call",
        "subprocess.check_call",
        "subprocess.check_output",
        "subprocess.getoutput",
        "subprocess.getstatusoutput",
        "subprocess.Popen",
        "socket.create_connection",
        "urllib.request.urlopen",
    }
)


def _finding(
    context: FileContext, rule: str, node: ast.AST, message: str
) -> Finding:
    return Finding(
        rule=rule,
        path=context.path,
        line=getattr(node, "lineno", 1),
        col=getattr(node, "col_offset", 0),
        message=message,
        end_line=getattr(node, "end_lineno", 0) or 0,
    )


class AsyncHygieneChecker(Checker):
    """Event-loop discipline for every coroutine in the tree."""

    name = "async-hygiene"
    rules = (
        Rule("async-blocking-call", "blocking call inside async def"),
        Rule(
            "async-unawaited-coroutine",
            "coroutine call whose result is never awaited",
        ),
        Rule("async-dropped-task", "create_task with a dropped reference"),
        Rule(
            "async-unshielded-wait-for",
            "wait_for cancels shared work without shield",
        ),
    )

    def __init__(self, modules: tuple[str, ...] | None = None):
        self.modules = modules

    def applies_to(self, context: FileContext) -> bool:
        return self.modules is None or context.matches_any(self.modules)

    def check_project(
        self, context: FileContext, project: ProjectContext
    ) -> list[Finding]:
        findings: list[Finding] = []
        self._walk_body(
            context, project, context.tree.body, in_async=False,
            findings=findings,
        )
        return findings

    # -- traversal --------------------------------------------------------

    def _walk_body(
        self,
        context: FileContext,
        project: ProjectContext,
        body: list[ast.stmt],
        in_async: bool,
        findings: list[Finding],
    ) -> None:
        for stmt in body:
            if isinstance(stmt, ast.AsyncFunctionDef):
                self._walk_body(
                    context, project, stmt.body, True, findings
                )
                continue
            if isinstance(stmt, (ast.FunctionDef, ast.ClassDef)):
                self._walk_body(
                    context, project, stmt.body, False, findings
                )
                continue
            self._check_stmt(context, project, stmt, in_async, findings)
            for child in ast.iter_child_nodes(stmt):
                if isinstance(child, ast.stmt):
                    self._walk_body(
                        context, project, [child], in_async, findings
                    )
                elif isinstance(child, ast.excepthandler):
                    self._walk_body(
                        context, project, child.body, in_async, findings
                    )

    def _check_stmt(
        self,
        context: FileContext,
        project: ProjectContext,
        stmt: ast.stmt,
        in_async: bool,
        findings: list[Finding],
    ) -> None:
        # Statement-level coroutine / create_task drops (any context).
        if isinstance(stmt, ast.Expr) and isinstance(stmt.value, ast.Call):
            call = stmt.value
            qualified = project.resolve_call(context.path, call.func) or ""
            if self._is_create_task(qualified):
                findings.append(
                    _finding(
                        context,
                        "async-dropped-task",
                        stmt,
                        "create_task() result dropped: the event loop "
                        "keeps only a weak reference, so the task can be "
                        "garbage-collected mid-flight — store it (e.g. in "
                        "a tasks set) until done",
                    )
                )
            elif project.is_coroutine_call(
                context.path, call
            ) or self._is_self_coroutine(context, project, call):
                short = ast.unparse(call.func)
                findings.append(
                    _finding(
                        context,
                        "async-unawaited-coroutine",
                        stmt,
                        f"coroutine '{short}()' is called but never "
                        "awaited: the body never runs — await it, or "
                        "hand it to create_task/gather",
                    )
                )

        # Expression-level checks inside the statement (skip nested
        # defs: their async-ness differs and they get their own visit).
        for node in self._own_expressions(stmt):
            if not isinstance(node, ast.Call):
                continue
            qualified = project.resolve_call(context.path, node.func) or ""
            if in_async and self._is_blocking(qualified, node):
                findings.append(
                    _finding(
                        context,
                        "async-blocking-call",
                        node,
                        f"blocking call '{qualified or ast.unparse(node.func)}'"
                        " inside async def stalls the event loop — use the"
                        " asyncio equivalent (asyncio.sleep/to_thread)",
                    )
                )
            if in_async and self._is_unshielded_wait_for(qualified, node):
                findings.append(
                    _finding(
                        context,
                        "async-unshielded-wait-for",
                        node,
                        "wait_for() on an existing task/future cancels it "
                        "on timeout, killing work other waiters share — "
                        "wrap the argument in asyncio.shield()",
                    )
                )

    # -- predicates -------------------------------------------------------

    @staticmethod
    def _own_expressions(stmt: ast.stmt):
        """Walk *stmt* without descending into nested def/class bodies."""
        stack: list[ast.AST] = []
        for child in ast.iter_child_nodes(stmt):
            if not isinstance(child, (ast.stmt, ast.excepthandler)):
                stack.append(child)
        while stack:
            node = stack.pop()
            if isinstance(
                node,
                (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda),
            ):
                continue
            yield node
            stack.extend(ast.iter_child_nodes(node))

    @staticmethod
    def _is_create_task(qualified: str) -> bool:
        return qualified == "asyncio.create_task" or qualified.endswith(
            ".create_task"
        )

    @staticmethod
    def _is_blocking(qualified: str, node: ast.Call) -> bool:
        if qualified in BLOCKING_CALLS:
            return True
        # Future.result() — the pool handoff pattern; awaiting
        # asyncio.wrap_future / run_in_executor is the loop-safe form.
        func = node.func
        return (
            isinstance(func, ast.Attribute)
            and func.attr == "result"
            and not node.args
            and not node.keywords
        )

    @staticmethod
    def _is_unshielded_wait_for(qualified: str, node: ast.Call) -> bool:
        if not (
            qualified == "asyncio.wait_for"
            or qualified.endswith(".wait_for")
        ):
            return False
        if not node.args:
            return False
        target = node.args[0]
        # A fresh coroutine call is exclusive work — cancelling it on
        # timeout is exactly the contract. Only pre-existing awaitables
        # (names, attributes) can be shared with other waiters.
        return isinstance(target, (ast.Name, ast.Attribute))

    def _is_self_coroutine(
        self, context: FileContext, project: ProjectContext, call: ast.Call
    ) -> bool:
        """Resolve ``self.method()`` against the index's async methods.

        ``self`` carries no module path, so :meth:`ProjectContext.resolve`
        cannot see through it; matching the bare method name against the
        indexed async methods of the same module is exact enough (method
        names in this tree are unique per file).
        """
        func = call.func
        if not (
            isinstance(func, ast.Attribute)
            and isinstance(func.value, ast.Name)
            and func.value.id in {"self", "cls"}
        ):
            return False
        module = project.modules.get(context.path, "")
        prefix = f"{module}."
        return any(
            qualified.startswith(prefix)
            and qualified.rsplit(".", 1)[-1] == func.attr
            for qualified in project.async_functions
        )
