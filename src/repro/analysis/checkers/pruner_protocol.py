"""Checker: ``CandidatePruner`` protocol conformance.

The pruning layer is the soundness-critical seam of the reproduction:
every pruner must (a) carry a ``label`` so metrics and result names can
identify it, (b) implement ``prune(candidates, min_support)``, and
(c) expose its support upper bounds through ``candidate_bounds`` *iff*
it actually computes bounds — the bound-tightness telemetry from PR 1
silently disappears for a bound-backed pruner that forgets the
override, and a bound-less pruner that overrides it reports garbage.

"Bound-backed" is decided syntactically: the class body contains a call
to ``.upper_bounds(...)`` or delegates to ``.candidate_bounds(...)``.
Only *direct* subclasses (a base literally named ``CandidatePruner``)
are examined; deeper hierarchies inherit a conforming parent.
"""

from __future__ import annotations

import ast

from ..base import Checker, FileContext, Rule
from ..findings import Finding

__all__ = ["PrunerProtocolChecker"]

_BASE_NAME = "CandidatePruner"
_BOUND_EVIDENCE_ATTRS = frozenset({"upper_bounds", "candidate_bounds"})
#: ``prune(self, candidates, min_support)`` — positional arity.
_PRUNE_ARITY = 3


def _base_names(node: ast.ClassDef) -> list[str]:
    names = []
    for base in node.bases:
        if isinstance(base, ast.Name):
            names.append(base.id)
        elif isinstance(base, ast.Attribute):
            names.append(base.attr)
    return names


def _has_label(node: ast.ClassDef) -> bool:
    """Class-level ``label = ...`` or ``self.label = ...`` in ``__init__``."""
    for stmt in node.body:
        if isinstance(stmt, ast.Assign):
            for target in stmt.targets:
                if isinstance(target, ast.Name) and target.id == "label":
                    return True
        elif isinstance(stmt, ast.AnnAssign):
            target = stmt.target
            if isinstance(target, ast.Name) and target.id == "label":
                return True
        elif (
            isinstance(stmt, ast.FunctionDef) and stmt.name == "__init__"
        ):
            for sub in ast.walk(stmt):
                if (
                    isinstance(sub, ast.Attribute)
                    and sub.attr == "label"
                    and isinstance(sub.ctx, ast.Store)
                    and isinstance(sub.value, ast.Name)
                    and sub.value.id == "self"
                ):
                    return True
    return False


def _method(node: ast.ClassDef, name: str) -> ast.FunctionDef | None:
    for stmt in node.body:
        if isinstance(stmt, ast.FunctionDef) and stmt.name == name:
            return stmt
    return None


def _bound_evidence(node: ast.ClassDef) -> bool:
    for sub in ast.walk(node):
        if not (
            isinstance(sub, ast.Call)
            and isinstance(sub.func, ast.Attribute)
        ):
            continue
        if sub.func.attr in _BOUND_EVIDENCE_ATTRS:
            return True
        # Delegated pruning (`self.ossm.prune(...)`, `child.prune(...)`)
        # means the wrapped object owns a bound this class should expose.
        if sub.func.attr == "prune" and not (
            isinstance(sub.func.value, ast.Name)
            and sub.func.value.id == "self"
        ):
            return True
    return False


class PrunerProtocolChecker(Checker):
    name = "pruner-protocol"
    rules = (
        Rule("pruner-label", "pruner subclass must define a `label`"),
        Rule("pruner-prune", "pruner subclass must implement `prune`"),
        Rule(
            "pruner-bounds-missing",
            "bound-backed pruner must override `candidate_bounds`",
        ),
        Rule(
            "pruner-bounds-spurious",
            "pruner without bound computation overrides `candidate_bounds`",
        ),
    )

    def check(self, context: FileContext) -> list[Finding]:
        findings: list[Finding] = []
        for node in ast.walk(context.tree):
            if not isinstance(node, ast.ClassDef):
                continue
            if _BASE_NAME not in _base_names(node):
                continue
            findings.extend(self._check_class(context, node))
        return findings

    def _check_class(
        self, context: FileContext, node: ast.ClassDef
    ) -> list[Finding]:
        findings: list[Finding] = []

        def report(rule: str, message: str, at: ast.AST) -> None:
            findings.append(
                Finding(
                    rule=rule,
                    path=context.path,
                    line=at.lineno,
                    col=at.col_offset,
                    message=message,
                )
            )

        if not _has_label(node):
            report(
                "pruner-label",
                f"pruner `{node.name}` defines no `label` (class attribute "
                "or `self.label` in __init__); metric names and miner "
                "labels need it",
                node,
            )

        prune = _method(node, "prune")
        if prune is None:
            report(
                "pruner-prune",
                f"pruner `{node.name}` does not implement `prune`",
                node,
            )
        elif len(prune.args.args) != _PRUNE_ARITY:
            report(
                "pruner-prune",
                f"`{node.name}.prune` must take exactly "
                "(self, candidates, min_support); found "
                f"{len(prune.args.args)} positional parameters",
                prune,
            )

        overrides = _method(node, "candidate_bounds") is not None
        backed = _bound_evidence(node)
        if backed and not overrides:
            report(
                "pruner-bounds-missing",
                f"pruner `{node.name}` computes support bounds but does not "
                "override `candidate_bounds`; the Equation (1) "
                "bound-tightness telemetry will silently miss it",
                node,
            )
        elif overrides and not backed:
            report(
                "pruner-bounds-spurious",
                f"pruner `{node.name}` overrides `candidate_bounds` but "
                "never computes a bound (`.upper_bounds(...)` or "
                "delegation); return the inherited None instead",
                node,
            )
        return findings
