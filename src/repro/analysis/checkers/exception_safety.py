"""Exception-safety checker: the ResilienceError hierarchy must be heard.

PR 5 introduced a typed failure vocabulary (:mod:`repro.resilience.errors`):
``ResilienceError`` → ``IntegrityError`` → ``CorruptArtifact``,
``CheckpointMismatch``, ``InjectedFault``, ``PoolFailure``. Every raise
site in that hierarchy marks a condition the caller must *handle* —
retry, fall back serially, surface to the operator — never ignore: a
swallowed ``PoolFailure`` turns a dead pool into silently-wrong counts,
and a swallowed ``CorruptArtifact`` promotes a bad checkpoint to truth.

The rule flags ``except`` clauses that catch any class the project
index places in the hierarchy (resolved through import aliases and
closed over project-local subclassing) and whose body is *pure
swallowing*: just ``pass``/``...``. Handlers that log, re-raise,
fall back, or even set a flag all stay silent — the point is the
do-nothing clause, which in this codebase is always a bug.
"""

from __future__ import annotations

import ast

from ..base import Checker, FileContext, ProjectContext, Rule
from ..findings import Finding

__all__ = ["ExceptionSafetyChecker"]


class ExceptionSafetyChecker(Checker):
    """Flag except-and-pass over the typed resilience hierarchy."""

    name = "exception-safety"
    rules = (
        Rule(
            "except-swallow-resilience",
            "ResilienceError subclass caught and silently dropped",
        ),
    )

    def __init__(self, modules: tuple[str, ...] | None = None):
        self.modules = modules

    def applies_to(self, context: FileContext) -> bool:
        return self.modules is None or context.matches_any(self.modules)

    def check_project(
        self, context: FileContext, project: ProjectContext
    ) -> list[Finding]:
        findings: list[Finding] = []
        for node in ast.walk(context.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            caught = self._caught_resilience(context, project, node)
            if caught and _swallows(node.body):
                findings.append(
                    Finding(
                        rule="except-swallow-resilience",
                        path=context.path,
                        line=node.lineno,
                        col=node.col_offset,
                        message=(
                            f"'{caught}' is caught and silently dropped: "
                            "the resilience hierarchy marks conditions "
                            "that need handling (retry, serial fallback, "
                            "surface) — act on it or let it propagate"
                        ),
                    )
                )
        return findings

    def _caught_resilience(
        self,
        context: FileContext,
        project: ProjectContext,
        handler: ast.ExceptHandler,
    ) -> str | None:
        """The first hierarchy member this clause catches, if any."""
        if handler.type is None:
            return None
        exprs = (
            handler.type.elts
            if isinstance(handler.type, ast.Tuple)
            else [handler.type]
        )
        for expr in exprs:
            qualified = project.resolve_call(context.path, expr) or ""
            name = qualified.rsplit(".", 1)[-1]
            if name in project.resilience_errors:
                return name
        return None


def _swallows(body: list[ast.stmt]) -> bool:
    """True when the handler body does nothing at all."""
    for stmt in body:
        if isinstance(stmt, ast.Pass):
            continue
        if isinstance(stmt, ast.Expr) and isinstance(
            stmt.value, ast.Constant
        ):
            continue  # `...` or a stray docstring — still nothing
        return False
    return True
