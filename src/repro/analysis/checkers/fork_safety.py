"""Fork-safety checker: worker processes must not trust parent state.

The parallel plane runs task functions in child processes (``fork``
where available, ``spawn`` otherwise — :mod:`repro.parallel.pool`). Two
classes of state travel badly across that boundary:

* **module-level mutable state** — a dict/list/set populated in the
  parent is a stale snapshot under ``fork`` and *empty* under ``spawn``.
  The house pattern is an *initializer* that rebinds (or clears and
  refills) the global inside each worker (``init_shards`` /
  ``init_bound_map``); a worker task reading a module global that no
  initializer manages is reading parent memory by accident
  (``fork-module-state``).
* **RNG objects** — a module-level ``random.Random()`` /
  ``default_rng()`` is duplicated byte-for-byte into every forked
  worker, so "random" draws are identical across the pool
  (``fork-shared-rng``). Seed per-worker (e.g. from ``os.getpid()`` or
  an initializer argument) instead.

Pass 1 of the engine indexes every worker registration —
``WorkerPool(..., initializer=f, ...)``, ``pool.run(task, …)`` /
``pool.submit(task, …)``, ``ProcessPoolExecutor(initializer=f)``, and
``kwargs["initializer"] = f`` — and this checker closes the worker set
over same-module calls, then audits each worker function's global
reads.
"""

from __future__ import annotations

import ast

from ..base import Checker, FileContext, ProjectContext, Rule
from ..findings import Finding

__all__ = ["ForkSafetyChecker"]

_CACHE_KEY = "fork-safety"

_RNG_FACTORIES = {
    "random.Random",
    "random.SystemRandom",
    "numpy.random.default_rng",
    "numpy.random.RandomState",
    "np.random.default_rng",
    "np.random.RandomState",
}

_POOL_CLASSES = {"WorkerPool", "SupervisedPool", "ProcessPoolExecutor"}
_SUBMIT_METHODS = {"run", "submit", "map"}


class _Registry:
    """Project-wide worker/initializer sets, built once and cached."""

    def __init__(self, project: ProjectContext):
        #: Qualified names of functions running inside worker processes.
        self.workers: set[str] = set()
        #: Qualified names of worker initializers.
        self.initializers: set[str] = set()
        for path, context in project.files.items():
            for node in ast.walk(context.tree):
                if isinstance(node, ast.Call):
                    self._scan_call(project, path, node)
                elif isinstance(node, ast.Assign):
                    self._scan_assign(project, path, node)
        self._close_over_calls(project)

    def _scan_call(
        self, project: ProjectContext, path: str, node: ast.Call
    ) -> None:
        func = node.func
        terminal = (
            func.attr
            if isinstance(func, ast.Attribute)
            else func.id
            if isinstance(func, ast.Name)
            else None
        )
        if terminal in _POOL_CLASSES:
            # WorkerPool(workers, initializer, payload) — positional or
            # keyword; ProcessPoolExecutor only takes it by keyword.
            if terminal == "WorkerPool" and len(node.args) >= 2:
                self._add(project, path, node.args[1], self.initializers)
            for keyword in node.keywords:
                if keyword.arg == "initializer":
                    self._add(
                        project, path, keyword.value, self.initializers
                    )
        elif (
            isinstance(func, ast.Attribute)
            and func.attr in _SUBMIT_METHODS
            and node.args
        ):
            self._add(project, path, node.args[0], self.workers)

    def _scan_assign(
        self, project: ProjectContext, path: str, node: ast.Assign
    ) -> None:
        # kwargs["initializer"] = _obs_init — the pool module's own
        # indirection for composing initializers.
        for target in node.targets:
            if (
                isinstance(target, ast.Subscript)
                and isinstance(target.slice, ast.Constant)
                and target.slice.value == "initializer"
            ):
                self._add(project, path, node.value, self.initializers)

    def _add(
        self,
        project: ProjectContext,
        path: str,
        node: ast.expr,
        into: set[str],
    ) -> None:
        qualified = project.resolve_call(
            path, node
        )  # resolve() handles names and dotted paths alike
        if qualified is not None and qualified in project.symbols:
            into.add(qualified)

    def _close_over_calls(self, project: ProjectContext) -> None:
        """Anything a worker/initializer calls in its own module also
        runs inside the worker process."""
        frontier = list(self.workers | self.initializers)
        members = self.workers | self.initializers
        while frontier:
            qualified = frontier.pop()
            node = project.symbols.get(qualified)
            path = project.symbol_paths.get(qualified)
            if node is None or path is None or not isinstance(
                node, (ast.FunctionDef, ast.AsyncFunctionDef)
            ):
                continue
            for sub in ast.walk(node):
                if not isinstance(sub, ast.Call):
                    continue
                callee = project.resolve_call(path, sub.func)
                if (
                    callee
                    and callee in project.symbols
                    and callee not in members
                    and project.symbol_paths.get(callee) == path
                ):
                    members.add(callee)
                    frontier.append(callee)
                    if qualified in self.initializers:
                        self.initializers.add(callee)
                    else:
                        self.workers.add(callee)


class ForkSafetyChecker(Checker):
    """Audit worker-process functions for parent-state dependence."""

    name = "fork-safety"
    rules = (
        Rule(
            "fork-module-state",
            "worker reads module-level mutable state no initializer manages",
        ),
        Rule(
            "fork-shared-rng",
            "module-level RNG shared across forked workers",
        ),
    )

    def __init__(self, modules: tuple[str, ...] | None = None):
        self.modules = modules

    def applies_to(self, context: FileContext) -> bool:
        return self.modules is None or context.matches_any(self.modules)

    def check_project(
        self, context: FileContext, project: ProjectContext
    ) -> list[Finding]:
        registry = project.cache.get(_CACHE_KEY)
        if not isinstance(registry, _Registry):
            registry = _Registry(project)
            project.cache[_CACHE_KEY] = registry

        module = project.modules.get(context.path, "")
        mutable, rngs = self._module_globals(context, project)
        managed = self._managed_globals(context, project, registry, module)
        # A dict/list/set literal nobody ever mutates is a constant
        # table — identical in parent and workers under both fork and
        # spawn. Only parent-mutated state is a hazard.
        mutable &= self._parent_mutated(context, registry, module)

        findings: list[Finding] = []
        for stmt in context.tree.body:
            for func, qualified in _functions_of(stmt, module):
                if qualified not in registry.workers:
                    continue
                findings.extend(
                    self._audit_worker(
                        context, func, qualified, mutable, managed, rngs
                    )
                )
        return findings

    # -- module facts -----------------------------------------------------

    def _module_globals(
        self, context: FileContext, project: ProjectContext
    ) -> tuple[set[str], set[str]]:
        """(mutable container globals, RNG globals) of this module."""
        mutable: set[str] = set()
        rngs: set[str] = set()
        for stmt in context.tree.body:
            targets: list[ast.expr] = []
            value: ast.expr | None = None
            if isinstance(stmt, ast.Assign):
                targets, value = stmt.targets, stmt.value
            elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
                targets, value = [stmt.target], stmt.value
            if value is None:
                continue
            names = {
                target.id
                for target in targets
                if isinstance(target, ast.Name)
            }
            if not names:
                continue
            if isinstance(value, (ast.Dict, ast.List, ast.Set)):
                mutable.update(names)
            elif isinstance(value, ast.Call):
                qualified = project.resolve_call(context.path, value.func)
                terminal = (
                    qualified.rsplit(".", 1)[-1] if qualified else ""
                )
                if qualified in _RNG_FACTORIES:
                    rngs.update(names)
                elif terminal in {
                    "dict", "list", "set", "defaultdict", "OrderedDict",
                    "Counter", "deque",
                }:
                    mutable.update(names)
        return mutable, rngs

    def _managed_globals(
        self,
        context: FileContext,
        project: ProjectContext,
        registry: _Registry,
        module: str,
    ) -> set[str]:
        """Globals an initializer of this module rebinds or clears."""
        managed: set[str] = set()
        for qualified in registry.initializers:
            if project.symbol_paths.get(qualified) != context.path:
                continue
            node = project.symbols.get(qualified)
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            declared: set[str] = set()
            for sub in ast.walk(node):
                if isinstance(sub, ast.Global):
                    declared.update(sub.names)
                    managed.update(sub.names)
                elif (
                    isinstance(sub, ast.Call)
                    and isinstance(sub.func, ast.Attribute)
                    and sub.func.attr in {"clear", "update"}
                    and isinstance(sub.func.value, ast.Name)
                ):
                    managed.add(sub.func.value.id)
        return managed

    def _parent_mutated(
        self,
        context: FileContext,
        registry: _Registry,
        module: str,
    ) -> set[str]:
        """Globals mutated by code that runs in the *parent* process.

        Worker/initializer members mutating their own process-local
        copy is the house pattern, not a hazard; anything else —
        module-level statements or ordinary functions — registers the
        name as parent state.
        """
        worker_side = registry.workers | registry.initializers
        mutated: set[str] = set()
        for stmt in context.tree.body:
            functions = list(_functions_of(stmt, module))
            if functions:
                for func, qualified in functions:
                    if qualified not in worker_side:
                        mutated.update(_mutated_names(func))
            else:
                mutated.update(_mutated_names(stmt))
        return mutated

    # -- per-worker audit -------------------------------------------------

    def _audit_worker(
        self,
        context: FileContext,
        func: ast.FunctionDef | ast.AsyncFunctionDef,
        qualified: str,
        mutable: set[str],
        managed: set[str],
        rngs: set[str],
    ) -> list[Finding]:
        findings: list[Finding] = []
        short = qualified.rsplit(".", 1)[-1]
        locals_: set[str] = {arg.arg for arg in func.args.args}
        locals_.update(arg.arg for arg in func.args.kwonlyargs)
        locals_.update(arg.arg for arg in func.args.posonlyargs)
        rebound: set[str] = set()
        for sub in ast.walk(func):
            if isinstance(sub, ast.Global):
                rebound.update(sub.names)
            elif isinstance(sub, ast.Name) and isinstance(
                sub.ctx, ast.Store
            ):
                locals_.add(sub.id)
        seen: set[str] = set()
        for sub in ast.walk(func):
            if not (
                isinstance(sub, ast.Name)
                and isinstance(sub.ctx, ast.Load)
            ):
                continue
            name = sub.id
            if name in seen or name in locals_ and name not in rebound:
                continue
            if name in rngs:
                seen.add(name)
                findings.append(
                    Finding(
                        rule="fork-shared-rng",
                        path=context.path,
                        line=sub.lineno,
                        col=sub.col_offset,
                        message=(
                            f"worker {short}() draws from module-level "
                            f"RNG '{name}': forked workers inherit "
                            "identical state and produce the same "
                            "stream — seed per worker (initializer or "
                            "os.getpid())"
                        ),
                    )
                )
            elif name in mutable and name not in managed and name not in rebound:
                seen.add(name)
                findings.append(
                    Finding(
                        rule="fork-module-state",
                        path=context.path,
                        line=sub.lineno,
                        col=sub.col_offset,
                        message=(
                            f"worker {short}() reads module global "
                            f"'{name}' that no initializer manages: "
                            "stale under fork, empty under spawn — "
                            "populate it in a pool initializer or pass "
                            "it through the payload"
                        ),
                    )
                )
        return findings


_MUTATORS = frozenset(
    {
        "append", "add", "update", "clear", "setdefault", "pop",
        "popitem", "extend", "insert", "remove", "discard",
    }
)


def _mutated_names(node: ast.AST) -> set[str]:
    """Module-global names *node* mutates in place (or rebinds via
    ``global``)."""
    names: set[str] = set()
    declared_global: set[str] = set()
    for sub in ast.walk(node):
        if isinstance(sub, ast.Global):
            declared_global.update(sub.names)
    for sub in ast.walk(node):
        if isinstance(sub, ast.Subscript) and isinstance(
            sub.ctx, (ast.Store, ast.Del)
        ):
            if isinstance(sub.value, ast.Name):
                names.add(sub.value.id)
        elif isinstance(sub, ast.AugAssign):
            target = sub.target
            if isinstance(target, ast.Name):
                names.add(target.id)
            elif isinstance(target, ast.Subscript) and isinstance(
                target.value, ast.Name
            ):
                names.add(target.value.id)
        elif (
            isinstance(sub, ast.Call)
            and isinstance(sub.func, ast.Attribute)
            and sub.func.attr in _MUTATORS
            and isinstance(sub.func.value, ast.Name)
        ):
            names.add(sub.func.value.id)
        elif (
            isinstance(sub, ast.Name)
            and isinstance(sub.ctx, ast.Store)
            and sub.id in declared_global
        ):
            names.add(sub.id)
    return names


def _functions_of(stmt: ast.stmt, module: str):
    """Top-level functions and methods with their qualified names."""
    if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
        yield stmt, f"{module}.{stmt.name}"
    elif isinstance(stmt, ast.ClassDef):
        for sub in stmt.body:
            if isinstance(sub, (ast.FunctionDef, ast.AsyncFunctionDef)):
                yield sub, f"{module}.{stmt.name}.{sub.name}"
