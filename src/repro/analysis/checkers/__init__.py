"""The shipped project-specific checkers.

Each checker encodes an invariant of *this* codebase that a generic
linter cannot know — see the individual modules for the rationale:

* :mod:`.pruner_protocol` — ``CandidatePruner`` conformance;
* :mod:`.hot_path` — hygiene of the counting/segmentation hot loops;
* :mod:`.bound_soundness` — integer discipline in Equation (1)/(2)
  arithmetic;
* :mod:`.api_hygiene` — ``__all__`` drift, mutable defaults, future
  imports;
* :mod:`.async_hygiene` — event-loop discipline in the serve plane;
* :mod:`.resource_lifecycle` — acquires reach releases on all paths;
* :mod:`.fork_safety` — worker processes vs. parent module state;
* :mod:`.exception_safety` — the ResilienceError hierarchy is heard.

The last four are *project-aware* (they override
:meth:`~repro.analysis.base.Checker.check_project` and resolve names
through the whole-program index); the first four are per-file.
"""

from __future__ import annotations

from ..base import Checker
from .api_hygiene import ApiHygieneChecker
from .async_hygiene import AsyncHygieneChecker
from .bound_soundness import DEFAULT_BOUND_MODULES, BoundSoundnessChecker
from .exception_safety import ExceptionSafetyChecker
from .fork_safety import ForkSafetyChecker
from .hot_path import DEFAULT_HOT_MODULES, HotPathChecker
from .pruner_protocol import PrunerProtocolChecker
from .resource_lifecycle import ResourceLifecycleChecker

__all__ = [
    "ApiHygieneChecker",
    "AsyncHygieneChecker",
    "BoundSoundnessChecker",
    "ExceptionSafetyChecker",
    "ForkSafetyChecker",
    "HotPathChecker",
    "PrunerProtocolChecker",
    "ResourceLifecycleChecker",
    "DEFAULT_BOUND_MODULES",
    "DEFAULT_HOT_MODULES",
    "build_default_checkers",
]


def build_default_checkers(
    tiers: dict[str, tuple[str, ...]] | None = None,
) -> list[Checker]:
    """One fresh instance of every shipped checker, report order.

    *tiers* overrides the path scope of individual checkers by name:
    ``{"hot-path": ("core/ossm.py",)}`` narrows the hot-path tier to
    one module; for the project-aware checkers (which default to the
    whole tree) a tier narrows them to matching path suffixes. Checkers
    absent from the mapping keep their defaults.
    """
    tiers = tiers or {}
    return [
        PrunerProtocolChecker(),
        HotPathChecker(tiers.get("hot-path", DEFAULT_HOT_MODULES)),
        BoundSoundnessChecker(
            tiers.get("bound-soundness", DEFAULT_BOUND_MODULES)
        ),
        ApiHygieneChecker(),
        AsyncHygieneChecker(tiers.get("async-hygiene")),
        ResourceLifecycleChecker(tiers.get("resource-lifecycle")),
        ForkSafetyChecker(tiers.get("fork-safety")),
        ExceptionSafetyChecker(tiers.get("exception-safety")),
    ]
