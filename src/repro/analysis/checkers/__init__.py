"""The shipped project-specific checkers.

Each checker encodes an invariant of *this* codebase that a generic
linter cannot know — see the individual modules for the rationale:

* :mod:`.pruner_protocol` — ``CandidatePruner`` conformance;
* :mod:`.hot_path` — hygiene of the counting/segmentation hot loops;
* :mod:`.bound_soundness` — integer discipline in Equation (1)/(2)
  arithmetic;
* :mod:`.api_hygiene` — ``__all__`` drift, mutable defaults, future
  imports.
"""

from __future__ import annotations

from ..base import Checker
from .api_hygiene import ApiHygieneChecker
from .bound_soundness import DEFAULT_BOUND_MODULES, BoundSoundnessChecker
from .hot_path import DEFAULT_HOT_MODULES, HotPathChecker
from .pruner_protocol import PrunerProtocolChecker

__all__ = [
    "ApiHygieneChecker",
    "BoundSoundnessChecker",
    "HotPathChecker",
    "PrunerProtocolChecker",
    "DEFAULT_BOUND_MODULES",
    "DEFAULT_HOT_MODULES",
    "build_default_checkers",
]


def build_default_checkers() -> list[Checker]:
    """One fresh instance of every shipped checker, report order."""
    return [
        PrunerProtocolChecker(),
        HotPathChecker(),
        BoundSoundnessChecker(),
        ApiHygieneChecker(),
    ]
