"""Resource-lifecycle checker: every acquire must reach its release.

The parallel plane hands around OS-level resources — ``shared_memory``
segments, process pools, serve/ops endpoints, file handles, ``atomic_*``
artifacts — and PR 5's fault-injection work showed exactly how they
escape: not on the happy path, but on the *exception* path between the
acquiring call and the ``try`` that was supposed to protect it. The
checker walks the acquires-resource annotations the project index
collected (:data:`repro.analysis.base.RESOURCE_SPECS`) and asks the
function's CFG (:mod:`repro.analysis.cfg`) one question per site: can
control reach a function exit — including via a raise — without passing
a release?

What counts as settling the resource's fate on a path:

* a release call on the tracked name (``seg.close()``, ``pool.kill()``…);
* an *escape* — the bare name flowing somewhere else (returned, passed
  to a callee, stored on an object, captured by a nested def): ownership
  moved, the new owner is accountable;
* a rebind or ``del`` of the name (tracking ends);
* a compound-statement header whose subtree releases the name
  (``if owned: pool.close()`` — conditional cleanup is deliberate).

``with``-managed acquires and ``self.attr = acquire()`` handoffs are
exempt up front; a call whose result is *dropped* on the floor is flagged
unconditionally (``resource-dropped``), and context-manager-only
factories (``plain_pool``, ``atomic_path``) called without entering them
are flagged as ``resource-cm-only`` — the body never runs at all.
"""

from __future__ import annotations

import ast

from ..base import (
    AcquireSite,
    Checker,
    FileContext,
    ProjectContext,
    Rule,
)
from ..cfg import EXIT, FunctionCFG, build_cfg
from ..findings import Finding

__all__ = ["ResourceLifecycleChecker"]


class ResourceLifecycleChecker(Checker):
    """CFG-backed leak detection over the project's acquire sites."""

    name = "resource-lifecycle"
    rules = (
        Rule(
            "resource-leak",
            "acquired resource may not be released on all paths",
        ),
        Rule("resource-dropped", "acquired resource discarded immediately"),
        Rule(
            "resource-cm-only",
            "context-manager factory called but never entered",
        ),
    )

    def __init__(self, modules: tuple[str, ...] | None = None):
        self.modules = modules

    def applies_to(self, context: FileContext) -> bool:
        return self.modules is None or context.matches_any(self.modules)

    def check_project(
        self, context: FileContext, project: ProjectContext
    ) -> list[Finding]:
        findings: list[Finding] = []
        cfgs: dict[int, FunctionCFG] = {}
        for site in project.acquires.get(context.path, []):
            finding = self._check_site(context, site, cfgs)
            if finding is not None:
                findings.append(finding)
        return findings

    # -- per-site ---------------------------------------------------------

    def _check_site(
        self,
        context: FileContext,
        site: AcquireSite,
        cfgs: dict[int, FunctionCFG],
    ) -> Finding | None:
        if site.usage in {"with", "self", "escaped"}:
            return None
        short = site.function.rsplit(".", 1)[-1]
        if site.usage == "dropped":
            if not site.spec.release_methods:
                return self._finding(
                    context,
                    "resource-cm-only",
                    site,
                    f"'{_call_name(site.call)}' returns a context manager "
                    "whose body only runs inside `with` — this call "
                    "acquires nothing and is dead",
                )
            return self._finding(
                context,
                "resource-dropped",
                site,
                f"{site.spec.kind} returned by "
                f"'{_call_name(site.call)}' in {short}() is discarded: "
                "nothing can ever release it — bind it and close via "
                "with/try-finally",
            )
        # usage == "assigned"
        if not site.spec.release_methods or site.variable is None:
            return None
        if site.func_node is None or not isinstance(
            site.func_node, (ast.FunctionDef, ast.AsyncFunctionDef)
        ):
            return None
        cfg = cfgs.get(id(site.func_node))
        if cfg is None:
            cfg = build_cfg(site.func_node)
            cfgs[id(site.func_node)] = cfg
        start = cfg.node_of(site.stmt)
        if start is None:
            return None
        stops = self._stop_nodes(cfg, site)
        if cfg.reaches_exit(start, stops):
            methods = "/".join(sorted(site.spec.release_methods))
            return self._finding(
                context,
                "resource-leak",
                site,
                f"{site.spec.kind} '{site.variable}' acquired in "
                f"{short}() may never be released: a path (exception "
                f"paths included) reaches the function exit without "
                f"calling .{methods}() — wrap in with/try-finally "
                "starting immediately after the acquire",
            )
        return None

    # -- path-settling nodes ----------------------------------------------

    def _stop_nodes(self, cfg: FunctionCFG, site: AcquireSite) -> set[int]:
        variable = site.variable
        assert variable is not None
        release = site.spec.release_methods
        stops: set[int] = set()
        for node in cfg.nodes.values():
            if node.stmt is site.stmt and not node.is_header:
                continue  # the acquire itself never settles its fate
            settled = False
            for part in node.parts:
                if part is None:
                    continue
                if _settles(part, variable, release):
                    settled = True
                    break
            if not settled and node.is_header:
                # Conditional-release rule: a header whose subtree
                # releases the variable is a deliberate guard.
                settled = any(
                    _is_release_call(sub, variable, release)
                    for sub in ast.walk(node.stmt)
                )
            if settled:
                stops.add(node.index)
        return stops

    def _finding(
        self,
        context: FileContext,
        rule: str,
        site: AcquireSite,
        message: str,
    ) -> Finding:
        node = site.call
        return Finding(
            rule=rule,
            path=context.path,
            line=node.lineno,
            col=node.col_offset,
            message=message,
            end_line=getattr(site.stmt, "end_lineno", 0) or 0,
        )


def _call_name(call: ast.Call) -> str:
    try:
        return ast.unparse(call.func)
    except Exception:  # pragma: no cover - unparse is total on 3.10+
        return "<call>"


def _is_release_call(
    node: ast.AST, variable: str, release: frozenset[str]
) -> bool:
    return (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Attribute)
        and node.func.attr in release
        and isinstance(node.func.value, ast.Name)
        and node.func.value.id == variable
    )


def _settles(part: ast.AST, variable: str, release: frozenset[str]) -> bool:
    """Does evaluating *part* release, escape, rebind, or drop *variable*?"""
    attribute_values: set[int] = set()
    for node in ast.walk(part):
        if _is_release_call(node, variable, release):
            return True
        if isinstance(node, ast.Attribute) and isinstance(
            node.value, ast.Name
        ):
            attribute_values.add(id(node.value))
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            # Closure capture — scan free names without re-walking.
            for sub in ast.walk(node):
                if isinstance(sub, ast.Name) and sub.id == variable:
                    return True
        if isinstance(node, ast.Delete):
            for target in node.targets:
                if isinstance(target, ast.Name) and target.id == variable:
                    return True
    for node in ast.walk(part):
        if not (isinstance(node, ast.Name) and node.id == variable):
            continue
        if isinstance(node.ctx, ast.Store):
            return True  # rebound: tracking ends
        if id(node) not in attribute_values:
            return True  # bare use: returned/passed/stored — escaped
    return False


# Re-exported for tests that want to poke at reachability directly.
_EXIT = EXIT
