"""Checker: public-API hygiene, repo-wide.

* ``api-all-undefined`` — a name exported through ``__all__`` that is
  not bound at module top level: import-star users and doc tooling get
  an ``AttributeError`` the tests may never hit.
* ``api-all-missing`` — a public top-level ``def``/``class`` absent
  from an existing ``__all__``: the module's export list has drifted
  behind its definitions.
* ``api-mutable-default`` — a mutable default argument (``[]``, ``{}``,
  ``set()``, …) is shared across calls; the classic Python trap.
* ``api-future-import`` — a module that uses annotations without
  ``from __future__ import annotations``: annotations evaluate eagerly,
  which both costs import time and breaks ``X | None`` syntax on older
  interpreters the package still claims to support.
* ``api-removed-alias`` — a public function re-grows a parameter name
  the API went through a deprecation cycle to remove (e.g.
  ``segment(n_user=)``, removed in favour of ``n_segments=`` after
  PRs 4-8): once a name has been walked back, it must not silently
  return.
"""

from __future__ import annotations

import ast

from ..base import Checker, FileContext, Rule
from ..findings import Finding

__all__ = ["ApiHygieneChecker"]

_MUTABLE_CALLS = frozenset({"list", "dict", "set", "bytearray"})
_DEF_NODES = (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)

#: (function name, parameter name) pairs retired through a completed
#: deprecation cycle, mapped to their replacement. Scoped per function
#: so legitimate uses of the bare name elsewhere (``RecipeInputs``'s
#: Figure 7 ``n_user`` field, private helpers) stay legal.
_REMOVED_ALIASES: dict[tuple[str, str], str] = {
    ("segment", "n_user"): "n_segments",
}


def _top_level_bindings(tree: ast.Module) -> set[str]:
    """Every name bound by a top-level statement (defs, imports, assigns)."""
    names: set[str] = set()
    for stmt in tree.body:
        if isinstance(stmt, _DEF_NODES):
            names.add(stmt.name)
        elif isinstance(stmt, ast.Import):
            for alias in stmt.names:
                names.add(alias.asname or alias.name.split(".")[0])
        elif isinstance(stmt, ast.ImportFrom):
            for alias in stmt.names:
                names.add(alias.asname or alias.name)
        elif isinstance(stmt, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
            targets = (
                stmt.targets
                if isinstance(stmt, ast.Assign)
                else [stmt.target]
            )
            for target in targets:
                for node in ast.walk(target):
                    if isinstance(node, ast.Name):
                        names.add(node.id)
        elif isinstance(stmt, (ast.If, ast.Try)):
            # Conditional definitions (version gates, optional deps).
            for node in ast.walk(stmt):
                if isinstance(node, _DEF_NODES):
                    names.add(node.name)
                elif isinstance(node, ast.Name) and isinstance(
                    node.ctx, ast.Store
                ):
                    names.add(node.id)
                elif isinstance(node, (ast.Import, ast.ImportFrom)):
                    for alias in node.names:
                        names.add(
                            alias.asname or alias.name.split(".")[0]
                        )
    return names


def _find_all(tree: ast.Module) -> tuple[ast.stmt, list[str]] | None:
    """The ``__all__`` assignment and its string entries, if present."""
    for stmt in tree.body:
        targets: list[ast.expr] = []
        if isinstance(stmt, ast.Assign):
            targets = stmt.targets
            value = stmt.value
        elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
            targets = [stmt.target]
            value = stmt.value
        else:
            continue
        for target in targets:
            if isinstance(target, ast.Name) and target.id == "__all__":
                if isinstance(value, (ast.List, ast.Tuple)):
                    entries = [
                        el.value
                        for el in value.elts
                        if isinstance(el, ast.Constant)
                        and isinstance(el.value, str)
                    ]
                    return stmt, entries
                return stmt, []
    return None


def _uses_annotations(tree: ast.Module) -> bool:
    for node in ast.walk(tree):
        if isinstance(node, ast.AnnAssign):
            return True
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            if node.returns is not None:
                return True
            args = node.args
            every = (
                args.posonlyargs
                + args.args
                + args.kwonlyargs
                + [a for a in (args.vararg, args.kwarg) if a]
            )
            if any(a.annotation is not None for a in every):
                return True
    return False


def _has_future_annotations(tree: ast.Module) -> bool:
    return any(
        isinstance(stmt, ast.ImportFrom)
        and stmt.module == "__future__"
        and any(alias.name == "annotations" for alias in stmt.names)
        for stmt in tree.body
    )


class ApiHygieneChecker(Checker):
    name = "api-hygiene"
    rules = (
        Rule("api-all-undefined", "__all__ exports an unbound name"),
        Rule("api-all-missing", "public definition missing from __all__"),
        Rule("api-mutable-default", "mutable default argument"),
        Rule("api-future-import", "annotations without the future import"),
        Rule("api-removed-alias", "re-grown parameter removed from the API"),
    )

    def check(self, context: FileContext) -> list[Finding]:
        findings: list[Finding] = []
        tree = context.tree

        def report(
            rule: str, message: str, node: ast.AST, col: int | None = None
        ) -> None:
            findings.append(
                Finding(
                    rule=rule,
                    path=context.path,
                    line=node.lineno,
                    col=node.col_offset if col is None else col,
                    message=message,
                )
            )

        found = _find_all(tree)
        if found is not None:
            all_stmt, exported = found
            bound = _top_level_bindings(tree)
            for name in exported:
                if name == "__version__":
                    continue
                if name not in bound:
                    report(
                        "api-all-undefined",
                        f"__all__ exports `{name}` but the module never "
                        "binds it",
                        all_stmt,
                    )
            for stmt in tree.body:
                if (
                    isinstance(stmt, _DEF_NODES)
                    and not stmt.name.startswith("_")
                    and stmt.name not in exported
                ):
                    report(
                        "api-all-missing",
                        f"public `{stmt.name}` is not listed in __all__ "
                        "(add it or rename with a leading underscore)",
                        stmt,
                    )

        for node in ast.walk(tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                args = node.args
                if not node.name.startswith("_"):
                    every = (
                        args.posonlyargs + args.args + args.kwonlyargs
                    )
                    for arg in every:
                        replacement = _REMOVED_ALIASES.get(
                            (node.name, arg.arg)
                        )
                        if replacement is not None:
                            report(
                                "api-removed-alias",
                                f"`{node.name}({arg.arg}=)` was removed "
                                "after a deprecation cycle; the supported "
                                f"name is `{replacement}=`",
                                arg,
                            )
                for default in list(args.defaults) + [
                    d for d in args.kw_defaults if d is not None
                ]:
                    mutable = isinstance(
                        default, (ast.Dict, ast.List, ast.Set)
                    ) or (
                        isinstance(default, ast.Call)
                        and isinstance(default.func, ast.Name)
                        and default.func.id in _MUTABLE_CALLS
                    )
                    if mutable:
                        report(
                            "api-mutable-default",
                            f"mutable default argument in `{node.name}` "
                            "is shared across calls; default to None and "
                            "allocate inside",
                            default,
                        )

        if _uses_annotations(tree) and not _has_future_annotations(tree):
            anchor = tree.body[0] if tree.body else tree
            report(
                "api-future-import",
                "module uses annotations without `from __future__ import "
                "annotations`",
                anchor,
                col=0,
            )
        return findings
