"""Checker: hygiene of the counting/segmentation hot paths.

The four modules that dominate wall time — subset counting, the hash
tree, Greedy's merge loop, and the bubble list — carry rules ordinary
linters do not know:

* ``hot-obs-unguarded`` — observability calls (``metrics.inc``,
  ``registry.observe``, logger methods, …) inside a loop must sit under
  an ``if <registry>.enabled:`` guard. The DESIGN.md overhead contract
  allows one attribute lookup + branch per event when observability is
  off; an unguarded call in a per-transaction or per-merge loop pays a
  dict lookup and argument build instead.
* ``hot-func-import`` — ``import`` inside a function body re-enters the
  import machinery on every call of a hot function; hoist to module
  level.
* ``hot-getattr-default`` — ``getattr(x, "attr", <literal {}/[]...>)``
  allocates the default container on *every* call even when the
  attribute exists; initialize the attribute once in ``__init__``.
* ``hot-attr-hoist`` — inside an *innermost* loop that is itself nested
  in another loop, a method call through a name (``obj.method(...)``)
  re-resolves the attribute each iteration; bind it to a local before
  the loop. Calls under an ``.enabled`` guard are exempt (they only run
  when observability is on, where clarity beats the nanoseconds).
"""

from __future__ import annotations

import ast

from ..base import Checker, FileContext, Rule
from ..findings import Finding

__all__ = ["HotPathChecker", "DEFAULT_HOT_MODULES"]

#: Path suffixes of the modules the paper's cost model marks hot.
DEFAULT_HOT_MODULES: tuple[str, ...] = (
    "mining/counting.py",
    "mining/hash_tree.py",
    # The vertical bitmap engine: pack + AND/popcount kernels and the
    # thread-sharded reduce are the innermost counting loops.
    "mining/bitmap.py",
    "parallel/threads.py",
    "core/greedy.py",
    "core/bubble.py",
    "parallel/counter.py",
    "parallel/pool.py",
    "serve/cache.py",
    "serve/service.py",
    # The gateway plane: admission, tenant bookkeeping, and the HTTP
    # edge all sit on the per-request path of the serving loop.
    "serve/admission.py",
    "serve/gateway.py",
    "serve/tenants.py",
    # The durability plane: the WAL append rides every publish and the
    # replay loop gates boot, so both must keep telemetry guarded and
    # imports at module scope.
    "serve/durability.py",
    "resilience/chaos.py",
    # The export plane: quantile observation rides every serve request
    # and the exposition/ops handlers live beside the service loop.
    "obs/quantiles.py",
    "obs/export.py",
    # Injection points sit inside the level loop and the task-wrap
    # path, so their telemetry must be guarded like any other hot code.
    "resilience/faults.py",
    "resilience/breaker.py",
)

#: Method names that record telemetry; a call to one of these (or to a
#: logger method) inside a loop needs an ``.enabled`` guard.
_OBS_ATTRS = frozenset(
    {
        "inc",
        "observe",
        "set_gauge",
        "record",
        "debug",
        "info",
        "warning",
        "error",
        "exception",
    }
)

_MUTABLE_LITERALS = (ast.Dict, ast.List, ast.Set, ast.ListComp, ast.DictComp)
_LOOPS = (ast.For, ast.While)


def _is_enabled_guard(test: ast.expr) -> bool:
    """Does an ``if`` test consult an ``.enabled`` flag?"""
    for node in ast.walk(test):
        if isinstance(node, ast.Attribute) and node.attr == "enabled":
            return True
        if isinstance(node, ast.Name) and node.id == "enabled":
            return True
    return False


def _stored_names(nodes: list[ast.stmt]) -> set[str]:
    """Names assigned anywhere in *nodes* (loop-variant bindings)."""
    names: set[str] = set()
    for stmt in nodes:
        for node in ast.walk(stmt):
            if isinstance(node, ast.Name) and isinstance(
                node.ctx, (ast.Store, ast.Del)
            ):
                names.add(node.id)
    return names


class _FunctionScanner(ast.NodeVisitor):
    """Walks one function; tracks loop nesting and ``.enabled`` guards."""

    def __init__(self, checker: "HotPathChecker", context: FileContext):
        self.checker = checker
        self.context = context
        self.findings: list[Finding] = []
        self._loop_depth = 0
        self._guard_depth = 0
        #: Loop-variant names of every enclosing loop, innermost last.
        self._loop_variants: list[set[str]] = []

    # -- guards ----------------------------------------------------------

    def visit_If(self, node: ast.If) -> None:
        guarded = _is_enabled_guard(node.test)
        self.visit(node.test)
        if guarded:
            self._guard_depth += 1
        for stmt in node.body:
            self.visit(stmt)
        if guarded:
            self._guard_depth -= 1
        for stmt in node.orelse:
            self.visit(stmt)

    # -- loops -----------------------------------------------------------

    def _visit_loop(self, node: ast.For | ast.While) -> None:
        if isinstance(node, ast.For):
            # Header expressions evaluate in the *enclosing* scope.
            self.visit(node.iter)
            variants = _stored_names(node.body) | _stored_names(node.orelse)
            for sub in ast.walk(node.target):
                if isinstance(sub, ast.Name):
                    variants.add(sub.id)
        else:
            self.visit(node.test)
            variants = _stored_names(node.body) | _stored_names(node.orelse)
        self._loop_depth += 1
        self._loop_variants.append(variants)
        inner = not any(
            isinstance(sub, _LOOPS)
            for stmt in node.body
            for sub in ast.walk(stmt)
        )
        self._is_innermost_nested = self._loop_depth >= 2 and inner
        for stmt in node.body:
            self.visit(stmt)
        self._loop_variants.pop()
        self._loop_depth -= 1
        self._is_innermost_nested = False
        for stmt in node.orelse:
            self.visit(stmt)

    visit_For = _visit_loop
    visit_While = _visit_loop
    _is_innermost_nested = False

    # -- nested defs: scanned independently by the checker ---------------

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._report_func_imports(node)

    visit_AsyncFunctionDef = visit_FunctionDef

    def _report_func_imports(self, node: ast.FunctionDef) -> None:
        for stmt in node.body:
            if isinstance(stmt, (ast.Import, ast.ImportFrom)):
                self._report(
                    "hot-func-import",
                    "import inside a hot-path function re-enters the "
                    "import machinery per call; hoist to module level",
                    stmt,
                )
        # Nested scopes still get loop analysis, from scratch.
        scanner = _FunctionScanner(self.checker, self.context)
        for stmt in node.body:
            scanner.visit(stmt)
        self.findings.extend(scanner.findings)

    # -- calls -----------------------------------------------------------

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        if isinstance(func, ast.Attribute):
            if (
                func.attr in _OBS_ATTRS
                and self._loop_depth > 0
                and self._guard_depth == 0
            ):
                self._report(
                    "hot-obs-unguarded",
                    f"observability call `.{func.attr}(...)` inside a "
                    "hot loop without an `.enabled` guard; the overhead "
                    "contract allows only a lookup+branch when off",
                    node,
                )
            elif (
                self._is_innermost_nested
                and self._guard_depth == 0
                and isinstance(func.value, ast.Name)
                and func.value.id not in self._loop_variants[-1]
                and not (
                    len(self._loop_variants) >= 2
                    and func.value.id in self._loop_variants[-2]
                )
            ):
                self._report(
                    "hot-attr-hoist",
                    f"`{func.value.id}.{func.attr}(...)` re-resolves the "
                    "attribute every inner-loop iteration; bind "
                    f"`{func.value.id}.{func.attr}` to a local before "
                    "the loop",
                    node,
                )
        elif (
            isinstance(func, ast.Name)
            and func.id == "getattr"
            and len(node.args) == 3
            and isinstance(node.args[2], _MUTABLE_LITERALS + (ast.Call,))
        ):
            self._report(
                "hot-getattr-default",
                "getattr(..., <allocated default>) builds the default "
                "container on every call; initialize the attribute in "
                "__init__ instead",
                node,
            )
        self.generic_visit(node)

    def _report(self, rule: str, message: str, node: ast.AST) -> None:
        self.findings.append(
            Finding(
                rule=rule,
                path=self.context.path,
                line=node.lineno,
                col=node.col_offset,
                message=message,
            )
        )


class HotPathChecker(Checker):
    name = "hot-path"
    rules = (
        Rule("hot-obs-unguarded", "unguarded obs call in a hot loop"),
        Rule("hot-func-import", "import inside a hot-path function"),
        Rule("hot-getattr-default", "allocating getattr default"),
        Rule("hot-attr-hoist", "hoistable attribute lookup in inner loop"),
    )

    def __init__(self, hot_modules: tuple[str, ...] = DEFAULT_HOT_MODULES):
        self.hot_modules = hot_modules

    def applies_to(self, context: FileContext) -> bool:
        return context.matches_any(self.hot_modules)

    def check(self, context: FileContext) -> list[Finding]:
        findings: list[Finding] = []
        for node in context.tree.body:
            if isinstance(node, ast.ClassDef):
                for stmt in node.body:
                    if isinstance(stmt, ast.FunctionDef):
                        findings.extend(self._scan(context, stmt))
            elif isinstance(node, ast.FunctionDef):
                findings.extend(self._scan(context, node))
        return findings

    def _scan(
        self, context: FileContext, func: ast.FunctionDef
    ) -> list[Finding]:
        scanner = _FunctionScanner(self, context)
        scanner._report_func_imports(func)
        return scanner.findings
