"""Checker plumbing: per-file and whole-program context, checker API.

A checker is a small object that inspects one parsed module at a time.
The engine feeds it a :class:`FileContext` (path, source, AST) and
collects :class:`~repro.analysis.findings.Finding` objects. Checkers
are pure — no I/O, no mutation of the tree — which keeps them trivially
testable from source strings.

Since the whole-program pass, checkers may also look *across* files: the
engine's first pass builds a :class:`ProjectContext` — import graph,
qualified-name symbol table, coroutine classification, and the
acquires-resource annotation set — and the second pass hands it to every
checker through :meth:`Checker.check_project`. Per-file checkers ignore
it (the default implementation delegates to :meth:`Checker.check`);
flow-aware checkers override ``check_project`` and resolve names through
the index.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field

from .findings import Finding

__all__ = [
    "FileContext",
    "ProjectContext",
    "AcquireSite",
    "ResourceSpec",
    "RESOURCE_SPECS",
    "Checker",
    "Rule",
]


@dataclass(frozen=True)
class Rule:
    """Metadata of one rule id a checker can emit."""

    id: str
    summary: str


@dataclass
class FileContext:
    """Everything a checker may look at for one module."""

    #: Display path (as given on the command line / collected).
    path: str
    #: Raw source text.
    source: str
    #: Parsed module.
    tree: ast.Module
    #: Source split into lines (for pragma scanning and excerpts).
    lines: list[str] = field(init=False)
    #: Forward-slash form of :attr:`path` for suffix matching.
    posix_path: str = field(init=False)

    def __post_init__(self) -> None:
        self.lines = self.source.splitlines()
        self.posix_path = self.path.replace("\\", "/")

    def matches_any(self, suffixes: tuple[str, ...]) -> bool:
        """True if the file path ends with one of *suffixes*."""
        return any(self.posix_path.endswith(suffix) for suffix in suffixes)

    def module_name(self) -> str:
        """Best-effort dotted module name of this file.

        Everything after the last ``src/`` segment (the packaging
        convention of this repo); the whole relative path otherwise.
        ``pkg/__init__.py`` maps to ``pkg``.
        """
        parts = [part for part in self.posix_path.split("/") if part]
        if "src" in parts:
            parts = parts[len(parts) - parts[::-1].index("src"):]
        if parts and parts[-1].endswith(".py"):
            parts[-1] = parts[-1][:-3]
        if parts and parts[-1] == "__init__":
            parts = parts[:-1]
        return ".".join(parts) or "<module>"


@dataclass(frozen=True)
class ResourceSpec:
    """How one acquirable resource kind is released."""

    #: Human label used in messages ("shared-memory segment", …).
    kind: str
    #: Method names that release the resource (any one suffices).
    release_methods: frozenset[str]
    #: For factories returning tuples, which element is the resource
    #: (``None`` = the return value itself).
    tuple_index: int | None = None


#: The acquires-resource annotation set: callables (matched by their
#: terminal name) whose return value holds an OS resource this repo
#: must release deterministically. ``open`` matches only the builtin
#: (bare-name calls), never ``x.open(...)`` methods.
RESOURCE_SPECS: dict[str, ResourceSpec] = {
    "SharedMemory": ResourceSpec(
        "shared-memory segment", frozenset({"close", "unlink"})
    ),
    "publish_int64": ResourceSpec(
        "shared-memory segment", frozenset({"close", "unlink"})
    ),
    "attach_int64": ResourceSpec(
        "shared-memory handle", frozenset({"close"}), tuple_index=1
    ),
    "WorkerPool": ResourceSpec(
        "worker pool", frozenset({"close", "kill"})
    ),
    "SupervisedPool": ResourceSpec(
        "worker pool", frozenset({"close", "kill"})
    ),
    "ParallelCounter": ResourceSpec(
        "parallel counter", frozenset({"close"})
    ),
    "ParallelOSSMPruner": ResourceSpec(
        "parallel pruner", frozenset({"close"})
    ),
    "BoundQueryService": ResourceSpec(
        "bound-query service", frozenset({"aclose"})
    ),
    "OpsServer": ResourceSpec("ops endpoint", frozenset({"aclose"})),
    "open": ResourceSpec("file handle", frozenset({"close"})),
    # Context-manager factories: entering the ``with`` is what runs the
    # body at all, so a call never wrapped in one is always a defect.
    "plain_pool": ResourceSpec("worker pool", frozenset()),
    "atomic_path": ResourceSpec("atomic artifact", frozenset()),
}


@dataclass(frozen=True)
class AcquireSite:
    """One resource acquisition found by the project index."""

    path: str
    #: Qualified name of the enclosing function ("" at module level).
    function: str
    #: The function def node owning the acquire (None at module level).
    func_node: ast.AST | None
    #: The statement the acquire call sits in.
    stmt: ast.stmt
    call: ast.Call
    spec: ResourceSpec
    #: Local variable bound to the resource; None when the result is
    #: dropped or immediately handed elsewhere.
    variable: str | None
    #: How the call site uses the result: "assigned", "dropped",
    #: "with", "escaped", "self".
    usage: str


class ProjectContext:
    """The whole-program index built by the engine's first pass.

    Per ``lint_paths`` run there is exactly one instance; checkers may
    memoize derived structure in :attr:`cache` keyed by checker name so
    pass 2 stays linear in project size.
    """

    def __init__(self, files: dict[str, FileContext]):
        self.files = files
        #: path → dotted module name.
        self.modules: dict[str, str] = {}
        #: dotted module name → path (reverse of :attr:`modules`).
        self.module_paths: dict[str, str] = {}
        #: path → {local alias → qualified imported name} (the import
        #: graph, with relative imports resolved against the module).
        self.aliases: dict[str, dict[str, str]] = {}
        #: qualified name → def node (functions, classes, methods).
        self.symbols: dict[str, ast.AST] = {}
        #: qualified name → defining path.
        self.symbol_paths: dict[str, str] = {}
        #: qualified names of ``async def`` functions/methods (the
        #: coroutine classification: calling one returns a coroutine).
        self.async_functions: set[str] = set()
        #: path → acquire sites (the acquires-resource annotations).
        self.acquires: dict[str, list[AcquireSite]] = {}
        #: bare class names participating in the ResilienceError
        #: hierarchy (seeded by the class of that name, closed over
        #: project-local subclassing).
        self.resilience_errors: set[str] = set()
        #: Scratch space for checker-derived indexes (keyed by checker
        #: name), so per-file pass-2 calls don't redo project walks.
        self.cache: dict[str, object] = {}
        for context in files.values():
            self._index_module(context)
        self._close_exception_hierarchy()

    @classmethod
    def single(cls, context: FileContext) -> "ProjectContext":
        """A one-file project (``lint_source`` and unit tests)."""
        return cls({context.path: context})

    # -- pass-1 indexing --------------------------------------------------

    def _index_module(self, context: FileContext) -> None:
        module = context.module_name()
        self.modules[context.path] = module
        self.module_paths[module] = context.path
        self.aliases[context.path] = _import_aliases(context.tree, module)
        for stmt in context.tree.body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self._add_symbol(context.path, f"{module}.{stmt.name}", stmt)
            elif isinstance(stmt, ast.ClassDef):
                qualified = f"{module}.{stmt.name}"
                self._add_symbol(context.path, qualified, stmt)
                for sub in stmt.body:
                    if isinstance(
                        sub, (ast.FunctionDef, ast.AsyncFunctionDef)
                    ):
                        self._add_symbol(
                            context.path, f"{qualified}.{sub.name}", sub
                        )
                if stmt.name == "ResilienceError":
                    self.resilience_errors.add(stmt.name)
        self.acquires[context.path] = _find_acquires(context)

    def _add_symbol(self, path: str, qualified: str, node: ast.AST) -> None:
        self.symbols[qualified] = node
        self.symbol_paths[qualified] = path
        if isinstance(node, ast.AsyncFunctionDef):
            self.async_functions.add(qualified)

    def _close_exception_hierarchy(self) -> None:
        """Transitively collect subclasses of ``ResilienceError``."""
        # Seed with the canonical hierarchy even when errors.py is not
        # part of the linted tree (e.g. a single-file lint of serve/):
        # the names are project-reserved either way.
        self.resilience_errors.update(
            {
                "ResilienceError", "IntegrityError", "CorruptArtifact",
                "CheckpointMismatch", "InjectedFault", "PoolFailure",
            }
        )
        changed = True
        while changed:
            changed = False
            for qualified, node in self.symbols.items():
                if not isinstance(node, ast.ClassDef):
                    continue
                name = qualified.rsplit(".", 1)[-1]
                if name in self.resilience_errors:
                    continue
                for base in node.bases:
                    base_name = _terminal_name(base)
                    if base_name in self.resilience_errors:
                        self.resilience_errors.add(name)
                        changed = True
                        break

    # -- name resolution --------------------------------------------------

    def resolve(self, path: str, dotted: str) -> str:
        """A dotted local name as a project-qualified name.

        The head travels through the file's import aliases; a head
        defined in the same module resolves module-locally; anything
        else is returned verbatim (stdlib / third-party names keep
        their spelling, which is what the checkers match against).
        """
        head, _, rest = dotted.partition(".")
        aliases = self.aliases.get(path, {})
        if head in aliases:
            resolved = aliases[head]
        else:
            module = self.modules.get(path, "")
            local = f"{module}.{head}"
            resolved = local if local in self.symbols else head
        return f"{resolved}.{rest}" if rest else resolved

    def resolve_call(self, path: str, func: ast.expr) -> str | None:
        """Qualified name of a call's target, or None if unresolvable."""
        dotted = _dotted_name(func)
        if dotted is None:
            return None
        return self.resolve(path, dotted)

    def is_coroutine_call(self, path: str, node: ast.Call) -> bool:
        """Does calling *node* produce a coroutine (async def target)?

        Resolution goes through the index: plain names and dotted
        module paths via the import graph, ``self.method`` against the
        enclosing class's methods (the checker resolves that spelling
        before asking).
        """
        qualified = self.resolve_call(path, node.func)
        return qualified is not None and qualified in self.async_functions


def _dotted_name(node: ast.expr) -> str | None:
    """``a.b.c`` attribute chains (and bare names) as dotted strings."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    parts.append(node.id)
    return ".".join(reversed(parts))


def _terminal_name(node: ast.expr) -> str | None:
    """The final identifier of a name/attribute expression."""
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Name):
        return node.id
    return None


def _import_aliases(tree: ast.Module, module: str) -> dict[str, str]:
    """Local alias → qualified name, with relative imports resolved."""
    aliases: dict[str, str] = {}
    package = module.split(".")
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.asname:
                    aliases[alias.asname] = alias.name
                else:
                    head = alias.name.split(".")[0]
                    aliases[head] = head
        elif isinstance(node, ast.ImportFrom):
            if node.level:
                base = package[: len(package) - node.level]
                if node.module:
                    base = base + node.module.split(".")
                prefix = ".".join(base)
            else:
                prefix = node.module or ""
            for alias in node.names:
                if alias.name == "*":
                    continue
                local = alias.asname or alias.name
                aliases[local] = (
                    f"{prefix}.{alias.name}" if prefix else alias.name
                )
    return aliases


def _spec_for_call(node: ast.Call) -> ResourceSpec | None:
    """The resource spec a call acquires, if any."""
    func = node.func
    if isinstance(func, ast.Name):
        name = func.id
    elif isinstance(func, ast.Attribute):
        name = func.attr
        if name == "open":
            # Only the builtin acquires; ``store.open(...)`` methods
            # and ``Path.open`` are their owners' business.
            return None
    else:
        return None
    return RESOURCE_SPECS.get(name)


def _find_acquires(context: FileContext) -> list[AcquireSite]:
    """Every resource acquisition in one module, classified by usage."""
    sites: list[AcquireSite] = []
    module = context.module_name()

    def scan_function(
        func: ast.FunctionDef | ast.AsyncFunctionDef, qualified: str
    ) -> None:
        for stmt in _function_statements(func):
            sites.extend(
                _classify_stmt(context.path, qualified, func, stmt)
            )

    for stmt in context.tree.body:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            scan_function(stmt, f"{module}.{stmt.name}")
        elif isinstance(stmt, ast.ClassDef):
            for sub in stmt.body:
                if isinstance(sub, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    scan_function(sub, f"{module}.{stmt.name}.{sub.name}")
    return sites


def _function_statements(func: ast.AST) -> list[ast.stmt]:
    """All statements of *func*, excluding nested def/class bodies."""
    out: list[ast.stmt] = []
    stack: list[ast.stmt] = list(getattr(func, "body", []))
    while stack:
        stmt = stack.pop()
        out.append(stmt)
        if isinstance(
            stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
        ):
            continue
        for child in ast.iter_child_nodes(stmt):
            if isinstance(child, ast.stmt):
                stack.append(child)
            # Statement lists live one level down (bodies, orelse,
            # handlers, finalbody) — iter_child_nodes surfaces
            # handlers as excepthandler nodes.
            elif isinstance(child, ast.excepthandler):
                stack.extend(child.body)
    return out


def _classify_stmt(
    path: str,
    qualified: str,
    func: ast.AST,
    stmt: ast.stmt,
) -> list[AcquireSite]:
    sites: list[AcquireSite] = []
    with_exprs: set[int] = set()
    if isinstance(stmt, (ast.With, ast.AsyncWith)):
        for item in stmt.items:
            for sub in ast.walk(item.context_expr):
                with_exprs.add(id(sub))

    for node in ast.walk(stmt):
        if not isinstance(node, ast.Call):
            continue
        spec = _spec_for_call(node)
        if spec is None:
            continue
        usage = "escaped"
        variable: str | None = None
        if id(node) in with_exprs:
            usage = "with"
        elif isinstance(stmt, ast.Expr) and stmt.value is node:
            usage = "dropped"
        elif (
            isinstance(stmt, ast.Assign)
            and stmt.value is node
            and len(stmt.targets) == 1
        ):
            target = stmt.targets[0]
            if spec.tuple_index is not None and isinstance(
                target, ast.Tuple
            ):
                element = (
                    target.elts[spec.tuple_index]
                    if spec.tuple_index < len(target.elts)
                    else None
                )
                if isinstance(element, ast.Name):
                    usage, variable = "assigned", element.id
            elif isinstance(target, ast.Name):
                usage, variable = "assigned", target.id
            elif isinstance(target, ast.Attribute):
                # Ownership handed to an object (self._pool = ...);
                # the object's close() owns the lifecycle.
                usage = "self"
        sites.append(
            AcquireSite(
                path=path,
                function=qualified,
                func_node=func,
                stmt=stmt,
                call=node,
                spec=spec,
                variable=variable,
                usage=usage,
            )
        )
    return sites


class Checker:
    """Base class: subclasses set :attr:`name`/:attr:`rules`, implement
    :meth:`check` (or :meth:`check_project` for flow-aware checkers),
    and may narrow :meth:`applies_to`."""

    #: Short checker name (used by ``--select`` at checker granularity).
    name: str = ""
    #: Rules this checker can emit.
    rules: tuple[Rule, ...] = ()

    def applies_to(self, context: FileContext) -> bool:
        """Whether this checker wants to see *context* at all."""
        return True

    def check(self, context: FileContext) -> list[Finding]:
        """Return every violation found in *context* alone.

        Project-aware checkers (those overriding :meth:`check_project`)
        get a single-file index here, so unit tests can keep feeding
        them source strings.
        """
        if type(self).check_project is not Checker.check_project:
            return self.check_project(
                context, ProjectContext.single(context)
            )
        raise NotImplementedError

    def check_project(
        self, context: FileContext, project: ProjectContext
    ) -> list[Finding]:
        """Violations in *context*, with the whole-program index.

        The default delegates to :meth:`check`, so per-file checkers
        need not know the project pass exists.
        """
        return self.check(context)

    def rule_ids(self) -> tuple[str, ...]:
        return tuple(rule.id for rule in self.rules)
