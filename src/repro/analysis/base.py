"""Checker plumbing: per-file context and the checker interface.

A checker is a small object that inspects one parsed module at a time.
The engine feeds it a :class:`FileContext` (path, source, AST) and
collects :class:`~repro.analysis.findings.Finding` objects. Checkers
are pure — no I/O, no mutation of the tree — which keeps them trivially
testable from source strings.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field

from .findings import Finding

__all__ = ["FileContext", "Checker", "Rule"]


@dataclass(frozen=True)
class Rule:
    """Metadata of one rule id a checker can emit."""

    id: str
    summary: str


@dataclass
class FileContext:
    """Everything a checker may look at for one module."""

    #: Display path (as given on the command line / collected).
    path: str
    #: Raw source text.
    source: str
    #: Parsed module.
    tree: ast.Module
    #: Source split into lines (for pragma scanning and excerpts).
    lines: list[str] = field(init=False)
    #: Forward-slash form of :attr:`path` for suffix matching.
    posix_path: str = field(init=False)

    def __post_init__(self) -> None:
        self.lines = self.source.splitlines()
        self.posix_path = self.path.replace("\\", "/")

    def matches_any(self, suffixes: tuple[str, ...]) -> bool:
        """True if the file path ends with one of *suffixes*."""
        return any(self.posix_path.endswith(suffix) for suffix in suffixes)


class Checker:
    """Base class: subclasses set :attr:`name`/:attr:`rules`, implement
    :meth:`check`, and may narrow :meth:`applies_to`."""

    #: Short checker name (used by ``--select`` at checker granularity).
    name: str = ""
    #: Rules this checker can emit.
    rules: tuple[Rule, ...] = ()

    def applies_to(self, context: FileContext) -> bool:
        """Whether this checker wants to see *context* at all."""
        return True

    def check(self, context: FileContext) -> list[Finding]:
        """Return every violation found in *context*."""
        raise NotImplementedError

    def rule_ids(self) -> tuple[str, ...]:
        return tuple(rule.id for rule in self.rules)
