"""The ``repro-ossm lint`` subcommand.

Exit codes follow the convention of compiler-style gates:

* ``0`` — no findings (clean tree, or everything grandfathered);
* ``1`` — at least one finding (or a file-level error);
* ``2`` — usage error (unknown rule selection, malformed baseline).
"""

from __future__ import annotations

import argparse
import sys
from typing import TextIO

from .engine import (
    apply_baseline,
    default_checkers,
    lint_paths,
    load_baseline,
    prune_baseline,
    save_fingerprints,
    select_checkers,
    write_baseline,
)
from .findings import Finding

__all__ = ["add_lint_arguments", "render_github", "run_lint"]

EXIT_CLEAN = 0
EXIT_FINDINGS = 1
EXIT_USAGE = 2


def add_lint_arguments(parser: argparse.ArgumentParser) -> None:
    """Attach the lint options to an (sub)parser."""
    parser.add_argument(
        "paths", nargs="*", default=["src"],
        help="files or directories to lint (default: src)",
    )
    parser.add_argument(
        "--format", choices=("text", "json", "github"), default="text",
        help="report format (default: text; 'github' emits workflow "
        "commands that render as inline PR annotations)",
    )
    parser.add_argument(
        "--select", default=None, metavar="NAMES",
        help="comma-separated checker names or rule ids to run",
    )
    parser.add_argument(
        "--baseline", default=None, metavar="PATH",
        help="JSON baseline of grandfathered findings",
    )
    parser.add_argument(
        "--write-baseline", action="store_true",
        help="write the current findings to --baseline and exit 0",
    )
    parser.add_argument(
        "--prune-baseline", action="store_true",
        help="drop baseline fingerprints that no longer fire, rewrite "
        "--baseline, and report the stale count",
    )
    parser.add_argument(
        "--list-rules", action="store_true",
        help="print every rule id with its summary and exit",
    )


def render_github(finding: Finding) -> str:
    """One GitHub Actions workflow command (`::error ...`) per finding.

    Newlines in messages would terminate the command early; GitHub's
    own escaping convention is %0A et al.
    """
    message = (
        finding.message.replace("%", "%25")
        .replace("\r", "%0D")
        .replace("\n", "%0A")
    )
    level = "error" if finding.severity == "error" else "warning"
    return (
        f"::{level} file={finding.path},line={finding.line},"
        f"endLine={max(finding.line, finding.end_line)},"
        f"col={finding.col + 1},title={finding.rule}::{message}"
    )


def run_lint(
    args: argparse.Namespace, out: TextIO | None = None
) -> int:
    """Execute the lint subcommand; returns the process exit code."""
    sink = sys.stdout if out is None else out
    checkers = default_checkers()

    if args.list_rules:
        for checker in checkers:
            for rule in checker.rules:
                sink.write(f"{rule.id:24s} {rule.summary}\n")
        return EXIT_CLEAN

    try:
        checkers = select_checkers(checkers, args.select)
    except ValueError as exc:
        sink.write(f"error: {exc}\n")
        return EXIT_USAGE
    if args.write_baseline and not args.baseline:
        sink.write("error: --write-baseline requires --baseline PATH\n")
        return EXIT_USAGE
    if getattr(args, "prune_baseline", False) and not args.baseline:
        sink.write("error: --prune-baseline requires --baseline PATH\n")
        return EXIT_USAGE

    result = lint_paths(list(args.paths), checkers=checkers)

    if args.write_baseline:
        write_baseline(args.baseline, result.findings)
        sink.write(
            f"wrote baseline with {len(result.findings)} finding(s) "
            f"to {args.baseline}\n"
        )
        return EXIT_CLEAN

    if getattr(args, "prune_baseline", False):
        try:
            baseline = load_baseline(args.baseline)
        except (OSError, ValueError) as exc:
            sink.write(f"error: {exc}\n")
            return EXIT_USAGE
        pruned, stale = prune_baseline(baseline, result.findings)
        save_fingerprints(args.baseline, pruned)
        sink.write(
            f"pruned {stale} stale grandfathered finding(s); "
            f"{sum(pruned.values())} remain in {args.baseline}\n"
        )
        return EXIT_CLEAN

    if args.baseline:
        try:
            baseline = load_baseline(args.baseline)
        except (OSError, ValueError) as exc:
            sink.write(f"error: {exc}\n")
            return EXIT_USAGE
        result = apply_baseline(result, baseline)

    if args.format == "json":
        import json

        sink.write(json.dumps(result.to_dict(), indent=2) + "\n")
    elif args.format == "github":
        for finding in result.findings:
            sink.write(render_github(finding) + "\n")
        for error in result.errors:
            sink.write(f"::error title=lint::{error}\n")
        n = len(result.findings)
        sink.write(f"{n} finding(s), {len(result.errors)} error(s)\n")
    else:
        for finding in result.findings:
            sink.write(finding.render() + "\n")
        for error in result.errors:
            sink.write(f"error: {error}\n")
        n, s = len(result.findings), len(result.suppressed)
        summary = f"{n} finding(s)"
        if s:
            summary += f", {s} suppressed"
        if result.errors:
            summary += f", {len(result.errors)} error(s)"
        sink.write(summary + "\n")

    return EXIT_FINDINGS if result.failed else EXIT_CLEAN
