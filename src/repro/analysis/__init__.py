"""repro.analysis — project-specific static analysis.

A two-pass, whole-program AST linter (stdlib only) that machine-checks
the contracts generic tools cannot know. Pass 1 builds a project index
(import graph, symbol table, coroutine classification, acquires-resource
annotations); pass 2 runs per-file checkers (``CandidatePruner``
protocol, hot-path overhead contract, Equation (1) integer discipline,
API hygiene) and flow-aware project checkers (async hygiene, resource
lifecycle via per-function CFGs, fork safety, exception safety). Run it
as ``repro-ossm lint [paths…]`` or from Python::

    from repro.analysis import lint_paths

    result = lint_paths(["src"])
    assert not result.failed, result.findings

See DESIGN.md §8 ("Enforced invariants") and §13 ("Enforced concurrency
& lifecycle invariants") for what each rule protects.
"""

from .base import (
    AcquireSite,
    Checker,
    FileContext,
    ProjectContext,
    ResourceSpec,
    RESOURCE_SPECS,
    Rule,
)
from .cfg import FunctionCFG, build_cfg
from .checkers import (
    ApiHygieneChecker,
    AsyncHygieneChecker,
    BoundSoundnessChecker,
    ExceptionSafetyChecker,
    ForkSafetyChecker,
    HotPathChecker,
    PrunerProtocolChecker,
    ResourceLifecycleChecker,
    build_default_checkers,
)
from .engine import (
    LintResult,
    apply_baseline,
    default_checkers,
    lint_paths,
    lint_source,
    load_baseline,
    prune_baseline,
    select_checkers,
    write_baseline,
)
from .findings import Finding, sort_findings

__all__ = [
    "AcquireSite",
    "Checker",
    "FileContext",
    "ProjectContext",
    "ResourceSpec",
    "RESOURCE_SPECS",
    "Rule",
    "FunctionCFG",
    "build_cfg",
    "Finding",
    "sort_findings",
    "LintResult",
    "lint_source",
    "lint_paths",
    "default_checkers",
    "select_checkers",
    "load_baseline",
    "write_baseline",
    "apply_baseline",
    "prune_baseline",
    "ApiHygieneChecker",
    "AsyncHygieneChecker",
    "BoundSoundnessChecker",
    "ExceptionSafetyChecker",
    "ForkSafetyChecker",
    "HotPathChecker",
    "PrunerProtocolChecker",
    "ResourceLifecycleChecker",
    "build_default_checkers",
]
