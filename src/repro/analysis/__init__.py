"""repro.analysis — project-specific static analysis.

A small AST-based linter (stdlib only) that machine-checks the
contracts generic tools cannot know: the ``CandidatePruner`` protocol,
the hot-path overhead contract from the observability subsystem, and
the integer discipline behind Equation (1) soundness. Run it as
``repro-ossm lint [paths…]`` or from Python::

    from repro.analysis import lint_paths

    result = lint_paths(["src"])
    assert not result.failed, result.findings

See DESIGN.md §8 ("Enforced invariants") for what each rule protects.
"""

from .base import Checker, FileContext, Rule
from .checkers import (
    ApiHygieneChecker,
    BoundSoundnessChecker,
    HotPathChecker,
    PrunerProtocolChecker,
    build_default_checkers,
)
from .engine import (
    LintResult,
    apply_baseline,
    default_checkers,
    lint_paths,
    lint_source,
    load_baseline,
    select_checkers,
    write_baseline,
)
from .findings import Finding, sort_findings

__all__ = [
    "Checker",
    "FileContext",
    "Rule",
    "Finding",
    "sort_findings",
    "LintResult",
    "lint_source",
    "lint_paths",
    "default_checkers",
    "select_checkers",
    "load_baseline",
    "write_baseline",
    "apply_baseline",
    "ApiHygieneChecker",
    "BoundSoundnessChecker",
    "HotPathChecker",
    "PrunerProtocolChecker",
    "build_default_checkers",
]
