"""Lint findings: the unit of output of every checker.

A :class:`Finding` pins a rule violation to a file position and carries
a *fingerprint* — a location-insensitive identity used by the baseline
mechanism (:mod:`repro.analysis.engine`) so that grandfathered findings
survive unrelated edits that shift line numbers.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field

__all__ = ["Finding", "Severity", "sort_findings"]

#: Allowed severities, mildest last. Every severity fails the lint
#: gate; the distinction only orders and labels the report.
Severity = str

_SEVERITIES = ("error", "warning")


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source position."""

    rule: str
    path: str
    line: int
    col: int
    message: str
    severity: Severity = field(default="error")
    #: Last line of the flagged statement (pragma scanning covers the
    #: whole ``line..end_line`` range, so a ``# lint: skip`` on the
    #: closing paren of a multi-line call works). Defaults to ``line``.
    end_line: int = field(default=0)

    def __post_init__(self) -> None:
        if self.severity not in _SEVERITIES:
            raise ValueError(f"unknown severity {self.severity!r}")
        if self.end_line < self.line:
            object.__setattr__(self, "end_line", self.line)

    @property
    def fingerprint(self) -> str:
        """Stable identity for baselining: rule + file + message digest.

        Line and column are deliberately excluded so a grandfathered
        finding keeps matching after unrelated edits move it around.
        """
        digest = hashlib.sha256(
            f"{self.rule}\x1f{self.path}\x1f{self.message}".encode()
        ).hexdigest()
        return digest[:16]

    def to_dict(self) -> dict[str, object]:
        """JSON-ready representation (used by ``repro lint --format json``)."""
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "end_line": self.end_line,
            "col": self.col,
            "message": self.message,
            "severity": self.severity,
            "fingerprint": self.fingerprint,
        }

    def render(self) -> str:
        """One-line human-readable form: ``path:line:col: rule message``."""
        return (
            f"{self.path}:{self.line}:{self.col}: "
            f"[{self.rule}] {self.message}"
        )


def sort_findings(findings: list[Finding]) -> list[Finding]:
    """Deterministic report order: by file, position, then rule."""
    return sorted(
        findings, key=lambda f: (f.path, f.line, f.col, f.rule, f.message)
    )
