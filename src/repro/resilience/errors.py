"""Typed errors of the resilience subsystem.

Every failure the recovery machinery can *diagnose* gets its own type,
so callers (and the CLI) can turn operational faults into one-line
messages instead of leaking a numpy/zipfile/pickle traceback:

* :class:`ResilienceError` — family root;
* :class:`IntegrityError` — an artifact failed verification (wrong
  kind, future format version, …);
* :class:`CorruptArtifact` — the bytes on disk are damaged: truncated
  archive, failed checksum, unparseable payload;
* :class:`CheckpointMismatch` — a checkpoint was written by a
  different run configuration than the one trying to resume from it;
* :class:`InjectedFault` — raised by the fault injector at an enabled
  injection point (test/chaos runs only; never with injection off);
* :class:`PoolFailure` — a supervised worker pool exhausted its
  rebuild budget without completing the batch.
"""

from __future__ import annotations

__all__ = [
    "ResilienceError",
    "IntegrityError",
    "CorruptArtifact",
    "CheckpointMismatch",
    "InjectedFault",
    "PoolFailure",
]


class ResilienceError(RuntimeError):
    """Base class of every resilience-subsystem failure."""


class IntegrityError(ResilienceError):
    """An artifact failed verification (kind/version/structure)."""


class CorruptArtifact(IntegrityError):
    """The artifact's bytes are damaged: truncation, bit-flips, or an
    unparseable payload. The message names the offending path."""

    def __init__(self, path: object, reason: str) -> None:
        super().__init__(f"corrupt artifact {path}: {reason}")
        self.path = str(path)
        self.reason = reason


class CheckpointMismatch(ResilienceError):
    """A checkpoint's fingerprint does not match the resuming run.

    Resuming from state produced under a different database, algorithm,
    or threshold would silently corrupt the result; refusing is the
    only sound reaction.
    """

    def __init__(self, path: object, expected: str, found: str) -> None:
        super().__init__(
            f"checkpoint {path} belongs to a different run: "
            f"fingerprint {found}, expected {expected}"
        )
        self.path = str(path)
        self.expected = expected
        self.found = found


class InjectedFault(ResilienceError):
    """Deterministic failure raised by an enabled fault-injection rule."""

    def __init__(self, point: str) -> None:
        super().__init__(f"injected fault at {point!r}")
        self.point = point


class PoolFailure(ResilienceError):
    """A supervised pool could not complete a batch within its rebuild
    budget; callers degrade to the serial path (which is always exact)."""

    def __init__(self, attempts: int, cause: str) -> None:
        super().__init__(
            f"worker pool failed {attempts} consecutive attempts ({cause})"
        )
        self.attempts = attempts
        self.cause = cause
