"""Circuit breaker and bounded exponential backoff.

Two small, deterministic-by-construction primitives the recovery paths
share:

* :class:`Backoff` — bounded exponential delays with seeded jitter for
  pool rebuilds. The jitter is drawn from a ``random.Random`` owned by
  the instance, so a seeded run retries on an identical schedule.
* :class:`CircuitBreaker` — the classic closed → open → half-open
  state machine. While *closed*, calls flow and consecutive failures
  are counted; at ``failure_threshold`` the breaker *opens* and
  :meth:`allow` answers False (callers take their degraded path — the
  serial counting engine, the serial Equation (1) evaluation) without
  touching the broken dependency. After ``recovery_time`` seconds one
  probe is let through (*half-open*): success closes the breaker,
  failure re-opens it for another full ``recovery_time``.

State transitions emit ``resilience.breaker.*`` counters through the
active metrics registry; the breaker itself never sleeps and never
raises — it only answers :meth:`allow`.
"""

from __future__ import annotations

import random
import threading
import time
from typing import Callable

from ..obs.log import get_logger
from ..obs.metrics import get_registry

__all__ = ["Backoff", "CircuitBreaker", "CLOSED", "OPEN", "HALF_OPEN"]

logger = get_logger(__name__)

CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half-open"


class Backoff:
    """Bounded exponential backoff with seeded jitter.

    ``delay(n) = min(base * factor**n, max_delay) * (1 + U[0, jitter])``
    for the *n*-th consecutive failure (0-based). Call :meth:`reset`
    after a success so the next incident starts from ``base`` again.
    """

    def __init__(
        self,
        base: float = 0.05,
        factor: float = 2.0,
        max_delay: float = 2.0,
        jitter: float = 0.25,
        seed: int = 0,
    ) -> None:
        if base <= 0 or factor < 1.0 or max_delay < base:
            raise ValueError("need base > 0, factor >= 1, max_delay >= base")
        if not 0.0 <= jitter <= 1.0:
            raise ValueError("jitter must lie in [0, 1]")
        self.base = base
        self.factor = factor
        self.max_delay = max_delay
        self.jitter = jitter
        self._rng = random.Random(seed)
        self._failures = 0

    @property
    def failures(self) -> int:
        return self._failures

    def reset(self) -> None:
        self._failures = 0

    def next_delay(self) -> float:
        """The delay for the current failure; advances the schedule."""
        raw = min(self.base * self.factor**self._failures, self.max_delay)
        self._failures += 1
        return raw * (1.0 + self._rng.uniform(0.0, self.jitter))

    def sleep(self) -> float:
        """Sleep :meth:`next_delay`; returns the seconds slept."""
        delay = self.next_delay()
        time.sleep(delay)
        return delay


class CircuitBreaker:
    """Closed → open → half-open breaker guarding a flaky dependency.

    Parameters
    ----------
    failure_threshold:
        Consecutive :meth:`record_failure` calls (while closed) that
        trip the breaker open.
    recovery_time:
        Seconds the breaker stays open before letting one probe
        through.
    name:
        Label used in metrics and log lines.
    clock:
        Monotonic time source; injectable for deterministic tests.

    Thread-safe; every method takes the instance lock.
    """

    def __init__(
        self,
        failure_threshold: int = 3,
        recovery_time: float = 30.0,
        name: str = "breaker",
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if failure_threshold < 1:
            raise ValueError("failure_threshold must be >= 1")
        if recovery_time <= 0:
            raise ValueError("recovery_time must be positive")
        self.failure_threshold = failure_threshold
        self.recovery_time = recovery_time
        self.name = name
        self._clock = clock
        self._lock = threading.Lock()
        self._state = CLOSED
        self._failures = 0
        self._opened_at = 0.0

    # -- introspection ---------------------------------------------------

    @property
    def state(self) -> str:
        """Current state, advancing open → half-open on schedule."""
        with self._lock:
            return self._advance()

    @property
    def is_open(self) -> bool:
        """True while calls should be short-circuited."""
        return self.state == OPEN

    @property
    def consecutive_failures(self) -> int:
        with self._lock:
            return self._failures

    # -- state machine ---------------------------------------------------

    def _advance(self) -> str:
        """Open → half-open once the recovery window has elapsed.
        Caller holds the lock."""
        if (
            self._state == OPEN
            and self._clock() - self._opened_at >= self.recovery_time
        ):
            self._state = HALF_OPEN
            self._emit("half_open")
            logger.debug("%s: half-open, probing", self.name)
        return self._state

    def allow(self) -> bool:
        """Whether the caller may touch the protected dependency.

        In half-open state only the first caller gets True (the probe);
        concurrent callers are held off until the probe resolves.
        """
        with self._lock:
            state = self._advance()
            if state == CLOSED:
                return True
            if state == HALF_OPEN:
                # Admit exactly one probe: re-open until it reports.
                self._state = OPEN
                self._opened_at = self._clock()
                self._emit("probes")
                return True
            return False

    def record_success(self) -> None:
        """The protected call succeeded; close and reset."""
        with self._lock:
            if self._state != CLOSED:
                self._emit("closed")
                logger.debug("%s: closed after success", self.name)
            self._state = CLOSED
            self._failures = 0

    def record_failure(self) -> None:
        """The protected call failed; trip at the threshold."""
        with self._lock:
            self._failures += 1
            tripped = (
                self._state != OPEN
                and self._failures >= self.failure_threshold
            )
            probe_failed = self._state == OPEN and self._failures > 0
            if tripped or probe_failed:
                self._state = OPEN
                self._opened_at = self._clock()
                if tripped:
                    self._emit("opened")
                    logger.warning(
                        "%s: open after %d consecutive failures",
                        self.name, self._failures,
                    )

    def reset(self) -> None:
        """Force-close (administrative; used on epoch swaps and tests)."""
        with self._lock:
            self._state = CLOSED
            self._failures = 0

    def _emit(self, event: str) -> None:
        metrics = get_registry()
        if metrics.enabled:
            metrics.inc(f"resilience.breaker.{event}")
