"""Per-level checkpoint/resume state for the level-wise miners.

A multi-hour Apriori/DHP/Partition run that dies at level 7 should
restart at level 7, not level 1 (the operational premise of the
out-of-core miners — Grahne & Zhu's secondary-memory work). The store
here holds one snapshot per completed unit of work:

* snapshots are **atomic** (temp + fsync + rename via
  :mod:`repro.resilience.integrity`) and **checksummed** — a torn or
  bit-flipped snapshot is detected and *skipped*, falling back to the
  previous valid one, because a stale-but-valid resume point beats a
  corrupt one;
* every snapshot embeds the run **fingerprint** — a CRC over the
  database bytes plus the algorithm name and threshold — and resuming
  under a different fingerprint raises
  :class:`~repro.resilience.errors.CheckpointMismatch` rather than
  silently splicing incompatible state;
* the snapshot payload is the miner's exact loop state (python ints
  and tuples, numpy arrays round-tripped losslessly through pickle),
  which is what makes a resumed run **bit-identical** to an
  uninterrupted one: the levels after the resume point see exactly the
  objects they would have seen (DESIGN.md §11).

File format: ``RPCK`` magic, one version byte, big-endian CRC32 and
payload length, then the pickled record. Files are named
``level_NNNN.ckpt`` so lexicographic order is resume order.
"""

from __future__ import annotations

import os
import pickle
import struct
import zlib
from pathlib import Path
from typing import Any

from ..obs.log import get_logger
from ..obs.metrics import get_registry
from .errors import CheckpointMismatch, CorruptArtifact
from .integrity import atomic_write_bytes

__all__ = ["CheckpointStore", "mining_fingerprint"]

logger = get_logger(__name__)

_MAGIC = b"RPCK"
_VERSION = 1
_HEADER = struct.Struct(">IQ")  # crc32, payload length


def mining_fingerprint(
    algorithm: str, threshold: int, database: Any, **extra: Any
) -> str:
    """Fingerprint binding a checkpoint to one (db, algorithm, config).

    The database contributes its exact transaction bytes, so resuming
    against a grown, shuffled, or re-generated collection is detected.
    """
    crc = zlib.crc32(
        f"{algorithm}:{threshold}:{len(database)}:{database.n_items}".encode()
    )
    for txn in database:
        crc = zlib.crc32(b"|", crc)
        for item in txn:
            crc = zlib.crc32(item.to_bytes(8, "big"), crc)
    for key in sorted(extra):
        crc = zlib.crc32(f"{key}={extra[key]!r}".encode(), crc)
    return f"{crc:08x}"


class CheckpointStore:
    """Directory of per-level mining snapshots for one fingerprint."""

    def __init__(
        self, directory: str | os.PathLike, fingerprint: str
    ) -> None:
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.fingerprint = fingerprint

    def path_for(self, level: int) -> Path:
        # joinpath, not the `/` operator: this module sits in the
        # bound-soundness lint tier, where `/` reads as true division.
        return self.directory.joinpath(f"level_{level:04d}.ckpt")

    # -- writing ---------------------------------------------------------

    def save(self, level: int, state: dict[str, Any]) -> Path:
        """Atomically snapshot *state* as the level-*level* checkpoint."""
        record = {
            "fingerprint": self.fingerprint,
            "level": int(level),
            "state": state,
        }
        payload = pickle.dumps(record, protocol=4)
        blob = (
            _MAGIC
            + bytes([_VERSION])
            + _HEADER.pack(zlib.crc32(payload), len(payload))
            + payload
        )
        path = self.path_for(level)
        atomic_write_bytes(path, blob, fault_base="io.checkpoint")
        metrics = get_registry()
        if metrics.enabled:
            metrics.inc("resilience.checkpoint.saved")
        logger.debug("checkpointed level %d to %s", level, path)
        return path

    # -- reading ---------------------------------------------------------

    def load(self, path: str | os.PathLike) -> tuple[int, dict[str, Any]]:
        """Verify and unpickle one snapshot; ``(level, state)``.

        Raises :class:`CorruptArtifact` on any structural damage and
        :class:`CheckpointMismatch` when the snapshot belongs to a
        different run.
        """
        with open(path, "rb") as handle:
            blob = handle.read()
        prefix = len(_MAGIC) + 1 + _HEADER.size
        if len(blob) < prefix or blob[: len(_MAGIC)] != _MAGIC:
            raise CorruptArtifact(path, "not a checkpoint file")
        version = blob[len(_MAGIC)]
        if version > _VERSION:
            raise CorruptArtifact(
                path, f"checkpoint version {version} is newer than {_VERSION}"
            )
        crc, length = _HEADER.unpack_from(blob, len(_MAGIC) + 1)
        payload = blob[prefix:]
        if len(payload) != length:
            raise CorruptArtifact(
                path, f"payload truncated ({len(payload)}/{length} bytes)"
            )
        if zlib.crc32(payload) != crc:
            raise CorruptArtifact(path, "checksum mismatch")
        try:
            record = pickle.loads(payload)
        except Exception as exc:
            raise CorruptArtifact(path, f"unpicklable payload ({exc})") from exc
        found = record.get("fingerprint", "")
        if found != self.fingerprint:
            raise CheckpointMismatch(path, self.fingerprint, found)
        return int(record["level"]), record["state"]

    def latest(self) -> tuple[int, dict[str, Any]] | None:
        """The newest *valid* snapshot, or None.

        Corrupt snapshots are skipped (with a warning and a
        ``resilience.checkpoint.corrupt`` count) in favour of the next
        older valid one; a fingerprint mismatch is a caller error and
        propagates.
        """
        metrics = get_registry()
        for path in sorted(self.directory.glob("level_*.ckpt"), reverse=True):
            try:
                return self.load(path)
            except CorruptArtifact as exc:
                if metrics.enabled:
                    metrics.inc("resilience.checkpoint.corrupt")
                logger.warning("skipping corrupt checkpoint: %s", exc)
        return None

    def clear(self) -> None:
        """Remove every snapshot (finished runs clean up after themselves)."""
        for path in self.directory.glob("level_*.ckpt"):
            path.unlink(missing_ok=True)
