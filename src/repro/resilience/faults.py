"""Deterministic, seeded fault injection.

Every recovery path in the package — pool rebuilds, circuit breaking,
checkpoint resume, artifact verification — is exercised through *named
injection points* compiled into the production code. A point is a
plain string (``"pool.worker_crash"``, ``"io.ossm.bitflip"``); what
firing *means* is defined by the call site:

========================  ==================================================
point                     effect when the rule fires
========================  ==================================================
``pool.worker_crash``     the worker process exits hard (``os._exit``),
                          producing a genuine ``BrokenProcessPool``
``pool.worker_hang``      the worker sleeps ``delay`` seconds before its
                          task — trips the supervisor's hang deadline
``pool.slow_start``       the pool initializer sleeps ``delay`` seconds
``io.<kind>.truncate``    the artifact's temp file is truncated before
                          the atomic rename (``kind``: ossm/db/checkpoint)
``io.<kind>.bitflip``     one seeded byte of the temp file is flipped
``io.<kind>.crash``       the writer dies after the temp file is written
                          but before the rename — the final path must
                          never see a partial artifact
``mining.level_crash``    the miner dies at the top of a level (use
                          ``after=`` to pick which level hit)
``serve.eval_error``      one service batch evaluation raises
``serve.latency``         one service batch evaluation sleeps ``delay``
``serve.wal.mid_append``  a WAL append sleeps ``delay`` with only the
                          first half of the frame durable — a SIGKILL
                          in the window leaves a real torn tail
``serve.publish.pre_wal``  a publish sleeps ``delay`` after the
                          artifact fsync but before the WAL append —
                          a kill here must recover to the OLD epoch
``serve.drain.mid``       the gateway sleeps ``delay`` mid-drain
                          (after readiness flips, before the WAL
                          closes)
========================  ==================================================

Determinism: a rule fires on hits ``after <= n < after + times`` of its
point, counted per :class:`FaultInjector`; random choices (which byte
to flip, where to truncate) come from ``random.Random`` seeded by
``(plan seed, point, hit index)``. Two runs with the same plan inject
byte-identical faults.

Zero-cost when off: production call sites guard every injection with
``injector.enabled`` — a plain attribute read — so a run without a
plan executes exactly the instructions it executed before this module
existed. Activation is explicit: construct a plan in code
(:func:`use_faults`) or set ``REPRO_FAULTS`` (plus optional
``REPRO_FAULTS_SEED``) in the environment; the env route also reaches
``spawn``-start worker processes, and ``fork`` workers inherit the
parent's injector wholesale.
"""

from __future__ import annotations

import os
import random
import threading
import time
from collections.abc import Iterable, Iterator, Mapping
from contextlib import contextmanager
from dataclasses import dataclass

from ..obs.log import get_logger
from ..obs.metrics import get_registry
from .errors import InjectedFault

__all__ = [
    "FaultRule",
    "FaultPlan",
    "FaultInjector",
    "get_injector",
    "set_injector",
    "use_faults",
]

logger = get_logger(__name__)

#: Environment variable holding a fault-plan spec string.
FAULTS_ENV = "REPRO_FAULTS"
#: Environment variable overriding the plan seed (default 0).
FAULTS_SEED_ENV = "REPRO_FAULTS_SEED"

#: Default hang/latency injection sleep when a rule gives no delay.
DEFAULT_DELAY = 30.0


@dataclass(frozen=True)
class FaultRule:
    """One injection rule: fire *times* hits of *point* after *after*.

    ``delay`` parameterizes sleep-style points (hang, slow start,
    latency); raise/crash/corruption points ignore it.
    """

    point: str
    times: int = 1
    after: int = 0
    delay: float = DEFAULT_DELAY

    def __post_init__(self) -> None:
        if not self.point:
            raise ValueError("fault rule needs a point name")
        if self.times < 1:
            raise ValueError("times must be >= 1")
        if self.after < 0:
            raise ValueError("after must be >= 0")
        if self.delay < 0:
            raise ValueError("delay must be >= 0")

    def fires_on(self, hit: int) -> bool:
        """Whether the rule fires on the zero-based *hit* of its point."""
        return self.after <= hit < self.after + self.times


class FaultPlan:
    """An immutable set of :class:`FaultRule`\\ s plus a seed."""

    def __init__(self, rules: Iterable[FaultRule] = (), seed: int = 0) -> None:
        by_point: dict[str, FaultRule] = {}
        for rule in rules:
            if rule.point in by_point:
                raise ValueError(f"duplicate rule for point {rule.point!r}")
            by_point[rule.point] = rule
        self._rules = by_point
        self.seed = int(seed)

    @property
    def rules(self) -> tuple[FaultRule, ...]:
        return tuple(self._rules.values())

    def rule_for(self, point: str) -> FaultRule | None:
        return self._rules.get(point)

    def __bool__(self) -> bool:
        return bool(self._rules)

    def __repr__(self) -> str:
        body = "; ".join(
            f"{r.point}:times={r.times},after={r.after}" for r in self.rules
        )
        return f"FaultPlan(seed={self.seed}, {body or 'empty'})"

    # -- parsing ---------------------------------------------------------

    @classmethod
    def from_spec(cls, spec: str, seed: int = 0) -> "FaultPlan":
        """Parse a compact plan spec.

        Grammar: rules separated by ``;``, each
        ``point[:key=value[,key=value...]]`` with keys ``times``,
        ``after``, ``delay``. Example::

            pool.worker_crash:times=1;serve.eval_error:after=2,times=1
        """
        rules: list[FaultRule] = []
        for chunk in spec.split(";"):
            chunk = chunk.strip()
            if not chunk:
                continue
            point, _, options = chunk.partition(":")
            kwargs: dict[str, float | int] = {}
            for pair in options.split(","):
                pair = pair.strip()
                if not pair:
                    continue
                key, _, value = pair.partition("=")
                key = key.strip()
                if key in ("times", "after"):
                    kwargs[key] = int(value)
                elif key == "delay":
                    kwargs[key] = float(value)
                else:
                    raise ValueError(
                        f"unknown fault option {key!r} in {chunk!r}"
                    )
            rules.append(FaultRule(point.strip(), **kwargs))  # type: ignore[arg-type]
        return cls(rules, seed=seed)

    @classmethod
    def from_env(cls, environ: "Mapping[str, str] | None" = None) -> "FaultPlan":
        """The plan described by ``REPRO_FAULTS``, or an empty plan."""
        env = os.environ if environ is None else environ
        spec = env.get(FAULTS_ENV, "")
        seed = int(env.get(FAULTS_SEED_ENV, "0"))
        if not spec:
            return cls((), seed=seed)
        return cls.from_spec(spec, seed=seed)


class FaultInjector:
    """Evaluates a :class:`FaultPlan` at named injection points.

    Thread-safe: hit counters advance under a lock, so the serve
    layer's worker threads and the mining loop can share one injector.
    """

    def __init__(self, plan: FaultPlan | None = None) -> None:
        self.plan = plan if plan is not None else FaultPlan()
        #: False means every injection call site is a no-op guard.
        self.enabled = bool(self.plan)
        self._hits: dict[str, int] = {}
        self._lock = threading.Lock()

    def hits(self, point: str) -> int:
        """How many times *point* has been evaluated."""
        with self._lock:
            return self._hits.get(point, 0)

    def fire(self, point: str) -> FaultRule | None:
        """Advance *point*'s hit counter; the rule if this hit fires."""
        rule = self.plan.rule_for(point)
        if rule is None:
            return None
        with self._lock:
            hit = self._hits.get(point, 0)
            self._hits[point] = hit + 1
        if not rule.fires_on(hit):
            return None
        metrics = get_registry()
        if metrics.enabled:
            metrics.inc("resilience.faults.injected")
        logger.debug("injecting fault at %r (hit %d)", point, hit)
        return rule

    def _rng(self, point: str, hit: int) -> random.Random:
        # A string seed: random.Random accepts only scalars, and the
        # string keeps the (seed, point, hit) triple collision-free.
        return random.Random(f"{self.plan.seed}:{point}:{hit}")

    # -- call-site helpers ------------------------------------------------

    def maybe_raise(self, point: str) -> None:
        """Raise :class:`InjectedFault` when *point*'s rule fires."""
        if self.fire(point) is not None:
            raise InjectedFault(point)

    def maybe_sleep(self, point: str) -> float:
        """Sleep the rule's delay when *point* fires; seconds slept."""
        rule = self.fire(point)
        if rule is None:
            return 0.0
        time.sleep(rule.delay)
        return rule.delay

    def corrupt_file(self, base: str, path: str | os.PathLike) -> bool:
        """Apply ``<base>.truncate`` / ``<base>.bitflip`` to *path*.

        Returns True when the file was damaged. Truncation keeps a
        seeded fraction of the bytes; the bit-flip XORs one seeded bit
        of one seeded byte — both deterministic per (seed, point, hit).
        """
        damaged = False
        rule = self.fire(f"{base}.truncate")
        if rule is not None:
            size = os.path.getsize(path)
            rng = self._rng(f"{base}.truncate", self.hits(f"{base}.truncate"))
            keep = rng.randrange(0, max(size // 2, 1))
            with open(path, "r+b") as handle:
                handle.truncate(keep)
            damaged = True
        rule = self.fire(f"{base}.bitflip")
        if rule is not None:
            size = os.path.getsize(path)
            if size:
                rng = self._rng(
                    f"{base}.bitflip", self.hits(f"{base}.bitflip")
                )
                offset = rng.randrange(size)
                bit = 1 << rng.randrange(8)
                with open(path, "r+b") as handle:
                    handle.seek(offset)
                    byte = handle.read(1)[0]
                    handle.seek(offset)
                    handle.write(bytes([byte ^ bit]))
                damaged = True
        return damaged


# -- the process-wide injector ----------------------------------------------

_INJECTOR: FaultInjector | None = None
_INJECTOR_LOCK = threading.Lock()


def get_injector() -> FaultInjector:
    """The process-wide injector, built from the environment on first use."""
    global _INJECTOR
    injector = _INJECTOR
    if injector is None:
        with _INJECTOR_LOCK:
            injector = _INJECTOR
            if injector is None:
                injector = FaultInjector(FaultPlan.from_env())
                _INJECTOR = injector
    return injector


def set_injector(injector: FaultInjector | None) -> None:
    """Install *injector* process-wide (None re-reads the environment)."""
    global _INJECTOR
    with _INJECTOR_LOCK:
        _INJECTOR = injector


@contextmanager
def use_faults(plan: FaultPlan) -> Iterator[FaultInjector]:
    """Run a block under *plan*, restoring the previous injector after."""
    previous = _INJECTOR
    injector = FaultInjector(plan)
    set_injector(injector)
    try:
        yield injector
    finally:
        set_injector(previous)
