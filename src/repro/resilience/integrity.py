"""Atomic, checksummed, versioned artifact persistence.

Artifacts (OSSM maps, packed transaction databases, checkpoints) are
the only state that outlives a process, so they get the strongest
guarantees in the package:

* **Atomicity** — bytes go to a unique temp file in the destination
  directory, are ``fsync``\\ ed, and only then ``os.replace``\\ d over
  the final path. A crash at any instant leaves either the old
  artifact or the new one at the final path, never a torn hybrid; the
  temp file is removed on failure.
* **Integrity** — every ``.npz`` written here embeds a format version,
  an artifact *kind* tag, and a CRC32 over the canonical bytes of all
  payload arrays. Loading verifies all three and raises the typed
  :class:`~repro.resilience.errors.CorruptArtifact` /
  :class:`~repro.resilience.errors.IntegrityError` instead of leaking
  ``zipfile``/``zlib``/numpy internals. Archives written before this
  format existed (no meta keys) still load — verification is simply
  unavailable for them.
* **Fault injection** — each write site passes a point base (e.g.
  ``io.ossm``); the seeded injector can truncate or bit-flip the temp
  file (to exercise the corrupt-load path) or kill the writer between
  temp write and rename (to prove atomicity).
"""

from __future__ import annotations

import contextlib
import os
import zlib
from typing import Mapping

import numpy as np

from ..obs.metrics import get_registry
from .errors import CorruptArtifact, IntegrityError
from .faults import get_injector

__all__ = [
    "ARTIFACT_VERSION",
    "atomic_path",
    "atomic_savez",
    "verified_load_npz",
    "atomic_write_bytes",
    "payload_checksum",
]

#: Format version written into every archive; loaders refuse newer.
ARTIFACT_VERSION = 1

#: Meta keys are namespaced so they can never collide with payloads.
_VERSION_KEY = "__repro_version__"
_KIND_KEY = "__repro_kind__"
_CRC_KEY = "__repro_crc32__"


def payload_checksum(arrays: Mapping[str, np.ndarray]) -> int:
    """CRC32 over the canonical bytes of *arrays* (order-independent).

    Name, dtype, and shape participate so a renamed or reshaped array
    cannot checksum-alias the original.
    """
    crc = 0
    for name in sorted(arrays):
        array = np.ascontiguousarray(arrays[name])
        crc = zlib.crc32(name.encode("utf-8"), crc)
        crc = zlib.crc32(str(array.dtype).encode("ascii"), crc)
        crc = zlib.crc32(repr(array.shape).encode("ascii"), crc)
        crc = zlib.crc32(array.tobytes(), crc)
    return crc


@contextlib.contextmanager
def atomic_path(final: str | os.PathLike, fault_base: str | None = None):
    """Yield a temp path that is atomically published to *final*.

    The one primitive every artifact writer in the package builds on.
    The body writes the temp file; on clean exit the injector may
    damage it (``<base>.truncate`` / ``<base>.bitflip``) or abort the
    publish (``<base>.crash``), after which ``os.replace`` makes the
    bytes visible under *final* in one rename. Any failure removes the
    temp file, so no partial artifact survives at either path.
    """
    final = os.fspath(final)
    directory = os.path.dirname(final) or "."
    tmp = os.path.join(
        directory, f".{os.path.basename(final)}.{os.getpid()}.tmp"
    )
    try:
        yield tmp
        injector = get_injector()
        if injector.enabled and fault_base is not None:
            injector.corrupt_file(fault_base, tmp)
            injector.maybe_raise(f"{fault_base}.crash")
        os.replace(tmp, final)
    except BaseException:
        with contextlib.suppress(OSError):
            os.remove(tmp)
        raise
    with contextlib.suppress(OSError):
        dir_fd = os.open(directory, os.O_RDONLY)
        try:
            os.fsync(dir_fd)
        finally:
            os.close(dir_fd)


def atomic_write_bytes(
    path: str | os.PathLike,
    data: bytes,
    fault_base: str | None = None,
) -> None:
    """Atomically publish *data* at *path* (temp + fsync + rename)."""
    final = os.fspath(path)
    with atomic_path(final, fault_base) as tmp:
        with open(tmp, "wb") as handle:
            handle.write(data)
            handle.flush()
            os.fsync(handle.fileno())


def atomic_savez(
    path: str | os.PathLike,
    arrays: Mapping[str, np.ndarray],
    kind: str,
    fault_base: str | None = None,
) -> None:
    """Write *arrays* as a checksummed, versioned ``.npz`` atomically.

    Mirrors ``np.savez_compressed``'s extension behavior (appends
    ``.npz`` to extension-less paths) so existing call sites keep
    producing the same file names.
    """
    final = os.fspath(path)
    if not final.endswith(".npz"):
        final += ".npz"
    meta = {
        _VERSION_KEY: np.asarray(ARTIFACT_VERSION, dtype=np.int64),
        _KIND_KEY: np.frombuffer(kind.encode("utf-8"), dtype=np.uint8),
        _CRC_KEY: np.asarray(payload_checksum(arrays), dtype=np.int64),
    }
    with atomic_path(final, fault_base) as tmp:
        with open(tmp, "wb") as handle:
            np.savez_compressed(handle, **dict(arrays), **meta)
            handle.flush()
            os.fsync(handle.fileno())
    metrics = get_registry()
    if metrics.enabled:
        metrics.inc("resilience.artifacts.written")


def verified_load_npz(
    path: str | os.PathLike, kind: str
) -> dict[str, np.ndarray]:
    """Load and verify an archive written by :func:`atomic_savez`.

    Returns the payload arrays (meta keys stripped). A missing file
    keeps raising ``FileNotFoundError``; every other low-level failure
    — truncated zip, damaged member, unreadable header — surfaces as
    :class:`CorruptArtifact`, and checksum/kind/version violations as
    :class:`CorruptArtifact`/:class:`IntegrityError`. Every rejection
    names the offending path in its message and bumps the
    ``resilience.integrity.rejected`` counter. Pre-versioning archives
    (no meta keys) load without verification.
    """
    metrics = get_registry()
    try:
        with np.load(os.fspath(path)) as archive:
            names = list(archive.files)
            payload = {
                name: archive[name]
                for name in names
                if not name.startswith("__repro_")
            }
            version = (
                int(archive[_VERSION_KEY]) if _VERSION_KEY in names else None
            )
            stored_kind = (
                bytes(archive[_KIND_KEY].tobytes()).decode("utf-8")
                if _KIND_KEY in names
                else None
            )
            stored_crc = (
                int(archive[_CRC_KEY]) if _CRC_KEY in names else None
            )
    except FileNotFoundError:
        raise
    except Exception as exc:
        # The try block only parses the archive, so anything it raises
        # — BadZipFile, zlib.error, OSError, numpy's header SyntaxError
        # — means the bytes on disk are damaged.
        if metrics.enabled:
            metrics.inc("resilience.artifacts.corrupt")
            metrics.inc("resilience.integrity.rejected")
        raise CorruptArtifact(path, f"unreadable archive ({exc})") from exc
    if version is None:
        # Legacy archive from before the integrity format: accept as-is.
        return payload
    if version > ARTIFACT_VERSION:
        if metrics.enabled:
            metrics.inc("resilience.integrity.rejected")
        raise IntegrityError(
            f"artifact {path} uses format version {version}; this build "
            f"reads up to {ARTIFACT_VERSION}"
        )
    if stored_kind is not None and stored_kind != kind:
        if metrics.enabled:
            metrics.inc("resilience.integrity.rejected")
        raise IntegrityError(
            f"artifact {path} holds a {stored_kind!r} payload, "
            f"expected {kind!r}"
        )
    if stored_crc is not None and payload_checksum(payload) != stored_crc:
        if metrics.enabled:
            metrics.inc("resilience.artifacts.corrupt")
            metrics.inc("resilience.integrity.rejected")
        raise CorruptArtifact(path, "checksum mismatch")
    if metrics.enabled:
        metrics.inc("resilience.artifacts.verified")
    return payload
