"""Resilience subsystem: fault injection, circuit breaking, checkpoints.

The package is a *leaf*: it imports only :mod:`repro.obs`, the standard
library, and numpy, so every other layer (parallel, mining, serve,
core, data) can depend on it without cycles. It provides:

* deterministic seeded fault injection (:mod:`repro.resilience.faults`)
  behind ``injector.enabled`` guards — byte-identical production paths
  when off;
* :class:`Backoff` and :class:`CircuitBreaker`
  (:mod:`repro.resilience.breaker`) for pool rebuilds and the
  parallel→serial degradation ladder;
* atomic, checksummed artifact persistence
  (:mod:`repro.resilience.integrity`);
* per-level mining checkpoints (:mod:`repro.resilience.checkpoint`)
  with bit-identical resume.

See DESIGN.md §11 for the failure model these pieces implement.
"""

from .breaker import CLOSED, HALF_OPEN, OPEN, Backoff, CircuitBreaker
from .checkpoint import CheckpointStore, mining_fingerprint
from .errors import (
    CheckpointMismatch,
    CorruptArtifact,
    InjectedFault,
    IntegrityError,
    PoolFailure,
    ResilienceError,
)
from .faults import (
    FaultInjector,
    FaultPlan,
    FaultRule,
    get_injector,
    set_injector,
    use_faults,
)
from .integrity import (
    ARTIFACT_VERSION,
    atomic_path,
    atomic_savez,
    atomic_write_bytes,
    payload_checksum,
    verified_load_npz,
)

__all__ = [
    "ResilienceError",
    "IntegrityError",
    "CorruptArtifact",
    "CheckpointMismatch",
    "InjectedFault",
    "PoolFailure",
    "FaultRule",
    "FaultPlan",
    "FaultInjector",
    "get_injector",
    "set_injector",
    "use_faults",
    "Backoff",
    "CircuitBreaker",
    "CLOSED",
    "OPEN",
    "HALF_OPEN",
    "ARTIFACT_VERSION",
    "atomic_path",
    "atomic_savez",
    "atomic_write_bytes",
    "payload_checksum",
    "verified_load_npz",
    "CheckpointStore",
    "mining_fingerprint",
]
