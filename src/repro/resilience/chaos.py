"""Kill−9 chaos harness for the durable serving gateway.

Crash-consistency claims are only as good as the crashes they survive,
so this module manufactures *real* ones: it boots the actual CLI
gateway (``python -m repro serve --listen --state-dir``) as a
subprocess, uses the seeded ``REPRO_FAULTS`` machinery to wedge it at
a named fault point — mid-WAL-append with half a frame durable,
post-artifact-pre-WAL, or mid-drain — SIGKILLs it inside the injected
sleep window, restarts it cleanly, and asserts the recovery invariants
of DESIGN.md §16:

* every pre-crash tenant is served again, and a replay of seeded
  queries returns bounds **bit-identical** to ``OSSM.upper_bound`` on
  the map the reported epoch names;
* a kill mid-publish leaves the tenant on exactly the old or the new
  epoch — never a torn in-between;
* epochs never move backwards across a crash.

The harness is deliberately black-box: it talks to the gateway only
over HTTP and inspects only the state directory, exactly like an
operator would. It is importable (``tests/resilience/test_chaos.py``
runs each scenario under pytest) and runnable
(``python -m repro.resilience.chaos``) for the CI chaos job.

This module is *not* imported by ``repro.resilience.__init__`` — it
reaches up into :mod:`repro.core` for the expected-bound oracle, and
the resilience package must stay a leaf the core can depend on.
"""

from __future__ import annotations

import json
import os
import random
import re
import signal
import subprocess
import sys
import tempfile
import threading
import time
import urllib.error
import urllib.request
from dataclasses import dataclass, field
from pathlib import Path

from ..core.greedy import GreedySegmenter
from ..core.ossm import OSSM
from ..data.pages import PagedDatabase
from ..data.quest import generate_quest
from ..obs.log import get_logger

__all__ = [
    "KILL_POINTS",
    "ChaosError",
    "GatewayProcess",
    "ScenarioResult",
    "build_map",
    "main",
    "run_all_scenarios",
    "run_kill_scenario",
    "seeded_itemsets",
]

logger = get_logger(__name__)

#: Scenario name -> ``REPRO_FAULTS`` spec that wedges the gateway in a
#: long injected sleep at that point (the SIGKILL window).
KILL_POINTS = {
    "mid_wal_append": "serve.wal.mid_append:times=1,delay=30",
    "post_artifact_pre_wal": "serve.publish.pre_wal:times=1,delay=30",
    "mid_drain": "serve.drain.mid:times=1,delay=30",
}

_BOOT_LINE = re.compile(r"^gateway on (http://[^/]+)/")

#: Per-request client timeout; recovery polling gets its own budgets.
_HTTP_TIMEOUT = 10.0


class ChaosError(AssertionError):
    """A recovery invariant did not hold (or the harness lost the
    gateway); the message carries the scenario and the evidence."""


def build_map(seed: int, *, n_items: int = 40, n_segments: int = 5) -> OSSM:
    """A small deterministic OSSM — the bit-exactness oracle.

    Same shape as the serving-plane test fixtures: a seeded quest
    workload, greedily segmented. Distinct seeds give maps with
    distinct bounds, so a recovered tenant serving the wrong epoch's
    map cannot pass the query replay by accident.
    """
    db = generate_quest(
        n_transactions=400, n_items=n_items,
        avg_transaction_len=6.0, n_patterns=50, seed=seed,
    )
    paged = PagedDatabase(db, page_size=40)
    return GreedySegmenter().segment(paged, n_segments=n_segments).ossm


def seeded_itemsets(
    seed: int, count: int, n_items: int
) -> list[list[int]]:
    """*count* seeded query itemsets (size 1-3) over ``n_items``."""
    rng = random.Random(seed)
    itemsets: list[list[int]] = []
    for _ in range(count):
        size = rng.randint(1, 3)
        itemsets.append(sorted(rng.sample(range(n_items), size)))
    return itemsets


class GatewayProcess:
    """One CLI gateway subprocess, driven black-box over HTTP.

    Boots ``python -m repro serve --ossm ... --listen 127.0.0.1:0
    --state-dir ...`` with ``src/`` prepended to ``PYTHONPATH`` (so
    the harness works from a checkout without installation), reads the
    boot line back for the kernel-assigned port, and exposes plain
    request helpers plus SIGTERM/SIGKILL controls.
    """

    def __init__(
        self,
        ossm_path: str | os.PathLike,
        state_dir: str | os.PathLike | None,
        *,
        tenant: str = "default",
        drain_timeout: float = 10.0,
        env: dict[str, str] | None = None,
    ) -> None:
        command = [
            sys.executable, "-m", "repro", "serve",
            "--ossm", os.fspath(ossm_path),
            "--listen", "127.0.0.1:0",
            "--drain-timeout", str(drain_timeout),
        ]
        if state_dir is not None:
            command += ["--state-dir", os.fspath(state_dir)]
        src_dir = Path(__file__).resolve().parents[2]
        full_env = dict(os.environ)
        existing = full_env.get("PYTHONPATH", "")
        full_env["PYTHONPATH"] = (
            f"{src_dir}{os.pathsep}{existing}" if existing else str(src_dir)
        )
        if env:
            full_env.update(env)
        self.tenant = tenant
        self.proc = subprocess.Popen(
            command,
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            text=True,
            env=full_env,
        )
        self.lines: list[str] = []
        self.url: str | None = None
        self._url_ready = threading.Event()
        self._reader = threading.Thread(target=self._pump, daemon=True)
        self._reader.start()

    def _pump(self) -> None:
        stream = self.proc.stdout
        assert stream is not None
        for line in stream:
            self.lines.append(line.rstrip("\n"))
            match = _BOOT_LINE.match(line)
            if match is not None:
                self.url = match.group(1)
                self._url_ready.set()
        # EOF: wake any waiter even if the boot line never appeared.
        self._url_ready.set()

    # -- client helpers ---------------------------------------------------

    def wait_url(self, timeout: float = 30.0) -> str:
        """The base URL from the boot line (raises if it never prints)."""
        self._url_ready.wait(timeout)
        if self.url is None:
            raise ChaosError(
                "gateway printed no boot line; output was:\n"
                + "\n".join(self.lines)
            )
        return self.url

    def request(
        self,
        method: str,
        path: str,
        body: bytes = b"",
        timeout: float = _HTTP_TIMEOUT,
    ) -> tuple[int, bytes]:
        """One HTTP round trip; ``(status, body)`` even on 4xx/5xx."""
        req = urllib.request.Request(
            self.wait_url() + path, data=body or None, method=method
        )
        try:
            with urllib.request.urlopen(req, timeout=timeout) as response:
                return response.status, response.read()
        except urllib.error.HTTPError as error:
            return error.code, error.read()

    def get_json(self, path: str) -> dict:
        status, payload = self.request("GET", path)
        if status != 200:
            raise ChaosError(f"GET {path} -> {status}: {payload!r}")
        return json.loads(payload)

    def wait_ready(self, timeout: float = 30.0) -> None:
        """Poll ``/ready`` until it answers 200."""
        deadline = time.monotonic() + timeout
        last: tuple[int, bytes] | OSError | None = None
        while time.monotonic() < deadline:
            try:
                last = self.request("GET", "/ready", timeout=2.0)
            except OSError as exc:
                last = exc
            else:
                if last[0] == 200:
                    return
            time.sleep(0.05)
        raise ChaosError(f"gateway never became ready: {last!r}")

    def put_tenant(self, name: str, ossm: OSSM) -> dict:
        """Upload *ossm* as tenant *name* (create or publish)."""
        with tempfile.NamedTemporaryFile(suffix=".npz") as artifact:
            ossm.save(artifact.name)
            blob = Path(artifact.name).read_bytes()
        status, payload = self.request(
            "PUT", f"/v1/tenants/{name}/ossm", blob
        )
        if status not in (200, 201):
            raise ChaosError(
                f"PUT tenant {name!r} -> {status}: {payload!r}"
            )
        return json.loads(payload)

    # -- process control --------------------------------------------------

    def kill(self) -> None:
        """SIGKILL — the crash under test; nothing gets to clean up."""
        self.proc.send_signal(signal.SIGKILL)

    def terminate(self) -> None:
        """SIGTERM — ask for a graceful drain."""
        self.proc.send_signal(signal.SIGTERM)

    def wait(self, timeout: float = 30.0) -> int:
        """Reap the process; its exit code."""
        code = self.proc.wait(timeout)
        if self._reader.is_alive():
            self._reader.join(timeout=5.0)
        return code

    def __enter__(self) -> "GatewayProcess":
        return self

    def __exit__(self, *exc_info: object) -> None:
        if self.proc.poll() is None:
            self.kill()
        self.proc.wait(timeout=30.0)
        if self.proc.stdout is not None:
            self.proc.stdout.close()


@dataclass
class ScenarioResult:
    """What one kill scenario observed; the caller asserts on it."""

    point: str
    epochs: dict[str, int] = field(default_factory=dict)
    queries_verified: int = 0
    recovery_seconds: float = 0.0
    drain_exit_code: int | None = None


def _poll(
    predicate, timeout: float, what: str, interval: float = 0.02
) -> None:
    """Busy-wait for *predicate* (the wedge detectors are file stats)."""
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return
        time.sleep(interval)
    raise ChaosError(f"timed out waiting for {what}")


def _verify_recovery(
    gateway: GatewayProcess,
    maps: dict[str, dict[int, OSSM]],
    expected_epochs: dict[str, set[int]],
    queries_per_tenant: int,
) -> tuple[dict[str, int], int]:
    """Replay seeded queries against every recovered tenant.

    Returns ``(reported epochs, total queries verified)``; raises
    :class:`ChaosError` on any mismatch.
    """
    listed = set(gateway.get_json("/v1/tenants")["tenants"])
    missing = set(maps) - listed
    if missing:
        raise ChaosError(f"tenants lost across the crash: {sorted(missing)}")
    epochs: dict[str, int] = {}
    verified = 0
    for name, versions in sorted(maps.items()):
        n_items = next(iter(versions.values())).n_items
        itemsets = seeded_itemsets(
            seed=len(name) * 1000 + queries_per_tenant,
            count=queries_per_tenant,
            n_items=n_items,
        )
        body = json.dumps({"itemsets": itemsets}).encode()
        status, payload = gateway.request(
            "POST", f"/v1/tenants/{name}/bounds", body
        )
        if status != 200:
            raise ChaosError(
                f"bounds for recovered tenant {name!r} -> {status}: "
                f"{payload!r}"
            )
        answer = json.loads(payload)
        epoch = answer["epoch"]
        epochs[name] = epoch
        if epoch not in expected_epochs[name]:
            raise ChaosError(
                f"tenant {name!r} recovered at epoch {epoch}, expected "
                f"one of {sorted(expected_epochs[name])} — a torn epoch"
            )
        oracle = versions[epoch]
        expected = [oracle.upper_bound(tuple(s)) for s in itemsets]
        if answer["bounds"] != expected:
            raise ChaosError(
                f"tenant {name!r} bounds diverged from the epoch-{epoch} "
                f"map after recovery"
            )
        verified += len(itemsets)
    return epochs, verified


def run_kill_scenario(
    point: str,
    workdir: str | os.PathLike,
    *,
    n_tenants: int = 3,
    queries_per_tenant: int = 60,
) -> ScenarioResult:
    """SIGKILL the gateway at *point*, restart, assert recovery.

    Three phases, all through the real CLI:

    A. clean boot with ``--state-dir``: provision ``n_tenants`` maps
       at epoch 0, SIGTERM, expect a graceful exit 0;
    B. boot with ``REPRO_FAULTS`` wedging *point*, trigger the
       transition that reaches it (a publish of tenant ``t0``, or the
       drain itself), and SIGKILL inside the injected sleep;
    C. clean boot again: every tenant must answer seeded queries
       bit-identically to the map its reported epoch names, with the
       published tenant on exactly the old or the new epoch.
    """
    if point not in KILL_POINTS:
        raise ValueError(
            f"unknown kill point {point!r}; choose from "
            f"{sorted(KILL_POINTS)}"
        )
    workdir = Path(workdir)
    workdir.mkdir(parents=True, exist_ok=True)
    state_dir = workdir / "state"
    result = ScenarioResult(point=point)

    # The maps each tenant may legitimately serve after the crash,
    # keyed by epoch. t0 gets a distinct v1 map published in phase B.
    maps: dict[str, dict[int, OSSM]] = {
        f"t{i}": {0: build_map(seed=100 + i)} for i in range(n_tenants)
    }
    maps["t0"][1] = build_map(seed=777)
    # The CLI's own bootstrap tenant participates too: it must also
    # survive the crash bit-exactly.
    default_map = build_map(seed=55)
    maps["default"] = {0: default_map}
    boot_artifact = workdir / "boot.npz"
    default_map.save(boot_artifact)

    expected: dict[str, set[int]] = {name: {0} for name in maps}
    if point != "mid_drain":
        # A kill mid-publish must leave t0 on exactly the old or the
        # new epoch.
        expected["t0"] = {0, 1}

    # -- phase A: provision everything, exit gracefully -------------------
    with GatewayProcess(boot_artifact, state_dir) as gateway:
        gateway.wait_ready()
        for name in sorted(maps):
            if name != "default":
                gateway.put_tenant(name, maps[name][0])
        gateway.terminate()
        code = gateway.wait()
        if code != 0:
            raise ChaosError(
                f"graceful shutdown exited {code}; output:\n"
                + "\n".join(gateway.lines)
            )
        if not any("gateway stopped" in line for line in gateway.lines):
            raise ChaosError("clean shutdown printed no stop line")

    # -- phase B: wedge at the fault point, SIGKILL -----------------------
    faults = {"REPRO_FAULTS": KILL_POINTS[point], "REPRO_FAULTS_SEED": "7"}
    wal_path = state_dir / "wal.log"
    wal_size = wal_path.stat().st_size
    with GatewayProcess(boot_artifact, state_dir, env=faults) as gateway:
        gateway.wait_ready()
        if point == "mid_drain":
            gateway.terminate()
            # The drain wedge: /ready flips to 503 while /health stays
            # 200 — the liveness/readiness split under test.
            _poll(
                lambda: gateway.request("GET", "/ready")[0] == 503,
                timeout=15.0, what="readiness to flip during drain",
            )
            status, _ = gateway.request("GET", "/health")
            if status != 200:
                raise ChaosError(
                    f"/health answered {status} during drain; liveness "
                    "must hold while readiness sheds"
                )
        else:
            publisher = threading.Thread(
                target=_swallow_publish,
                args=(gateway, maps["t0"][1]),
                daemon=True,
            )
            publisher.start()
            if point == "mid_wal_append":
                # Half the frame is already fsynced when the sleep
                # starts — the WAL file visibly grows.
                _poll(
                    lambda: wal_path.stat().st_size > wal_size,
                    timeout=15.0, what="the torn half-frame to land",
                )
            else:  # post_artifact_pre_wal
                new_artifact = (
                    state_dir / "artifacts" / "t0" / "epoch_00000001.npz"
                )
                _poll(
                    lambda: new_artifact.exists()
                    and wal_path.stat().st_size == wal_size,
                    timeout=15.0,
                    what="the epoch-1 artifact before any WAL append",
                )
        gateway.kill()
        gateway.wait()

    # -- phase C: clean restart, verify the invariants --------------------
    restarted = time.monotonic()
    with GatewayProcess(boot_artifact, state_dir) as gateway:
        gateway.wait_ready()
        result.recovery_seconds = time.monotonic() - restarted
        result.epochs, result.queries_verified = _verify_recovery(
            gateway, maps, expected, queries_per_tenant
        )
        gateway.terminate()
        result.drain_exit_code = gateway.wait()
        if result.drain_exit_code != 0:
            raise ChaosError(
                f"post-recovery shutdown exited {result.drain_exit_code}"
            )
    logger.info(
        "chaos %s: recovered %d tenants in %.2fs, %d queries bit-exact",
        point, len(result.epochs), result.recovery_seconds,
        result.queries_verified,
    )
    return result


def _swallow_publish(gateway: GatewayProcess, ossm: OSSM) -> None:
    """Fire the publish that will die with the gateway.

    The request is *expected* to never complete — the process is
    SIGKILLed while wedged — so transport errors are the success case
    here, not a swallowed failure.
    """
    try:
        gateway.put_tenant("t0", ossm)
    except (ChaosError, OSError):
        pass


def run_all_scenarios(
    workdir: str | os.PathLike, **kwargs: int
) -> list[ScenarioResult]:
    """Every named kill point, each in its own state directory."""
    results = []
    for point in sorted(KILL_POINTS):
        results.append(
            run_kill_scenario(
                point, Path(workdir) / point, **kwargs
            )
        )
    return results


def main() -> int:
    """CLI entry (``python -m repro.resilience.chaos``) for the CI job."""
    with tempfile.TemporaryDirectory(prefix="repro-chaos-") as workdir:
        for result in run_all_scenarios(workdir):
            print(
                f"chaos {result.point}: epochs {result.epochs} "
                f"({result.queries_verified} queries bit-exact, "
                f"recovery {result.recovery_seconds:.2f}s)"
            )
    print("chaos: all kill points recovered")
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess
    sys.exit(main())
