"""Shared instrumentation helpers for the mining/segmentation hot paths.

These keep the algorithm modules free of metric-naming boilerplate and
centralize the two conventions the report layer depends on:

* per-level candidate accounting lands under
  ``<algorithm>.candidates_{generated,pruned,counted,frequent}`` (plus
  the algorithm-agnostic ``mining.*`` totals the pruning-effectiveness
  report reads);
* the Equation (1) bound-tightness histogram ``ossm.bound_gap`` records
  ``ŝup(X) − sup(X)`` for every candidate that survived pruning and was
  then exactly counted — the empirical gap statistic the paper's
  Figure 4(b) argument rests on (0 = bound was exact).

Every helper consults ``registry.enabled`` before doing derivation
work, so with observability unconfigured each call is a cheap early
return.
"""

from __future__ import annotations

from typing import Mapping, Sequence

from .metrics import get_registry

__all__ = [
    "BOUND_GAP_BUCKETS",
    "record_level_stats",
    "record_bound_gaps",
    "record_ossm_build",
]

Itemset = tuple[int, ...]

#: Buckets for the ``ossm.bound_gap`` histogram: gap 0 means the bound
#: was exact; the power-of-two tail keeps the table small at any scale.
BOUND_GAP_BUCKETS: tuple[float, ...] = (
    0, 1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024, 4096, 16384,
)


def record_level_stats(algorithm: str, stats) -> None:
    """Mirror one level's :class:`~repro.mining.base.LevelStats` counters.

    Called once per completed level; *stats* carries cumulative values
    for that level, so the increments are the level's own totals.
    """
    registry = get_registry()
    if not registry.enabled:
        return
    for prefix in (algorithm, "mining"):
        registry.inc(
            f"{prefix}.candidates_generated", stats.candidates_generated
        )
        registry.inc(f"{prefix}.candidates_pruned", stats.candidates_pruned)
        registry.inc(f"{prefix}.candidates_counted", stats.candidates_counted)
        registry.inc(f"{prefix}.frequent", stats.frequent)


def record_bound_gaps(
    pruner,
    counted: Sequence[Itemset],
    supports: Mapping[Itemset, int],
) -> None:
    """Observe ``ŝup − sup`` for candidates that were exactly counted.

    *pruner* must expose ``candidate_bounds`` (the
    :class:`~repro.mining.pruning.CandidatePruner` protocol); pruners
    without a bound (e.g. the null pruner) return ``None`` and nothing
    is recorded. Recomputing the bounds costs one vectorized Equation
    (1) pass, paid only when metrics are enabled.
    """
    registry = get_registry()
    if not registry.enabled or not counted:
        return
    bounds = pruner.candidate_bounds(counted)
    if bounds is None:
        return
    histogram = registry.histogram("ossm.bound_gap", BOUND_GAP_BUCKETS)
    for itemset, bound in zip(counted, bounds):
        support = supports.get(itemset)
        if support is not None:
            histogram.observe(int(bound) - int(support))


def record_ossm_build(ossm, algorithm: str | None = None) -> None:
    """Gauge the shape/size of a freshly built (or loaded) OSSM."""
    registry = get_registry()
    if not registry.enabled:
        return
    registry.inc("ossm.builds")
    registry.set_gauge("ossm.n_segments", ossm.n_segments)
    registry.set_gauge("ossm.n_items", ossm.n_items)
    registry.set_gauge("ossm.nominal_bytes", ossm.nominal_size_bytes())
    if algorithm is not None:
        registry.inc(f"segmentation.{algorithm}.builds")
