"""Lightweight span tracing for pipeline stages.

A *span* is a named, timed region with free-form metadata; spans nest,
forming a tree per run. Instrumented code opens spans through the
module-level :func:`trace` helper::

    with trace("apriori.level", level=k):
        ... generate / prune / count ...

Like the metrics registry, tracing is disabled by default: ``trace``
resolves against the active recorder, and the default
:data:`NULL_RECORDER` hands back a shared no-op context manager — the
cost of an un-collected span is one method call and one ``with`` block.
Activate collection with :func:`use_recorder` (or the CLI's
``--trace-out``), then export via :meth:`TraceRecorder.to_json` or the
human-readable :meth:`TraceRecorder.format_tree`.
"""

from __future__ import annotations

import json
import time
from contextlib import contextmanager
from typing import Iterator

__all__ = [
    "Span",
    "TraceRecorder",
    "NullTraceRecorder",
    "NULL_RECORDER",
    "get_recorder",
    "set_recorder",
    "use_recorder",
    "trace",
]


class Span:
    """One traced region: name, offsets, wall time, metadata, children."""

    __slots__ = ("name", "start_offset", "elapsed_seconds", "metadata",
                 "children")

    def __init__(self, name: str, start_offset: float, **metadata) -> None:
        self.name = name
        self.start_offset = start_offset
        self.elapsed_seconds = 0.0
        self.metadata = metadata
        self.children: list[Span] = []

    def to_dict(self) -> dict:
        """JSON-serializable form (recursive)."""
        payload: dict = {
            "name": self.name,
            "start_offset": self.start_offset,
            "elapsed_seconds": self.elapsed_seconds,
        }
        if self.metadata:
            payload["metadata"] = dict(self.metadata)
        if self.children:
            payload["children"] = [c.to_dict() for c in self.children]
        return payload

    def __repr__(self) -> str:
        return f"Span({self.name!r}, {self.elapsed_seconds:.6f}s)"


class TraceRecorder:
    """Collects a forest of spans for one run.

    Not thread-safe: one recorder traces one single-threaded run, which
    matches how the miners execute. A span left open by an exception is
    closed by the ``trace`` context manager on the way out, so the tree
    is always well-formed.
    """

    enabled = True

    def __init__(self) -> None:
        self.roots: list[Span] = []
        self._stack: list[Span] = []
        self._origin = time.perf_counter()

    @contextmanager
    def span(self, name: str, **metadata) -> Iterator[Span]:
        """Open a child span of the innermost active span."""
        node = Span(name, time.perf_counter() - self._origin, **metadata)
        if self._stack:
            self._stack[-1].children.append(node)
        else:
            self.roots.append(node)
        self._stack.append(node)
        start = time.perf_counter()
        try:
            yield node
        finally:
            node.elapsed_seconds = time.perf_counter() - start
            self._stack.pop()

    # -- export ------------------------------------------------------------

    def to_dicts(self) -> list[dict]:
        """The span forest as plain dicts."""
        return [root.to_dict() for root in self.roots]

    def to_json(self, indent: int | None = 2) -> str:
        """The span forest as a JSON document."""
        return json.dumps({"spans": self.to_dicts()}, indent=indent)

    def format_tree(self) -> str:
        """Indented text rendering of the span forest."""
        lines: list[str] = []

        def walk(span: Span, depth: int) -> None:
            meta = ""
            if span.metadata:
                meta = " [" + ", ".join(
                    f"{k}={v}" for k, v in span.metadata.items()
                ) + "]"
            lines.append(
                f"{'  ' * depth}{span.name}  "
                f"{span.elapsed_seconds * 1000:.2f} ms{meta}"
            )
            for child in span.children:
                walk(child, depth + 1)

        for root in self.roots:
            walk(root, 0)
        return "\n".join(lines)

    def reset(self) -> None:
        """Drop all recorded spans (open spans stay on the stack)."""
        self.roots.clear()


class _NullSpanContext:
    """Reusable no-op span context (shared singleton)."""

    __slots__ = ()

    def __enter__(self) -> None:
        return None

    def __exit__(self, *exc_info) -> bool:
        return False


_NULL_SPAN = _NullSpanContext()


class NullTraceRecorder:
    """Disabled recorder: ``span`` returns a shared no-op context."""

    enabled = False
    roots: list[Span] = []

    def span(self, name: str, **metadata) -> _NullSpanContext:
        return _NULL_SPAN

    def to_dicts(self) -> list[dict]:
        return []

    def to_json(self, indent: int | None = 2) -> str:
        return json.dumps({"spans": []}, indent=indent)

    def format_tree(self) -> str:
        return ""

    def reset(self) -> None:
        pass


#: The process-wide disabled recorder.
NULL_RECORDER = NullTraceRecorder()

_active: TraceRecorder | NullTraceRecorder = NULL_RECORDER


def get_recorder() -> TraceRecorder | NullTraceRecorder:
    """The recorder spans currently land in."""
    return _active


def set_recorder(
    recorder: TraceRecorder | None,
) -> TraceRecorder | NullTraceRecorder:
    """Install *recorder* (``None`` restores the no-op default)."""
    global _active
    _active = recorder if recorder is not None else NULL_RECORDER
    return _active


@contextmanager
def use_recorder(recorder: TraceRecorder) -> Iterator[TraceRecorder]:
    """Scoped :func:`set_recorder`; restores the previous one on exit."""
    global _active
    previous = _active
    _active = recorder
    try:
        yield recorder
    finally:
        _active = previous


def trace(name: str, **metadata):
    """Open a span named *name* on the active recorder."""
    return _active.span(name, **metadata)
