"""Telemetry exposition: Prometheus text format and the ops endpoint.

Two pieces, both stdlib-only:

* :func:`render_prometheus` turns any
  :meth:`~repro.obs.metrics.MetricsRegistry.snapshot` dict into the
  Prometheus text exposition format (version 0.0.4): counters as
  ``*_total``, gauges verbatim, timers as summaries (``_count`` /
  ``_sum`` plus min/max gauges), histograms as cumulative
  ``_bucket{le=...}`` series. Snapshots are plain dicts, so anything
  that has one — a live registry, a merged cross-process aggregate, a
  ``--metrics-out`` file read back — can be scraped.
* :class:`OpsServer` is a minimal asyncio HTTP endpoint serving
  ``/metrics`` (Prometheus text), ``/health`` (liveness JSON), and
  ``/stats`` (a :class:`~repro.serve.service.BoundQueryService`'s
  ``stats()`` plus a registry summary). It rides alongside the serve
  layer on the same event loop — the stepping stone to the ROADMAP's
  multi-tenant gateway — and costs nothing until started.

The export path stays off the hot path entirely: rendering walks a
snapshot (already the slow path), and the server only touches the
registry when scraped.
"""

from __future__ import annotations

import asyncio
import json
import re
from typing import Any

from .log import get_logger
from .metrics import MetricsRegistry, get_registry

__all__ = ["render_prometheus", "prometheus_name", "OpsServer"]

logger = get_logger(__name__)

_NAME_SANITIZER = re.compile(r"[^a-zA-Z0-9_:]")

#: Read deadline for one scrape request; an idle or half-open socket
#: must not pin the handler forever.
_REQUEST_TIMEOUT = 10.0


def prometheus_name(name: str, prefix: str = "repro") -> str:
    """A metric name as a valid Prometheus identifier.

    Dots (the repo's namespace separator) and any other illegal
    character become underscores; *prefix* namespaces the whole
    exposition so scraped series never collide with another job's.
    """
    sanitized = _NAME_SANITIZER.sub("_", name)
    if prefix:
        sanitized = f"{prefix}_{sanitized}"
    if not sanitized or sanitized[0].isdigit():
        sanitized = f"_{sanitized}"
    return sanitized


def _format_value(value: Any) -> str:
    if isinstance(value, bool):
        return "1" if value else "0"
    if isinstance(value, int):
        return str(value)
    number = float(value)
    if number == float("inf"):
        return "+Inf"
    if number == float("-inf"):
        return "-Inf"
    return repr(number)


def render_prometheus(snapshot: dict, *, prefix: str = "repro") -> str:
    """One snapshot as the Prometheus text exposition format."""
    lines: list[str] = []
    append = lines.append
    for name, value in snapshot.get("counters", {}).items():
        base = prometheus_name(name, prefix)
        append(f"# TYPE {base}_total counter")
        append(f"{base}_total {_format_value(value)}")
    for name, value in snapshot.get("gauges", {}).items():
        base = prometheus_name(name, prefix)
        append(f"# TYPE {base} gauge")
        append(f"{base} {_format_value(value)}")
    for name, timer in snapshot.get("timers", {}).items():
        base = prometheus_name(name, prefix)
        append(f"# TYPE {base} summary")
        append(f"{base}_count {_format_value(timer['count'])}")
        append(f"{base}_sum {_format_value(timer['total_seconds'])}")
        for stat in ("min", "max"):
            append(f"# TYPE {base}_{stat} gauge")
            append(
                f"{base}_{stat} "
                f"{_format_value(timer[f'{stat}_seconds'])}"
            )
    for name, histogram in snapshot.get("histograms", {}).items():
        base = prometheus_name(name, prefix)
        append(f"# TYPE {base} histogram")
        cumulative = 0
        for edge, bucket_count in zip(
            histogram["buckets"], histogram["counts"]
        ):
            cumulative += int(bucket_count)
            append(
                f'{base}_bucket{{le="{_format_value(edge)}"}} {cumulative}'
            )
        append(
            f'{base}_bucket{{le="+Inf"}} {_format_value(histogram["count"])}'
        )
        append(f"{base}_sum {_format_value(histogram['total'])}")
        append(f"{base}_count {_format_value(histogram['count'])}")
    return "\n".join(lines) + "\n" if lines else "\n"


class OpsServer:
    """Asyncio HTTP endpoint exposing ``/metrics``, ``/health``, ``/stats``.

    Parameters
    ----------
    registry:
        The registry ``/metrics`` renders; ``None`` scrapes whatever
        registry is active at request time, so a server started before
        ``use_registry`` still sees the run's metrics.
    service:
        An object with a ``stats()`` method (duck-typed so the obs
        layer keeps zero imports from ``repro.serve``); its snapshot
        becomes the ``service`` section of ``/stats`` and its liveness
        fields join ``/health``.
    host / port:
        Bind address; port 0 picks a free one (read it back from
        :attr:`port` after :meth:`start`).
    """

    def __init__(
        self,
        *,
        registry: MetricsRegistry | None = None,
        service: Any = None,
        host: str = "127.0.0.1",
        port: int = 0,
    ) -> None:
        self._registry = registry
        self._service = service
        self._host = host
        self._port = int(port)
        self._server: asyncio.AbstractServer | None = None

    # -- lifecycle --------------------------------------------------------

    @property
    def port(self) -> int:
        """The bound port (the requested one until :meth:`start`)."""
        return self._port

    @property
    def host(self) -> str:
        return self._host

    async def start(self) -> "OpsServer":
        """Bind and begin serving; idempotent."""
        if self._server is not None:
            return self
        self._server = await asyncio.start_server(
            self._handle, self._host, self._port
        )
        sockets = self._server.sockets or ()
        if sockets:
            self._port = sockets[0].getsockname()[1]
        logger.info("ops endpoint on %s:%d", self._host, self._port)
        return self

    async def aclose(self) -> None:
        """Stop accepting and close the listener (idempotent)."""
        server = self._server
        self._server = None
        if server is not None:
            server.close()
            await server.wait_closed()

    async def __aenter__(self) -> "OpsServer":
        return await self.start()

    async def __aexit__(self, *exc_info: object) -> None:
        await self.aclose()

    # -- request handling -------------------------------------------------

    def _active_registry(self) -> MetricsRegistry:
        return self._registry if self._registry is not None else get_registry()

    def _route(self, method: str, path: str) -> tuple[int, str, str]:
        """Dispatch one request; returns (status, content-type, body)."""
        if method != "GET":
            return 405, "text/plain; charset=utf-8", "method not allowed\n"
        path = path.split("?", 1)[0]
        if path == "/metrics":
            body = render_prometheus(self._active_registry().snapshot())
            return 200, "text/plain; version=0.0.4; charset=utf-8", body
        if path == "/health":
            payload: dict[str, Any] = {"status": "ok"}
            if self._service is not None:
                stats = self._service.stats()
                for key in ("epoch", "pending", "parallel_healthy"):
                    if key in stats:
                        payload[key] = stats[key]
            return 200, "application/json", json.dumps(payload) + "\n"
        if path == "/stats":
            snapshot = self._active_registry().snapshot()
            payload = {
                "service": (
                    self._service.stats()
                    if self._service is not None
                    else None
                ),
                "metrics": {
                    kind: len(values)
                    for kind, values in snapshot.items()
                },
            }
            return 200, "application/json", json.dumps(payload) + "\n"
        return 404, "text/plain; charset=utf-8", "not found\n"

    async def _handle(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
    ) -> None:
        try:
            try:
                raw = await asyncio.wait_for(
                    reader.readuntil(b"\r\n\r\n"), _REQUEST_TIMEOUT
                )
            except (
                asyncio.IncompleteReadError,
                asyncio.LimitOverrunError,
                asyncio.TimeoutError,
            ):
                return
            request_line = raw.split(b"\r\n", 1)[0].decode(
                "latin-1", "replace"
            )
            parts = request_line.split()
            if len(parts) < 2:
                status, content_type, body = (
                    400, "text/plain; charset=utf-8", "bad request\n"
                )
            else:
                status, content_type, body = self._route(parts[0], parts[1])
            registry = self._active_registry()
            if registry.enabled:
                registry.inc("obs.http.requests")
                if status >= 400:
                    registry.inc("obs.http.errors")
            payload = body.encode("utf-8")
            reason = {200: "OK", 400: "Bad Request", 404: "Not Found",
                      405: "Method Not Allowed"}.get(status, "OK")
            writer.write(
                f"HTTP/1.1 {status} {reason}\r\n"
                f"Content-Type: {content_type}\r\n"
                f"Content-Length: {len(payload)}\r\n"
                f"Connection: close\r\n\r\n".encode("latin-1") + payload
            )
            await writer.drain()
        except (ConnectionError, BrokenPipeError):  # client went away
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, BrokenPipeError):
                pass
