"""Process-local metrics registry: counters, gauges, timers, histograms.

The library records metrics through the *active* registry returned by
:func:`get_registry`. By default that is :data:`NULL_REGISTRY`, whose
recording methods are empty — the no-op-by-default overhead contract
(DESIGN.md): an instrumented hot path pays one attribute lookup and one
empty method call per event, nothing more. Code guarding genuinely
expensive derivations (e.g. recomputing Equation (1) bounds for the
bound-tightness histogram) checks ``registry.enabled`` first.

Enable collection for a block of work with::

    from repro.obs import MetricsRegistry, use_registry

    registry = MetricsRegistry()
    with use_registry(registry):
        apriori(db, 0.01, pruner=OSSMPruner(ossm))
    print(registry.to_json())

Snapshots are plain nested dicts of JSON-serializable scalars, so they
attach cleanly to benchmark results and round-trip through
``json.dumps``. Everything here is stdlib-only and single-process by
design; cross-process aggregation happens by shipping snapshots back
to the parent and folding them in with :meth:`MetricsRegistry.merge`
(counters sum, gauges last-write-wins, timers and histograms merge
component-wise), which is how the worker pools in
:mod:`repro.parallel.pool` make fan-out telemetry survive the process
boundary.
"""

from __future__ import annotations

import json
import time
from contextlib import contextmanager
from typing import Iterator, Sequence

__all__ = [
    "Counter",
    "Gauge",
    "Timer",
    "Histogram",
    "MetricsRegistry",
    "NullRegistry",
    "NULL_REGISTRY",
    "get_registry",
    "set_registry",
    "use_registry",
    "DEFAULT_BUCKETS",
]

#: Default histogram bucket upper bounds (powers of two; values above
#: the last edge land in the overflow bucket).
DEFAULT_BUCKETS: tuple[float, ...] = (
    0, 1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024,
)


class Counter:
    """Monotonically increasing event count."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        """Add *amount* (must be >= 0) to the counter."""
        if amount < 0:
            raise ValueError("counters only go up; use a gauge")
        self.value += amount

    def snapshot(self) -> int:
        return self.value


class Gauge:
    """Last-write-wins instantaneous value."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value: float = 0.0

    def set(self, value: float) -> None:
        self.value = value

    def snapshot(self) -> float:
        return self.value


class Timer:
    """Accumulates wall-clock durations: count, total, min, max."""

    __slots__ = ("name", "count", "total", "min", "max")

    def __init__(self, name: str) -> None:
        self.name = name
        self.count = 0
        self.total = 0.0
        self.min = float("inf")
        self.max = 0.0

    def observe(self, seconds: float) -> None:
        """Record one duration in seconds."""
        if seconds < 0:
            raise ValueError("durations must be non-negative")
        self.count += 1
        self.total += seconds
        self.min = min(self.min, seconds)
        self.max = max(self.max, seconds)

    @contextmanager
    def time(self) -> Iterator[None]:
        """Context manager recording the elapsed wall time of the block."""
        start = time.perf_counter()
        try:
            yield
        finally:
            self.observe(time.perf_counter() - start)

    def snapshot(self) -> dict:
        return {
            "count": self.count,
            "total_seconds": self.total,
            "min_seconds": self.min if self.count else 0.0,
            "max_seconds": self.max,
            "mean_seconds": self.total / self.count if self.count else 0.0,
        }


class Histogram:
    """Fixed-bucket histogram of observed values.

    ``buckets`` are inclusive upper bounds in increasing order; an
    observation lands in the first bucket whose bound is >= the value,
    or in the trailing overflow bucket. Count/total/min/max are kept
    exactly alongside the bucketed distribution.
    """

    __slots__ = ("name", "buckets", "counts", "count", "total", "min", "max")

    def __init__(
        self, name: str, buckets: Sequence[float] = DEFAULT_BUCKETS
    ) -> None:
        edges = tuple(float(b) for b in buckets)
        if not edges:
            raise ValueError("need at least one bucket bound")
        if list(edges) != sorted(edges) or len(set(edges)) != len(edges):
            raise ValueError("bucket bounds must be strictly increasing")
        self.name = name
        self.buckets = edges
        self.counts = [0] * (len(edges) + 1)  # +1 = overflow
        self.count = 0
        self.total = 0.0
        self.min = float("inf")
        self.max = float("-inf")

    def observe(self, value: float) -> None:
        """Record one value."""
        self.count += 1
        self.total += value
        self.min = min(self.min, value)
        self.max = max(self.max, value)
        for i, bound in enumerate(self.buckets):
            if value <= bound:
                self.counts[i] += 1
                return
        self.counts[-1] += 1

    def snapshot(self) -> dict:
        return {
            "buckets": list(self.buckets),
            "counts": list(self.counts),
            "count": self.count,
            "total": self.total,
            "min": self.min if self.count else 0.0,
            "max": self.max if self.count else 0.0,
            "mean": self.total / self.count if self.count else 0.0,
        }


class MetricsRegistry:
    """Named instruments, created on first use and snapshot as one dict.

    Instruments of different kinds share no namespace — asking for a
    counter under a name already registered as a gauge raises, which
    catches typo'd call sites early.
    """

    enabled = True

    def __init__(self) -> None:
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._timers: dict[str, Timer] = {}
        self._histograms: dict[str, Histogram] = {}

    # -- instrument access (create-or-get) -------------------------------

    def _claim(self, name: str, kind: dict) -> None:
        for registered in (
            self._counters, self._gauges, self._timers, self._histograms
        ):
            if registered is not kind and name in registered:
                raise ValueError(
                    f"metric name {name!r} already registered "
                    "as a different instrument kind"
                )

    def counter(self, name: str) -> Counter:
        instrument = self._counters.get(name)
        if instrument is None:
            self._claim(name, self._counters)
            instrument = self._counters[name] = Counter(name)
        return instrument

    def gauge(self, name: str) -> Gauge:
        instrument = self._gauges.get(name)
        if instrument is None:
            self._claim(name, self._gauges)
            instrument = self._gauges[name] = Gauge(name)
        return instrument

    def timer(self, name: str) -> Timer:
        instrument = self._timers.get(name)
        if instrument is None:
            self._claim(name, self._timers)
            instrument = self._timers[name] = Timer(name)
        return instrument

    def histogram(
        self, name: str, buckets: Sequence[float] = DEFAULT_BUCKETS
    ) -> Histogram:
        instrument = self._histograms.get(name)
        if instrument is None:
            self._claim(name, self._histograms)
            instrument = self._histograms[name] = Histogram(name, buckets)
        return instrument

    # -- one-shot recording shorthands ------------------------------------

    def inc(self, name: str, amount: int = 1) -> None:
        """Increment counter *name* by *amount*."""
        self.counter(name).inc(amount)

    def set_gauge(self, name: str, value: float) -> None:
        """Set gauge *name* to *value*."""
        self.gauge(name).set(value)

    def observe(
        self,
        name: str,
        value: float,
        buckets: Sequence[float] = DEFAULT_BUCKETS,
    ) -> None:
        """Record *value* into histogram *name*."""
        self.histogram(name, buckets).observe(value)

    def time(self, name: str):
        """Context manager timing a block into timer *name*."""
        return self.timer(name).time()

    # -- export ------------------------------------------------------------

    def snapshot(self) -> dict:
        """All instruments as one nested, JSON-serializable dict."""
        return {
            "counters": {
                name: c.snapshot() for name, c in sorted(self._counters.items())
            },
            "gauges": {
                name: g.snapshot() for name, g in sorted(self._gauges.items())
            },
            "timers": {
                name: t.snapshot() for name, t in sorted(self._timers.items())
            },
            "histograms": {
                name: h.snapshot()
                for name, h in sorted(self._histograms.items())
            },
        }

    def to_json(self, indent: int | None = 2) -> str:
        """The snapshot as a JSON document."""
        return json.dumps(self.snapshot(), indent=indent)

    # -- cross-process aggregation ----------------------------------------

    def merge(self, snapshot: dict) -> None:
        """Fold another registry's :meth:`snapshot` into this one.

        The merge semantics per instrument kind (DESIGN.md §12):

        * **counters** sum — event counts are additive over any
          partition of the work, and stay exact Python ints (no float
          ever touches them);
        * **gauges** are last-write-wins — the incoming snapshot's
          value replaces the local one, matching :meth:`Gauge.set`;
        * **timers** merge component-wise: counts and totals sum,
          min/max combine (an empty incoming timer contributes
          nothing, so its sentinel ``0.0`` min never pollutes ours);
        * **histograms** merge bucket-wise. The bucket edges must be
          identical — merging distributions over different bucket
          layouts has no sound interpretation, so a mismatch raises
          :class:`ValueError` rather than silently mixing bins.

        Missing top-level sections are treated as empty, so partial
        snapshots (e.g. a hand-built ``{"counters": {...}}``) merge
        cleanly. Merging is associative and commutative up to gauge
        ordering — shard snapshots may be folded in any interleaving
        and the additive sections agree (``tests/obs`` holds the
        hypothesis property).
        """
        for name, value in snapshot.get("counters", {}).items():
            self.counter(name).inc(int(value))
        for name, value in snapshot.get("gauges", {}).items():
            self.gauge(name).set(value)
        for name, incoming in snapshot.get("timers", {}).items():
            count = int(incoming["count"])
            if count == 0:
                continue
            timer = self.timer(name)
            timer.count += count
            timer.total += incoming["total_seconds"]
            timer.min = min(timer.min, incoming["min_seconds"])
            timer.max = max(timer.max, incoming["max_seconds"])
        for name, incoming in snapshot.get("histograms", {}).items():
            edges = tuple(float(edge) for edge in incoming["buckets"])
            histogram = self.histogram(name, edges)
            if histogram.buckets != edges:
                raise ValueError(
                    f"histogram {name!r}: cannot merge bucket edges "
                    f"{list(edges)} into {list(histogram.buckets)}"
                )
            count = int(incoming["count"])
            if count == 0:
                continue
            for index, bucket_count in enumerate(incoming["counts"]):
                histogram.counts[index] += int(bucket_count)
            histogram.count += count
            histogram.total += incoming["total"]
            histogram.min = min(histogram.min, incoming["min"])
            histogram.max = max(histogram.max, incoming["max"])

    def reset(self) -> None:
        """Drop every instrument and its accumulated state."""
        self._counters.clear()
        self._gauges.clear()
        self._timers.clear()
        self._histograms.clear()


class _NullContext:
    """Reusable no-op context manager (shared singleton)."""

    __slots__ = ()

    def __enter__(self) -> None:
        return None

    def __exit__(self, *exc_info) -> bool:
        return False


_NULL_CONTEXT = _NullContext()


class NullRegistry(MetricsRegistry):
    """Recording surface of :class:`MetricsRegistry`, all no-ops.

    The default active registry. Hot paths may call ``inc``/``observe``
    /``set_gauge``/``time`` unconditionally; each costs one empty method
    call. ``snapshot()`` is the empty snapshot.
    """

    enabled = False

    def inc(self, name: str, amount: int = 1) -> None:
        pass

    def set_gauge(self, name: str, value: float) -> None:
        pass

    def observe(
        self,
        name: str,
        value: float,
        buckets: Sequence[float] = DEFAULT_BUCKETS,
    ) -> None:
        pass

    def time(self, name: str) -> _NullContext:
        return _NULL_CONTEXT

    def merge(self, snapshot: dict) -> None:
        # The null registry is a shared singleton; folding real data
        # into it would both leak state across users and silently
        # swallow the merge. Dropping the snapshot is the no-op.
        pass


#: The process-wide disabled registry.
NULL_REGISTRY = NullRegistry()

_active: MetricsRegistry = NULL_REGISTRY


def get_registry() -> MetricsRegistry:
    """The registry instrumentation currently records into."""
    return _active


def set_registry(registry: MetricsRegistry | None) -> MetricsRegistry:
    """Install *registry* (``None`` restores the no-op default)."""
    global _active
    _active = registry if registry is not None else NULL_REGISTRY
    return _active


@contextmanager
def use_registry(registry: MetricsRegistry) -> Iterator[MetricsRegistry]:
    """Scoped :func:`set_registry`; restores the previous one on exit."""
    global _active
    previous = _active
    _active = registry
    try:
        yield registry
    finally:
        _active = previous
