"""Fixed-bucket sliding-window quantile estimation for serve SLOs.

:class:`SlidingQuantile` answers "what is the p99 latency over the
last minute" without keeping the raw observations: the window is a
ring of fixed-width time slices, each slice a fixed-bucket count
vector, so memory is ``slices × (buckets + 1)`` integers regardless of
traffic. Quantiles are read off the merged live slices and reported as
the upper edge of the bucket the rank lands in — an overestimate by at
most one bucket width, never an underestimate within the covered
range (values beyond the top edge are clamped to it; pick edges that
bracket your SLO).

The estimator is deliberately always-on-cheap: ``observe`` is one
clock read, one ring-slot check, and one bisect into a short tuple —
no allocation on the steady path — so :class:`~repro.serve.service.
BoundQueryService` can track every request without an obs opt-in, the
same way its cache keeps hit counters.
"""

from __future__ import annotations

import time
from bisect import bisect_left
from collections.abc import Callable, Sequence

__all__ = ["SlidingQuantile", "LATENCY_BUCKETS"]

#: Default latency bucket upper bounds in seconds: 10 µs to 10 s on a
#: 1-2.5-5 ladder — brackets everything from a cache hit to a badly
#: overloaded batch.
LATENCY_BUCKETS: tuple[float, ...] = (
    0.00001, 0.000025, 0.00005, 0.0001, 0.00025, 0.0005,
    0.001, 0.0025, 0.005, 0.01, 0.025, 0.05,
    0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)


class SlidingQuantile:
    """Quantiles over a sliding time window, in fixed bucket space.

    Parameters
    ----------
    buckets:
        Strictly increasing upper bounds; an observation lands in the
        first bucket whose bound is >= the value, or the overflow slot.
    window_seconds:
        How far back observations count.
    slices:
        Ring granularity: the window is ``slices`` sub-windows and
        expiry happens a whole slice at a time, so the effective
        window wobbles by at most one slice width.
    clock:
        Injectable monotonic clock (tests pin it).
    """

    __slots__ = (
        "buckets", "window_seconds", "slices",
        "_clock", "_slice_width", "_counts", "_slice_ids",
    )

    def __init__(
        self,
        buckets: Sequence[float] = LATENCY_BUCKETS,
        *,
        window_seconds: float = 60.0,
        slices: int = 12,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        edges = tuple(float(bound) for bound in buckets)
        if not edges:
            raise ValueError("need at least one bucket bound")
        if list(edges) != sorted(edges) or len(set(edges)) != len(edges):
            raise ValueError("bucket bounds must be strictly increasing")
        if window_seconds <= 0:
            raise ValueError("window_seconds must be positive")
        if slices < 1:
            raise ValueError("slices must be >= 1")
        self.buckets = edges
        self.window_seconds = float(window_seconds)
        self.slices = int(slices)
        self._clock = clock
        self._slice_width = self.window_seconds / self.slices
        self._counts = [[0] * (len(edges) + 1) for _ in range(self.slices)]
        self._slice_ids = [-1] * self.slices

    # -- recording --------------------------------------------------------

    def observe(self, value: float) -> None:
        """Record one value at the current clock time."""
        slice_id = int(self._clock() / self._slice_width)
        slot = slice_id % self.slices
        if self._slice_ids[slot] != slice_id:
            # The slot last held a now-expired slice; recycle in place.
            counts = self._counts[slot]
            for index in range(len(counts)):
                counts[index] = 0
            self._slice_ids[slot] = slice_id
        self._counts[slot][bisect_left(self.buckets, value)] += 1

    # -- reading ----------------------------------------------------------

    def _live_counts(self) -> list[int]:
        """Bucket counts over the slices still inside the window."""
        now_id = int(self._clock() / self._slice_width)
        merged = [0] * (len(self.buckets) + 1)
        for slot in range(self.slices):
            slice_id = self._slice_ids[slot]
            if slice_id >= 0 and now_id - slice_id < self.slices:
                counts = self._counts[slot]
                for index, bucket_count in enumerate(counts):
                    merged[index] += bucket_count
        return merged

    @property
    def count(self) -> int:
        """Observations currently inside the window."""
        return sum(self._live_counts())

    def quantile(self, q: float) -> float:
        """The *q*-quantile (0 < q <= 1) as a bucket upper edge.

        Returns 0.0 on an empty window. Ranks landing in the overflow
        bucket clamp to the top edge — the estimator's resolution
        limit, reported rather than guessed past.
        """
        if not 0.0 < q <= 1.0:
            raise ValueError("q must be in (0, 1]")
        counts = self._live_counts()
        total = sum(counts)
        if total == 0:
            return 0.0
        # Smallest rank covering a q fraction, i.e. ceil(q * total).
        rank = -((-total * q) // 1)
        cumulative = 0
        for index, bucket_count in enumerate(counts):
            cumulative += bucket_count
            if cumulative >= rank:
                return self.buckets[min(index, len(self.buckets) - 1)]
        return self.buckets[-1]

    def snapshot(self) -> dict:
        """Count plus the p50/p95/p99 the serve layer reports."""
        counts = self._live_counts()
        total = sum(counts)
        return {
            "count": total,
            "window_seconds": self.window_seconds,
            "p50": self.quantile(0.50) if total else 0.0,
            "p95": self.quantile(0.95) if total else 0.0,
            "p99": self.quantile(0.99) if total else 0.0,
        }

    def reset(self) -> None:
        """Forget every observation."""
        for counts in self._counts:
            for index in range(len(counts)):
                counts[index] = 0
        self._slice_ids = [-1] * self.slices
