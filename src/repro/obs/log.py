"""Structured, namespaced logging for the ``repro`` library.

Every module logs through a ``repro.*`` logger obtained from
:func:`get_logger`. Importing this module attaches a
:class:`logging.NullHandler` to the ``repro`` root logger, so — per
library convention — the package emits **no** log records unless the
embedding application (or :func:`configure_logging`) installs a
handler. ``logging.lastResort`` never fires for ``repro.*`` records.

:func:`configure_logging` is the one-call opt-in used by the CLI and
the examples: it installs a stream handler on the ``repro`` logger,
either with a conventional text format or as one JSON object per line
(``json=True``), and is idempotent — calling it again reconfigures the
single managed handler instead of stacking duplicates.
"""

from __future__ import annotations

import json as _json
import logging
import sys
from typing import IO

__all__ = [
    "ROOT_LOGGER_NAME",
    "JsonFormatter",
    "configure_logging",
    "get_logger",
    "reset_logging",
]

#: Namespace root shared by every library logger.
ROOT_LOGGER_NAME = "repro"

#: Text format used when ``json=False``.
TEXT_FORMAT = "%(asctime)s %(levelname)s %(name)s: %(message)s"

# Library convention: silent unless the application opts in.
logging.getLogger(ROOT_LOGGER_NAME).addHandler(logging.NullHandler())

#: The handler installed by :func:`configure_logging`, if any.
_managed_handler: logging.Handler | None = None


def get_logger(name: str) -> logging.Logger:
    """A logger under the ``repro`` namespace.

    ``get_logger("mining.apriori")`` and
    ``get_logger("repro.mining.apriori")`` return the same logger, so
    call sites can use ``get_logger(__name__)`` directly.
    """
    if name == ROOT_LOGGER_NAME or name.startswith(ROOT_LOGGER_NAME + "."):
        return logging.getLogger(name)
    return logging.getLogger(f"{ROOT_LOGGER_NAME}.{name}")


class JsonFormatter(logging.Formatter):
    """One JSON object per record: timestamp, level, logger, message.

    Extra fields passed via ``logger.info("...", extra={...})`` are
    merged in when they are JSON-serializable.
    """

    _STANDARD = frozenset(
        logging.LogRecord(
            "", logging.INFO, "", 0, "", (), None
        ).__dict__
    ) | {"message", "asctime", "taskName"}

    def format(self, record: logging.LogRecord) -> str:
        payload: dict = {
            "ts": self.formatTime(record),
            "level": record.levelname,
            "logger": record.name,
            "message": record.getMessage(),
        }
        if record.exc_info:
            payload["exc_info"] = self.formatException(record.exc_info)
        for key, value in record.__dict__.items():
            if key in self._STANDARD:
                continue
            try:
                _json.dumps(value)
            except (TypeError, ValueError):
                value = repr(value)
            payload[key] = value
        return _json.dumps(payload)


def configure_logging(
    level: int | str = "INFO",
    json: bool = False,
    stream: IO[str] | None = None,
) -> logging.Handler:
    """Opt in to library log output; returns the installed handler.

    Parameters
    ----------
    level:
        Threshold for the ``repro`` logger (name or numeric).
    json:
        Emit one JSON object per line instead of the text format.
    stream:
        Destination stream (default ``sys.stderr``).
    """
    global _managed_handler
    root = logging.getLogger(ROOT_LOGGER_NAME)
    if _managed_handler is not None:
        root.removeHandler(_managed_handler)
    handler = logging.StreamHandler(stream or sys.stderr)
    handler.setFormatter(
        JsonFormatter() if json else logging.Formatter(TEXT_FORMAT)
    )
    root.addHandler(handler)
    root.setLevel(level if not isinstance(level, str) else level.upper())
    _managed_handler = handler
    return handler


def reset_logging() -> None:
    """Remove the handler installed by :func:`configure_logging`."""
    global _managed_handler
    root = logging.getLogger(ROOT_LOGGER_NAME)
    if _managed_handler is not None:
        root.removeHandler(_managed_handler)
        _managed_handler = None
    root.setLevel(logging.NOTSET)
