"""Human-readable run reports from metric snapshots and traces.

:func:`render_report` turns a :meth:`MetricsRegistry.snapshot` dict
(and optionally a :class:`~repro.obs.trace.TraceRecorder`) into the
text block the CLI and the examples print: instrument tables, a
pruning-effectiveness summary (prune ratios plus the Equation (1)
bound-tightness distribution), and the span tree. Pure formatting — no
dependencies beyond the stdlib, so the bench layer can reuse it.
"""

from __future__ import annotations

__all__ = [
    "format_snapshot",
    "pruning_effectiveness",
    "render_report",
]

_BAR_WIDTH = 30


def _rows(title: str, rows: list[tuple[str, str]]) -> list[str]:
    if not rows:
        return []
    width = max(len(name) for name, _ in rows)
    lines = [f"{title}:"]
    lines.extend(f"  {name.ljust(width)}  {value}" for name, value in rows)
    return lines


def format_snapshot(snapshot: dict) -> str:
    """Render every instrument of a registry snapshot as aligned text."""
    lines: list[str] = []
    lines += _rows(
        "counters",
        [(n, str(v)) for n, v in snapshot.get("counters", {}).items()],
    )
    lines += _rows(
        "gauges",
        [(n, f"{v:g}") for n, v in snapshot.get("gauges", {}).items()],
    )
    lines += _rows(
        "timers",
        [
            (
                n,
                f"count={t['count']}  total={t['total_seconds']:.4f}s  "
                f"mean={t['mean_seconds']:.4f}s  max={t['max_seconds']:.4f}s",
            )
            for n, t in snapshot.get("timers", {}).items()
        ],
    )
    for name, hist in snapshot.get("histograms", {}).items():
        lines.append(f"histogram {name}:")
        lines.extend(_histogram_lines(hist))
    return "\n".join(lines)


def _histogram_lines(hist: dict) -> list[str]:
    count = hist.get("count", 0)
    if not count:
        return ["  (no observations)"]
    lines = [
        f"  count={count}  mean={hist['mean']:.2f}  "
        f"min={hist['min']:g}  max={hist['max']:g}"
    ]
    edges = hist["buckets"]
    labels = [f"<= {edge:g}" for edge in edges] + [f"> {edges[-1]:g}"]
    peak = max(hist["counts"]) or 1
    width = max(len(label) for label in labels)
    for label, n in zip(labels, hist["counts"]):
        if not n:
            continue
        bar = "#" * max(1, round(_BAR_WIDTH * n / peak))
        lines.append(f"  {label.rjust(width)}  {str(n).rjust(8)}  {bar}")
    return lines


def pruning_effectiveness(snapshot: dict) -> str:
    """Summarize how much counting work the pruners removed.

    Reads the ``mining.candidates_*`` totals, the per-pruner
    ``pruner.<label>.pruned/kept`` counters, and the ``ossm.bound_gap``
    histogram; returns an empty string when none were recorded.
    """
    counters = snapshot.get("counters", {})
    lines: list[str] = []
    generated = counters.get("mining.candidates_generated", 0)
    pruned = counters.get("mining.candidates_pruned", 0)
    counted = counters.get("mining.candidates_counted", 0)
    if generated:
        lines.append(
            f"candidates: {generated} generated, {pruned} pruned "
            f"({pruned / generated:.1%}), {counted} counted"
        )
    for name in sorted(counters):
        if not name.startswith("pruner.") or not name.endswith(".pruned"):
            continue
        label = name[len("pruner."):-len(".pruned")]
        kept = counters.get(f"pruner.{label}.kept", 0)
        removed = counters[name]
        seen = removed + kept
        if seen:
            lines.append(
                f"pruner {label}: {removed} of {seen} candidates pruned "
                f"({removed / seen:.1%})"
            )
    gap = snapshot.get("histograms", {}).get("ossm.bound_gap")
    if gap and gap.get("count"):
        exact = gap["counts"][0] if gap["buckets"][0] == 0 else 0
        lines.append(
            "bound tightness (sup_hat - sup over counted candidates): "
            f"mean gap {gap['mean']:.1f}, max {gap['max']:g}, "
            f"exact on {exact / gap['count']:.1%}"
        )
        lines.extend(_histogram_lines(gap))
    if not lines:
        return ""
    return "pruning effectiveness:\n" + "\n".join(
        f"  {line}" for line in lines
    )


def render_report(
    snapshot: dict,
    recorder=None,
    title: str = "run report",
) -> str:
    """The full text report: effectiveness, instruments, span tree."""
    bar = "=" * max(len(title), 8)
    sections = [f"{bar}\n{title}\n{bar}"]
    effectiveness = pruning_effectiveness(snapshot)
    if effectiveness:
        sections.append(effectiveness)
    body = format_snapshot(snapshot)
    if body:
        sections.append(body)
    if recorder is not None:
        tree = recorder.format_tree()
        if tree:
            sections.append(f"spans:\n{tree}")
    return "\n\n".join(sections)
