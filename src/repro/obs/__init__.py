"""``repro.obs`` — observability: logging, metrics, tracing, reports.

Four cooperating layers, all stdlib-only and silent/no-op by default:

* :mod:`repro.obs.log` — namespaced ``repro.*`` loggers with a
  NullHandler default and a one-call :func:`configure_logging` opt-in
  (text or JSON lines);
* :mod:`repro.obs.metrics` — a process-local
  :class:`MetricsRegistry` (counters, gauges, timers, fixed-bucket
  histograms) behind a swap-in active-registry pointer;
* :mod:`repro.obs.trace` — nested span tracing via
  ``with trace("apriori.level", level=k):``, exportable as JSON or a
  text tree;
* :mod:`repro.obs.report` — renders snapshots and traces as the
  human-readable run report (including pruning effectiveness and the
  Equation (1) bound-tightness distribution);
* :mod:`repro.obs.export` — the telemetry export plane: Prometheus
  text exposition of any snapshot plus the asyncio ops endpoint
  (``/metrics``, ``/health``, ``/stats``);
* :mod:`repro.obs.quantiles` — a fixed-bucket sliding-window quantile
  estimator for rolling latency SLOs.

The overhead contract: with nothing configured, instrumented code pays
one no-op method call per event — see DESIGN.md §6 and
``benchmarks/bench_obs_overhead.py``, which enforces it.
"""

from .export import OpsServer, prometheus_name, render_prometheus
from .log import configure_logging, get_logger, reset_logging
from .metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullRegistry,
    Timer,
    get_registry,
    set_registry,
    use_registry,
)
from .quantiles import LATENCY_BUCKETS, SlidingQuantile
from .report import format_snapshot, pruning_effectiveness, render_report
from .trace import (
    NullTraceRecorder,
    Span,
    TraceRecorder,
    get_recorder,
    set_recorder,
    trace,
    use_recorder,
)

__all__ = [
    "OpsServer",
    "prometheus_name",
    "render_prometheus",
    "LATENCY_BUCKETS",
    "SlidingQuantile",
    "configure_logging",
    "get_logger",
    "reset_logging",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NullRegistry",
    "Timer",
    "get_registry",
    "set_registry",
    "use_registry",
    "format_snapshot",
    "pruning_effectiveness",
    "render_report",
    "NullTraceRecorder",
    "Span",
    "TraceRecorder",
    "get_recorder",
    "set_recorder",
    "trace",
    "use_recorder",
]
