"""Parallel OSSM construction and chunk-parallel Equation (1) bounds.

Two fan-outs, both provably exact (DESIGN.md §9):

* :func:`parallel_build_ossm` — the per-segment singleton support rows
  are independent of each other, so shards (contiguous runs of whole
  segments) compute their rows in worker processes and the parent
  concatenates them in segment order. The result is the same matrix
  ``build_from_database`` produces, row for row.
* :func:`parallel_upper_bounds` — Equation (1) is evaluated per
  candidate with no cross-candidate state, so the candidate table is
  split into contiguous chunks, each worker runs the ordinary
  ``OSSM.upper_bounds`` over its chunk, and the parent concatenates.
  Every worker executes the *same* integer arithmetic as the serial
  path (including the documented-exact pair fast path), so the bound
  vector is identical — and therefore exactly as sound.

:class:`ParallelOSSMPruner` packages the chunk-parallel evaluation as a
drop-in :class:`~repro.mining.pruning.OSSMPruner`: same ``"+ossm"``
label, same survivors, same recorded bounds — only the evaluation fans
out. This module is registered with the bound-soundness lint tier: all
support arithmetic here is int64, like the serial map.
"""

from __future__ import annotations

import time
from collections.abc import Sequence

import numpy as np

from ..core.ossm import OSSM, build_from_database
from ..data.transactions import TransactionDatabase
from ..mining.pruning import OSSMPruner
from ..obs.trace import trace
from .plan import ShardPlanner, resolve_workers
from .pool import (
    WorkerPool,
    bounds_chunk,
    init_bound_map,
    init_shards,
    publish_int64,
    record_fanout,
    segment_rows_shard,
)

__all__ = [
    "parallel_build_ossm",
    "parallel_upper_bounds",
    "ParallelOSSMPruner",
]

Itemset = tuple[int, ...]


def parallel_build_ossm(
    database: TransactionDatabase,
    boundaries: Sequence[int],
    workers: int | None = None,
    planner: ShardPlanner | None = None,
) -> OSSM:
    """Build the OSSM of *boundaries* with per-shard worker processes.

    *boundaries* are segment cut points ``[0, b1, ..., N]`` exactly as
    :func:`~repro.core.ossm.build_from_database` takes them; empty
    segments (repeated cut points) are legal and yield all-zero rows,
    as in the serial builder. Shards are contiguous runs of whole
    segments, so concatenating the per-shard row blocks in shard order
    reproduces the serial matrix exactly.
    """
    cuts = [int(boundary) for boundary in boundaries]
    if list(cuts) != sorted(cuts):
        raise ValueError("boundaries must be non-decreasing")
    if not cuts or cuts[0] != 0 or cuts[-1] != len(database):
        raise ValueError(
            "boundaries must start at 0 and end at len(database)"
        )
    n_workers = resolve_workers(workers)
    n_transactions = len(database)
    segment_sizes = [hi - lo for lo, hi in zip(cuts, cuts[1:])]
    if n_workers == 1 or n_transactions == 0 or len(segment_sizes) <= 1:
        return build_from_database(database, cuts)
    chosen_planner = planner if planner is not None else ShardPlanner()
    plan = chosen_planner.plan(n_transactions, n_workers, segment_sizes)
    if plan.n_shards <= 1:
        return build_from_database(database, cuts)

    # Assign each segment (including empty ones) to exactly one shard.
    # Shard cuts are a subset of the segment cuts, so every segment fits
    # in one shard; an empty segment sitting exactly on a shard boundary
    # goes to the earlier shard.
    shard_ranges = plan.ranges()
    per_shard: list[list[tuple[int, int]]] = [[] for _ in shard_ranges]
    shard = 0
    for lo, hi in zip(cuts, cuts[1:]):
        while hi > shard_ranges[shard][1]:
            shard += 1
        per_shard[shard].append((lo, hi))
    payloads = []
    for index, segments in enumerate(per_shard):
        shard_lo = shard_ranges[index][0]
        local = (segments[0][0] - shard_lo,) + tuple(
            hi - shard_lo for _lo, hi in segments
        )
        payloads.append((index, local))

    shards = tuple(database[lo:hi] for lo, hi in shard_ranges)
    start = time.perf_counter()
    with trace(
        "parallel.ossm_build",
        shards=plan.n_shards,
        workers=n_workers,
        segments=len(segment_sizes),
    ):
        with WorkerPool(
            min(n_workers, plan.n_shards), init_shards, shards
        ) as pool:
            results = pool.run(segment_rows_shard, payloads)
    wall = time.perf_counter() - start
    matrix = np.vstack([rows for _index, rows, _sizes, _sec in results])
    sizes = [
        size for _index, _rows, shard_sizes, _sec in results
        for size in shard_sizes
    ]
    timings = [
        (index, sum(shard_sizes), seconds)
        for index, _rows, shard_sizes, seconds in results
    ]
    record_fanout("parallel.ossm_build", timings, wall)
    return OSSM(matrix, segment_sizes=sizes)


def parallel_upper_bounds(
    ossm: OSSM,
    itemsets: Sequence[Sequence[int]],
    workers: int | None = None,
    pool: WorkerPool | None = None,
) -> np.ndarray:
    """Chunk-parallel Equation (1) bounds; identical to the serial value.

    When *pool* is given it must have been created with
    :func:`~repro.parallel.pool.init_bound_map` over this map's matrix
    (that is what :class:`ParallelOSSMPruner` maintains); otherwise a
    one-shot pool is created and torn down inside the call.
    """
    n_candidates = len(itemsets)
    if n_candidates == 0:
        return ossm.upper_bounds(itemsets)
    candidates = np.asarray(itemsets, dtype=np.int64)
    if candidates.ndim != 2:
        raise ValueError("itemsets must all have the same cardinality")
    if candidates.shape[1] == 0:
        return ossm.upper_bounds(itemsets)
    n_workers = pool.workers if pool is not None else resolve_workers(workers)
    n_chunks = min(n_workers, n_candidates)
    if n_chunks <= 1:
        return ossm.upper_bounds(itemsets)
    chunk_cuts = [
        index * n_candidates // n_chunks for index in range(n_chunks + 1)
    ]
    k = int(candidates.shape[1])
    start = time.perf_counter()
    owned = pool is None
    segment = publish_int64(candidates)
    try:
        # Built inside the try: once the segment exists, every failure
        # path must reach the finally that unlinks it.
        payloads = [
            (index, segment.name, n_candidates, k, lo, hi)
            for index, (lo, hi) in enumerate(zip(chunk_cuts, chunk_cuts[1:]))
        ]
        with trace(
            "parallel.bounds",
            chunks=n_chunks,
            workers=n_workers,
            candidates=n_candidates,
            k=k,
        ):
            if owned:
                pool = WorkerPool(
                    n_chunks, init_bound_map, np.asarray(ossm.matrix)
                )
            assert pool is not None
            results = pool.run(bounds_chunk, payloads)
    finally:
        if owned and pool is not None:
            pool.close()
        segment.close()
        segment.unlink()
    wall = time.perf_counter() - start
    bounds = np.concatenate(
        [chunk_bounds for _index, chunk_bounds, _sec in results]
    )
    timings = [
        (index, chunk_cuts[index + 1] - chunk_cuts[index], seconds)
        for index, _bounds, seconds in results
    ]
    record_fanout("parallel.bounds", timings, wall)
    return bounds.astype(np.int64)


class ParallelOSSMPruner(OSSMPruner):
    """OSSM pruner whose Equation (1) evaluation fans out over chunks.

    Keeps the serial pruner's ``"+ossm"`` label so a
    :class:`~repro.mining.base.MiningResult` is byte-identical whether
    bounds were evaluated serially or in parallel. The worker pool is
    created lazily on first use (the map is immutable, so it is shipped
    to workers once) and released by :meth:`close`.
    """

    def __init__(self, ossm: OSSM, workers: int | None = None) -> None:
        super().__init__(ossm)
        self.workers = resolve_workers(workers)
        self._pool: WorkerPool | None = None

    def _ensure_pool(self) -> WorkerPool:
        if self._pool is None:
            self._pool = WorkerPool(
                self.workers, init_bound_map, np.asarray(self.ossm.matrix)
            )
        return self._pool

    def close(self) -> None:
        """Release the worker processes (idempotent, safe on
        half-built instances)."""
        pool = getattr(self, "_pool", None)
        self._pool = None
        if pool is not None:
            pool.close()

    def __enter__(self) -> "ParallelOSSMPruner":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def __del__(self) -> None:
        # Never propagate from a finalizer (see WorkerPool.__del__).
        try:
            self.close()
        except BaseException:
            pass

    def _bounds(self, candidates: Sequence[Itemset]) -> np.ndarray:
        if self.workers == 1 or len(candidates) < 2:
            return self.ossm.upper_bounds(candidates)
        return parallel_upper_bounds(
            self.ossm, candidates, pool=self._ensure_pool()
        )

    def prune(
        self, candidates: Sequence[Itemset], min_support: int
    ) -> list[Itemset]:
        if not candidates:
            self._record_prune(0, 0)
            return []
        bounds = self._bounds(candidates)
        threshold = int(min_support)
        survivors = [
            candidate
            for candidate, bound in zip(candidates, bounds)
            if bound >= threshold
        ]
        self._record_prune(len(candidates), len(survivors))
        return survivors

    def candidate_bounds(
        self, candidates: Sequence[Itemset]
    ) -> np.ndarray | None:
        if not candidates:
            return None
        return self._bounds(candidates)
