"""Thread-sharded execution for the vertical bitmap engine.

The process pool exists because pure-python counting holds the GIL; its
price is fork, pickle and a shared-memory candidate transport. The
bitmap engine's kernels (gather, bitwise AND, popcount) are numpy ufunc
loops that *release* the GIL, so for this engine the cheap
fan-out is threads over one shared read-only
:class:`~repro.mining.bitmap.PackedBitmap` — no serialization, no
shared-memory segments (that transport is legacy here), no worker
processes to supervise.

Sharding is by *word columns*: shard ``i`` owns the packed words
``[b_i, b_{i+1})``, i.e. transactions ``[64·b_i, 64·b_{i+1})``. Word
columns partition the transaction bits, support is additive over any
partition of the transactions, and per-shard popcounts are int64 —
so the parent's elementwise sum equals the serial count bit for bit,
whatever the thread count or completion order (the same DESIGN.md §9
argument as the process path, one level down). DESIGN.md §14 spells it
out for words.

A shard that raises — including an injected ``bitmap.shard_error`` —
poisons the whole fan-out: the counter abandons the batch and falls
back to the serial bitmap reduction exactly once for that call, which
is always exact. Thread shards cannot crash the interpreter the way a
SIGKILLed worker process can, so there is no rebuild/retry machinery
and the process-pool circuit breaker is deliberately not consulted.
"""

from __future__ import annotations

import time
from collections.abc import Sequence
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass

import numpy as np

from ..mining.bitmap import (
    WORD_BITS,
    BitmapCounter,
    PackedBitmap,
    popcount_reduce,
)
from ..obs.log import get_logger
from ..obs.metrics import get_registry
from ..obs.trace import trace
from ..resilience import get_injector
from .plan import ShardPlan, resolve_workers
from .pool import record_fanout

__all__ = ["ThreadShardPlanner", "ThreadedBitmapCounter"]

logger = get_logger(__name__)

#: Fault-injection point fired inside every thread shard.
SHARD_ERROR_POINT = "bitmap.shard_error"

#: Words below which fanning out is pure overhead: 16 words = 1024
#: transactions per shard minimum.
_MIN_WORDS_PER_SHARD = 16


@dataclass(frozen=True)
class ThreadShardPlanner:
    """Chooses word-column shard boundaries for the thread path.

    Boundaries are in *words* (64-transaction units), so every shard is
    a whole number of packed words and the per-shard reduce needs no
    edge masks. Reuses :class:`~repro.parallel.plan.ShardPlan` — the
    same cut-point convention as the process planner, in word units.

    Parameters
    ----------
    n_shards:
        Explicit shard count; ``None`` derives it from the worker
        count.
    min_words:
        Minimum words per shard; small matrices collapse to fewer
        shards (possibly one) rather than paying fan-out overhead on
        trivial slices.
    """

    n_shards: int | None = None
    min_words: int = _MIN_WORDS_PER_SHARD

    def __post_init__(self) -> None:
        if self.n_shards is not None and self.n_shards < 1:
            raise ValueError("n_shards must be >= 1 or None")
        if self.min_words < 1:
            raise ValueError("min_words must be >= 1")

    def plan(self, n_words: int, workers: int) -> ShardPlan:
        """Cut ``n_words`` word columns into shards for *workers* threads."""
        if n_words < 0:
            raise ValueError("n_words must be >= 0")
        if workers < 1:
            raise ValueError("workers must be >= 1")
        if n_words == 0:
            return ShardPlan((0,))
        target = self.n_shards if self.n_shards is not None else workers
        target = min(target, max(n_words // self.min_words, 1), n_words)
        return ShardPlan(
            tuple(i * n_words // target for i in range(target + 1))
        )


def _count_shard(
    payload: tuple[PackedBitmap, np.ndarray, int, int, int]
) -> tuple[int, np.ndarray, float]:
    """One shard's AND+popcount over its word-column range.

    Returns ``(shard_index, int64 partial counts, seconds)`` — the same
    result shape as the process path's ``count_shard``, so the parent
    reduce and the fan-out telemetry are symmetrical.
    """
    packed, table, shard_index, w_lo, w_hi = payload
    start = time.perf_counter()
    injector = get_injector()
    if injector.enabled:
        injector.maybe_raise(SHARD_ERROR_POINT)
    vector = popcount_reduce(packed.words, table, w_lo, w_hi)
    return shard_index, vector, time.perf_counter() - start


class ThreadedBitmapCounter(BitmapCounter):
    """Bitmap counting fanned out over a thread pool.

    Drop-in for :class:`~repro.mining.bitmap.BitmapCounter` (and
    therefore for every :class:`~repro.mining.counting.SupportCounter`
    call site): only :meth:`_candidate_counts` changes, so the
    contract paths — empty inputs, the empty itemset, out-of-domain
    items, mixed cardinality — are literally the base class's code.

    Parameters
    ----------
    workers:
        Thread count; ``None`` consults ``REPRO_WORKERS`` then the CPU
        count (:func:`~repro.parallel.plan.resolve_workers`).
    segment_sizes:
        Forwarded to the base class; segment views
        (``count_segments``/``to_ossm``/``upper_bounds``) stay serial —
        they are one-pass already.
    planner:
        Word-shard boundary policy (default
        :class:`ThreadShardPlanner`).

    The executor is created lazily and shut down by :meth:`close`
    (context manager supported). Threads hold no state: every task
    reads the shared packed matrix and returns a fresh vector, so one
    counter instance may serve concurrent :meth:`count` calls from many
    caller threads.
    """

    def __init__(
        self,
        workers: int | None = None,
        segment_sizes: Sequence[int] | None = None,
        planner: ThreadShardPlanner | None = None,
    ) -> None:
        super().__init__(segment_sizes=segment_sizes)
        self.workers = resolve_workers(workers)
        self.planner = planner if planner is not None else ThreadShardPlanner()
        self._executor: ThreadPoolExecutor | None = None

    # -- lifecycle -------------------------------------------------------

    def close(self) -> None:
        """Shut the thread pool down (idempotent, safe on half-built
        instances — ``__del__`` reaches here even when ``__init__``
        rejected the worker count before ``_executor`` existed)."""
        executor = getattr(self, "_executor", None)
        self._executor = None
        if executor is not None:
            executor.shutdown(wait=True)

    def __enter__(self) -> "ThreadedBitmapCounter":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def __del__(self) -> None:
        # Never propagate from a finalizer (see WorkerPool.__del__).
        try:
            self.close()
        except BaseException:
            pass

    def _ensure_executor(self) -> ThreadPoolExecutor:
        executor = self._executor
        if executor is None:
            executor = ThreadPoolExecutor(
                max_workers=self.workers,
                thread_name_prefix="repro-bitmap",
            )
            self._executor = executor
        return executor

    # -- sharded reduce --------------------------------------------------

    def _candidate_counts(
        self, packed: PackedBitmap, table: np.ndarray
    ) -> np.ndarray:
        plan = self.planner.plan(packed.n_words, self.workers)
        if plan.n_shards <= 1:
            return super()._candidate_counts(packed, table)
        payloads = [
            (packed, table, index, lo, hi)
            for index, (lo, hi) in enumerate(plan.ranges())
        ]
        start = time.perf_counter()
        executor = self._ensure_executor()
        with trace(
            "bitmap.count.fanout",
            shards=plan.n_shards,
            workers=self.workers,
            candidates=len(table),
        ):
            futures = [
                executor.submit(_count_shard, payload)
                for payload in payloads
            ]
            try:
                results = [future.result() for future in futures]
            except Exception as exc:
                for future in futures:
                    future.cancel()
                registry = get_registry()
                if registry.enabled:
                    registry.inc("resilience.engine.fallbacks")
                logger.warning(
                    "bitmap thread shard failed; counting serially: %s", exc
                )
                return super()._candidate_counts(packed, table)
        wall = time.perf_counter() - start
        total = np.zeros(len(table), dtype=np.int64)
        boundaries = plan.boundaries
        n = packed.n_transactions
        timings: list[tuple[int, int, float]] = []
        for shard_index, vector, seconds in results:
            total += vector
            lo = boundaries[shard_index] * WORD_BITS
            hi = min(boundaries[shard_index + 1] * WORD_BITS, n)
            timings.append((shard_index, hi - lo, seconds))
        record_fanout("bitmap.count", timings, wall)
        return total
