"""Shard planning: how a transaction collection splits across workers.

A *shard* is a contiguous transaction range ``[lo, hi)``; a plan is the
sorted list of cut points ``[0, b1, ..., N]`` — the same boundary
convention :func:`repro.core.ossm.build_from_database` uses for
segments, deliberately, because the exactness argument (DESIGN.md §9)
rests on shards being a partition of the collection into contiguous
runs. Support is additive over any such partition, so per-shard counts
always sum to the exact global count; *segment-aligned* shards
additionally keep every OSSM segment inside one shard, which is what
makes parallel OSSM construction a pure row concatenation.

:class:`ShardPlanner` chooses cut points from the segment composition
when one is available (an :class:`~repro.core.ossm.OSSM`'s
``segment_sizes``) and falls back to an even split otherwise. Degenerate
compositions — empty segments, single-transaction segments, one giant
segment — degrade gracefully: duplicate cuts collapse, so a plan never
contains an empty shard unless the collection itself is empty.
"""

from __future__ import annotations

import os
from collections.abc import Sequence
from dataclasses import dataclass

__all__ = ["ShardPlan", "ShardPlanner", "resolve_workers"]

#: Environment knob consulted when ``workers`` is not given explicitly —
#: the CI ``workers=2`` leg pins it so the whole suite runs sharded.
WORKERS_ENV = "REPRO_WORKERS"


def resolve_workers(workers: int | None) -> int:
    """Normalize a ``workers=`` knob to a concrete positive count.

    ``None`` consults the ``REPRO_WORKERS`` environment variable, then
    falls back to the CPU count. The result is always >= 1.
    """
    if workers is None:
        env = os.environ.get(WORKERS_ENV)
        if env is not None:
            workers = int(env)
        else:
            workers = os.cpu_count() or 1
    if workers < 1:
        raise ValueError(f"workers must be >= 1, got {workers}")
    return int(workers)


@dataclass(frozen=True)
class ShardPlan:
    """Contiguous shard boundaries over ``n_transactions`` transactions.

    ``boundaries`` are cut points ``[0, b1, ..., N]``; shard ``i`` holds
    transactions ``[boundaries[i], boundaries[i+1])``. The empty
    collection is represented by the single cut point ``(0,)`` — zero
    shards, nothing to fan out.
    """

    boundaries: tuple[int, ...]

    def __post_init__(self) -> None:
        if not self.boundaries or self.boundaries[0] != 0:
            raise ValueError("boundaries must start at 0")
        if list(self.boundaries) != sorted(self.boundaries):
            raise ValueError("boundaries must be non-decreasing")

    @property
    def n_shards(self) -> int:
        """Number of shards (0 for the empty collection)."""
        return len(self.boundaries) - 1

    @property
    def n_transactions(self) -> int:
        """Total transactions covered by the plan."""
        return self.boundaries[-1]

    @property
    def sizes(self) -> tuple[int, ...]:
        """Transactions per shard."""
        return tuple(
            hi - lo for lo, hi in zip(self.boundaries, self.boundaries[1:])
        )

    def ranges(self) -> list[tuple[int, int]]:
        """The ``[lo, hi)`` transaction range of every shard."""
        return list(zip(self.boundaries, self.boundaries[1:]))


@dataclass(frozen=True)
class ShardPlanner:
    """Chooses shard boundaries for a collection and a worker count.

    Parameters
    ----------
    n_shards:
        Explicit shard count; ``None`` derives it from the worker
        count.
    shards_per_worker:
        Fan-out factor when ``n_shards`` is ``None``. The default (1)
        minimizes per-shard overhead; raise it for workloads with
        skewed per-transaction cost, where smaller shards balance load.
    """

    n_shards: int | None = None
    shards_per_worker: int = 1

    def __post_init__(self) -> None:
        if self.n_shards is not None and self.n_shards < 1:
            raise ValueError("n_shards must be >= 1 or None")
        if self.shards_per_worker < 1:
            raise ValueError("shards_per_worker must be >= 1")

    def plan(
        self,
        n_transactions: int,
        workers: int,
        segment_sizes: Sequence[int] | None = None,
    ) -> ShardPlan:
        """Cut ``n_transactions`` into shards for *workers* processes.

        When *segment_sizes* is given (and consistent with the
        collection), cut points snap to segment boundaries so no OSSM
        segment straddles two shards. Inconsistent sizes — a map built
        from a different collection — are ignored rather than trusted.
        """
        if n_transactions < 0:
            raise ValueError("n_transactions must be >= 0")
        if workers < 1:
            raise ValueError("workers must be >= 1")
        if n_transactions == 0:
            return ShardPlan((0,))
        target = self.n_shards
        if target is None:
            target = workers * self.shards_per_worker
        target = min(target, n_transactions)
        if segment_sizes is not None and sum(segment_sizes) == n_transactions:
            return self._segment_aligned(
                n_transactions, target, segment_sizes
            )
        return ShardPlan(self._even_cuts(n_transactions, target))

    @staticmethod
    def _even_cuts(n: int, target: int) -> tuple[int, ...]:
        """``target + 1`` cut points splitting ``n`` as evenly as possible."""
        return tuple(i * n // target for i in range(target + 1))

    @staticmethod
    def _segment_aligned(
        n: int, target: int, segment_sizes: Sequence[int]
    ) -> ShardPlan:
        """Snap the even cut points to the nearest segment boundary."""
        segment_cuts = [0]
        for size in segment_sizes:
            if size < 0:
                raise ValueError("segment sizes must be non-negative")
            segment_cuts.append(segment_cuts[-1] + size)
        boundaries = [0]
        for i in range(1, target):
            ideal = i * n // target
            snapped = min(segment_cuts, key=lambda c: abs(c - ideal))
            if boundaries[-1] < snapped < n:
                boundaries.append(snapped)
        boundaries.append(n)
        return ShardPlan(tuple(boundaries))
