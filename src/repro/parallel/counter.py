"""The segment-sharded parallel support counter.

:class:`ParallelCounter` implements the
:class:`~repro.mining.counting.SupportCounter` interface by splitting
the :class:`~repro.data.transactions.TransactionDatabase` into
contiguous shards (aligned with OSSM segment boundaries when the
composition is known), fanning per-shard counting out over a process
pool, and summing the per-shard count vectors.

The reduction is *exact*, not approximate: the shards partition the
collection, support is additive over any partition of the transactions,
and the per-shard vectors are int64 — so the sum equals the serial
count for every candidate, bit for bit, regardless of worker count or
completion order (integer addition commutes). DESIGN.md §9 spells the
argument out; ``tests/parallel`` holds the differential harness that
checks it against every serial engine.

Inside each shard the worker runs one of the ordinary serial engines
(``tidset`` by default — its per-shard verticalization is cached across
Apriori levels), so the parallel path never re-implements counting
logic it would then have to keep equivalent by hand.
"""

from __future__ import annotations

import time
from collections.abc import Iterable, Sequence

import numpy as np

from ..data.transactions import TransactionDatabase
from ..mining.counting import SupportCounter, make_counter, parallel_breaker
from ..obs.log import get_logger
from ..obs.metrics import get_registry
from ..obs.trace import trace
from ..resilience import PoolFailure
from .plan import ShardPlan, ShardPlanner, resolve_workers
from .pool import (
    ENGINES,
    SupervisedPool,
    count_shard,
    init_shards,
    publish_int64,
    record_fanout,
)

__all__ = ["ParallelCounter"]

Itemset = tuple[int, ...]

logger = get_logger(__name__)


class ParallelCounter(SupportCounter):
    """Exact support counting fanned out over segment-aligned shards.

    Parameters
    ----------
    workers:
        Process count; ``None`` consults ``REPRO_WORKERS`` then the CPU
        count (see :func:`~repro.parallel.plan.resolve_workers`).
    engine:
        Serial engine run inside each shard: ``"subset"``, ``"tidset"``
        (default), or ``"hashtree"``. All three produce identical
        counts; the choice is a per-shard performance knob.
    planner:
        Shard-boundary policy (default :class:`ShardPlanner`).
    segment_sizes:
        OSSM segment composition of the databases this counter will
        see. When given (and consistent with the database), shard cuts
        snap to segment boundaries; when absent or inconsistent, the
        planner falls back to an even split. Either way the counts are
        exact — alignment only matters for reusing segment structure.

    The pool is bound lazily to the first counted database and reused
    as long as the same database object keeps arriving (the Apriori
    level loop), so workers pay shard setup once per mining run. Call
    :meth:`close` (or use as a context manager) to release the worker
    processes deterministically.
    """

    def __init__(
        self,
        workers: int | None = None,
        engine: str = "tidset",
        planner: ShardPlanner | None = None,
        segment_sizes: Sequence[int] | None = None,
    ) -> None:
        self.workers = resolve_workers(workers)
        if engine not in ENGINES:
            raise ValueError(
                f"unknown engine {engine!r}; expected one of {ENGINES}"
            )
        self.engine = engine
        self.planner = planner if planner is not None else ShardPlanner()
        self.segment_sizes = (
            tuple(int(size) for size in segment_sizes)
            if segment_sizes is not None
            else None
        )
        self._pool: SupervisedPool | None = None
        self._plan: ShardPlan | None = None
        self._database: TransactionDatabase | None = None
        self._serial: SupportCounter | None = None
        # Engine-selection telemetry is per *transition*, not per call:
        # an open breaker degrades every level of a mining run, and
        # counting one decision once keeps `resilience.engine.degraded`
        # comparable with make_counter's once-per-construction record.
        self._was_degraded = False

    # -- lifecycle -------------------------------------------------------

    def close(self) -> None:
        """Release the worker processes (idempotent, safe on
        half-built instances — ``__del__`` reaches here even when
        ``__init__`` rejected the engine name before ``_pool`` existed).
        """
        pool = getattr(self, "_pool", None)
        self._pool = None
        self._plan = None
        self._database = None
        if pool is not None:
            pool.close()

    def __enter__(self) -> "ParallelCounter":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def __del__(self) -> None:
        # Never propagate from a finalizer — even a pool whose workers
        # were SIGKILLed mid-close, collected during interpreter
        # shutdown, can surface BaseExceptions here.
        try:
            self.close()
        except BaseException:
            pass

    # -- binding ---------------------------------------------------------

    def _bind(
        self, database: TransactionDatabase
    ) -> tuple[ShardPlan, SupervisedPool]:
        """Shard *database* and (re)create the pool if it changed.

        Holding a strong reference to the bound database is deliberate:
        it pins the object so a recycled ``id`` can never alias a stale
        shard snapshot in the workers.
        """
        plan = self.planner.plan(
            len(database), self.workers, self.segment_sizes
        )
        if (
            self._pool is not None
            and self._plan is not None
            and database is self._database
            and plan.boundaries == self._plan.boundaries
        ):
            return self._plan, self._pool
        self.close()
        shards = tuple(database[lo:hi] for lo, hi in plan.ranges())
        pool = SupervisedPool(
            min(self.workers, plan.n_shards),
            init_shards,
            shards,
            name="parallel.count",
        )
        self._pool = pool
        self._plan = plan
        self._database = database
        return plan, pool

    def _serial_engine(self) -> SupportCounter:
        """The serial engine used when parallel execution is degraded.

        ``self.engine`` names a serial per-shard engine, so the fallback
        runs the *same* counting algorithm over the whole database —
        identical counts, just no fan-out.
        """
        if self._serial is None:
            self._serial = make_counter(self.engine)
        return self._serial

    # -- counting --------------------------------------------------------

    def count(
        self,
        database: Iterable[Itemset] | TransactionDatabase,
        candidates: Sequence[Itemset],
    ) -> dict[Itemset, int]:
        with get_registry().time("counting.parallel_seconds"):
            return self._count(database, candidates)

    def _count(
        self,
        database: Iterable[Itemset] | TransactionDatabase,
        candidates: Sequence[Itemset],
    ) -> dict[Itemset, int]:
        counts: dict[Itemset, int] = {
            candidate: 0 for candidate in candidates
        }
        if not counts:
            return counts
        k = len(candidates[0])
        if any(len(candidate) != k for candidate in candidates):
            raise ValueError("candidates must share one cardinality")
        if not isinstance(database, TransactionDatabase):
            database = TransactionDatabase(database)
        n_transactions = len(database)
        if n_transactions == 0:
            return counts
        if k == 0:
            # The empty itemset is contained in every transaction.
            for candidate in counts:
                counts[candidate] = n_transactions
            return counts
        breaker = parallel_breaker()
        if not breaker.allow():
            # Breaker open: don't touch (or rebuild) the broken pool at
            # all — count serially, which is always exact.
            if not self._was_degraded:
                self._was_degraded = True
                registry = get_registry()
                if registry.enabled:
                    registry.inc("resilience.engine.degraded")
            return self._serial_engine().count(database, candidates)
        self._was_degraded = False
        plan, pool = self._bind(database)
        ordered = list(counts)
        table = np.asarray(ordered, dtype=np.int64)
        start = time.perf_counter()
        segment = publish_int64(table)
        try:
            # Built inside the try: any failure after the segment
            # exists — even in this comprehension — must reach the
            # finally that unlinks it.
            payloads = [
                (index, self.engine, segment.name, len(ordered), k)
                for index in range(plan.n_shards)
            ]
            with trace(
                "parallel.count",
                shards=plan.n_shards,
                workers=pool.workers,
                candidates=len(ordered),
                k=k,
            ):
                results = pool.run(count_shard, payloads)
        except PoolFailure as exc:
            breaker.record_failure()
            registry = get_registry()
            if registry.enabled:
                registry.inc("resilience.engine.fallbacks")
            logger.warning(
                "parallel counting degraded to serial %s: %s",
                self.engine, exc,
            )
            self.close()
            return self._serial_engine().count(database, candidates)
        finally:
            segment.close()
            segment.unlink()
        breaker.record_success()
        wall = time.perf_counter() - start
        total = np.zeros(len(ordered), dtype=np.int64)
        sizes = plan.sizes
        timings: list[tuple[int, int, float]] = []
        for shard_index, vector, seconds in results:
            total += vector
            timings.append((shard_index, sizes[shard_index], seconds))
        record_fanout("parallel.count", timings, wall)
        for index, candidate in enumerate(ordered):
            counts[candidate] = int(total[index])
        return counts
