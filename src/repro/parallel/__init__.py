"""Segment-sharded process-parallel execution layer.

The OSSM's segment structure is an embarrassingly parallel
decomposition: per-segment singleton supports are independent, support
is additive over contiguous shards, and Equation (1) is a
per-candidate computation. This package exploits all three without
changing a single result — every parallel path is exactly equivalent
to its serial counterpart (DESIGN.md §9), and ``tests/parallel`` holds
the differential harness that proves it on every build.

* :class:`~repro.parallel.counter.ParallelCounter` — the
  :class:`~repro.mining.counting.SupportCounter` that shards the
  database and sums per-shard int64 counts.
* :func:`~repro.parallel.ossm.parallel_build_ossm` /
  :func:`~repro.parallel.ossm.parallel_upper_bounds` /
  :class:`~repro.parallel.ossm.ParallelOSSMPruner` — parallel OSSM
  construction and chunk-parallel bound evaluation.
* :class:`~repro.parallel.plan.ShardPlanner` — segment-aligned shard
  boundary selection; :func:`~repro.parallel.plan.resolve_workers` —
  the ``workers=`` / ``REPRO_WORKERS`` knob.
* :class:`~repro.parallel.pool.WorkerPool` — the process-pool plumbing
  (payload shipped once per worker, shared-memory candidate tables).
"""

from __future__ import annotations

from collections.abc import Sequence

from ..mining.counting import SupportCounter, register_parallel_backend
from .counter import ParallelCounter
from .ossm import (
    ParallelOSSMPruner,
    parallel_build_ossm,
    parallel_upper_bounds,
)
from .plan import ShardPlan, ShardPlanner, resolve_workers
from .pool import SupervisedPool, WorkerPool
from .threads import ThreadedBitmapCounter, ThreadShardPlanner


def _counter_factory(
    workers: int | None,
    shard_engine: str,
    segment_sizes: Sequence[int] | None,
) -> SupportCounter:
    """:func:`repro.mining.counting.make_counter` backend."""
    return ParallelCounter(
        workers=workers, engine=shard_engine, segment_sizes=segment_sizes
    )


def _pool_factory(
    workers: int | None, n_tasks: int
) -> SupervisedPool | None:
    """:func:`repro.mining.counting.make_pool` backend."""
    resolved = resolve_workers(workers)
    if resolved <= 1 or n_tasks <= 1:
        return None
    return SupervisedPool(resolved, name="parallel.chunks")


def _bitmap_thread_factory(
    workers: int | None, segment_sizes: Sequence[int] | None
) -> SupportCounter:
    """Per-engine ``make_counter`` override: bitmap + workers → threads."""
    return ThreadedBitmapCounter(workers=workers, segment_sizes=segment_sizes)


# Counter selection lives in repro.mining.counting; this package plugs
# its process-parallel engines into that registry at import time. The
# bitmap engine fans out over threads instead (its numpy kernels
# release the GIL), so it bypasses the process pool entirely.
register_parallel_backend(_counter_factory, _pool_factory)
register_parallel_backend(_bitmap_thread_factory, engine="bitmap")

__all__ = [
    "ParallelCounter",
    "ParallelOSSMPruner",
    "parallel_build_ossm",
    "parallel_upper_bounds",
    "ShardPlan",
    "ShardPlanner",
    "ThreadedBitmapCounter",
    "ThreadShardPlanner",
    "resolve_workers",
    "SupervisedPool",
    "WorkerPool",
]
