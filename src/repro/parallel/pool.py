"""Worker-process machinery for the segment-sharded execution layer.

Everything process-related lives here so the public classes
(:class:`~repro.parallel.counter.ParallelCounter`, the parallel OSSM
builders) stay free of pool plumbing:

* :class:`WorkerPool` — a ``ProcessPoolExecutor`` whose workers hold
  one immutable payload (the shard databases, or an OSSM matrix).
  Under the ``fork`` start method the payload is inherited by
  reference at worker creation — zero serialization; under ``spawn``
  it is pickled once per worker process, never per task.
* shared-memory transport for the candidate table: candidates of one
  cardinality form an ``n × k`` **int64** matrix (integer support
  arithmetic only — the same discipline the bound-soundness lint
  enforces), published once per counting call and attached read-only
  by every worker.
* the fan-out telemetry helpers: one ``parallel.shard`` span per shard
  (worker-measured wall time) plus the ``parallel.*`` timers and the
  fan-out overhead counter, all through the existing :mod:`repro.obs`
  seam.

Worker functions are module-level (picklable by reference) and return
plain ``(index, int64 vector/matrix, seconds)`` tuples, so reductions
in the parent are explicit and exact: per-shard counts are summed,
per-shard rows are concatenated in shard order. No float ever touches
a support value.
"""

from __future__ import annotations

import contextlib
import multiprocessing
import os
import time
from collections.abc import Iterator, Sequence
from concurrent.futures import (
    FIRST_COMPLETED,
    BrokenExecutor,
    Future,
    ProcessPoolExecutor,
    wait,
)
from contextlib import contextmanager
from multiprocessing import shared_memory
from typing import Any, Callable

import numpy as np

from ..core.ossm import OSSM
from ..data.transactions import TransactionDatabase
from ..mining.counting import SubsetCounter, SupportCounter, TidsetCounter
from ..mining.hash_tree import HashTreeCounter
from ..obs.log import get_logger
from ..obs.metrics import MetricsRegistry, get_registry, set_registry
from ..obs.trace import trace
from ..resilience import Backoff, PoolFailure, get_injector

__all__ = [
    "WorkerPool",
    "SupervisedPool",
    "plain_pool",
    "ENGINES",
    "publish_int64",
    "attach_int64",
    "record_fanout",
    "count_shard",
    "segment_rows_shard",
    "bounds_chunk",
    "init_shards",
    "init_bound_map",
    "TASK_DEADLINE_ENV",
]

Itemset = tuple[int, ...]

logger = get_logger(__name__)

#: Environment knob: seconds without any task completion *or* worker
#: heartbeat before the supervisor declares the pool hung.
TASK_DEADLINE_ENV = "REPRO_TASK_DEADLINE"
_DEFAULT_TASK_DEADLINE = 60.0
#: Pool rebuilds a single batch may consume before giving up.
_DEFAULT_MAX_REBUILDS = 3
#: Supervisor poll interval while a batch is in flight.
_POLL_INTERVAL = 0.05

#: Names of the per-shard counting engines a worker can instantiate.
#: Strings (not instances) cross the process boundary, so every worker
#: builds — and caches — its own engine per shard.
ENGINES: tuple[str, ...] = ("subset", "tidset", "hashtree")

_ENGINE_FACTORIES: dict[str, Callable[[], SupportCounter]] = {
    "subset": SubsetCounter,
    "tidset": TidsetCounter,
    "hashtree": HashTreeCounter,
}

# -- worker-side state -------------------------------------------------------

#: Shard databases held by this worker process (set by :func:`init_shards`).
_SHARDS: tuple[TransactionDatabase, ...] = ()
#: OSSM reconstructed in this worker (set by :func:`init_bound_map`).
_BOUND_MAP: OSSM | None = None
#: Per-(shard, engine) counter cache; lets the tidset engine pay its
#: verticalization once per shard instead of once per level.
_ENGINE_CACHE: dict[tuple[int, str], SupportCounter] = {}


def init_shards(shards: tuple[TransactionDatabase, ...]) -> None:
    """Pool initializer: install the shard snapshot in this worker."""
    global _SHARDS
    _SHARDS = shards
    _ENGINE_CACHE.clear()


def init_bound_map(matrix: np.ndarray) -> None:
    """Pool initializer: rebuild the OSSM from its support matrix."""
    global _BOUND_MAP
    _BOUND_MAP = OSSM(matrix)


def _shard_engine(shard_index: int, engine: str) -> SupportCounter:
    key = (shard_index, engine)
    counter = _ENGINE_CACHE.get(key)
    if counter is None:
        factory = _ENGINE_FACTORIES.get(engine)
        if factory is None:
            raise ValueError(
                f"unknown shard counting engine {engine!r}; expected "
                f"one of {', '.join(ENGINES)}"
            )
        counter = factory()
        _ENGINE_CACHE[key] = counter
    return counter


# -- worker-side telemetry ----------------------------------------------------

#: Counter prefixes that only the parent process may report. Engine
#: selection (breaker-degraded fallbacks) is decided once per run; a
#: forked worker inherits the parent's breaker state and would re-
#: report the *same* decision, so its copies are dropped at harvest.
PARENT_ONLY_COUNTER_PREFIXES: tuple[str, ...] = ("resilience.engine.",)


def _obs_init(bundle: tuple[Any, ...]) -> None:
    """Initializer wrapper installing this worker's metrics registry.

    *bundle* is ``(forward, initializer, payload)``. When the parent
    had an enabled registry at pool construction, each worker records
    into its own fresh :class:`MetricsRegistry` — NOT the (possibly
    fork-inherited) parent registry, whose accumulated values must not
    be double-counted — and :func:`_obs_task` ships per-task deltas
    back. With observability off this wrapper is never installed.
    """
    forward, initializer, payload = bundle
    if forward:
        set_registry(MetricsRegistry())
    if initializer is not None:
        initializer(payload)


def _obs_task(bundle: tuple[Any, ...]) -> tuple[Any, dict | None]:
    """Task wrapper returning ``(result, metrics_delta)``.

    The delta is this worker's registry snapshot since the previous
    task, captured with snapshot-and-reset so every event is shipped
    exactly once. Tasks of a batch that fails (worker crash, hang)
    are re-run on a rebuilt pool and only the successful attempt is
    harvested, so retries never double-count either.
    """
    task, payload = bundle
    result = task(payload)
    registry = get_registry()
    if registry.enabled:
        delta = registry.snapshot()
        registry.reset()
        return result, delta
    return result, None


def _harvest(wrapped: list[Any]) -> list[Any]:
    """Merge worker metric deltas into the active registry; unwrap."""
    registry = get_registry()
    results = []
    for result, delta in wrapped:
        if delta is not None and registry.enabled:
            counters = delta.get("counters")
            if counters:
                delta["counters"] = {
                    name: value
                    for name, value in counters.items()
                    if not name.startswith(PARENT_ONLY_COUNTER_PREFIXES)
                }
            registry.merge(delta)
        results.append(result)
    return results


# -- supervision: worker-side -------------------------------------------------

#: Heartbeat board shared with the parent (set by :func:`_supervised_init`).
_HB_BOARD: Any = None
#: This worker's slot in the board.
_HB_SLOT: int = -1


def _heartbeat() -> None:
    if _HB_BOARD is not None and _HB_SLOT >= 0:
        _HB_BOARD[_HB_SLOT] = time.time()


def _supervised_init(bundle: tuple[Any, ...]) -> None:
    """Initializer wrapper: claim a heartbeat slot, then run the real
    initializer. *bundle* is ``(board, slot_counter, slow_delay,
    initializer, payload)``; the board and counter are shared ctypes
    shipped through ``initargs`` (inherited under ``fork``, duplicated
    by the multiprocessing pickler under ``spawn``)."""
    global _HB_BOARD, _HB_SLOT
    board, slot_counter, slow_delay, initializer, payload = bundle
    _HB_BOARD = board
    with slot_counter.get_lock():
        _HB_SLOT = slot_counter.value % len(board)
        slot_counter.value += 1
    if slow_delay > 0.0:
        # pool.slow_start injection, drawn once in the parent per build.
        time.sleep(slow_delay)
    _heartbeat()
    if initializer is not None:
        initializer(payload)


def _supervised_task(bundle: tuple[Any, ...]) -> Any:
    """Task wrapper: beat the heartbeat around the real task and apply
    the parent-drawn fault action. *bundle* is ``(action, delay, task,
    payload)``; ``action`` is ``None`` on every production run —
    the parent only draws non-None under an active fault plan."""
    action, delay, task, payload = bundle
    _heartbeat()
    if action == "crash":
        # A genuine hard death: no exception, no cleanup — the parent
        # sees BrokenProcessPool exactly as with a real SIGKILL.
        os._exit(17)
    if action == "hang":
        time.sleep(delay)
    result = task(payload)
    _heartbeat()
    return result


# -- shared-memory transport -------------------------------------------------


def publish_int64(array: np.ndarray) -> shared_memory.SharedMemory:
    """Copy an int64 array into a fresh shared-memory segment.

    The caller owns the segment: ``close()`` *and* ``unlink()`` it once
    every worker has finished. Only int64 payloads are accepted — the
    candidate table and the OSSM matrix are integer data by contract.
    """
    if array.dtype != np.int64:
        raise TypeError(f"shared arrays must be int64, got {array.dtype}")
    if array.size == 0:
        raise ValueError("refusing to share an empty array")
    segment = shared_memory.SharedMemory(create=True, size=array.nbytes)
    try:
        view = np.ndarray(array.shape, dtype=np.int64, buffer=segment.buf)
        view[:] = array
    except BaseException:
        # The segment exists in the OS namespace the moment it is
        # created; a failed copy must not strand it there.
        segment.close()
        segment.unlink()
        raise
    return segment


def attach_int64(
    name: str, shape: tuple[int, ...]
) -> tuple[np.ndarray, shared_memory.SharedMemory]:
    """Attach a segment published by :func:`publish_int64` (worker side).

    Returns the live view and the handle; the caller must ``close()``
    the handle (never ``unlink()`` — the parent owns the segment) after
    copying what it needs out of the view.
    """
    segment = shared_memory.SharedMemory(name=name)
    try:
        view = np.ndarray(shape, dtype=np.int64, buffer=segment.buf)
    except BaseException:
        # close() only this worker's mapping — the parent owns the
        # segment and will unlink it.
        segment.close()
        raise
    return view, segment


# -- worker task functions ---------------------------------------------------


def count_shard(
    payload: tuple[int, str, str, int, int]
) -> tuple[int, np.ndarray, float]:
    """Count the shared candidate table against one shard.

    Payload: ``(shard_index, engine, shm_name, n_candidates, k)``.
    Returns ``(shard_index, int64 count vector, worker_seconds)``; the
    vector is aligned with the candidate table's row order, so parent-
    side reduction is a plain elementwise sum.
    """
    shard_index, engine, shm_name, n_candidates, k = payload
    start = time.perf_counter()
    view, segment = attach_int64(shm_name, (n_candidates, k))
    try:
        candidates: list[Itemset] = [tuple(map(int, row)) for row in view]
    finally:
        segment.close()
    counter = _shard_engine(shard_index, engine)
    counts = counter.count(_SHARDS[shard_index], candidates)
    vector = np.fromiter(
        (counts[candidate] for candidate in candidates),
        dtype=np.int64,
        count=n_candidates,
    )
    return shard_index, vector, time.perf_counter() - start


def segment_rows_shard(
    payload: tuple[int, tuple[int, ...]]
) -> tuple[int, np.ndarray, list[int], float]:
    """Per-segment singleton support rows for one shard's segments.

    Payload: ``(shard_index, local_cuts)`` where *local_cuts* are the
    segment boundaries relative to the shard start. Returns the rows in
    segment order plus the segment sizes, so the parent's concatenation
    reproduces the serial OSSM exactly.
    """
    shard_index, local_cuts = payload
    start = time.perf_counter()
    shard = _SHARDS[shard_index]
    rows: list[np.ndarray] = []
    sizes: list[int] = []
    for lo, hi in zip(local_cuts, local_cuts[1:]):
        segment = shard[lo:hi]
        rows.append(segment.item_supports())
        sizes.append(len(segment))
    matrix = np.vstack(rows)
    return shard_index, matrix, sizes, time.perf_counter() - start


def bounds_chunk(
    payload: tuple[int, str, int, int, int]
) -> tuple[int, np.ndarray, float]:
    """Equation (1) bounds for one chunk of the shared candidate table.

    Payload: ``(chunk_index, shm_name, n_candidates, k, lo, hi)`` is
    packed as ``(chunk_index, shm_name, n_candidates, k, (lo, hi))``
    would be redundant — the chunk's row range is ``[lo, hi)`` of the
    shared table. Uses the worker's reconstructed OSSM, so the bound
    arithmetic is byte-for-byte the serial ``upper_bounds`` path.
    """
    chunk_index, shm_name, n_candidates, k, lo, hi = payload  # type: ignore[misc]
    start = time.perf_counter()
    if _BOUND_MAP is None:
        raise RuntimeError("worker missing bound map; wrong initializer")
    view, segment = attach_int64(shm_name, (n_candidates, k))
    try:
        chunk = np.array(view[lo:hi], dtype=np.int64, copy=True)
    finally:
        segment.close()
    bounds = _BOUND_MAP.upper_bounds(chunk)
    return chunk_index, bounds, time.perf_counter() - start


# -- the pool ----------------------------------------------------------------


def _preferred_context() -> multiprocessing.context.BaseContext:
    """``fork`` where the platform offers it (payloads inherit for
    free), the platform default otherwise."""
    if "fork" in multiprocessing.get_all_start_methods():
        return multiprocessing.get_context("fork")
    return multiprocessing.get_context()


class WorkerPool:
    """A process pool whose workers hold one immutable payload.

    The payload travels through the pool *initializer*: with the
    ``fork`` start method workers inherit it by reference at creation
    (no serialization at all); with ``spawn`` it is pickled once per
    worker process — never once per task, which is what makes reusing
    the pool across Apriori levels cheap.

    Pools hold OS processes, so lifetime is explicit: use as a context
    manager or call :meth:`close`. Dropping the last reference also
    shuts the pool down.
    """

    def __init__(
        self,
        workers: int,
        initializer: Callable[..., None] | None = None,
        payload: Any = None,
    ) -> None:
        if workers < 1:
            raise ValueError("workers must be >= 1")
        self.workers = workers
        # Captured once at construction: whether the parent wants
        # worker telemetry shipped back. Workers are created now, so
        # a registry enabled *later* cannot reach them anyway.
        self._forward_metrics = get_registry().enabled
        kwargs: dict[str, Any] = {}
        if self._forward_metrics or initializer is not None:
            kwargs["initializer"] = _obs_init
            kwargs["initargs"] = (
                (self._forward_metrics, initializer, payload),
            )
        self._executor: ProcessPoolExecutor | None = ProcessPoolExecutor(
            max_workers=workers,
            mp_context=_preferred_context(),
            **kwargs,
        )

    @property
    def forwards_metrics(self) -> bool:
        """Whether worker metric deltas ride back with each result."""
        return self._forward_metrics

    def run(
        self,
        task: Callable[[Any], Any],
        payloads: Sequence[Any],
    ) -> list[Any]:
        """Run *task* over *payloads*; results in payload order.

        With metrics forwarding on, each worker's per-task registry
        delta is merged into the parent's active registry here, after
        the whole batch succeeded.
        """
        futures = [self.submit(task, payload) for payload in payloads]
        results = [future.result() for future in futures]
        if self._forward_metrics:
            return _harvest(results)
        return results

    def submit(
        self, task: Callable[[Any], Any], payload: Any
    ) -> Future[Any]:
        """Submit one task; the supervisor's entry point.

        With metrics forwarding on the future resolves to the
        ``(result, delta)`` pair of :func:`_obs_task`; :meth:`run` and
        the supervisor unwrap via :func:`_harvest`.
        """
        if self._executor is None:
            raise RuntimeError("pool is closed")
        if self._forward_metrics:
            return self._executor.submit(_obs_task, (task, payload))
        return self._executor.submit(task, payload)

    def close(self) -> None:
        """Shut the pool down (idempotent, safe on half-built instances).

        ``getattr`` rather than attribute access: ``__del__`` invokes
        this even when ``__init__`` raised before ``_executor`` was
        assigned (e.g. on a bad ``workers`` value).
        """
        executor = getattr(self, "_executor", None)
        self._executor = None
        if executor is not None:
            executor.shutdown(wait=True)

    def kill(self) -> None:
        """Tear the pool down *without* waiting for in-flight tasks.

        For broken or hung pools: a graceful :meth:`close` would join a
        worker that is never coming back. Terminates every live worker
        (escalating to SIGKILL if one survives its grace period) and
        abandons queued work.
        """
        executor = getattr(self, "_executor", None)
        self._executor = None
        if executor is None:
            return
        process_map = getattr(executor, "_processes", None)
        processes = list(process_map.values()) if process_map else []
        for process in processes:
            with contextlib.suppress(Exception):
                process.terminate()
        with contextlib.suppress(Exception):
            executor.shutdown(wait=False, cancel_futures=True)
        for process in processes:
            with contextlib.suppress(Exception):
                process.join(timeout=1.0)
                if process.is_alive():
                    process.kill()
                    process.join(timeout=1.0)

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def __del__(self) -> None:
        # Never propagate from a finalizer: at interpreter shutdown the
        # executor machinery may already be torn down, and joining a
        # SIGKILLed pool can surface BaseExceptions (not just
        # Exceptions) that must never escape a finalizer.
        try:
            self.close()
        except BaseException:
            pass


@contextmanager
def plain_pool(workers: int) -> Iterator[WorkerPool]:
    """A payload-less :class:`WorkerPool` (task args pickled per task)."""
    pool = WorkerPool(workers)
    try:
        yield pool
    finally:
        pool.close()


# -- supervision: parent-side -------------------------------------------------


class _PoolHang(RuntimeError):
    """Internal: the supervisor's hang deadline expired."""


def _task_deadline() -> float:
    raw = os.environ.get(TASK_DEADLINE_ENV, "")
    if raw:
        try:
            value = float(raw)
            if value > 0:
                return value
        except ValueError:
            pass
    return _DEFAULT_TASK_DEADLINE


class SupervisedPool:
    """A :class:`WorkerPool` wrapped in crash/hang supervision.

    Same construction signature and ``run``/context-manager surface as
    :class:`WorkerPool`, so call sites swap freely. The differences are
    what happens when workers misbehave:

    * every worker beats a shared heartbeat board at task start and
      finish; a batch with no completion *and* no heartbeat for
      ``deadline`` seconds (``REPRO_TASK_DEADLINE``) is declared hung
      and the pool is killed rather than waited on forever;
    * a worker death (``BrokenProcessPool``) or a declared hang tears
      the pool down, sleeps a bounded-exponential :class:`Backoff`
      step, rebuilds the pool from the retained initializer/payload,
      and resubmits the *whole* batch — sound because every task in
      this package is a pure function of its payload;
    * after ``max_rebuilds`` consecutive failed attempts the batch
      raises :class:`~repro.resilience.errors.PoolFailure` and the
      caller takes its serial fallback.

    Fault injection (``pool.worker_crash`` / ``pool.worker_hang`` /
    ``pool.slow_start``) is drawn in the *parent* — once per attempt,
    shipped inside the task bundle — so a ``times=1`` rule fires
    exactly once globally instead of once per rebuilt worker.
    """

    def __init__(
        self,
        workers: int,
        initializer: Callable[..., None] | None = None,
        payload: Any = None,
        *,
        deadline: float | None = None,
        max_rebuilds: int | None = None,
        backoff: Backoff | None = None,
        name: str = "parallel.pool",
    ) -> None:
        if workers < 1:
            raise ValueError("workers must be >= 1")
        self.workers = workers
        self.name = name
        self.deadline = _task_deadline() if deadline is None else deadline
        self.max_rebuilds = (
            _DEFAULT_MAX_REBUILDS if max_rebuilds is None else max_rebuilds
        )
        self._initializer = initializer
        self._payload = payload
        self._backoff = backoff if backoff is not None else Backoff(seed=0)
        self._ctx = _preferred_context()
        self._board: Any = None
        self._pool: WorkerPool | None = None
        self._closed = False
        self._build()

    # -- lifecycle -------------------------------------------------------

    def _build(self) -> None:
        self._board = self._ctx.Array("d", self.workers)
        slot_counter = self._ctx.Value("i", 0)
        slow_delay = 0.0
        injector = get_injector()
        if injector.enabled:
            rule = injector.fire("pool.slow_start")
            if rule is not None:
                slow_delay = rule.delay
        bundle = (
            self._board,
            slot_counter,
            slow_delay,
            self._initializer,
            self._payload,
        )
        self._pool = WorkerPool(self.workers, _supervised_init, bundle)

    def close(self) -> None:
        """Release the workers (idempotent, safe on half-built instances)."""
        self._closed = True
        pool = getattr(self, "_pool", None)
        self._pool = None
        self._board = None
        if pool is not None:
            pool.close()

    def kill(self) -> None:
        """Hard teardown (see :meth:`WorkerPool.kill`)."""
        self._closed = True
        pool = getattr(self, "_pool", None)
        self._pool = None
        self._board = None
        if pool is not None:
            pool.kill()

    def __enter__(self) -> "SupervisedPool":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def __del__(self) -> None:
        # Never propagate from a finalizer (see WorkerPool.__del__).
        try:
            self.close()
        except BaseException:
            pass

    # -- supervised execution --------------------------------------------

    def _wrap(
        self, task: Callable[[Any], Any], payload: Any
    ) -> tuple[Any, ...]:
        action: str | None = None
        delay = 0.0
        injector = get_injector()
        if injector.enabled:
            rule = injector.fire("pool.worker_crash")
            if rule is not None:
                action = "crash"
            else:
                rule = injector.fire("pool.worker_hang")
                if rule is not None:
                    action, delay = "hang", rule.delay
        return (action, delay, task, payload)

    def run(
        self,
        task: Callable[[Any], Any],
        payloads: Sequence[Any],
    ) -> list[Any]:
        """Run *task* over *payloads* with supervision; payload order.

        Retries the whole batch on worker death or hang (tasks are pure,
        so re-execution is free of side effects); raises
        :class:`PoolFailure` once the rebuild budget is spent.
        """
        if self._closed:
            raise RuntimeError("pool is closed")
        metrics = get_registry()
        attempts = 0
        while True:
            # Fault draws happen per attempt: hit counters advance, so a
            # times=1 crash rule fires on the first attempt only and the
            # retry runs clean.
            bundles = [self._wrap(task, payload) for payload in payloads]
            try:
                return self._run_once(bundles)
            except (BrokenExecutor, _PoolHang) as exc:
                attempts += 1
                cause = (
                    "hang deadline expired"
                    if isinstance(exc, _PoolHang)
                    else "worker process died"
                )
                if metrics.enabled:
                    metrics.inc(
                        "resilience.pool.hangs"
                        if isinstance(exc, _PoolHang)
                        else "resilience.pool.crashes"
                    )
                # Failure path only — never reached on a healthy batch.
                logger.warning(  # lint: skip=hot-obs-unguarded
                    "%s: %s (attempt %d/%d)",
                    self.name, cause, attempts, self.max_rebuilds + 1,
                )
                pool = self._pool
                self._pool = None
                if pool is not None:
                    pool.kill()
                if attempts > self.max_rebuilds:
                    raise PoolFailure(attempts, cause) from exc
                self._backoff.sleep()
                if metrics.enabled:
                    metrics.inc("resilience.pool.rebuilds")
                self._build()

    def _run_once(self, bundles: Sequence[tuple[Any, ...]]) -> list[Any]:
        pool = self._pool
        board = self._board
        if pool is None or board is None:
            raise RuntimeError("pool is closed")
        futures = [pool.submit(_supervised_task, bundle) for bundle in bundles]
        pending = set(futures)
        last_beat = max(board[:])
        last_progress = time.time()
        while pending:
            done, pending = wait(
                pending, timeout=_POLL_INTERVAL, return_when=FIRST_COMPLETED
            )
            for future in done:
                future.result()  # surfaces BrokenProcessPool / task errors
            now = time.time()
            beat = max(board[:])
            if done or beat > last_beat:
                last_progress = now
                last_beat = max(last_beat, beat)
            elif pending and now - last_progress > self.deadline:
                raise _PoolHang(
                    f"no completion or heartbeat in {self.deadline:.1f}s "
                    f"({len(pending)} tasks outstanding)"
                )
        self._backoff.reset()
        results = [future.result() for future in futures]
        if pool.forwards_metrics:
            # Harvest only here, on the attempt that completed: a
            # failed batch is re-run whole, and merging its partial
            # worker deltas would double-count the re-executed tasks.
            return _harvest(results)
        return results


# -- telemetry ---------------------------------------------------------------


def record_fanout(
    kind: str,
    timings: Sequence[tuple[int, int, float]],
    wall_seconds: float,
) -> None:
    """Record one fan-out: per-shard spans plus overhead metrics.

    *timings* is ``(shard_index, shard_size, worker_seconds)`` per
    shard. Each shard becomes a ``<kind>.shard`` span whose elapsed
    time is the worker-measured wall time (the parent cannot time the
    remote work directly). Fan-out overhead — parent wall time beyond
    the busiest shard, i.e. serialization + scheduling — lands in
    ``<kind>.fanout_overhead_seconds``, and ``<kind>.fanouts`` counts
    dispatches.
    """
    for shard_index, size, seconds in timings:
        with trace(
            f"{kind}.shard", shard=shard_index, transactions=size
        ) as span:
            pass
        if span is not None:
            span.elapsed_seconds = seconds
    registry = get_registry()
    if registry.enabled:
        timer = registry.timer(f"{kind}.shard_seconds")
        busiest = 0.0
        for _shard_index, _size, seconds in timings:
            timer.observe(seconds)
            if seconds > busiest:
                busiest = seconds
        overhead = wall_seconds - busiest
        if overhead < 0.0:
            overhead = 0.0
        registry.timer(f"{kind}.fanout_overhead_seconds").observe(overhead)
        registry.inc(f"{kind}.fanouts")
        registry.inc(f"{kind}.shards", len(timings))
