"""Worker-process machinery for the segment-sharded execution layer.

Everything process-related lives here so the public classes
(:class:`~repro.parallel.counter.ParallelCounter`, the parallel OSSM
builders) stay free of pool plumbing:

* :class:`WorkerPool` — a ``ProcessPoolExecutor`` whose workers hold
  one immutable payload (the shard databases, or an OSSM matrix).
  Under the ``fork`` start method the payload is inherited by
  reference at worker creation — zero serialization; under ``spawn``
  it is pickled once per worker process, never per task.
* shared-memory transport for the candidate table: candidates of one
  cardinality form an ``n × k`` **int64** matrix (integer support
  arithmetic only — the same discipline the bound-soundness lint
  enforces), published once per counting call and attached read-only
  by every worker.
* the fan-out telemetry helpers: one ``parallel.shard`` span per shard
  (worker-measured wall time) plus the ``parallel.*`` timers and the
  fan-out overhead counter, all through the existing :mod:`repro.obs`
  seam.

Worker functions are module-level (picklable by reference) and return
plain ``(index, int64 vector/matrix, seconds)`` tuples, so reductions
in the parent are explicit and exact: per-shard counts are summed,
per-shard rows are concatenated in shard order. No float ever touches
a support value.
"""

from __future__ import annotations

import multiprocessing
import time
from collections.abc import Iterator, Sequence
from concurrent.futures import Future, ProcessPoolExecutor
from contextlib import contextmanager
from multiprocessing import shared_memory
from typing import Any, Callable

import numpy as np

from ..core.ossm import OSSM
from ..data.transactions import TransactionDatabase
from ..mining.counting import SubsetCounter, SupportCounter, TidsetCounter
from ..mining.hash_tree import HashTreeCounter
from ..obs.metrics import get_registry
from ..obs.trace import trace

__all__ = [
    "WorkerPool",
    "plain_pool",
    "ENGINES",
    "publish_int64",
    "attach_int64",
    "record_fanout",
    "count_shard",
    "segment_rows_shard",
    "bounds_chunk",
    "init_shards",
    "init_bound_map",
]

Itemset = tuple[int, ...]

#: Names of the per-shard counting engines a worker can instantiate.
#: Strings (not instances) cross the process boundary, so every worker
#: builds — and caches — its own engine per shard.
ENGINES: tuple[str, ...] = ("subset", "tidset", "hashtree")

_ENGINE_FACTORIES: dict[str, Callable[[], SupportCounter]] = {
    "subset": SubsetCounter,
    "tidset": TidsetCounter,
    "hashtree": HashTreeCounter,
}

# -- worker-side state -------------------------------------------------------

#: Shard databases held by this worker process (set by :func:`init_shards`).
_SHARDS: tuple[TransactionDatabase, ...] = ()
#: OSSM reconstructed in this worker (set by :func:`init_bound_map`).
_BOUND_MAP: OSSM | None = None
#: Per-(shard, engine) counter cache; lets the tidset engine pay its
#: verticalization once per shard instead of once per level.
_ENGINE_CACHE: dict[tuple[int, str], SupportCounter] = {}


def init_shards(shards: tuple[TransactionDatabase, ...]) -> None:
    """Pool initializer: install the shard snapshot in this worker."""
    global _SHARDS
    _SHARDS = shards
    _ENGINE_CACHE.clear()


def init_bound_map(matrix: np.ndarray) -> None:
    """Pool initializer: rebuild the OSSM from its support matrix."""
    global _BOUND_MAP
    _BOUND_MAP = OSSM(matrix)


def _shard_engine(shard_index: int, engine: str) -> SupportCounter:
    key = (shard_index, engine)
    counter = _ENGINE_CACHE.get(key)
    if counter is None:
        counter = _ENGINE_FACTORIES[engine]()
        _ENGINE_CACHE[key] = counter
    return counter


# -- shared-memory transport -------------------------------------------------


def publish_int64(array: np.ndarray) -> shared_memory.SharedMemory:
    """Copy an int64 array into a fresh shared-memory segment.

    The caller owns the segment: ``close()`` *and* ``unlink()`` it once
    every worker has finished. Only int64 payloads are accepted — the
    candidate table and the OSSM matrix are integer data by contract.
    """
    if array.dtype != np.int64:
        raise TypeError(f"shared arrays must be int64, got {array.dtype}")
    if array.size == 0:
        raise ValueError("refusing to share an empty array")
    segment = shared_memory.SharedMemory(create=True, size=array.nbytes)
    view = np.ndarray(array.shape, dtype=np.int64, buffer=segment.buf)
    view[:] = array
    return segment


def attach_int64(
    name: str, shape: tuple[int, ...]
) -> tuple[np.ndarray, shared_memory.SharedMemory]:
    """Attach a segment published by :func:`publish_int64` (worker side).

    Returns the live view and the handle; the caller must ``close()``
    the handle (never ``unlink()`` — the parent owns the segment) after
    copying what it needs out of the view.
    """
    segment = shared_memory.SharedMemory(name=name)
    view = np.ndarray(shape, dtype=np.int64, buffer=segment.buf)
    return view, segment


# -- worker task functions ---------------------------------------------------


def count_shard(
    payload: tuple[int, str, str, int, int]
) -> tuple[int, np.ndarray, float]:
    """Count the shared candidate table against one shard.

    Payload: ``(shard_index, engine, shm_name, n_candidates, k)``.
    Returns ``(shard_index, int64 count vector, worker_seconds)``; the
    vector is aligned with the candidate table's row order, so parent-
    side reduction is a plain elementwise sum.
    """
    shard_index, engine, shm_name, n_candidates, k = payload
    start = time.perf_counter()
    view, segment = attach_int64(shm_name, (n_candidates, k))
    try:
        candidates: list[Itemset] = [tuple(map(int, row)) for row in view]
    finally:
        segment.close()
    counter = _shard_engine(shard_index, engine)
    counts = counter.count(_SHARDS[shard_index], candidates)
    vector = np.fromiter(
        (counts[candidate] for candidate in candidates),
        dtype=np.int64,
        count=n_candidates,
    )
    return shard_index, vector, time.perf_counter() - start


def segment_rows_shard(
    payload: tuple[int, tuple[int, ...]]
) -> tuple[int, np.ndarray, list[int], float]:
    """Per-segment singleton support rows for one shard's segments.

    Payload: ``(shard_index, local_cuts)`` where *local_cuts* are the
    segment boundaries relative to the shard start. Returns the rows in
    segment order plus the segment sizes, so the parent's concatenation
    reproduces the serial OSSM exactly.
    """
    shard_index, local_cuts = payload
    start = time.perf_counter()
    shard = _SHARDS[shard_index]
    rows: list[np.ndarray] = []
    sizes: list[int] = []
    for lo, hi in zip(local_cuts, local_cuts[1:]):
        segment = shard[lo:hi]
        rows.append(segment.item_supports())
        sizes.append(len(segment))
    matrix = np.vstack(rows)
    return shard_index, matrix, sizes, time.perf_counter() - start


def bounds_chunk(
    payload: tuple[int, str, int, int, int]
) -> tuple[int, np.ndarray, float]:
    """Equation (1) bounds for one chunk of the shared candidate table.

    Payload: ``(chunk_index, shm_name, n_candidates, k, lo, hi)`` is
    packed as ``(chunk_index, shm_name, n_candidates, k, (lo, hi))``
    would be redundant — the chunk's row range is ``[lo, hi)`` of the
    shared table. Uses the worker's reconstructed OSSM, so the bound
    arithmetic is byte-for-byte the serial ``upper_bounds`` path.
    """
    chunk_index, shm_name, n_candidates, k, lo, hi = payload  # type: ignore[misc]
    start = time.perf_counter()
    if _BOUND_MAP is None:
        raise RuntimeError("worker missing bound map; wrong initializer")
    view, segment = attach_int64(shm_name, (n_candidates, k))
    try:
        chunk = np.array(view[lo:hi], dtype=np.int64, copy=True)
    finally:
        segment.close()
    bounds = _BOUND_MAP.upper_bounds(chunk)
    return chunk_index, bounds, time.perf_counter() - start


# -- the pool ----------------------------------------------------------------


def _preferred_context() -> multiprocessing.context.BaseContext:
    """``fork`` where the platform offers it (payloads inherit for
    free), the platform default otherwise."""
    if "fork" in multiprocessing.get_all_start_methods():
        return multiprocessing.get_context("fork")
    return multiprocessing.get_context()


class WorkerPool:
    """A process pool whose workers hold one immutable payload.

    The payload travels through the pool *initializer*: with the
    ``fork`` start method workers inherit it by reference at creation
    (no serialization at all); with ``spawn`` it is pickled once per
    worker process — never once per task, which is what makes reusing
    the pool across Apriori levels cheap.

    Pools hold OS processes, so lifetime is explicit: use as a context
    manager or call :meth:`close`. Dropping the last reference also
    shuts the pool down.
    """

    def __init__(
        self,
        workers: int,
        initializer: Callable[..., None] | None = None,
        payload: Any = None,
    ) -> None:
        if workers < 1:
            raise ValueError("workers must be >= 1")
        self.workers = workers
        kwargs: dict[str, Any] = {}
        if initializer is not None:
            kwargs["initializer"] = initializer
            kwargs["initargs"] = (payload,)
        self._executor: ProcessPoolExecutor | None = ProcessPoolExecutor(
            max_workers=workers,
            mp_context=_preferred_context(),
            **kwargs,
        )

    def run(
        self,
        task: Callable[[Any], Any],
        payloads: Sequence[Any],
    ) -> list[Any]:
        """Run *task* over *payloads*; results in payload order."""
        if self._executor is None:
            raise RuntimeError("pool is closed")
        futures: list[Future[Any]] = [
            self._executor.submit(task, payload) for payload in payloads
        ]
        return [future.result() for future in futures]

    def close(self) -> None:
        """Shut the pool down (idempotent, safe on half-built instances).

        ``getattr`` rather than attribute access: ``__del__`` invokes
        this even when ``__init__`` raised before ``_executor`` was
        assigned (e.g. on a bad ``workers`` value).
        """
        executor = getattr(self, "_executor", None)
        self._executor = None
        if executor is not None:
            executor.shutdown(wait=True)

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def __del__(self) -> None:
        # Never propagate from a finalizer: at interpreter shutdown the
        # executor machinery may already be torn down.
        try:
            self.close()
        except Exception:
            pass


@contextmanager
def plain_pool(workers: int) -> Iterator[WorkerPool]:
    """A payload-less :class:`WorkerPool` (task args pickled per task)."""
    pool = WorkerPool(workers)
    try:
        yield pool
    finally:
        pool.close()


# -- telemetry ---------------------------------------------------------------


def record_fanout(
    kind: str,
    timings: Sequence[tuple[int, int, float]],
    wall_seconds: float,
) -> None:
    """Record one fan-out: per-shard spans plus overhead metrics.

    *timings* is ``(shard_index, shard_size, worker_seconds)`` per
    shard. Each shard becomes a ``<kind>.shard`` span whose elapsed
    time is the worker-measured wall time (the parent cannot time the
    remote work directly). Fan-out overhead — parent wall time beyond
    the busiest shard, i.e. serialization + scheduling — lands in
    ``<kind>.fanout_overhead_seconds``, and ``<kind>.fanouts`` counts
    dispatches.
    """
    for shard_index, size, seconds in timings:
        with trace(
            f"{kind}.shard", shard=shard_index, transactions=size
        ) as span:
            pass
        if span is not None:
            span.elapsed_seconds = seconds
    registry = get_registry()
    if registry.enabled:
        timer = registry.timer(f"{kind}.shard_seconds")
        busiest = 0.0
        for _shard_index, _size, seconds in timings:
            timer.observe(seconds)
            if seconds > busiest:
                busiest = seconds
        overhead = wall_seconds - busiest
        if overhead < 0.0:
            overhead = 0.0
        registry.timer(f"{kind}.fanout_overhead_seconds").observe(overhead)
        registry.inc(f"{kind}.fanouts")
        registry.inc(f"{kind}.shards", len(timings))
