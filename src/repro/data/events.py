"""Event sequences and sliding-window views (episode-mining substrate).

The paper's abstract problem covers episodes (Mannila, Toivonen &
Verkamo 1997, its reference [13]): there, "a transaction corresponds to
a sequence of events in a sliding time window" (the paper's footnote 1).
This module provides that substrate: a timestamped
:class:`EventSequence` and its windowing into a
:class:`~repro.data.transactions.TransactionDatabase` — after which the
whole OSSM machinery applies verbatim to parallel episodes, and bounds
serial episodes too (a serial episode's support is at most its parallel
shadow's).
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right
from collections.abc import Iterable, Iterator

import numpy as np

from .transactions import TransactionDatabase

__all__ = ["Event", "EventSequence", "WindowView"]

Event = tuple[int, int]  # (time, event_type)


class EventSequence:
    """A time-ordered sequence of (time, event_type) pairs.

    Times are non-negative integers (ticks); several events may share a
    tick. Event types are canonical ids in ``range(n_types)``.
    """

    def __init__(
        self, events: Iterable[tuple[int, int]], n_types: int | None = None
    ) -> None:
        pairs = sorted((int(t), int(e)) for t, e in events)
        if pairs and pairs[0][0] < 0:
            raise ValueError("event times must be non-negative")
        if any(e < 0 for _, e in pairs):
            raise ValueError("event types must be non-negative")
        self._times = [t for t, _ in pairs]
        self._types = [e for _, e in pairs]
        observed = max(self._types, default=-1)
        if n_types is None:
            n_types = observed + 1
        elif observed >= n_types:
            raise ValueError(
                f"n_types={n_types} but sequence contains type {observed}"
            )
        self._n_types = int(n_types)

    # -- construction ------------------------------------------------------

    @classmethod
    def from_database(
        cls, database: TransactionDatabase, spacing: int = 1
    ) -> "EventSequence":
        """Interpret each transaction as the events of one tick."""
        events = [
            (tid * spacing, item)
            for tid, txn in enumerate(database)
            for item in txn
        ]
        return cls(events, n_types=database.n_items)

    # -- basics --------------------------------------------------------

    @property
    def n_types(self) -> int:
        """Size of the event-type domain."""
        return self._n_types

    @property
    def span(self) -> int:
        """Last event time + 1 (0 for an empty sequence)."""
        return (self._times[-1] + 1) if self._times else 0

    def __len__(self) -> int:
        return len(self._times)

    def __iter__(self) -> Iterator[Event]:
        return iter(zip(self._times, self._types))

    def __repr__(self) -> str:
        return (
            f"EventSequence({len(self)} events, {self._n_types} types, "
            f"span {self.span})"
        )

    def events_between(self, start: int, end: int) -> list[Event]:
        """Events with ``start <= time < end`` in time order."""
        lo = bisect_left(self._times, start)
        hi = bisect_right(self._times, end - 1)
        return list(zip(self._times[lo:hi], self._types[lo:hi]))

    def type_counts(self) -> np.ndarray:
        """Occurrences of each event type over the whole sequence."""
        counts = np.zeros(self._n_types, dtype=np.int64)
        for event_type in self._types:
            counts[event_type] += 1
        return counts


class WindowView:
    """All width-``width`` windows of a sequence, WINEPI style.

    Window ``w`` covers times ``[w, w + width)`` for
    ``w in range(-(width - 1), span)`` — the original definition slides
    the window so every event is seen by exactly ``width`` windows; the
    `truncated` option keeps only fully interior windows
    (``range(0, span - width + 1)``), which is often what a paged
    transaction view wants.
    """

    def __init__(
        self,
        sequence: EventSequence,
        width: int,
        truncated: bool = False,
    ) -> None:
        if width < 1:
            raise ValueError("window width must be >= 1")
        self.sequence = sequence
        self.width = int(width)
        self.truncated = bool(truncated)
        if truncated:
            self._starts = range(0, max(sequence.span - width + 1, 0))
        else:
            self._starts = range(-(width - 1), sequence.span)

    @property
    def n_windows(self) -> int:
        """Number of windows (the denominator of episode frequency)."""
        return len(self._starts)

    def __len__(self) -> int:
        return self.n_windows

    def window_events(self, index: int) -> list[Event]:
        """Events of window *index*, in time order."""
        start = self._starts[index]
        return self.sequence.events_between(
            max(start, 0), start + self.width
        )

    def iter_windows(self) -> Iterator[list[Event]]:
        """Iterate the event lists of every window."""
        for index in range(self.n_windows):
            yield self.window_events(index)

    def to_database(self) -> TransactionDatabase:
        """Each window's set of event types as one transaction.

        This is exactly footnote 1's mapping: the OSSM built over this
        database bounds the support of any *parallel* episode, and by
        extension any serial episode over the same types.
        """
        txns = [
            tuple(sorted({event_type for _, event_type in events}))
            for events in self.iter_windows()
        ]
        return TransactionDatabase(txns, n_items=self.sequence.n_types)
