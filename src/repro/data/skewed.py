"""Skewed "seasonal" synthetic data (the paper's *skewed-synthetic* set).

Section 6.1 of the paper: "50% of the items have a higher probability of
appearing in the first half of the collection of transactions, and the
other 50% have a higher probability of appearing in the second half" —
modelling, e.g., a supermarket's summer-to-winter drift. Data like this
is exactly where the OSSM shines: segment supports differ sharply across
the collection, so Equation (1) bounds are much tighter than the global
min-support bound.

The generator wraps the Quest machinery: it draws two Quest streams over
disjoint *preferences* — a "summer" item bias and a "winter" item bias —
and concatenates the halves. ``skew`` controls how strongly each half
prefers its own item group (0 = no skew, 1 = halves use disjoint items).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .transactions import TransactionDatabase

__all__ = ["SkewedConfig", "SkewedGenerator", "generate_skewed"]


@dataclass(frozen=True)
class SkewedConfig:
    """Parameters of the seasonal generator."""

    n_transactions: int = 10_000
    n_items: int = 1000
    avg_transaction_len: float = 10.0
    skew: float = 0.8
    n_seasons: int = 2
    seed: int = 0

    def __post_init__(self) -> None:
        if self.n_transactions < 0:
            raise ValueError("n_transactions must be >= 0")
        if self.n_items < self.n_seasons:
            raise ValueError("need at least one item per season")
        if not 0.0 <= self.skew <= 1.0:
            raise ValueError("skew must lie in [0, 1]")
        if self.n_seasons < 1:
            raise ValueError("n_seasons must be >= 1")


class SkewedGenerator:
    """Generator for seasonally skewed transaction databases.

    The item domain is split into ``n_seasons`` equal groups; the
    collection is split into ``n_seasons`` contiguous eras. Within era
    ``e``, an item from group ``e`` is ``(1 + skew) / (1 - skew)`` times
    as likely as an item from any other group (so ``skew=0`` is uniform
    and ``skew=1`` makes eras use disjoint item groups). Transaction
    sizes are Poisson around ``avg_transaction_len``, like Quest.
    """

    def __init__(self, config: SkewedConfig | None = None, **overrides) -> None:
        if config is None:
            config = SkewedConfig(**overrides)
        elif overrides:
            raise TypeError("pass either a SkewedConfig or keyword overrides")
        self.config = config
        self._rng = np.random.default_rng(config.seed)

    def item_group(self, item: int) -> int:
        """Season group of *item* (groups are contiguous id ranges)."""
        group_size = self.config.n_items / self.config.n_seasons
        return min(int(item / group_size), self.config.n_seasons - 1)

    def _era_probabilities(self, era: int) -> np.ndarray:
        cfg = self.config
        groups = np.array(
            [self.item_group(i) for i in range(cfg.n_items)], dtype=np.int64
        )
        weights = np.where(groups == era, 1.0 + cfg.skew, 1.0 - cfg.skew)
        # With skew == 1 the off-season weight is 0; keep the
        # distribution proper even then (on-season items exist by
        # construction: n_items >= n_seasons).
        return weights / weights.sum()

    def generate(self) -> TransactionDatabase:
        """Generate the full seasonal collection, era by era."""
        cfg = self.config
        rng = self._rng
        bounds = np.linspace(0, cfg.n_transactions, cfg.n_seasons + 1).astype(int)
        txns: list[tuple[int, ...]] = []
        for era in range(cfg.n_seasons):
            probabilities = self._era_probabilities(era)
            # With skew == 1 the off-season items have probability 0;
            # a transaction can then hold at most the on-season items.
            max_size = int(np.count_nonzero(probabilities))
            for _ in range(int(bounds[era + 1] - bounds[era])):
                size = max(1, int(rng.poisson(cfg.avg_transaction_len)))
                size = min(size, max_size)
                items = rng.choice(
                    cfg.n_items, size=size, replace=False, p=probabilities
                )
                txns.append(tuple(sorted(int(i) for i in items)))
        return TransactionDatabase(txns, n_items=cfg.n_items)


def generate_skewed(**kwargs) -> TransactionDatabase:
    """One-shot convenience wrapper around :class:`SkewedGenerator`."""
    return SkewedGenerator(SkewedConfig(**kwargs)).generate()
