"""IBM Quest–style synthetic transaction generator.

Re-implementation of the well-known synthetic data generator of Agrawal
& Srikant ("Fast Algorithms for Mining Association Rules", VLDB 1994,
Section 4.1 / the AAAI'96 book chapter cited by the paper as [3]). The
paper's *regular-synthetic* data set is produced by the original C
program; this module reproduces its statistical structure:

* a pool of ``n_patterns`` *potentially frequent itemsets*, whose sizes
  are Poisson-distributed around ``avg_pattern_len``, whose items are
  partially inherited from the previous pattern (to model correlated
  patterns), and which carry exponentially distributed selection
  weights;
* per-pattern *corruption levels* (normally distributed around the
  ``corruption_mean``) that drop items from a pattern when it is
  inserted into a transaction, modelling imperfect purchases;
* transactions whose sizes are Poisson-distributed around
  ``avg_transaction_len`` and are filled by sampling patterns from the
  pool until full.

Conventional naming: ``T10.I4.D100K`` means avg transaction length 10,
avg pattern length 4, 100 000 transactions.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .transactions import TransactionDatabase

__all__ = ["QuestConfig", "QuestGenerator", "generate_quest"]


@dataclass(frozen=True)
class QuestConfig:
    """Parameters of the Quest generator (names follow the 1994 paper).

    The two ``seasonal_*`` fields extend the original generator with
    popularity drift: patterns are assigned round-robin to
    ``n_seasons`` groups and a group's selection weight is multiplied
    by ``1 + seasonal_skew`` during its own era of the stream and by
    ``1 − seasonal_skew`` otherwise. ``n_seasons=1`` (the default)
    reproduces the original stationary generator exactly. Drift models
    what real months-long transaction logs do — item frequencies
    differing in different parts of the collection, the premise of the
    OSSM paper.
    """

    n_transactions: int = 10_000
    n_items: int = 1000
    avg_transaction_len: float = 10.0
    avg_pattern_len: float = 4.0
    n_patterns: int = 200
    correlation: float = 0.5
    corruption_mean: float = 0.5
    corruption_sd: float = 0.1
    n_seasons: int = 1
    seasonal_skew: float = 0.0
    seed: int = 0

    def __post_init__(self) -> None:
        if self.n_transactions < 0:
            raise ValueError("n_transactions must be >= 0")
        if self.n_items < 1:
            raise ValueError("n_items must be >= 1")
        if self.n_patterns < 1:
            raise ValueError("n_patterns must be >= 1")
        if not 0.0 <= self.correlation <= 1.0:
            raise ValueError("correlation must lie in [0, 1]")
        if self.avg_transaction_len <= 0 or self.avg_pattern_len <= 0:
            raise ValueError("average lengths must be positive")
        if self.n_seasons < 1:
            raise ValueError("n_seasons must be >= 1")
        if not 0.0 <= self.seasonal_skew <= 1.0:
            raise ValueError("seasonal_skew must lie in [0, 1]")


@dataclass
class _PatternPool:
    """The pool of potentially frequent itemsets with sampling weights.

    With seasonal drift enabled, each era has its own cumulative
    distribution (same patterns, reweighted); era 0's distribution is
    also the stationary one when drift is off.
    """

    itemsets: list[tuple[int, ...]]
    weights: np.ndarray
    corruption: np.ndarray
    n_seasons: int = 1
    seasonal_skew: float = 0.0
    cumulatives: list[np.ndarray] = field(init=False)

    def __post_init__(self) -> None:
        groups = np.arange(len(self.itemsets)) % self.n_seasons
        self.cumulatives = []
        for era in range(self.n_seasons):
            factors = np.where(
                groups == era, 1.0 + self.seasonal_skew,
                1.0 - self.seasonal_skew,
            )
            weighted = self.weights * factors
            total = float(weighted.sum())
            if total <= 0:  # all weight suppressed: fall back to uniform
                weighted = np.ones_like(self.weights)
                total = float(weighted.sum())
            self.cumulatives.append(np.cumsum(weighted / total))

    def sample(self, rng: np.random.Generator, era: int = 0) -> int:
        """Draw a pattern index according to the era's weights."""
        cumulative = self.cumulatives[era % self.n_seasons]
        return int(np.searchsorted(cumulative, rng.random(), side="right"))


class QuestGenerator:
    """Streaming generator for Quest-style transaction databases.

    The generator is deterministic given ``config.seed``; repeated calls
    to :meth:`generate` continue the stream (useful for producing the
    paper's 50 000-page collections without holding them in memory).
    """

    def __init__(self, config: QuestConfig | None = None, **overrides) -> None:
        if config is None:
            config = QuestConfig(**overrides)
        elif overrides:
            raise TypeError("pass either a QuestConfig or keyword overrides")
        self.config = config
        self._rng = np.random.default_rng(config.seed)
        self._pool = self._build_pool()
        self._emitted = 0

    # -- pattern pool ------------------------------------------------------

    def _build_pool(self) -> _PatternPool:
        cfg = self.config
        rng = self._rng
        itemsets: list[tuple[int, ...]] = []
        previous: tuple[int, ...] = ()
        block = cfg.n_items / cfg.n_seasons
        for index in range(cfg.n_patterns):
            size = max(1, int(rng.poisson(cfg.avg_pattern_len)))
            size = min(size, cfg.n_items)
            # Fraction of items inherited from the previous pattern is
            # exponentially distributed with mean `correlation`.
            inherit_fraction = min(1.0, rng.exponential(cfg.correlation))
            n_inherit = min(int(round(inherit_fraction * size)), len(previous))
            inherited = (
                rng.choice(len(previous), size=n_inherit, replace=False)
                if n_inherit
                else np.empty(0, dtype=np.int64)
            )
            items = {previous[i] for i in inherited}
            # With seasonal drift, a pattern's home season also anchors
            # its catalog block: seasonal baskets are made of seasonal
            # products (80/20 in/out of block), so item frequencies
            # drift coherently with the pattern weights.
            home = index % cfg.n_seasons
            while len(items) < size:
                if cfg.n_seasons > 1 and rng.random() < 0.8:
                    low = int(home * block)
                    high = max(low + 1, int((home + 1) * block))
                    items.add(int(rng.integers(low, min(high, cfg.n_items))))
                else:
                    items.add(int(rng.integers(cfg.n_items)))
            pattern = tuple(sorted(items))
            itemsets.append(pattern)
            previous = pattern
        weights = rng.exponential(1.0, size=cfg.n_patterns)
        corruption = np.clip(
            rng.normal(cfg.corruption_mean, cfg.corruption_sd, cfg.n_patterns),
            0.0,
            1.0,
        )
        return _PatternPool(
            itemsets,
            weights,
            corruption,
            n_seasons=cfg.n_seasons,
            seasonal_skew=cfg.seasonal_skew,
        )

    @property
    def patterns(self) -> list[tuple[int, ...]]:
        """The potentially frequent itemsets underlying the stream."""
        return list(self._pool.itemsets)

    # -- transaction stream ------------------------------------------------

    def _era(self) -> int:
        """Era of the next transaction (eras split the nominal stream)."""
        cfg = self.config
        if cfg.n_seasons == 1 or cfg.n_transactions == 0:
            return 0
        era_length = max(1, cfg.n_transactions // cfg.n_seasons)
        return (self._emitted // era_length) % cfg.n_seasons

    def _next_transaction(self) -> tuple[int, ...]:
        cfg = self.config
        rng = self._rng
        era = self._era()
        self._emitted += 1
        target = max(1, int(rng.poisson(cfg.avg_transaction_len)))
        target = min(target, cfg.n_items)
        items: set[int] = set()
        # Fill with (possibly corrupted) patterns until the target size
        # is reached; cap attempts so pathological configs cannot spin.
        for _ in range(8 * target):
            if len(items) >= target:
                break
            index = self._pool.sample(rng, era)
            corruption = self._pool.corruption[index]
            for item in self._pool.itemsets[index]:
                if rng.random() >= corruption:
                    items.add(item)
                if len(items) >= target:
                    break
        if not items:
            # Degenerate draw (all items corrupted away): keep the
            # transaction non-empty with a uniform singleton.
            items.add(int(rng.integers(cfg.n_items)))
        return tuple(sorted(items))

    def generate(self, n_transactions: int | None = None) -> TransactionDatabase:
        """Generate the next *n_transactions* of the stream as a database."""
        n = self.config.n_transactions if n_transactions is None else n_transactions
        if n < 0:
            raise ValueError("n_transactions must be >= 0")
        txns = [self._next_transaction() for _ in range(n)]
        return TransactionDatabase(txns, n_items=self.config.n_items)


def generate_quest(**kwargs) -> TransactionDatabase:
    """One-shot convenience wrapper: ``generate_quest(n_transactions=..., ...)``."""
    return QuestGenerator(QuestConfig(**kwargs)).generate()
