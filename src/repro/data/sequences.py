"""Customer-sequence databases (sequential-pattern substrate).

The paper's introduction lists sequential patterns (Agrawal & Srikant,
ICDE 1995 — its reference [4]) among the pattern classes the OSSM
serves. The data model: each *customer* has a time-ordered sequence of
transactions (itemsets); a sequential pattern ⟨s₁ … sₖ⟩ is *contained*
in a customer's sequence when there are transactions at increasing
times containing s₁, …, sₖ respectively; its support is the number of
supporting customers.

The OSSM hook rests on flattening: the set of all items a customer ever
bought is one transaction, and a pattern can only be supported by
customers whose flattened itemset covers all the pattern's items — so
an OSSM over the flattened database upper-bounds sequential support.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator, Sequence

import numpy as np

from .transactions import Transaction, TransactionDatabase

__all__ = ["CustomerSequence", "SequenceDatabase", "contains_sequence"]

CustomerSequence = tuple[Transaction, ...]
Pattern = tuple[Transaction, ...]


def _canonical_sequence(sequence: Iterable[Iterable[int]]) -> CustomerSequence:
    elements = []
    for element in sequence:
        canonical = tuple(sorted(set(int(i) for i in element)))
        if canonical:
            if canonical[0] < 0:
                raise ValueError("item ids must be non-negative")
            elements.append(canonical)
    return tuple(elements)


def contains_sequence(
    customer: CustomerSequence, pattern: Pattern
) -> bool:
    """Greedy subsequence test: each pattern element must be a subset
    of a strictly later customer transaction than the previous match."""
    position = 0
    for element in pattern:
        element_set = set(element)
        while position < len(customer):
            if element_set.issubset(customer[position]):
                position += 1
                break
            position += 1
        else:
            return False
    return True


class SequenceDatabase:
    """An ordered collection of customer sequences.

    Parameters
    ----------
    sequences:
        Iterable of customer sequences (iterables of item iterables).
        Empty transactions are dropped; empty customers are kept (they
        support nothing but count toward the collection size).
    n_items:
        Item-domain size; defaults to max observed + 1.
    """

    def __init__(
        self,
        sequences: Iterable[Iterable[Iterable[int]]],
        n_items: int | None = None,
    ) -> None:
        self._sequences = [_canonical_sequence(s) for s in sequences]
        observed = max(
            (
                element[-1]
                for sequence in self._sequences
                for element in sequence
                if element
            ),
            default=-1,
        )
        if n_items is None:
            n_items = observed + 1
        elif observed >= n_items:
            raise ValueError(
                f"n_items={n_items} but sequences contain item {observed}"
            )
        self._n_items = int(n_items)

    # -- construction ------------------------------------------------------

    @classmethod
    def from_transactions(
        cls, database: TransactionDatabase, visits_per_customer: int
    ) -> "SequenceDatabase":
        """Chunk a transaction stream into fixed-length customer visits.

        A cheap, deterministic way to obtain a sequence workload from
        any transaction generator: consecutive transactions become the
        consecutive visits of one customer.
        """
        if visits_per_customer < 1:
            raise ValueError("visits_per_customer must be >= 1")
        txns = list(database)
        sequences = [
            txns[i:i + visits_per_customer]
            for i in range(0, len(txns), visits_per_customer)
        ]
        return cls(sequences, n_items=database.n_items)

    # -- basics --------------------------------------------------------

    @property
    def n_items(self) -> int:
        """Size of the item domain."""
        return self._n_items

    def __len__(self) -> int:
        return len(self._sequences)

    def __iter__(self) -> Iterator[CustomerSequence]:
        return iter(self._sequences)

    def __getitem__(self, index: int) -> CustomerSequence:
        return self._sequences[index]

    def __repr__(self) -> str:
        return (
            f"SequenceDatabase({len(self)} customers, "
            f"{self._n_items} items)"
        )

    def average_visits(self) -> float:
        """Mean number of transactions per customer."""
        if not self._sequences:
            return 0.0
        return sum(len(s) for s in self._sequences) / len(self)

    # -- supports --------------------------------------------------------

    def support(self, pattern: Sequence[Sequence[int]]) -> int:
        """Customers containing *pattern* (a sequence of itemsets)."""
        canonical = _canonical_sequence(pattern)
        if not canonical:
            return len(self)
        return sum(
            1
            for customer in self._sequences
            if contains_sequence(customer, canonical)
        )

    def flattened(self) -> TransactionDatabase:
        """One transaction per customer: every item they ever bought.

        The OSSM bound for sequential patterns is built on this view.
        """
        txns = [
            tuple(sorted({item for element in seq for item in element}))
            for seq in self._sequences
        ]
        return TransactionDatabase(txns, n_items=self._n_items)

    def item_supports(self) -> np.ndarray:
        """Customers containing each item anywhere in their sequence."""
        return self.flattened().item_supports()
