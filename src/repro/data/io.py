"""Reading and writing transaction databases.

Two interchange formats are supported:

* **FIMI text** (``.dat``) — one transaction per line, item ids
  separated by single spaces; the de-facto standard of the frequent
  itemset mining community and of the IBM Quest tooling the paper used.
* **Packed binary** (``.npz``) — numpy archive holding the concatenated
  item stream plus row offsets; loads large collections ~50× faster
  than text and preserves ``n_items`` exactly.

Both formats round-trip: ``load(save(db)) == db``.

All writers are atomic (temp + fsync + rename through
:mod:`repro.resilience.integrity`), the binary format is checksummed
and versioned, and damaged inputs — truncated archives, bit-flips,
non-integer FIMI tokens — surface as the typed
:class:`~repro.resilience.errors.CorruptArtifact` instead of leaking
``zipfile``/numpy/``int()`` internals.
"""

from __future__ import annotations

import os
from collections.abc import Iterable, Iterator

import numpy as np

from ..resilience import (
    CorruptArtifact,
    atomic_path,
    atomic_savez,
    verified_load_npz,
)
from .transactions import TransactionDatabase

__all__ = [
    "save_fimi",
    "load_fimi",
    "iter_fimi",
    "save_binary",
    "load_binary",
    "save",
    "load",
    "save_spmf",
    "load_spmf",
]

_PathLike = str | os.PathLike


def save_fimi(database: TransactionDatabase, path: _PathLike) -> None:
    """Write *database* in FIMI text format (one transaction per line).

    The write is atomic: readers of *path* see the old file or the
    complete new one, never a prefix.
    """
    with atomic_path(path, "io.db") as tmp:
        with open(tmp, "w", encoding="ascii") as handle:
            for txn in database:
                handle.write(" ".join(str(item) for item in txn))
                handle.write("\n")
            handle.flush()
            os.fsync(handle.fileno())


def iter_fimi(path: _PathLike) -> Iterator[tuple[int, ...]]:
    """Stream transactions from a FIMI text file without loading it all.

    A token that is not a base-10 integer raises
    :class:`~repro.resilience.errors.CorruptArtifact` naming the line,
    so a mis-specified or binary input fails with a one-line diagnosis.
    """
    with open(path, "r", encoding="ascii", errors="replace") as handle:
        for line_number, line in enumerate(handle, start=1):
            fields = line.split()
            if not fields:
                yield ()
                continue
            try:
                yield tuple(sorted(set(int(field) for field in fields)))
            except ValueError as exc:
                raise CorruptArtifact(
                    path, f"non-integer token on line {line_number}"
                ) from exc


def load_fimi(
    path: _PathLike, n_items: int | None = None
) -> TransactionDatabase:
    """Load a FIMI text file into a :class:`TransactionDatabase`."""
    return TransactionDatabase(iter_fimi(path), n_items=n_items)


def save_binary(database: TransactionDatabase, path: _PathLike) -> None:
    """Write *database* as a packed ``.npz`` archive.

    Atomic, checksummed, and versioned (see
    :mod:`repro.resilience.integrity`): a crash mid-save never leaves a
    torn archive, and :func:`load_binary` detects any on-disk damage.
    """
    lengths = np.fromiter(
        (len(txn) for txn in database), dtype=np.int64, count=len(database)
    )
    offsets = np.concatenate(([0], np.cumsum(lengths)))
    items = np.fromiter(
        (item for txn in database for item in txn),
        dtype=np.int64,
        count=int(offsets[-1]),
    )
    atomic_savez(
        path,
        {
            "items": items,
            "offsets": offsets,
            "n_items": np.asarray(database.n_items, dtype=np.int64),
        },
        kind="transactions",
        fault_base="io.db",
    )


def load_binary(path: _PathLike) -> TransactionDatabase:
    """Load a packed ``.npz`` archive written by :func:`save_binary`.

    Raises :class:`~repro.resilience.errors.CorruptArtifact` when the
    archive is truncated, bit-flipped, or structurally incomplete, and
    :class:`~repro.resilience.errors.IntegrityError` on a wrong
    artifact kind; pre-versioning archives still load.
    """
    payload = verified_load_npz(path, kind="transactions")
    for key in ("items", "offsets", "n_items"):
        if key not in payload:
            raise CorruptArtifact(path, f"missing {key!r} array")
    items = payload["items"]
    offsets = payload["offsets"]
    n_items = int(payload["n_items"])
    txns: Iterable[tuple[int, ...]] = (
        tuple(int(item) for item in items[offsets[i]:offsets[i + 1]])
        for i in range(len(offsets) - 1)
    )
    return TransactionDatabase(txns, n_items=n_items)


def save_spmf(database, path: _PathLike) -> None:
    """Write a :class:`~repro.data.sequences.SequenceDatabase` in SPMF
    sequence format: items space-separated, ``-1`` closes an itemset,
    ``-2`` closes the customer sequence — the de-facto interchange
    format of the sequential-pattern-mining community. Atomic like
    every writer in this module."""
    with atomic_path(path, "io.db") as tmp:
        with open(tmp, "w", encoding="ascii") as handle:
            for customer in database:
                parts: list[str] = []
                for element in customer:
                    parts.extend(str(item) for item in element)
                    parts.append("-1")
                parts.append("-2")
                handle.write(" ".join(parts))
                handle.write("\n")
            handle.flush()
            os.fsync(handle.fileno())


def load_spmf(path: _PathLike, n_items: int | None = None):
    """Load an SPMF sequence file written by :func:`save_spmf`."""
    from .sequences import SequenceDatabase

    sequences: list[list[tuple[int, ...]]] = []
    with open(path, "r", encoding="ascii") as handle:
        for line in handle:
            fields = line.split()
            if not fields:
                continue
            customer: list[tuple[int, ...]] = []
            element: list[int] = []
            for field in fields:
                value = int(field)
                if value == -1:
                    if element:
                        customer.append(tuple(element))
                    element = []
                elif value == -2:
                    break
                elif value < 0:
                    raise ValueError(
                        f"unexpected negative token {value} in SPMF file"
                    )
                else:
                    element.append(value)
            if element:  # tolerate a missing trailing -1
                customer.append(tuple(element))
            sequences.append(customer)
    return SequenceDatabase(sequences, n_items=n_items)


def save(database: TransactionDatabase, path: _PathLike) -> None:
    """Save choosing the format from the file extension (.dat/.txt or .npz)."""
    if str(path).endswith(".npz"):
        save_binary(database, path)
    else:
        save_fimi(database, path)


def load(path: _PathLike, n_items: int | None = None) -> TransactionDatabase:
    """Load choosing the format from the file extension (.dat/.txt or .npz)."""
    if str(path).endswith(".npz"):
        database = load_binary(path)
        if n_items is not None and n_items != database.n_items:
            raise ValueError(
                f"archive records n_items={database.n_items}, got {n_items}"
            )
        return database
    return load_fimi(path, n_items=n_items)
