"""Transaction-data substrate: databases, pages, generators, and IO.

The paper's experiments run over three data sets — a real Nokia alarm
log (proprietary; simulated here by :mod:`repro.data.alarms`), the IBM
Quest *regular-synthetic* data (:mod:`repro.data.quest`), and a seasonal
*skewed-synthetic* set (:mod:`repro.data.skewed`). All of them are
:class:`~repro.data.transactions.TransactionDatabase` objects, paged by
:class:`~repro.data.pages.PagedDatabase` for segmentation.
"""

from .alarms import AlarmConfig, AlarmStreamGenerator, generate_alarms
from .events import Event, EventSequence, WindowView
from .io import (
    load,
    load_binary,
    load_fimi,
    load_spmf,
    save,
    save_binary,
    save_fimi,
    save_spmf,
)
from .pages import PAGE_BYTES, TRANSACTIONS_PER_PAGE, PagedDatabase
from .quest import QuestConfig, QuestGenerator, generate_quest
from .sequences import CustomerSequence, SequenceDatabase, contains_sequence
from .skewed import SkewedConfig, SkewedGenerator, generate_skewed
from .transactions import Transaction, TransactionDatabase, Vocabulary

__all__ = [
    "AlarmConfig",
    "AlarmStreamGenerator",
    "generate_alarms",
    "Event",
    "EventSequence",
    "WindowView",
    "load",
    "load_binary",
    "load_fimi",
    "load_spmf",
    "save_spmf",
    "save",
    "save_binary",
    "save_fimi",
    "PAGE_BYTES",
    "TRANSACTIONS_PER_PAGE",
    "PagedDatabase",
    "QuestConfig",
    "QuestGenerator",
    "generate_quest",
    "CustomerSequence",
    "SequenceDatabase",
    "contains_sequence",
    "SkewedConfig",
    "SkewedGenerator",
    "generate_skewed",
    "Transaction",
    "TransactionDatabase",
    "Vocabulary",
]
