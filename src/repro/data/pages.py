"""Paged view of a transaction database.

The paper's constrained segmentation starts from the *physical pages*
the collection is stored in: the segmenters never look at individual
transactions, only at the aggregate per-page singleton supports
(Section 4.3, "the page version"). :class:`PagedDatabase` provides that
granularity: contiguous fixed-size runs of transactions plus the
``P × m`` page-support matrix the segmentation algorithms consume.
"""

from __future__ import annotations

from collections.abc import Iterator, Sequence

import numpy as np

from .transactions import TransactionDatabase

__all__ = ["PagedDatabase", "PAGE_BYTES", "TRANSACTIONS_PER_PAGE"]

#: Nominal page size used by the paper's storage math (Section 6.3):
#: "For a page size of 4 kilobytes, each page can contain roughly
#: 100 transactions."
PAGE_BYTES = 4096
TRANSACTIONS_PER_PAGE = 100


class PagedDatabase:
    """A :class:`TransactionDatabase` organized into contiguous pages.

    Parameters
    ----------
    database:
        The underlying transaction collection.
    page_size:
        Transactions per page. The last page may be short. Defaults to
        the paper's nominal 100 transactions per 4 KB page.
    """

    def __init__(
        self,
        database: TransactionDatabase,
        page_size: int = TRANSACTIONS_PER_PAGE,
    ) -> None:
        if page_size < 1:
            raise ValueError("page_size must be >= 1")
        self._db = database
        self._page_size = int(page_size)
        n = len(database)
        self._bounds = list(range(0, n, self._page_size)) + [n]
        if n == 0:
            self._bounds = [0, 0]
        self._supports: np.ndarray | None = None

    # -- basic properties ------------------------------------------------

    @property
    def database(self) -> TransactionDatabase:
        """The underlying transaction database."""
        return self._db

    @property
    def page_size(self) -> int:
        """Transactions per (full) page."""
        return self._page_size

    @property
    def n_pages(self) -> int:
        """Number of pages (``P`` in the paper); at least 1."""
        return len(self._bounds) - 1

    @property
    def n_items(self) -> int:
        """Size of the item domain."""
        return self._db.n_items

    def __len__(self) -> int:
        return self.n_pages

    def __repr__(self) -> str:
        return (
            f"PagedDatabase({self.n_pages} pages x {self._page_size} txns, "
            f"{self.n_items} items)"
        )

    # -- page access -------------------------------------------------------

    def page_bounds(self, page: int) -> tuple[int, int]:
        """Half-open transaction-index range ``[lo, hi)`` of *page*."""
        if not 0 <= page < self.n_pages:
            raise IndexError(f"page {page} out of range [0, {self.n_pages})")
        return self._bounds[page], self._bounds[page + 1]

    def page(self, page: int) -> TransactionDatabase:
        """The transactions stored on *page*, as a database slice."""
        lo, hi = self.page_bounds(page)
        return self._db[lo:hi]

    def __iter__(self) -> Iterator[TransactionDatabase]:
        for page in range(self.n_pages):
            yield self.page(page)

    def page_lengths(self) -> np.ndarray:
        """Number of transactions on each page."""
        bounds = np.asarray(self._bounds, dtype=np.int64)
        return bounds[1:] - bounds[:-1]

    # -- aggregate supports --------------------------------------------------

    def page_supports(self) -> np.ndarray:
        """``P × m`` matrix of per-page singleton supports.

        Row ``p``, column ``x`` is the number of transactions on page
        ``p`` containing item ``x``. This matrix is the *only* input the
        segmentation algorithms need (the page version of the problem),
        and summing groups of its rows yields any candidate OSSM. The
        matrix is computed once and cached.
        """
        if self._supports is None:
            supports = np.zeros((self.n_pages, self.n_items), dtype=np.int64)
            for page in range(self.n_pages):
                lo, hi = self.page_bounds(page)
                for tid in range(lo, hi):
                    txn = self._db[tid]
                    supports[page, list(txn)] += 1
            self._supports = supports
        return self._supports

    def item_supports(self) -> np.ndarray:
        """Global singleton supports (column sums of the page matrix)."""
        return self.page_supports().sum(axis=0)

    # -- segment realization ---------------------------------------------

    def segment_supports(self, groups: Sequence[Sequence[int]]) -> np.ndarray:
        """Sum page-support rows into segment-support rows.

        *groups* assigns every page to exactly one segment (a partition
        of ``range(n_pages)``). Returns the ``n_segments × m`` matrix an
        :class:`~repro.core.ossm.OSSM` is built from.
        """
        self._check_partition(groups)
        page_matrix = self.page_supports()
        rows = [page_matrix[list(group)].sum(axis=0) for group in groups]
        return np.vstack(rows) if rows else np.zeros((0, self.n_items), np.int64)

    def segment_databases(
        self, groups: Sequence[Sequence[int]]
    ) -> list[TransactionDatabase]:
        """Materialize the transactions of each segment (for testing)."""
        self._check_partition(groups)
        segments = []
        for group in groups:
            txns: list = []
            for page in sorted(group):
                lo, hi = self.page_bounds(page)
                txns.extend(self._db[tid] for tid in range(lo, hi))
            segments.append(
                TransactionDatabase(txns, n_items=self.n_items)
            )
        return segments

    def _check_partition(self, groups: Sequence[Sequence[int]]) -> None:
        seen = sorted(page for group in groups for page in group)
        if seen != list(range(self.n_pages)):
            raise ValueError(
                "groups must partition range(n_pages): each page exactly once"
            )
