"""In-memory transaction databases.

A *transaction* is a set of items; items are canonical integer ids in
``range(n_items)``. :class:`TransactionDatabase` is the substrate every
other subsystem (OSSM construction, the miners, the paged view) builds
on. Transactions are stored as sorted tuples of unique ids, which keeps
hashing, prefix joins, and subset tests cheap and deterministic.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator, Sequence

import numpy as np

__all__ = ["Transaction", "TransactionDatabase", "Vocabulary"]

Transaction = tuple[int, ...]


def _canonical(items: Iterable[int]) -> Transaction:
    """Return *items* as a sorted tuple of unique non-negative ints."""
    txn = tuple(sorted(set(int(item) for item in items)))
    if txn and txn[0] < 0:
        raise ValueError(f"item ids must be non-negative, got {txn[0]}")
    return txn


class Vocabulary:
    """Bidirectional mapping between item names and canonical item ids.

    Ids are assigned in first-seen order, so encoding the same corpus
    twice yields identical ids. The mapping is intentionally append-only:
    data mined against a vocabulary stays decodable for the lifetime of
    the vocabulary.
    """

    def __init__(self, names: Iterable[str] = ()) -> None:
        self._name_to_id: dict[str, int] = {}
        self._id_to_name: list[str] = []
        for name in names:
            self.add(name)

    def add(self, name: str) -> int:
        """Return the id for *name*, assigning a fresh one if unseen."""
        item_id = self._name_to_id.get(name)
        if item_id is None:
            item_id = len(self._id_to_name)
            self._name_to_id[name] = item_id
            self._id_to_name.append(name)
        return item_id

    def id_of(self, name: str) -> int:
        """Return the id of *name*; raise ``KeyError`` if unknown."""
        return self._name_to_id[name]

    def name_of(self, item_id: int) -> str:
        """Return the name of *item_id*; raise ``IndexError`` if unknown."""
        return self._id_to_name[item_id]

    def encode(self, names: Iterable[str]) -> Transaction:
        """Translate item names to a canonical transaction, adding new names."""
        return _canonical(self.add(name) for name in names)

    def decode(self, itemset: Iterable[int]) -> tuple[str, ...]:
        """Translate item ids back to names."""
        return tuple(self._id_to_name[item] for item in itemset)

    def __len__(self) -> int:
        return len(self._id_to_name)

    def __contains__(self, name: str) -> bool:
        return name in self._name_to_id

    def __iter__(self) -> Iterator[str]:
        return iter(self._id_to_name)

    def __repr__(self) -> str:
        return f"Vocabulary({len(self)} names)"


class TransactionDatabase:
    """An ordered collection of transactions over ``n_items`` items.

    Order matters: the OSSM segments *contiguous runs* of the collection
    (pages), so a database is a sequence, not a bag. Two databases with
    the same transactions in a different order are equal as mining
    inputs but may segment differently — exactly the phenomenon the
    paper studies.

    Parameters
    ----------
    transactions:
        Iterable of item iterables. Each is canonicalized to a sorted
        tuple of unique ids.
    n_items:
        Size of the item domain. Defaults to ``max item + 1``. May
        exceed the largest observed item (items with zero support are
        legal and occur in sparse workloads).
    vocabulary:
        Optional :class:`Vocabulary` for decoding results back to names.
    """

    def __init__(
        self,
        transactions: Iterable[Iterable[int]],
        n_items: int | None = None,
        vocabulary: Vocabulary | None = None,
    ) -> None:
        self._transactions: list[Transaction] = [
            _canonical(txn) for txn in transactions
        ]
        observed = max(
            (txn[-1] for txn in self._transactions if txn), default=-1
        )
        if n_items is None:
            n_items = observed + 1
        elif observed >= n_items:
            raise ValueError(
                f"n_items={n_items} but database contains item {observed}"
            )
        self._n_items = int(n_items)
        self.vocabulary = vocabulary

    # -- construction helpers ------------------------------------------------

    @classmethod
    def from_named(
        cls, named_transactions: Iterable[Iterable[str]]
    ) -> "TransactionDatabase":
        """Build a database (and vocabulary) from name-based transactions."""
        vocabulary = Vocabulary()
        encoded = [vocabulary.encode(txn) for txn in named_transactions]
        return cls(encoded, n_items=len(vocabulary), vocabulary=vocabulary)

    # -- sequence protocol ---------------------------------------------------

    def __len__(self) -> int:
        return len(self._transactions)

    def __iter__(self) -> Iterator[Transaction]:
        return iter(self._transactions)

    def __getitem__(self, index: int | slice):
        if isinstance(index, slice):
            return TransactionDatabase(
                self._transactions[index],
                n_items=self._n_items,
                vocabulary=self.vocabulary,
            )
        return self._transactions[index]

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, TransactionDatabase):
            return NotImplemented
        return (
            self._n_items == other._n_items
            and self._transactions == other._transactions
        )

    def __repr__(self) -> str:
        return (
            f"TransactionDatabase({len(self)} transactions, "
            f"{self._n_items} items)"
        )

    # -- basic properties ----------------------------------------------------

    @property
    def n_items(self) -> int:
        """Size of the item domain (``m`` in the paper)."""
        return self._n_items

    @property
    def transactions(self) -> Sequence[Transaction]:
        """Read-only view of the stored transactions."""
        return tuple(self._transactions)

    def average_length(self) -> float:
        """Mean number of items per transaction (0.0 for an empty database)."""
        if not self._transactions:
            return 0.0
        return sum(len(txn) for txn in self._transactions) / len(self)

    def density(self) -> float:
        """Fraction of the ``N × m`` item/transaction matrix that is 1."""
        if not self._transactions or not self._n_items:
            return 0.0
        return self.average_length() / self._n_items

    # -- supports --------------------------------------------------------

    def item_supports(self) -> np.ndarray:
        """Support (absolute count) of every singleton item.

        Returns an ``int64`` vector of length ``n_items``; entry ``x`` is
        the number of transactions containing item ``x``.
        """
        supports = np.zeros(self._n_items, dtype=np.int64)
        for txn in self._transactions:
            supports[list(txn)] += 1
        return supports

    def support(self, itemset: Iterable[int]) -> int:
        """Exact support of *itemset* (number of containing transactions)."""
        target = frozenset(itemset)
        if not target:
            return len(self)
        return sum(1 for txn in self._transactions if target.issubset(txn))

    def supports(self, itemsets: Iterable[Iterable[int]]) -> list[int]:
        """Exact supports for several itemsets in one pass per itemset."""
        return [self.support(itemset) for itemset in itemsets]

    def vertical(self) -> list[np.ndarray]:
        """Tidset representation: for each item, the sorted transaction ids.

        This is the substrate Eclat and the Partition algorithm's local
        phase work on.
        """
        tidlists: list[list[int]] = [[] for _ in range(self._n_items)]
        for tid, txn in enumerate(self._transactions):
            for item in txn:
                tidlists[item].append(tid)
        return [np.asarray(tids, dtype=np.int64) for tids in tidlists]

    def to_matrix(self) -> np.ndarray:
        """Dense boolean ``N × m`` incidence matrix (small databases only)."""
        matrix = np.zeros((len(self), self._n_items), dtype=bool)
        for tid, txn in enumerate(self._transactions):
            matrix[tid, list(txn)] = True
        return matrix

    # -- reordering / splitting ----------------------------------------------

    def reordered(self, order: Sequence[int]) -> "TransactionDatabase":
        """Return a copy with transactions permuted by *order*.

        Theorem 1 allows the collection to be rearranged; this is the
        operation that realizes a rearrangement.
        """
        if sorted(order) != list(range(len(self))):
            raise ValueError("order must be a permutation of range(len(db))")
        return TransactionDatabase(
            (self._transactions[i] for i in order),
            n_items=self._n_items,
            vocabulary=self.vocabulary,
        )

    def split(self, n_parts: int) -> list["TransactionDatabase"]:
        """Split into *n_parts* contiguous, nearly equal-sized databases.

        Used by the Partition algorithm; every transaction lands in
        exactly one part and order is preserved.
        """
        if n_parts < 1:
            raise ValueError("n_parts must be >= 1")
        if n_parts > max(len(self), 1):
            raise ValueError(
                f"cannot split {len(self)} transactions into {n_parts} parts"
            )
        bounds = np.linspace(0, len(self), n_parts + 1).astype(int)
        return [self[int(lo):int(hi)] for lo, hi in zip(bounds, bounds[1:])]

    def concatenated(self, other: "TransactionDatabase") -> "TransactionDatabase":
        """Return a database holding this database's transactions then *other*'s."""
        n_items = max(self._n_items, other._n_items)
        return TransactionDatabase(
            list(self._transactions) + list(other._transactions),
            n_items=n_items,
            vocabulary=self.vocabulary or other.vocabulary,
        )
