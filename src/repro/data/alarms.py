"""Telecom alarm-stream simulator (substitute for the proprietary Nokia set).

The paper's first data set is "a real data set from Nokia on a sequence
file containing about 5000 transactions of about 200 distinct types of
telecommunications network alarms", which is proprietary and cannot be
obtained. This module builds the closest synthetic equivalent: a
network-alarm event stream with the structural properties that matter
to the OSSM —

* a modest alarm vocabulary (~200 types) with a heavy-tailed (Zipfian)
  base rate, as observed in real alarm logs;
* *cascades*: a fault in one network element triggers a burst of
  correlated secondary alarms shortly after the primary one (this is
  what makes alarm data minable for episodes at all);
* *non-stationarity*: fault classes drift over time (maintenance
  windows, weather fronts, load cycles), so alarm frequencies differ in
  different parts of the stream — exactly the skew the OSSM exploits.

Events are windowed into transactions the way episode mining does
(Mannila, Toivonen & Verkamo 1997, cited as [13]): a transaction is the
set of alarm types observed in one sliding/tumbling time window.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .transactions import TransactionDatabase

__all__ = ["AlarmConfig", "AlarmStreamGenerator", "generate_alarms"]


@dataclass(frozen=True)
class AlarmConfig:
    """Parameters of the alarm-stream simulator.

    Defaults match the scale the paper reports for the Nokia data:
    about 5000 windows over about 200 alarm types.
    """

    n_windows: int = 5000
    n_alarm_types: int = 200
    background_rate: float = 2.0
    cascade_rate: float = 0.6
    cascade_size_mean: float = 5.0
    n_fault_classes: int = 12
    drift_period: int = 1000
    zipf_exponent: float = 1.1
    seed: int = 0

    def __post_init__(self) -> None:
        if self.n_windows < 0:
            raise ValueError("n_windows must be >= 0")
        if self.n_alarm_types < 1:
            raise ValueError("n_alarm_types must be >= 1")
        if self.n_fault_classes < 1:
            raise ValueError("n_fault_classes must be >= 1")
        if self.drift_period < 1:
            raise ValueError("drift_period must be >= 1")
        if self.background_rate < 0 or self.cascade_rate < 0:
            raise ValueError("rates must be non-negative")


class AlarmStreamGenerator:
    """Simulates a network alarm log and windows it into transactions.

    Each *fault class* owns a small set of alarm types that co-occur when
    that class of fault fires (a cascade). Which fault classes are
    active drifts over the stream with period ``drift_period`` windows,
    producing the segment-to-segment frequency variability the OSSM
    measures. A Zipfian background process adds uncorrelated noise
    alarms.
    """

    def __init__(self, config: AlarmConfig | None = None, **overrides) -> None:
        if config is None:
            config = AlarmConfig(**overrides)
        elif overrides:
            raise TypeError("pass either an AlarmConfig or keyword overrides")
        self.config = config
        self._rng = np.random.default_rng(config.seed)
        self._background = self._zipf_probabilities()
        self._cascades = self._build_cascades()

    def _zipf_probabilities(self) -> np.ndarray:
        cfg = self.config
        ranks = np.arange(1, cfg.n_alarm_types + 1, dtype=float)
        weights = ranks ** (-cfg.zipf_exponent)
        return weights / weights.sum()

    def _build_cascades(self) -> list[np.ndarray]:
        """Assign each fault class its cascade of correlated alarm types."""
        cfg = self.config
        rng = self._rng
        cascades = []
        for _ in range(cfg.n_fault_classes):
            size = max(2, int(rng.poisson(cfg.cascade_size_mean)))
            size = min(size, cfg.n_alarm_types)
            cascades.append(rng.choice(cfg.n_alarm_types, size=size, replace=False))
        return cascades

    @property
    def cascades(self) -> list[tuple[int, ...]]:
        """The alarm types of each fault class's cascade."""
        return [tuple(int(a) for a in cascade) for cascade in self._cascades]

    def _active_classes(self, window: int) -> np.ndarray:
        """Fault classes active in *window* (drifts with the era)."""
        cfg = self.config
        era = window // cfg.drift_period
        # Each era activates a rotating half of the fault classes, so
        # alarm frequencies are visibly non-stationary.
        half = max(1, cfg.n_fault_classes // 2)
        start = (era * half) % cfg.n_fault_classes
        indices = [(start + k) % cfg.n_fault_classes for k in range(half)]
        return np.asarray(indices, dtype=np.int64)

    def _window_alarms(self, window: int) -> tuple[int, ...]:
        cfg = self.config
        rng = self._rng
        alarms: set[int] = set()
        n_background = rng.poisson(cfg.background_rate)
        if n_background:
            drawn = rng.choice(
                cfg.n_alarm_types, size=n_background, p=self._background
            )
            alarms.update(int(a) for a in drawn)
        for fault in self._active_classes(window):
            if rng.random() < cfg.cascade_rate:
                cascade = self._cascades[fault]
                # Primary alarm always fires; each secondary with p=0.8.
                alarms.add(int(cascade[0]))
                for alarm in cascade[1:]:
                    if rng.random() < 0.8:
                        alarms.add(int(alarm))
        if not alarms:
            alarms.add(int(rng.choice(cfg.n_alarm_types, p=self._background)))
        return tuple(sorted(alarms))

    def generate(self) -> TransactionDatabase:
        """Simulate the stream and return the windowed transactions."""
        cfg = self.config
        txns = [self._window_alarms(w) for w in range(cfg.n_windows)]
        return TransactionDatabase(txns, n_items=cfg.n_alarm_types)


def generate_alarms(**kwargs) -> TransactionDatabase:
    """One-shot convenience wrapper around :class:`AlarmStreamGenerator`."""
    return AlarmStreamGenerator(AlarmConfig(**kwargs)).generate()
