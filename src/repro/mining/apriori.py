"""The classical Apriori algorithm with pluggable candidate pruning.

The level-wise frequent-set miner of Agrawal & Srikant (1994), the host
algorithm of the paper's experiments. At each level ``k``:

1. generate candidates from the frequent ``(k−1)``-itemsets
   (:func:`~repro.mining.itemsets.apriori_gen`);
2. hand them to the configured
   :class:`~repro.mining.pruning.CandidatePruner` — plain Apriori uses
   the null pruner, *Apriori+OSSM* the Equation (1) bound;
3. frequency-count the survivors with the configured engine;
4. keep those meeting the threshold.

Because OSSM pruning is sound, Apriori and Apriori+OSSM return exactly
the same frequent sets; the saving is in step 3's work, which the
per-level stats expose.
"""

from __future__ import annotations

import os
import time

from ..data.transactions import TransactionDatabase
from ..obs.instrument import record_bound_gaps, record_level_stats
from ..obs.log import get_logger
from ..obs.metrics import get_registry
from ..obs.trace import trace
from .base import MiningResult, resolve_min_support
from .checkpointing import MiningCheckpointer, level_crash_point
from .counting import SupportCounter, make_counter, resolve_engine
from .itemsets import apriori_gen
from .pruning import CandidatePruner, NullPruner

__all__ = ["Apriori", "apriori"]

logger = get_logger(__name__)


class Apriori:
    """Configurable Apriori miner.

    Parameters
    ----------
    pruner:
        Candidate pruner applied before counting (default: none).
    counter:
        Counting engine instance (default: subset enumeration).
        Mutually exclusive with ``workers`` and ``engine``.
    max_level:
        Optional cap on itemset cardinality (``None`` = run to fixpoint).
    workers:
        Fan counting out over this many worker processes with a
        :class:`~repro.parallel.counter.ParallelCounter`. When the
        pruner carries an OSSM, its segment composition aligns the
        shard boundaries. Results are exactly those of the serial
        counter — the knob only changes where the counting runs.
    engine:
        Counting-engine name resolved through
        :func:`~repro.mining.counting.make_counter` (``"subset"``,
        ``"tidset"``, ``"hashtree"``, ``"parallel"``). Combined with
        ``workers`` a serial name selects the per-shard engine.
    checkpoint_dir:
        Snapshot the loop state there after every completed level
        (atomic, checksummed — see
        :mod:`repro.resilience.checkpoint`). ``None`` disables
        checkpointing entirely.
    resume:
        Restart from the newest valid snapshot in ``checkpoint_dir``
        instead of level 1. The resumed run is bit-identical to an
        uninterrupted one (apart from wall-clock timings); resuming
        against a different database/threshold/configuration raises
        :class:`~repro.resilience.errors.CheckpointMismatch`.
    """

    name = "apriori"

    def __init__(
        self,
        pruner: CandidatePruner | None = None,
        counter: SupportCounter | None = None,
        max_level: int | None = None,
        workers: int | None = None,
        engine: str | None = None,
        checkpoint_dir: str | os.PathLike | None = None,
        resume: bool = False,
    ) -> None:
        self.pruner = pruner if pruner is not None else NullPruner()
        if counter is not None and (workers is not None or engine is not None):
            raise ValueError(
                "pass either counter= or engine=/workers=, not both"
            )
        if counter is None:
            engine = resolve_engine(engine, workers)
            ossm = getattr(self.pruner, "ossm", None)
            sizes = ossm.segment_sizes if ossm is not None else None
            counter = make_counter(
                engine, workers=workers, segment_sizes=sizes
            )
        self.counter = counter
        if max_level is not None and max_level < 1:
            raise ValueError("max_level must be >= 1 or None")
        self.max_level = max_level
        self.checkpoint_dir = checkpoint_dir
        self.resume = resume

    def mine(
        self,
        database: TransactionDatabase,
        min_support: float | int,
    ) -> MiningResult:
        """Find all frequent itemsets of *database* at *min_support*."""
        threshold = resolve_min_support(database, min_support)
        result = MiningResult(
            frequent={},
            min_support=threshold,
            algorithm=self.name + self.pruner.label,
        )
        start = time.perf_counter()
        metrics = get_registry()
        ckpt = MiningCheckpointer.open(
            self.checkpoint_dir, self.resume, result.algorithm, threshold,
            database, max_level=self.max_level,
        )
        restored = ckpt.restored() if ckpt is not None else None

        with trace(
            "apriori.mine",
            algorithm=result.algorithm,
            min_support=threshold,
            n_transactions=len(database),
        ):
            if restored is not None:
                k, state = restored
                result.frequent = dict(state["frequent"])
                frequent_prev = list(state["frequent_prev"])
                MiningCheckpointer.unpack_levels(result, state["levels"])
            else:
                # Level 1: count all singletons directly.
                with trace("apriori.level", level=1):
                    level_crash_point()
                    supports = database.item_supports()
                    level1 = result.level(1)
                    level1.candidates_generated = database.n_items
                    singletons = [
                        (int(item),) for item in range(database.n_items)
                    ]
                    pruned1 = self.pruner.prune(singletons, threshold)
                    level1.candidates_pruned = len(singletons) - len(pruned1)
                    level1.candidates_counted = len(pruned1)
                    frequent_prev = []
                    for itemset in pruned1:
                        support = int(supports[itemset[0]])
                        if support >= threshold:
                            result.frequent[itemset] = support
                            frequent_prev.append(itemset)
                    level1.frequent = len(frequent_prev)
                    record_level_stats(self.name, level1)
                self._log_level(level1)
                k = 1
                if ckpt is not None:
                    ckpt.save_level(1, self._snapshot(result, frequent_prev))

            k += 1
            while frequent_prev and (
                self.max_level is None or k <= self.max_level
            ):
                with trace("apriori.level", level=k):
                    level_crash_point()
                    candidates = apriori_gen(frequent_prev)
                    stats = result.level(k)
                    stats.candidates_generated = len(candidates)
                    if not candidates:
                        break
                    survivors = self.pruner.prune(candidates, threshold)
                    stats.candidates_pruned = (
                        len(candidates) - len(survivors)
                    )
                    stats.candidates_counted = len(survivors)
                    with metrics.time("apriori.count_seconds"):
                        counts = self.counter.count(database, survivors)
                    record_bound_gaps(self.pruner, survivors, counts)
                    frequent_prev = []
                    for itemset, support in counts.items():
                        if support >= threshold:
                            result.frequent[itemset] = support
                            frequent_prev.append(itemset)
                    frequent_prev.sort()
                    stats.frequent = len(frequent_prev)
                    record_level_stats(self.name, stats)
                self._log_level(stats)
                if ckpt is not None:
                    ckpt.save_level(k, self._snapshot(result, frequent_prev))
                k += 1

        result.elapsed_seconds = time.perf_counter() - start
        logger.debug(
            "%s: %d frequent itemsets in %.3fs",
            result.algorithm, result.n_frequent, result.elapsed_seconds,
        )
        return result

    @staticmethod
    def _snapshot(result: MiningResult, frequent_prev: list) -> dict:
        """Exact loop state carried into the next level (see
        :mod:`repro.mining.checkpointing` for the bit-identity contract)."""
        return {
            "frequent": dict(result.frequent),
            "frequent_prev": list(frequent_prev),
            "levels": MiningCheckpointer.pack_levels(result),
        }

    @staticmethod
    def _log_level(stats) -> None:
        logger.debug(
            "level %d: generated=%d pruned=%d counted=%d frequent=%d",
            stats.level, stats.candidates_generated,
            stats.candidates_pruned, stats.candidates_counted,
            stats.frequent,
        )


def apriori(
    database: TransactionDatabase,
    min_support: float | int,
    pruner: CandidatePruner | None = None,
    counter: SupportCounter | None = None,
    max_level: int | None = None,
    workers: int | None = None,
    engine: str | None = None,
    checkpoint_dir: str | os.PathLike | None = None,
    resume: bool = False,
) -> MiningResult:
    """Functional entry point: ``apriori(db, 0.01, pruner=OSSMPruner(ossm))``."""
    miner = Apriori(
        pruner=pruner, counter=counter, max_level=max_level,
        workers=workers, engine=engine,
        checkpoint_dir=checkpoint_dir, resume=resume,
    )
    return miner.mine(database, min_support)
