"""Correlation mining (Brin, Motwani & Silverstein, SIGMOD 1997 — [6]).

"Beyond market baskets": instead of support/confidence rules, find item
sets whose presence/absence pattern departs from independence, measured
by the chi-squared statistic over the full ``2^k`` contingency table.
Two properties make the search tractable and OSSM-friendly:

* correlation is **upward closed** — a superset of a correlated set is
  correlated — so the interesting output is the *minimal* correlated
  sets, found level-wise;
* the level-wise walk still needs candidate *support counting* (the
  contingency table's all-present cell is the itemset's support), which
  is exactly where the OSSM prunes.

Following the original, candidates must also pass a support screen
(their expected cell counts must make the chi-squared test valid).
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from scipy.stats import chi2 as _chi2_distribution

from ..data.transactions import TransactionDatabase
from .base import MiningResult, resolve_min_support
from .counting import TidsetCounter
from .itemsets import apriori_gen
from .pruning import CandidatePruner, NullPruner

__all__ = [
    "ContingencyTable",
    "CorrelationMiner",
    "contingency_table",
    "mine_correlations",
]

Itemset = tuple[int, ...]


@dataclass(frozen=True)
class ContingencyTable:
    """The ``2^k`` presence/absence table of an itemset.

    ``cells[pattern]`` counts transactions where exactly the items with
    a 1-bit in *pattern* (indexing the itemset) are present.
    """

    itemset: Itemset
    cells: tuple[int, ...]
    n_transactions: int

    @property
    def k(self) -> int:
        """Cardinality of the itemset the table describes."""
        return len(self.itemset)

    def marginal(self, position: int) -> int:
        """Transactions containing the item at *position*."""
        return sum(
            count
            for pattern, count in enumerate(self.cells)
            if pattern >> position & 1
        )

    def expected(self, pattern: int) -> float:
        """Independence-model expectation of one cell."""
        expectation = float(self.n_transactions)
        for position in range(self.k):
            marginal = self.marginal(position)
            probability = marginal / self.n_transactions
            if pattern >> position & 1:
                expectation *= probability
            else:
                expectation *= 1.0 - probability
        return expectation

    def chi_squared(self) -> float:
        """The chi-squared statistic against full independence."""
        statistic = 0.0
        for pattern, observed in enumerate(self.cells):
            expected = self.expected(pattern)
            if expected > 0:
                statistic += (observed - expected) ** 2 / expected
            elif observed:
                return float("inf")
        return statistic

    def p_value(self) -> float:
        """Upper-tail p-value (``2^k − k − 1`` degrees of freedom for
        the k-dimensional independence test; 1 df when k = 2)."""
        df = max(1, 2**self.k - self.k - 1)
        return float(_chi2_distribution.sf(self.chi_squared(), df))

    def min_expected(self) -> float:
        """Smallest expected cell (the classic validity screen)."""
        return min(self.expected(p) for p in range(2**self.k))


def contingency_table(
    database: TransactionDatabase, itemset: Itemset
) -> ContingencyTable:
    """Count the full presence/absence table in one pass."""
    itemset = tuple(sorted(set(itemset)))
    index = {item: position for position, item in enumerate(itemset)}
    cells = [0] * (2 ** len(itemset))
    for txn in database:
        pattern = 0
        for item in txn:
            position = index.get(item)
            if position is not None:
                pattern |= 1 << position
        cells[pattern] += 1
    return ContingencyTable(
        itemset=itemset,
        cells=tuple(cells),
        n_transactions=len(database),
    )


class CorrelationMiner:
    """Level-wise minimal-correlated-set miner.

    Parameters
    ----------
    significance:
        Chi-squared significance level (p-value cutoff), default 0.05.
    min_expected:
        Validity screen: every cell's expected count must reach this
        (Brin et al. use the textbook 5; lower it for small data).
    pruner:
        OSSM (or other) pruner applied before support counting.
    max_level:
        Largest itemset cardinality examined.
    """

    name = "chi-squared"

    def __init__(
        self,
        significance: float = 0.05,
        min_expected: float = 5.0,
        pruner: CandidatePruner | None = None,
        max_level: int = 3,
    ) -> None:
        if not 0.0 < significance < 1.0:
            raise ValueError("significance must lie in (0, 1)")
        if max_level < 2:
            raise ValueError("max_level must be >= 2 (pairs at least)")
        self.significance = significance
        self.min_expected = min_expected
        self.pruner = pruner if pruner is not None else NullPruner()
        self.max_level = max_level

    def mine(
        self,
        database: TransactionDatabase,
        min_support: float | int,
    ) -> tuple[dict[Itemset, float], MiningResult]:
        """Return ``(minimal correlated sets -> p-value, accounting)``.

        *min_support* screens candidates by their all-present cell
        (counted with OSSM pruning first), keeping the walk and the
        statistic on sets that actually occur.
        """
        threshold = resolve_min_support(database, min_support)
        accounting = MiningResult(
            frequent={},
            min_support=threshold,
            algorithm=self.name + self.pruner.label,
        )
        start = time.perf_counter()
        counter = TidsetCounter()
        supports = database.item_supports()
        frequent_items = [
            (int(item),)
            for item in range(database.n_items)
            if supports[item] >= threshold
        ]
        correlated: dict[Itemset, float] = {}
        frontier = frequent_items
        level = 2
        while frontier and level <= self.max_level:
            raw = apriori_gen(frontier)
            # Upward closure: a candidate containing an already-minimal
            # correlated subset is not minimal; skip it entirely.
            raw = [
                candidate
                for candidate in raw
                if not any(
                    set(found).issubset(candidate) for found in correlated
                )
            ]
            stats = accounting.level(level)
            stats.candidates_generated = len(raw)
            survivors = self.pruner.prune(raw, threshold)
            stats.candidates_pruned = len(raw) - len(survivors)
            stats.candidates_counted = len(survivors)
            counts = counter.count(database, survivors)
            frontier = []
            for candidate, support in counts.items():
                if support < threshold:
                    continue
                accounting.frequent[candidate] = support
                stats.frequent += 1
                table = contingency_table(database, candidate)
                if table.min_expected() < self.min_expected:
                    continue  # test invalid at this sample size
                p_value = table.p_value()
                if p_value <= self.significance:
                    correlated[candidate] = p_value
                else:
                    frontier.append(candidate)
            frontier.sort()
            level += 1
        accounting.elapsed_seconds = time.perf_counter() - start
        return correlated, accounting


def mine_correlations(
    database: TransactionDatabase,
    min_support: float | int,
    significance: float = 0.05,
    min_expected: float = 5.0,
    pruner: CandidatePruner | None = None,
    max_level: int = 3,
) -> dict[Itemset, float]:
    """Functional entry point; returns minimal correlated sets only."""
    miner = CorrelationMiner(
        significance=significance,
        min_expected=min_expected,
        pruner=pruner,
        max_level=max_level,
    )
    correlated, _accounting = miner.mine(database, min_support)
    return correlated
