"""DepthProject-style depth-first long-pattern mining.

Agarwal, Aggarwal & Prasad (KDD 2000) mine long patterns by depth-first
search on the lexicographic tree of itemsets: each node carries a
prefix itemset and a set of candidate item extensions; extensions that
survive counting become children. Section 7 of the OSSM paper observes
that "if an OSSM is used simultaneously, then known infrequent
candidates can be pruned before the frequency counting" — exactly the
hook this implementation exposes: every candidate extension passes the
configured pruner before its projected support is computed.

Projection is realized with sorted tid arrays (the bitmap counting of
the original is an encoding detail; the tree, the extension discipline,
and the pruning point are preserved).
"""

from __future__ import annotations

import time

import numpy as np

from ..data.transactions import TransactionDatabase
from ..obs.instrument import record_level_stats
from ..obs.log import get_logger
from ..obs.trace import trace
from .base import MiningResult, resolve_min_support
from .pruning import CandidatePruner, NullPruner

__all__ = ["DepthProject", "depth_project"]

logger = get_logger(__name__)

Itemset = tuple[int, ...]


class DepthProject:
    """Depth-first lexicographic-tree miner with extension pruning.

    Parameters
    ----------
    pruner:
        Candidate pruner consulted for every extension *before* its
        support is counted (the Section 7 OSSM hook).
    max_level:
        Optional cap on reported itemset cardinality.
    """

    name = "depthproject"

    def __init__(
        self,
        pruner: CandidatePruner | None = None,
        max_level: int | None = None,
    ) -> None:
        self.pruner = pruner if pruner is not None else NullPruner()
        self.max_level = max_level

    def mine(
        self,
        database: TransactionDatabase,
        min_support: float | int,
    ) -> MiningResult:
        """Find all frequent itemsets of *database* at *min_support*."""
        threshold = resolve_min_support(database, min_support)
        result = MiningResult(
            frequent={},
            min_support=threshold,
            algorithm=self.name + self.pruner.label,
        )
        start = time.perf_counter()

        with trace(
            "depthproject.mine",
            algorithm=result.algorithm,
            min_support=threshold,
            n_transactions=len(database),
        ):
            with trace("depthproject.level", level=1):
                tidsets = database.vertical()
                level1 = result.level(1)
                level1.candidates_generated = database.n_items
                singletons = [(int(i),) for i in range(database.n_items)]
                survivors = self.pruner.prune(singletons, threshold)
                level1.candidates_pruned = len(singletons) - len(survivors)
                level1.candidates_counted = len(survivors)
                frontier: list[tuple[int, np.ndarray]] = []
                for (item,) in survivors:
                    tids = tidsets[item]
                    if len(tids) >= threshold:
                        result.frequent[(item,)] = len(tids)
                        frontier.append((item, tids))
                level1.frequent = len(frontier)

            with trace("depthproject.expand", roots=len(frontier)):
                for index, (item, tids) in enumerate(frontier):
                    extensions = [other for other, _ in frontier[index + 1:]]
                    tid_map = {other: t for other, t in frontier[index + 1:]}
                    self._expand(
                        (item,), tids, extensions, tid_map, threshold, result
                    )

            # Depth-first search fills the per-level accounting out of
            # order; mirror it into the registry once the tree is done.
            for stats in result.levels:
                record_level_stats(self.name, stats)

        result.elapsed_seconds = time.perf_counter() - start
        logger.debug(
            "%s: %d frequent itemsets in %.3fs",
            result.algorithm, result.n_frequent, result.elapsed_seconds,
        )
        return result

    def _expand(
        self,
        prefix: Itemset,
        prefix_tids: np.ndarray,
        extensions: list[int],
        tidsets: dict[int, np.ndarray],
        threshold: int,
        result: MiningResult,
    ) -> None:
        k = len(prefix) + 1
        if self.max_level is not None and k > self.max_level:
            return
        if not extensions:
            return
        candidates = [prefix + (item,) for item in extensions]
        stats = result.level(k)
        stats.candidates_generated += len(candidates)
        survivors = self.pruner.prune(candidates, threshold)
        stats.candidates_pruned += len(candidates) - len(survivors)
        stats.candidates_counted += len(survivors)

        frontier: list[tuple[int, np.ndarray]] = []
        for candidate in survivors:
            item = candidate[-1]
            joined = np.intersect1d(
                prefix_tids, tidsets[item], assume_unique=True
            )
            if len(joined) >= threshold:
                result.frequent[candidate] = len(joined)
                stats.frequent += 1
                frontier.append((item, joined))

        for index, (item, tids) in enumerate(frontier):
            child_extensions = [other for other, _ in frontier[index + 1:]]
            child_map = {other: t for other, t in frontier[index + 1:]}
            self._expand(
                prefix + (item,), tids, child_extensions, child_map,
                threshold, result,
            )


def depth_project(
    database: TransactionDatabase,
    min_support: float | int,
    pruner: CandidatePruner | None = None,
    max_level: int | None = None,
) -> MiningResult:
    """Functional entry point for :class:`DepthProject`."""
    return DepthProject(pruner=pruner, max_level=max_level).mine(
        database, min_support
    )
