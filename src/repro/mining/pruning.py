"""Candidate pruners: the hook the OSSM plugs into.

A *pruner* sits between candidate generation and frequency counting: it
removes candidates that are provably infrequent, so the counter never
touches them. Any structure yielding a sound support upper bound fits:

* :class:`NullPruner` — prunes nothing (plain Apriori);
* :class:`OSSMPruner` — Equation (1) bounds from an
  :class:`~repro.core.ossm.OSSM`;
* :class:`GeneralizedOSSMPruner` — tighter bounds from the footnote-3
  generalized map;
* :class:`ChainPruner` — composition (e.g. OSSM *then* a DHP hash
  filter, the Section 7 combination).
"""

from __future__ import annotations

import abc
from collections.abc import Sequence

import numpy as np

from ..core.generalized import GeneralizedOSSM
from ..core.ossm import OSSM
from ..obs.metrics import get_registry

__all__ = [
    "CandidatePruner",
    "NullPruner",
    "OSSMPruner",
    "GeneralizedOSSMPruner",
    "ChainPruner",
]

Itemset = tuple[int, ...]


class CandidatePruner(abc.ABC):
    """Removes provably infrequent candidates before counting."""

    #: Suffix appended to a miner's name, e.g. ``"+ossm"``; empty for
    #: the null pruner.
    label: str = ""

    @abc.abstractmethod
    def prune(
        self, candidates: Sequence[Itemset], min_support: int
    ) -> list[Itemset]:
        """Return the candidates whose bound reaches *min_support*."""

    def candidate_bounds(
        self, candidates: Sequence[Itemset]
    ) -> np.ndarray | None:
        """Support upper bounds aligned with *candidates*, or ``None``.

        Pruners backed by a real bound (OSSM, generalized OSSM) return
        the bound vector so instrumentation can compare it against the
        exact supports once counting has run (the ``ossm.bound_gap``
        histogram). Pruners without one return ``None``.
        """
        return None

    def _record_prune(self, n_in: int, n_out: int) -> None:
        """Emit ``pruner.<label>.pruned/kept`` counters (no-op when off)."""
        registry = get_registry()
        if registry.enabled:
            label = self.label.lstrip("+") or "null"
            registry.inc(f"pruner.{label}.pruned", n_in - n_out)
            registry.inc(f"pruner.{label}.kept", n_out)


class NullPruner(CandidatePruner):
    """Prunes nothing; the plain-miner baseline."""

    label = ""

    def prune(
        self, candidates: Sequence[Itemset], min_support: int
    ) -> list[Itemset]:
        return list(candidates)


class OSSMPruner(CandidatePruner):
    """Prune by the OSSM's Equation (1) upper bound.

    Sound: the bound dominates the true support, so no frequent
    candidate is ever removed — the miner's output is unchanged, only
    its counting work shrinks.
    """

    label = "+ossm"

    def __init__(self, ossm: OSSM) -> None:
        self.ossm = ossm

    def prune(
        self, candidates: Sequence[Itemset], min_support: int
    ) -> list[Itemset]:
        survivors, _mask = self.ossm.prune(candidates, min_support)
        self._record_prune(len(candidates), len(survivors))
        return survivors

    def candidate_bounds(
        self, candidates: Sequence[Itemset]
    ) -> np.ndarray | None:
        if not candidates:
            return None
        return self.ossm.upper_bounds(candidates)


class GeneralizedOSSMPruner(CandidatePruner):
    """Prune by the generalized (higher-cardinality) OSSM bound."""

    label = "+gossm"

    def __init__(self, gossm: GeneralizedOSSM) -> None:
        self.gossm = gossm

    def prune(
        self, candidates: Sequence[Itemset], min_support: int
    ) -> list[Itemset]:
        if not candidates:
            return []
        bounds = self.gossm.upper_bounds(candidates)
        survivors = [
            candidate
            for candidate, bound in zip(candidates, bounds)
            if bound >= min_support
        ]
        self._record_prune(len(candidates), len(survivors))
        return survivors

    def candidate_bounds(
        self, candidates: Sequence[Itemset]
    ) -> np.ndarray | None:
        if not candidates:
            return None
        return self.gossm.upper_bounds(candidates)


class ChainPruner(CandidatePruner):
    """Apply several pruners in sequence (intersection of survivors)."""

    def __init__(self, pruners: Sequence[CandidatePruner]) -> None:
        if not pruners:
            raise ValueError("need at least one pruner")
        self.pruners = list(pruners)
        self.label = "".join(pruner.label for pruner in self.pruners)

    def prune(
        self, candidates: Sequence[Itemset], min_support: int
    ) -> list[Itemset]:
        survivors = list(candidates)
        for pruner in self.pruners:
            if not survivors:
                break
            survivors = pruner.prune(survivors, min_support)
        return survivors

    def candidate_bounds(
        self, candidates: Sequence[Itemset]
    ) -> np.ndarray | None:
        """Tightest (elementwise minimum) bound across the chain."""
        best: np.ndarray | None = None
        for pruner in self.pruners:
            bounds = pruner.candidate_bounds(candidates)
            if bounds is None:
                continue
            best = bounds if best is None else _elementwise_min(best, bounds)
        return best


def _elementwise_min(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    return np.minimum(np.asarray(a), np.asarray(b))
