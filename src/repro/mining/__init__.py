"""Mining substrate: the host algorithms the OSSM accelerates.

Candidate-based miners (Apriori, DHP, Partition, DepthProject) accept a
:class:`~repro.mining.pruning.CandidatePruner`; plugging in an
:class:`~repro.mining.pruning.OSSMPruner` yields the "+OSSM" variants
the paper evaluates. FP-growth and Eclat are candidate-free baselines
used as independent correctness oracles and performance references.
"""

from .apriori import Apriori, apriori
from .base import LevelStats, MiningResult, resolve_min_count, resolve_min_support
from .bitmap import BitmapCounter, PackedBitmap, pack_database
from .closed import closed_itemsets, maximal_itemsets, mine_closed
from .constraints import (
    ConstrainedApriori,
    Constraint,
    ExcludesAll,
    MaxAttribute,
    MaxSize,
    MinAttributeAtMost,
    MinSize,
    SubsetOf,
    SupersetOf,
    constrained_apriori,
)
from .correlations import (
    ContingencyTable,
    CorrelationMiner,
    contingency_table,
    mine_correlations,
)
from .counting import (
    SubsetCounter,
    SupportCounter,
    TidsetCounter,
    count_supports,
    make_counter,
    make_pool,
    register_engine,
    registered_engines,
    resolve_engine,
)
from .depth_project import DepthProject, depth_project
from .dhp import DHP, dhp
from .eclat import Eclat, eclat
from .episodes import EpisodeMiner, mine_parallel_episodes, mine_serial_episodes
from .fpgrowth import FPGrowth, fpgrowth
from .gsp import GSP, gsp
from .hash_tree import HashTree, HashTreeCounter
from .itemsets import apriori_gen, is_canonical, join_step, prune_step, subsets_of_size
from .partition import Partition, partition_mine
from .pruning import (
    CandidatePruner,
    ChainPruner,
    GeneralizedOSSMPruner,
    NullPruner,
    OSSMPruner,
)
from .rules import Rule, generate_rules

__all__ = [
    "Apriori",
    "apriori",
    "LevelStats",
    "MiningResult",
    "resolve_min_count",
    "resolve_min_support",
    "BitmapCounter",
    "PackedBitmap",
    "pack_database",
    "closed_itemsets",
    "maximal_itemsets",
    "mine_closed",
    "ConstrainedApriori",
    "Constraint",
    "ExcludesAll",
    "MaxAttribute",
    "MaxSize",
    "MinAttributeAtMost",
    "MinSize",
    "SubsetOf",
    "SupersetOf",
    "constrained_apriori",
    "ContingencyTable",
    "CorrelationMiner",
    "contingency_table",
    "mine_correlations",
    "SubsetCounter",
    "SupportCounter",
    "TidsetCounter",
    "count_supports",
    "make_counter",
    "make_pool",
    "register_engine",
    "registered_engines",
    "resolve_engine",
    "DepthProject",
    "depth_project",
    "DHP",
    "dhp",
    "Eclat",
    "eclat",
    "EpisodeMiner",
    "mine_parallel_episodes",
    "mine_serial_episodes",
    "FPGrowth",
    "fpgrowth",
    "GSP",
    "gsp",
    "HashTree",
    "HashTreeCounter",
    "apriori_gen",
    "is_canonical",
    "join_step",
    "prune_step",
    "subsets_of_size",
    "Partition",
    "partition_mine",
    "CandidatePruner",
    "ChainPruner",
    "GeneralizedOSSMPruner",
    "NullPruner",
    "OSSMPruner",
    "Rule",
    "generate_rules",
]
