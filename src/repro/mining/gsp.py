"""GSP — sequential-pattern mining (Srikant & Agrawal / ICDE'95 [4]).

The level-wise sequential miner, with the OSSM plugged in the same
place as everywhere else: between candidate generation and support
counting. A sequential pattern's support is bounded by the support of
its *flattened* item set over the customer-flattened database
(:meth:`repro.data.sequences.SequenceDatabase.flattened`), which is in
turn bounded by Equation (1) — so an OSSM over the flattened view
prunes sequential candidates before the expensive per-customer
subsequence scans.

Pattern representation: a tuple of canonical itemset tuples, e.g.
``((1,), (2, 3))`` = "bought 1, later bought 2 and 3 together". The
*size* of a pattern is its total item count (GSP's ``k``).
"""

from __future__ import annotations

import time
from collections.abc import Iterable

from ..data.sequences import SequenceDatabase, contains_sequence
from .base import MiningResult, resolve_min_count
from .pruning import CandidatePruner, NullPruner

__all__ = ["GSP", "gsp"]

Pattern = tuple[tuple[int, ...], ...]


def _size(pattern: Pattern) -> int:
    return sum(len(element) for element in pattern)


def _drop_first_item(pattern: Pattern) -> Pattern:
    head = pattern[0][1:]
    if head:
        return (head,) + pattern[1:]
    return pattern[1:]


def _drop_last_item(pattern: Pattern) -> Pattern:
    tail = pattern[-1][:-1]
    if tail:
        return pattern[:-1] + (tail,)
    return pattern[:-1]


def _subpatterns(pattern: Pattern) -> Iterable[Pattern]:
    """All patterns obtained by deleting exactly one item."""
    for i, element in enumerate(pattern):
        for j in range(len(element)):
            shrunk = element[:j] + element[j + 1:]
            if shrunk:
                yield pattern[:i] + (shrunk,) + pattern[i + 1:]
            else:
                yield pattern[:i] + pattern[i + 1:]


def _join(s1: Pattern, s2: Pattern) -> Pattern | None:
    """GSP join: s1 minus its first item must equal s2 minus its last."""
    if _drop_first_item(s1) != _drop_last_item(s2):
        return None
    last_item = s2[-1][-1]
    if len(s2[-1]) == 1:
        # The last item formed its own element: extend with a new one.
        return s1 + ((last_item,),)
    # The last item shared s2's final element: merge it into s1's.
    merged = tuple(sorted(set(s1[-1]) | {last_item}))
    if merged == s1[-1]:
        return None  # the item was already there; not a valid growth
    return s1[:-1] + (merged,)


def _level2_candidates(items: list[int]) -> list[Pattern]:
    """The special k=2 generation: ⟨{x}{y}⟩ (all ordered pairs,
    repeats allowed) and ⟨{x,y}⟩ (unordered, x < y)."""
    candidates: list[Pattern] = []
    for x in items:
        for y in items:
            candidates.append(((x,), (y,)))
    for i, x in enumerate(items):
        for y in items[i + 1:]:
            candidates.append(((x, y),))
    return candidates


class GSP:
    """Level-wise sequential-pattern miner with pluggable pruning.

    Parameters
    ----------
    pruner:
        Candidate pruner consulted (through the pattern's flattened
        item set) before counting. Build its OSSM over
        ``sequence_db.flattened()``.
    max_size:
        Optional cap on total pattern item count.
    """

    name = "gsp"

    def __init__(
        self,
        pruner: CandidatePruner | None = None,
        max_size: int | None = None,
    ) -> None:
        self.pruner = pruner if pruner is not None else NullPruner()
        if max_size is not None and max_size < 1:
            raise ValueError("max_size must be >= 1 or None")
        self.max_size = max_size

    def _prune(self, candidates: list[Pattern], threshold: int, stats):
        """Bound-prune through flattened item sets, by size class."""
        if isinstance(self.pruner, NullPruner):
            stats.candidates_counted = len(candidates)
            return candidates
        shadows = [
            tuple(sorted({i for element in c for i in element}))
            for c in candidates
        ]
        by_size: dict[int, list[tuple[int, ...]]] = {}
        for shadow in set(shadows):
            by_size.setdefault(len(shadow), []).append(shadow)
        kept: set[tuple[int, ...]] = set()
        for group in by_size.values():
            kept.update(self.pruner.prune(sorted(group), threshold))
        survivors = [
            candidate
            for candidate, shadow in zip(candidates, shadows)
            if shadow in kept
        ]
        stats.candidates_pruned = len(candidates) - len(survivors)
        stats.candidates_counted = len(survivors)
        return survivors

    def _count(
        self, database: SequenceDatabase, candidates: list[Pattern]
    ) -> dict[Pattern, int]:
        counts = {candidate: 0 for candidate in candidates}
        for customer in database:
            for candidate in candidates:
                if contains_sequence(customer, candidate):
                    counts[candidate] += 1
        return counts

    def mine(
        self,
        database: SequenceDatabase,
        min_support: float | int,
    ) -> MiningResult:
        """All frequent sequential patterns of *database*.

        Float thresholds are relative to the number of customers.
        """
        threshold = resolve_min_count(max(len(database), 1), min_support)
        result = MiningResult(
            frequent={},
            min_support=threshold,
            algorithm=self.name + self.pruner.label,
        )
        start = time.perf_counter()

        # k = 1: customers containing each item anywhere.
        supports = database.item_supports()
        level1 = result.level(1)
        level1.candidates_generated = database.n_items
        singles: list[Pattern] = [
            ((item,),) for item in range(database.n_items)
        ]
        survivors = self._prune(singles, threshold, level1)
        frequent_prev: list[Pattern] = []
        for pattern in survivors:
            support = int(supports[pattern[0][0]])
            if support >= threshold:
                result.frequent[pattern] = support
                frequent_prev.append(pattern)
        level1.frequent = len(frequent_prev)
        frequent_items = [p[0][0] for p in frequent_prev]

        k = 2
        while frequent_prev and (self.max_size is None or k <= self.max_size):
            if k == 2:
                candidates = _level2_candidates(frequent_items)
            else:
                prior = set(frequent_prev)
                joined = set()
                for s1 in frequent_prev:
                    for s2 in frequent_prev:
                        candidate = _join(s1, s2)
                        if candidate is not None:
                            joined.add(candidate)
                candidates = sorted(
                    candidate
                    for candidate in joined
                    if all(
                        sub in prior for sub in _subpatterns(candidate)
                    )
                )
            stats = result.level(k)
            stats.candidates_generated = len(candidates)
            if not candidates:
                break
            candidates = self._prune(candidates, threshold, stats)
            counts = self._count(database, candidates)
            frequent_prev = sorted(
                pattern
                for pattern, support in counts.items()
                if support >= threshold
            )
            for pattern in frequent_prev:
                result.frequent[pattern] = counts[pattern]
            stats.frequent = len(frequent_prev)
            k += 1

        result.elapsed_seconds = time.perf_counter() - start
        return result


def gsp(
    database: SequenceDatabase,
    min_support: float | int,
    pruner: CandidatePruner | None = None,
    max_size: int | None = None,
) -> MiningResult:
    """Functional entry point for :class:`GSP`."""
    return GSP(pruner=pruner, max_size=max_size).mine(database, min_support)
