"""DHP — Direct Hashing and Pruning (Park, Chen & Yu, TKDE 1997).

The hash-based Apriori variant the paper combines with the OSSM in
Section 7. Two devices on top of Apriori:

* **Hash filtering.** While counting pass ``k−1``, every ``k``-subset of
  each (trimmed) transaction is hashed into a bucket-count table
  ``H_k``. A ``k``-candidate whose bucket count misses the threshold
  cannot be frequent and is dropped before counting. The decisive win is
  at ``k = 2`` — the well-known Apriori bottleneck.
* **Transaction trimming.** An item can belong to a frequent
  ``(k+1)``-itemset only if it lies in at least ``k`` of the
  transaction's candidate ``k``-itemsets; items (and transactions)
  failing the test are dropped from subsequent passes.

With an OSSM attached (``pruner=OSSMPruner(...)``), candidates are
bound-pruned *before* the hash filter sees them — "known infrequent
k-itemsets are not generated in the first place", and the itemsets that
pass the OSSM can still be pruned by DHP (Section 7). The Section 7
table's two rows are this class with the null pruner and with an OSSM
pruner.
"""

from __future__ import annotations

import os
import time
from itertools import combinations

import numpy as np

from ..data.transactions import TransactionDatabase
from ..obs.instrument import record_bound_gaps, record_level_stats
from ..obs.log import get_logger
from ..obs.metrics import get_registry
from ..obs.trace import trace
from .base import MiningResult, resolve_min_support
from .checkpointing import MiningCheckpointer, level_crash_point
from .counting import make_pool
from .itemsets import apriori_gen
from .pruning import CandidatePruner, NullPruner

__all__ = ["DHP", "dhp"]

logger = get_logger(__name__)

Itemset = tuple[int, ...]

_HASH_MULTIPLIER = 131071


def _bucket(itemset: Itemset, n_buckets: int) -> int:
    value = 0
    for item in itemset:
        value = (value * _HASH_MULTIPLIER + item + 1) % n_buckets
    return value


def _pass_one_core(
    transactions: list[Itemset] | TransactionDatabase,
    n_items: int,
    n_buckets: int,
) -> tuple[np.ndarray, np.ndarray]:
    """Singleton counts and ``H_2`` buckets for one transaction run.

    Module-level (and ``self``-free) so worker processes can run it on
    a chunk: both outputs are per-transaction sums, so chunk results
    add up to exactly the serial result.
    """
    supports = np.zeros(n_items, dtype=np.int64)
    buckets = np.zeros(n_buckets, dtype=np.int64)
    for txn in transactions:
        supports[list(txn)] += 1
        for pair in combinations(txn, 2):
            buckets[_bucket(pair, n_buckets)] += 1
    return supports, buckets


def _count_pass_core(
    transactions: list[Itemset],
    candidates: list[Itemset],
    k: int,
    build_next_hash: bool,
    n_buckets: int,
    trim: bool,
) -> tuple[dict[Itemset, int], np.ndarray | None, list[Itemset]]:
    """One DHP counting pass over a transaction run.

    Every per-transaction step — candidate hits, the trimming decision,
    and the ``H_{k+1}`` bucket contribution — depends only on the
    candidate set and that single transaction, never on other
    transactions. That locality is what makes the chunked parallel pass
    exact: counts and buckets sum, trimmed runs concatenate in order.
    """
    counts: dict[Itemset, int] = {c: 0 for c in candidates}
    next_buckets = (
        np.zeros(n_buckets, dtype=np.int64) if build_next_hash else None
    )
    trimmed: list[Itemset] = []
    useful = frozenset(item for c in candidates for item in c)
    for txn in transactions:
        items = [item for item in txn if item in useful]
        hits: dict[int, int] = {}
        if len(items) >= k:
            for subset in combinations(items, k):
                if subset in counts:
                    counts[subset] += 1
                    for item in subset:
                        hits[item] = hits.get(item, 0) + 1
        if trim:
            kept = tuple(
                item for item in items if hits.get(item, 0) >= k
            )
            if len(kept) < k + 1:
                continue
            txn_next = kept
        else:
            txn_next = txn
        trimmed.append(txn_next)
        if next_buckets is not None and len(txn_next) > k:
            for subset in combinations(txn_next, k + 1):
                next_buckets[_bucket(subset, n_buckets)] += 1
    return counts, next_buckets, trimmed


def _pass_one_chunk(
    payload: tuple[list[Itemset], int, int]
) -> tuple[np.ndarray, np.ndarray, float]:
    """Worker task: :func:`_pass_one_core` over one transaction chunk."""
    transactions, n_items, n_buckets = payload
    start = time.perf_counter()
    supports, buckets = _pass_one_core(transactions, n_items, n_buckets)
    return supports, buckets, time.perf_counter() - start


def _count_chunk(
    payload: tuple[list[Itemset], list[Itemset], int, bool, int, bool]
) -> tuple[np.ndarray, np.ndarray | None, list[Itemset], float]:
    """Worker task: :func:`_count_pass_core` over one transaction chunk.

    Counts come back as an int64 vector aligned with the candidate
    list, so the parent reduces with an elementwise sum.
    """
    transactions, candidates, k, build_next_hash, n_buckets, trim = payload
    start = time.perf_counter()
    counts, next_buckets, trimmed = _count_pass_core(
        transactions, candidates, k, build_next_hash, n_buckets, trim
    )
    vector = np.fromiter(
        (counts[c] for c in candidates),
        dtype=np.int64,
        count=len(candidates),
    )
    return vector, next_buckets, trimmed, time.perf_counter() - start


def _even_chunks(items: list[Itemset], n_chunks: int) -> list[list[Itemset]]:
    """Split *items* into at most *n_chunks* contiguous, ordered runs."""
    n = len(items)
    n_chunks = min(n_chunks, n)
    cuts = [i * n // n_chunks for i in range(n_chunks + 1)]
    return [items[lo:hi] for lo, hi in zip(cuts, cuts[1:])]


class DHP:
    """DHP miner with pluggable candidate pruning.

    Parameters
    ----------
    n_buckets:
        Size of each hash table (the paper's Section 7 run uses 32 768).
    hash_passes:
        Highest level for which a hash table is built. The default (2)
        builds only ``H_2``, the configuration responsible for nearly
        all of DHP's benefit; raise it to also hash-filter ``C_3`` etc.
    pruner:
        Candidate pruner applied before the hash filter (OSSM here).
    max_level:
        Optional cardinality cap.
    workers:
        Fan every counting pass (including pass one) out over this
        many worker processes in contiguous transaction chunks. Counts
        and bucket tables sum and trimmed runs concatenate in order, so
        the result is exactly the serial one.
    checkpoint_dir:
        Snapshot the loop state (frequent sets, bucket table, trimmed
        transactions) there after every completed level; ``None``
        disables checkpointing.
    resume:
        Restart from the newest valid snapshot in ``checkpoint_dir``;
        the resumed run is bit-identical to an uninterrupted one.
    """

    name = "dhp"

    def __init__(
        self,
        n_buckets: int = 32768,
        hash_passes: int = 2,
        pruner: CandidatePruner | None = None,
        max_level: int | None = None,
        trim: bool = True,
        workers: int | None = None,
        checkpoint_dir: str | os.PathLike | None = None,
        resume: bool = False,
    ) -> None:
        if n_buckets < 1:
            raise ValueError("n_buckets must be >= 1")
        if hash_passes < 2:
            raise ValueError("hash_passes must be >= 2 (H2 is the point of DHP)")
        self.n_buckets = n_buckets
        self.hash_passes = hash_passes
        self.pruner = pruner if pruner is not None else NullPruner()
        self.max_level = max_level
        self.trim = trim
        self.workers = workers
        self.checkpoint_dir = checkpoint_dir
        self.resume = resume

    # -- parallel plumbing -------------------------------------------------

    def _make_pool(self, database: TransactionDatabase):
        """Worker pool for this run, or ``None`` for the serial path.

        Routed through the engine registry's
        :func:`~repro.mining.counting.make_pool` seam — the same place
        Apriori and Partition resolve their counters — instead of
        importing the parallel backend ad hoc.
        """
        return make_pool(self.workers, len(database))

    def _pass_one_parallel(
        self, database: TransactionDatabase, pool
    ) -> tuple[np.ndarray, np.ndarray]:
        """Chunked pass one; sums reproduce the serial tables exactly."""
        from ..parallel.pool import record_fanout

        chunks = _even_chunks(list(database), pool.workers)
        payloads = [
            (chunk, database.n_items, self.n_buckets) for chunk in chunks
        ]
        start = time.perf_counter()
        results = pool.run(_pass_one_chunk, payloads)
        wall = time.perf_counter() - start
        supports = np.zeros(database.n_items, dtype=np.int64)
        buckets = np.zeros(self.n_buckets, dtype=np.int64)
        timings = []
        for index, (chunk_supports, chunk_buckets, seconds) in enumerate(
            results
        ):
            supports += chunk_supports
            buckets += chunk_buckets
            timings.append((index, len(chunks[index]), seconds))
        record_fanout("parallel.dhp_pass1", timings, wall)
        return supports, buckets

    def _count_pass_parallel(
        self,
        transactions: list[Itemset],
        candidates: list[Itemset],
        k: int,
        build_next_hash: bool,
        pool,
    ) -> tuple[dict[Itemset, int], np.ndarray | None, list[Itemset]]:
        """Chunked counting pass; exact by per-transaction locality."""
        from ..parallel.pool import record_fanout

        chunks = _even_chunks(transactions, pool.workers)
        payloads = [
            (
                chunk, candidates, k, build_next_hash,
                self.n_buckets, self.trim,
            )
            for chunk in chunks
        ]
        start = time.perf_counter()
        results = pool.run(_count_chunk, payloads)
        wall = time.perf_counter() - start
        total = np.zeros(len(candidates), dtype=np.int64)
        next_buckets = (
            np.zeros(self.n_buckets, dtype=np.int64)
            if build_next_hash
            else None
        )
        trimmed: list[Itemset] = []
        timings = []
        for index, (vector, chunk_buckets, chunk_trimmed, seconds) in (
            enumerate(results)
        ):
            total += vector
            if next_buckets is not None and chunk_buckets is not None:
                next_buckets += chunk_buckets
            trimmed.extend(chunk_trimmed)
            timings.append((index, len(chunks[index]), seconds))
        record_fanout("parallel.dhp_count", timings, wall)
        counts = {
            candidate: int(total[index])
            for index, candidate in enumerate(candidates)
        }
        return counts, next_buckets, trimmed

    # -- passes ----------------------------------------------------------

    def _pass_one(
        self, database: TransactionDatabase
    ) -> tuple[np.ndarray, np.ndarray]:
        """Count singletons and fill the ``H_2`` bucket table."""
        return _pass_one_core(database, database.n_items, self.n_buckets)

    def _hash_filter(
        self,
        candidates: list[Itemset],
        buckets: np.ndarray | None,
        threshold: int,
    ) -> list[Itemset]:
        if buckets is None:
            return candidates
        return [
            candidate
            for candidate in candidates
            if buckets[_bucket(candidate, self.n_buckets)] >= threshold
        ]

    def _count_pass(
        self,
        transactions: list[Itemset],
        candidates: list[Itemset],
        k: int,
        build_next_hash: bool,
    ) -> tuple[dict[Itemset, int], np.ndarray | None, list[Itemset]]:
        """Count C_k; optionally build ``H_{k+1}`` and trim transactions."""
        return _count_pass_core(
            transactions, candidates, k, build_next_hash,
            self.n_buckets, self.trim,
        )

    @staticmethod
    def _snapshot(
        result: MiningResult,
        frequent_prev: list[Itemset],
        buckets: np.ndarray | None,
        transactions: list[Itemset],
    ) -> dict:
        """Exact loop state carried into the next level: on top of the
        Apriori state, DHP also rolls the live hash table and the
        trimmed transaction run forward."""
        return {
            "frequent": dict(result.frequent),
            "frequent_prev": list(frequent_prev),
            "levels": MiningCheckpointer.pack_levels(result),
            "buckets": (
                None if buckets is None
                else np.array(buckets, dtype=np.int64)
            ),
            "transactions": list(transactions),
        }

    # -- driver ------------------------------------------------------------

    def mine(
        self,
        database: TransactionDatabase,
        min_support: float | int,
    ) -> MiningResult:
        """Find all frequent itemsets of *database* at *min_support*."""
        threshold = resolve_min_support(database, min_support)
        result = MiningResult(
            frequent={},
            min_support=threshold,
            algorithm=self.name + self.pruner.label,
        )
        start = time.perf_counter()
        metrics = get_registry()
        pool = self._make_pool(database)
        ckpt = MiningCheckpointer.open(
            self.checkpoint_dir, self.resume, result.algorithm, threshold,
            database, n_buckets=self.n_buckets,
            hash_passes=self.hash_passes, trim=self.trim,
            max_level=self.max_level,
        )
        restored = ckpt.restored() if ckpt is not None else None

        with trace(
            "dhp.mine",
            algorithm=result.algorithm,
            min_support=threshold,
            n_transactions=len(database),
        ):
            if restored is not None:
                k, state = restored
                result.frequent = dict(state["frequent"])
                frequent_prev: list[Itemset] = list(state["frequent_prev"])
                MiningCheckpointer.unpack_levels(result, state["levels"])
                buckets = state["buckets"]
                transactions: list[Itemset] = list(state["transactions"])
            else:
                with trace("dhp.level", level=1):
                    level_crash_point()
                    with metrics.time("dhp.pass_one_seconds"):
                        if pool is not None:
                            supports, buckets = self._pass_one_parallel(
                                database, pool
                            )
                        else:
                            supports, buckets = self._pass_one(database)
                    level1 = result.level(1)
                    level1.candidates_generated = database.n_items
                    singletons = [(int(i),) for i in range(database.n_items)]
                    survivors1 = self.pruner.prune(singletons, threshold)
                    level1.candidates_pruned = (
                        len(singletons) - len(survivors1)
                    )
                    level1.candidates_counted = len(survivors1)
                    frequent_prev = []
                    for itemset in survivors1:
                        support = int(supports[itemset[0]])
                        if support >= threshold:
                            result.frequent[itemset] = support
                            frequent_prev.append(itemset)
                    level1.frequent = len(frequent_prev)
                    record_level_stats(self.name, level1)

                transactions = list(database)
                k = 1
                if ckpt is not None:
                    ckpt.save_level(
                        1,
                        self._snapshot(
                            result, frequent_prev, buckets, transactions
                        ),
                    )

            k += 1
            while frequent_prev and (
                self.max_level is None or k <= self.max_level
            ):
                with trace("dhp.level", level=k):
                    level_crash_point()
                    raw = apriori_gen(frequent_prev)
                    stats = result.level(k)
                    stats.candidates_generated = len(raw)
                    if not raw:
                        break
                    # OSSM first (Section 7 ordering), then the DHP
                    # hash filter.
                    survivors = self.pruner.prune(raw, threshold)
                    after_bound = len(survivors)
                    survivors = self._hash_filter(
                        survivors, buckets, threshold
                    )
                    metrics.inc(
                        "dhp.hash_filtered", after_bound - len(survivors)
                    )
                    stats.candidates_pruned = len(raw) - len(survivors)
                    stats.candidates_counted = len(survivors)
                    build_next = k + 1 <= self.hash_passes
                    with metrics.time("dhp.count_seconds"):
                        if pool is not None and transactions:
                            counts, buckets, transactions = (
                                self._count_pass_parallel(
                                    transactions, survivors, k,
                                    build_next, pool,
                                )
                            )
                        else:
                            counts, buckets, transactions = self._count_pass(
                                transactions, survivors, k, build_next
                            )
                    record_bound_gaps(self.pruner, survivors, counts)
                    frequent_prev = sorted(
                        itemset
                        for itemset, support in counts.items()
                        if support >= threshold
                    )
                    for itemset in frequent_prev:
                        result.frequent[itemset] = counts[itemset]
                    stats.frequent = len(frequent_prev)
                    record_level_stats(self.name, stats)
                logger.debug(
                    "level %d: generated=%d pruned=%d counted=%d frequent=%d",
                    k, stats.candidates_generated, stats.candidates_pruned,
                    stats.candidates_counted, stats.frequent,
                )
                if ckpt is not None:
                    ckpt.save_level(
                        k,
                        self._snapshot(
                            result, frequent_prev, buckets, transactions
                        ),
                    )
                k += 1

        if pool is not None:
            pool.close()
        result.elapsed_seconds = time.perf_counter() - start
        return result


def dhp(
    database: TransactionDatabase,
    min_support: float | int,
    n_buckets: int = 32768,
    pruner: CandidatePruner | None = None,
    **kwargs,
) -> MiningResult:
    """Functional entry point mirroring :func:`repro.mining.apriori.apriori`."""
    miner = DHP(n_buckets=n_buckets, pruner=pruner, **kwargs)
    return miner.mine(database, min_support)
