"""Itemset utilities: canonical ordering and Apriori candidate generation.

The candidate generator is the classical ``apriori-gen`` of Agrawal &
Srikant (1994): join frequent ``(k−1)``-itemsets sharing a ``(k−2)``
prefix, then prune joins with an infrequent ``(k−1)``-subset. All
itemsets are sorted tuples under the canonical item enumeration, so the
prefix join is a simple tuple comparison.
"""

from __future__ import annotations

from itertools import combinations
from collections.abc import Iterable, Sequence

__all__ = [
    "apriori_gen",
    "join_step",
    "prune_step",
    "subsets_of_size",
    "is_canonical",
]

Itemset = tuple[int, ...]


def is_canonical(itemset: Sequence[int]) -> bool:
    """True iff *itemset* is strictly increasing (sorted, no repeats)."""
    return all(a < b for a, b in zip(itemset, itemset[1:]))


def subsets_of_size(itemset: Sequence[int], k: int) -> Iterable[Itemset]:
    """All size-*k* subsets of a canonical itemset, in canonical order."""
    return combinations(itemset, k)


def join_step(frequent: Sequence[Itemset]) -> list[Itemset]:
    """Join ``(k−1)``-itemsets sharing a ``(k−2)``-prefix into ``k``-itemsets.

    *frequent* must be sorted lexicographically (canonical tuples sort
    that way naturally); the output is then sorted too.
    """
    candidates: list[Itemset] = []
    n = len(frequent)
    for i in range(n):
        head = frequent[i]
        prefix = head[:-1]
        for j in range(i + 1, n):
            other = frequent[j]
            if other[:-1] != prefix:
                break  # sorted input: no later itemset shares the prefix
            candidates.append(head + (other[-1],))
    return candidates


def prune_step(
    candidates: Iterable[Itemset], frequent_prior: frozenset[Itemset] | set[Itemset]
) -> list[Itemset]:
    """Drop candidates with an infrequent ``(k−1)``-subset (monotonicity)."""
    survivors = []
    for candidate in candidates:
        if all(
            subset in frequent_prior
            for subset in combinations(candidate, len(candidate) - 1)
        ):
            survivors.append(candidate)
    return survivors


def apriori_gen(frequent_prior: Iterable[Itemset]) -> list[Itemset]:
    """Classical apriori-gen: join then subset-prune.

    Takes the frequent ``(k−1)``-itemsets, returns the candidate
    ``k``-itemsets, sorted lexicographically.
    """
    prior = sorted(frequent_prior)
    if not prior:
        return []
    k_minus_1 = len(prior[0])
    if any(len(itemset) != k_minus_1 for itemset in prior):
        raise ValueError("all prior itemsets must share one cardinality")
    joined = join_step(prior)
    if k_minus_1 == 1:
        return joined  # every 1-subset of a pair is frequent by construction
    return prune_step(joined, frozenset(prior))
